//! The fault taxonomy: how executions end abnormally.

use std::fmt;

use foc_memory::MemFault;

/// Abnormal termination of a guest execution.
///
/// The experiment drivers classify these into the paper's observed
/// behaviours: Standard versions "terminate with a segmentation
/// violation", Bounds Check versions "exit with a memory error", and so
/// on. A machine that faults is dead — the process crashed — and must be
/// recreated (the restart the paper's §4.7 discusses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmFault {
    /// A memory-substrate fault (segmentation violation, memory error,
    /// stack smash, allocator corruption...).
    Mem(MemFault),
    /// The guest executed `abort()`.
    Abort,
    /// The guest executed `exit(code)`. Not a crash, but it does end the
    /// process; drivers decide how to interpret the code.
    Exit(i32),
    /// Integer division or remainder by zero (SIGFPE).
    DivideByZero,
    /// The per-call instruction budget ran out: the computation is
    /// considered non-terminating (the infinite-loop damage class of
    /// §1.2).
    FuelExhausted,
    /// `call` was issued for an unknown function name.
    NoSuchFunction(String),
    /// `call` was issued on a machine that already faulted.
    MachineDead,
}

impl fmt::Display for VmFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmFault::Mem(m) => write!(f, "{m}"),
            VmFault::Abort => write!(f, "abort() called"),
            VmFault::Exit(c) => write!(f, "exit({c}) called"),
            VmFault::DivideByZero => write!(f, "division by zero"),
            VmFault::FuelExhausted => {
                write!(f, "instruction budget exhausted (likely infinite loop)")
            }
            VmFault::NoSuchFunction(n) => write!(f, "no such function `{n}`"),
            VmFault::MachineDead => write!(f, "machine already faulted"),
        }
    }
}

impl std::error::Error for VmFault {}

impl From<MemFault> for VmFault {
    fn from(m: MemFault) -> VmFault {
        VmFault::Mem(m)
    }
}

impl VmFault {
    /// Whether this fault models a process crash (as opposed to a clean
    /// `exit`).
    pub fn is_crash(&self) -> bool {
        !matches!(self, VmFault::Exit(_))
    }

    /// Whether this is the Bounds-Check compiler's terminate-on-memory-
    /// error behaviour.
    pub fn is_memory_error(&self) -> bool {
        matches!(self, VmFault::Mem(MemFault::MemoryError { .. }))
    }

    /// Whether this models a hardware-level memory crash (segfault, stack
    /// smash, heap corruption abort) — the Standard compiler's failure
    /// modes.
    pub fn is_segfault_like(&self) -> bool {
        matches!(
            self,
            VmFault::Mem(MemFault::Segv { .. } | MemFault::StackSmashed { .. } | MemFault::Heap(_))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_memory::HeapError;

    #[test]
    fn classification() {
        assert!(VmFault::Abort.is_crash());
        assert!(!VmFault::Exit(0).is_crash());
        assert!(VmFault::Mem(MemFault::Segv { addr: 4 }).is_segfault_like());
        assert!(VmFault::Mem(MemFault::Heap(HeapError::OutOfMemory)).is_segfault_like());
        assert!(VmFault::Mem(MemFault::MemoryError {
            kind: foc_memory::ErrorKind::InvalidWrite,
            addr: 0,
            referent: None,
            func: 0,
            pc: 0,
        })
        .is_memory_error());
    }
}
