//! The libc shim layer.
//!
//! These are the runtime functions the guest can call without declaring
//! them. All string/memory builtins perform *byte-wise guest accesses*
//! through the policy layer, so `strcpy` into a too-small buffer behaves
//! per mode exactly like a hand-written copy loop would: Standard mode
//! tramples memory, Bounds Check terminates, failure-oblivious discards
//! the overflowing stores. This mirrors CRED, which wraps the C library
//! so library code participates in checking.

use foc_lang::hir::Builtin;
use foc_memory::AccessSize;

use crate::fault::VmFault;
use crate::machine::Machine;

/// Upper bound for NUL scans so a pathological Standard-mode scan cannot
/// walk the whole address space byte by byte.
const SCAN_CAP: u64 = 1 << 22;

/// Executes a builtin: pops its arguments from the evaluation stack and
/// returns its result value (0 for `void` builtins).
pub(crate) fn dispatch(m: &mut Machine, b: Builtin) -> Result<i64, VmFault> {
    let argc = b.arity();
    let mut args = [0i64; 3];
    for i in (0..argc).rev() {
        args[i] = m.pop_value();
    }
    let a0 = args[0];
    let a1 = args[1];
    let a2 = args[2];
    match b {
        Builtin::Malloc => {
            let p = m.space_mut().malloc(a0 as u64)?;
            Ok(p as i64)
        }
        Builtin::Free => {
            let ctx = m.ctx();
            m.space_mut().free(a0 as u64, ctx)?;
            Ok(0)
        }
        Builtin::Realloc => {
            let ctx = m.ctx();
            let p = m.space_mut().realloc(a0 as u64, a1 as u64, ctx)?;
            Ok(p as i64)
        }
        Builtin::Strlen => {
            let n = scan_nul(m, a0 as u64)?;
            Ok(n as i64)
        }
        Builtin::Strcpy => {
            copy_cstring(m, a0 as u64, a1 as u64, u64::MAX)?;
            Ok(a0)
        }
        Builtin::Strncpy => {
            // C semantics: copy at most n bytes; if src is shorter, pad
            // with NULs to exactly n bytes.
            let n = a2 as u64;
            let copied = copy_cstring(m, a0 as u64, a1 as u64, n)?;
            for i in copied..n {
                m.charge(1)?;
                let d = m.g_ptr_add(a0 as u64, i as i64);
                m.g_store(d, AccessSize::B1, 0)?;
            }
            Ok(a0)
        }
        Builtin::Strcat => {
            let end = scan_nul(m, a0 as u64)?;
            let dst = m.g_ptr_add(a0 as u64, end as i64);
            copy_cstring(m, dst, a1 as u64, u64::MAX)?;
            Ok(a0)
        }
        Builtin::Strncat => {
            let end = scan_nul(m, a0 as u64)?;
            let dst = m.g_ptr_add(a0 as u64, end as i64);
            let n = a2 as u64;
            let copied = copy_bytes_until_nul(m, dst, a1 as u64, n)?;
            let term = m.g_ptr_add(dst, copied as i64);
            m.g_store(term, AccessSize::B1, 0)?;
            Ok(a0)
        }
        Builtin::Strcmp => cmp_cstrings(m, a0 as u64, a1 as u64, u64::MAX),
        Builtin::Strncmp => cmp_cstrings(m, a0 as u64, a1 as u64, a2 as u64),
        Builtin::Strchr => {
            let want = a1 as u8;
            let mut i = 0u64;
            loop {
                m.charge(1)?;
                let p = m.g_ptr_add(a0 as u64, i as i64);
                let b = m.g_load(p, AccessSize::B1)? as u8;
                if b == want {
                    return Ok(p as i64);
                }
                if b == 0 || i >= SCAN_CAP {
                    return Ok(0);
                }
                i += 1;
            }
        }
        Builtin::Strrchr => {
            let want = a1 as u8;
            let mut i = 0u64;
            let mut found = 0i64;
            loop {
                m.charge(1)?;
                let p = m.g_ptr_add(a0 as u64, i as i64);
                let b = m.g_load(p, AccessSize::B1)? as u8;
                if b == want {
                    found = p as i64;
                }
                if b == 0 || i >= SCAN_CAP {
                    return Ok(found);
                }
                i += 1;
            }
        }
        Builtin::Memcpy => {
            let n = a2 as u64;
            for i in 0..n {
                m.charge(1)?;
                let s = m.g_ptr_add(a1 as u64, i as i64);
                let d = m.g_ptr_add(a0 as u64, i as i64);
                let b = m.g_load(s, AccessSize::B1)?;
                m.g_store(d, AccessSize::B1, b)?;
            }
            Ok(a0)
        }
        Builtin::Memmove => {
            let n = a2 as u64;
            // Stage through a host buffer: correct for overlap, and both
            // directions remain fully guest-checked.
            let mut tmp = Vec::with_capacity(n as usize);
            for i in 0..n {
                m.charge(1)?;
                let s = m.g_ptr_add(a1 as u64, i as i64);
                tmp.push(m.g_load(s, AccessSize::B1)? as u8);
            }
            for (i, b) in tmp.into_iter().enumerate() {
                m.charge(1)?;
                let d = m.g_ptr_add(a0 as u64, i as i64);
                m.g_store(d, AccessSize::B1, b as u64)?;
            }
            Ok(a0)
        }
        Builtin::Memset => {
            let n = a2 as u64;
            let byte = a1 as u64 & 0xFF;
            for i in 0..n {
                m.charge(1)?;
                let d = m.g_ptr_add(a0 as u64, i as i64);
                m.g_store(d, AccessSize::B1, byte)?;
            }
            Ok(a0)
        }
        Builtin::Memcmp => {
            let n = a2 as u64;
            for i in 0..n {
                m.charge(1)?;
                let pa = m.g_ptr_add(a0 as u64, i as i64);
                let pb = m.g_ptr_add(a1 as u64, i as i64);
                let ba = m.g_load(pa, AccessSize::B1)? as u8;
                let bb = m.g_load(pb, AccessSize::B1)? as u8;
                if ba != bb {
                    return Ok(if ba < bb { -1 } else { 1 });
                }
            }
            Ok(0)
        }
        Builtin::PrintStr => {
            let mut i = 0u64;
            loop {
                m.charge(1)?;
                let p = m.g_ptr_add(a0 as u64, i as i64);
                let b = m.g_load(p, AccessSize::B1)? as u8;
                if b == 0 || i >= SCAN_CAP {
                    return Ok(0);
                }
                m.push_output_byte(b);
                i += 1;
            }
        }
        Builtin::PrintInt => {
            let s = a0.to_string();
            m.push_output(s.as_bytes());
            Ok(0)
        }
        Builtin::Putchar => {
            m.push_output_byte(a0 as u8);
            Ok(a0 & 0xFF)
        }
        Builtin::Abort => Err(VmFault::Abort),
        Builtin::Exit => Err(VmFault::Exit(a0 as i32)),
        Builtin::Isspace => {
            Ok(matches!(a0 as u8, b' ' | b'\t' | b'\n' | b'\r' | 0x0B | 0x0C) as i64)
        }
        Builtin::Isdigit => Ok((a0 as u8).is_ascii_digit() as i64),
        Builtin::Isalpha => Ok((a0 as u8).is_ascii_alphabetic() as i64),
        Builtin::Isprint => Ok(matches!(a0 as u8, 0x20..=0x7E) as i64),
        Builtin::Toupper => Ok((a0 as u8).to_ascii_uppercase() as i64),
        Builtin::Tolower => Ok((a0 as u8).to_ascii_lowercase() as i64),
        Builtin::Atoi => {
            let mut i = 0u64;
            let mut value: i64 = 0;
            let mut sign = 1i64;
            let mut seen_digit = false;
            loop {
                m.charge(1)?;
                let p = m.g_ptr_add(a0 as u64, i as i64);
                let b = m.g_load(p, AccessSize::B1)? as u8;
                match b {
                    b' ' | b'\t' if !seen_digit && sign == 1 && value == 0 && i < 64 => {}
                    b'-' if !seen_digit && value == 0 && sign == 1 => sign = -1,
                    b'+' if !seen_digit && value == 0 => {}
                    b'0'..=b'9' => {
                        seen_digit = true;
                        value = value.wrapping_mul(10).wrapping_add((b - b'0') as i64);
                    }
                    _ => return Ok((sign * value) as i32 as i64),
                }
                if i >= SCAN_CAP {
                    return Ok((sign * value) as i32 as i64);
                }
                i += 1;
            }
        }
        Builtin::ReadInput => {
            let cap = a1.max(0) as u64;
            let Some(chunk) = m.pop_input() else {
                return Ok(-1);
            };
            let n = (chunk.len() as u64).min(cap);
            for (i, b) in chunk.iter().take(n as usize).enumerate() {
                m.charge(1)?;
                let d = m.g_ptr_add(a0 as u64, i as i64);
                m.g_store(d, AccessSize::B1, *b as u64)?;
            }
            m.charge_io(n);
            Ok(n as i64)
        }
        Builtin::EmitOutput => {
            let n = a1.max(0) as u64;
            let mut bytes = Vec::with_capacity(n as usize);
            for i in 0..n {
                m.charge(1)?;
                let s = m.g_ptr_add(a0 as u64, i as i64);
                bytes.push(m.g_load(s, AccessSize::B1)? as u8);
            }
            m.push_output(&bytes);
            m.charge_io(n);
            Ok(0)
        }
        Builtin::IoWait => {
            m.charge_io(a0.max(0) as u64);
            Ok(0)
        }
    }
}

/// Length of the NUL-terminated string at `s` (guest-checked scan).
fn scan_nul(m: &mut Machine, s: u64) -> Result<u64, VmFault> {
    let mut i = 0u64;
    loop {
        m.charge(1)?;
        let p = m.g_ptr_add(s, i as i64);
        let b = m.g_load(p, AccessSize::B1)? as u8;
        if b == 0 || i >= SCAN_CAP {
            return Ok(i);
        }
        i += 1;
    }
}

/// Copies bytes from `src` to `dst` up to and including the NUL (bounded
/// by `limit` bytes); returns the number of bytes copied (excluding any
/// byte past `limit`).
fn copy_cstring(m: &mut Machine, dst: u64, src: u64, limit: u64) -> Result<u64, VmFault> {
    let mut i = 0u64;
    while i < limit {
        m.charge(1)?;
        let s = m.g_ptr_add(src, i as i64);
        let d = m.g_ptr_add(dst, i as i64);
        let b = m.g_load(s, AccessSize::B1)?;
        m.g_store(d, AccessSize::B1, b)?;
        i += 1;
        if b & 0xFF == 0 {
            return Ok(i);
        }
        if i >= SCAN_CAP {
            return Ok(i);
        }
    }
    Ok(i)
}

/// Copies at most `limit` bytes stopping *before* the NUL; returns bytes
/// copied.
fn copy_bytes_until_nul(m: &mut Machine, dst: u64, src: u64, limit: u64) -> Result<u64, VmFault> {
    let mut i = 0u64;
    while i < limit && i < SCAN_CAP {
        m.charge(1)?;
        let s = m.g_ptr_add(src, i as i64);
        let b = m.g_load(s, AccessSize::B1)? as u8;
        if b == 0 {
            break;
        }
        let d = m.g_ptr_add(dst, i as i64);
        m.g_store(d, AccessSize::B1, b as u64)?;
        i += 1;
    }
    Ok(i)
}

/// Lexicographic comparison of guest strings (at most `limit` bytes).
fn cmp_cstrings(m: &mut Machine, a: u64, b: u64, limit: u64) -> Result<i64, VmFault> {
    let mut i = 0u64;
    while i < limit && i < SCAN_CAP {
        m.charge(1)?;
        let pa = m.g_ptr_add(a, i as i64);
        let pb = m.g_ptr_add(b, i as i64);
        let ba = m.g_load(pa, AccessSize::B1)? as u8;
        let bb = m.g_load(pb, AccessSize::B1)? as u8;
        if ba != bb {
            return Ok(if ba < bb { -1 } else { 1 });
        }
        if ba == 0 {
            return Ok(0);
        }
        i += 1;
    }
    Ok(0)
}
