//! The virtual clock: deterministic cycle accounting.
//!
//! The paper reports *request processing times* measured on a 2.8 GHz
//! Pentium 4. Our substrate is an interpreter, so wall-clock time would
//! measure the interpreter, not the system under study. Instead the
//! machine charges virtual cycles chosen to reproduce the *cost structure*
//! the paper describes:
//!
//! * ordinary computation costs [`BASE`] per instruction;
//! * in checked modes, each memory access additionally pays
//!   [`MEM_CHECK_EXTRA`] (the object-table lookup) and each pointer
//!   arithmetic operation pays [`PTR_CHECK_EXTRA`] — together calibrated
//!   to CRED's reported overhead band (typically under 2×, worst cases
//!   8–12×, §1.1);
//! * intercepted violations pay [`VIOLATION_EXTRA`] (logging plus value
//!   manufacturing);
//! * modelled I/O pays a fixed latency plus a per-byte charge, *identical
//!   across modes* — this is what makes I/O-bound requests (Apache) show
//!   near-1× slowdowns while parse-bound requests (Pine) show large ones,
//!   exactly the split in Figures 2–6.
//!
//! [`CYCLES_PER_MS`] converts cycles to the milliseconds printed by the
//! experiment harness. The conversion is arbitrary (we do not claim the
//! authors' absolute numbers); only ratios are meaningful.

/// Cost of one interpreted instruction.
pub const BASE: u64 = 1;

/// Extra cost of a bounds-checked load or store (object-table lookup).
pub const MEM_CHECK_EXTRA: u64 = 20;

/// Extra cost of checked pointer arithmetic (in-bounds classification).
pub const PTR_CHECK_EXTRA: u64 = 6;

/// Extra cost of handling one intercepted violation (log + continuation).
pub const VIOLATION_EXTRA: u64 = 40;

/// Cost of a function call (frame setup) on top of per-local registration.
pub const CALL_EXTRA: u64 = 8;

/// Per-local registration cost in checked modes (object-table insert).
pub const LOCAL_REG_EXTRA: u64 = 3;

/// Fixed latency per modelled I/O operation (`io_wait`).
pub const IO_LATENCY: u64 = 2_000;

/// Per-byte cost of modelled I/O.
pub const IO_PER_BYTE: u64 = 10;

/// Cycles per reported millisecond.
pub const CYCLES_PER_MS: u64 = 200_000;

/// Converts cycles to milliseconds (floating point, for reporting).
pub fn cycles_to_ms(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_MS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_is_linear() {
        assert_eq!(cycles_to_ms(0), 0.0);
        assert!((cycles_to_ms(CYCLES_PER_MS) - 1.0).abs() < 1e-12);
        assert!((cycles_to_ms(CYCLES_PER_MS * 3 / 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn checked_access_is_meaningfully_slower() {
        // The calibration target: a pure-compute loop of loads should slow
        // down by roughly the CRED band (2–10×) when checked.
        let unchecked = BASE + BASE;
        let checked = BASE + BASE + MEM_CHECK_EXTRA;
        let ratio = checked as f64 / unchecked as f64;
        assert!(ratio > 2.0 && ratio < 12.0, "ratio {ratio}");
    }
}
