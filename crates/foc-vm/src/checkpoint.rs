//! Boot checkpoints: frozen machine snapshots for O(1) restart.
//!
//! The paper's availability argument (§4.7) prices every supervised
//! restart: a restarting server re-runs boot *and* replays its
//! environment (configuration, spool, mailbox) before it can serve
//! again. With the compiled-image layer making the code load cheap, the
//! remaining restart cost was exactly that replay — interpreted guest
//! work proportional to the environment. A [`Checkpoint`] removes it:
//! capture a machine once, immediately after its standard boot (memory
//! space, evaluation stack, counters — the whole process image), and
//! every later restart restores the snapshot with a memcpy of the
//! committed region windows instead of re-interpreting initialization.
//!
//! Determinism makes this sound: a boot is a pure function of
//! `(image, config, environment)`, so the restored machine is
//! *byte-identical* to the machine a fresh boot would have produced —
//! transcripts, [`foc_memory::SpaceStats`], error-log contents, and
//! manufactured-value positions included. The `checkpoint_equiv` test
//! battery asserts exactly that across all five servers, all five
//! modes, and the §4/§5.1 attack library.
//!
//! Checkpoints are immutable and `Sync`: one `Arc<Checkpoint>` serves
//! concurrent restorers across farm worker threads.

use crate::machine::Machine;

/// A frozen snapshot of a [`Machine`], restorable any number of times.
#[derive(Clone)]
pub struct Checkpoint {
    state: Machine,
}

impl Checkpoint {
    /// Freezes the machine's current state. Usually taken right after a
    /// standard boot, while the state is still the deterministic
    /// function of the boot inputs that makes restoration equivalent to
    /// re-booting.
    pub fn capture(machine: &Machine) -> Checkpoint {
        Checkpoint {
            state: machine.clone(),
        }
    }

    /// Materialises a fresh machine in exactly the captured state.
    pub fn restore(&self) -> Machine {
        self.state.clone()
    }

    /// Read-only view of the frozen state (diagnostics, tests).
    pub fn state(&self) -> &Machine {
        &self.state
    }
}

impl Machine {
    /// Freezes this machine's current state into a [`Checkpoint`] —
    /// convenience for [`Checkpoint::capture`].
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::capture(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use foc_memory::Mode;

    #[test]
    fn restored_machine_continues_identically() {
        let src = "int n = 0; int bump() { n += 1; return n; }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        m.call("bump", &[]).unwrap();
        let ckpt = m.checkpoint();
        // Diverge the original; the checkpoint must not move.
        m.call("bump", &[]).unwrap();
        let mut r1 = ckpt.restore();
        let mut r2 = ckpt.restore();
        assert_eq!(r1.call("bump", &[]).unwrap(), 2);
        assert_eq!(r2.call("bump", &[]).unwrap(), 2);
        assert_eq!(m.call("bump", &[]).unwrap(), 3);
        assert_eq!(r1.stats().instrs, r2.stats().instrs);
    }

    #[test]
    fn checkpoint_preserves_violation_state() {
        // Manufactured-value positions and the error log are part of the
        // snapshot: a restored machine resumes the 0,1,k sequence where
        // the capture left it.
        let src = "int f() { int xs[2]; xs[0] = 1; return xs[9]; }";
        let config = MachineConfig::with_mode(Mode::FailureOblivious);
        let mut m = Machine::from_source(src, config).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 0);
        let ckpt = m.checkpoint();
        assert_eq!(m.call("f", &[]).unwrap(), 1);
        let mut r = ckpt.restore();
        assert_eq!(r.call("f", &[]).unwrap(), 1, "sequence resumes in step");
        assert_eq!(r.space().error_log().total(), 2);
    }

    #[test]
    fn checkpoints_restore_dead_machines_faithfully() {
        // A checkpoint of a dead machine restores a dead machine — the
        // persistent-trigger case, where a deterministic boot dies and
        // every restore must die-equivalently report the same fault.
        let src = "int f() { return 1 / 0; }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        let _ = m.call("f", &[]);
        assert!(m.is_dead());
        let r = m.checkpoint().restore();
        assert!(r.is_dead());
        assert_eq!(r.dead_reason(), m.dead_reason());
    }

    #[test]
    fn checkpoints_are_shareable_across_threads() {
        let src = "int n = 7; int get() { return n; }";
        let m = Machine::from_source(src, MachineConfig::default()).unwrap();
        let ckpt = std::sync::Arc::new(m.checkpoint());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&ckpt);
                std::thread::spawn(move || c.restore().call("get", &[]).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
    }
}
