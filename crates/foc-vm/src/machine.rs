//! The interpreter.

use std::collections::VecDeque;

use foc_compiler::bytecode::unpack_scalar;
use foc_compiler::native::{
    is_heap_rop, LocalsBlock, NOp, NativeRegion, ROp, Term, LOCALS_REGS, NO_REGION,
};
use foc_compiler::{Instr, ProgramImage};
use foc_memory::{AccessCtx, AccessSize, MemConfig, MemorySpace};

use crate::builtins;
use crate::cost;
use crate::fault::VmFault;

/// Machine construction parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Memory substrate configuration (mode, region sizes, sequence...).
    pub mem: MemConfig,
    /// Instruction budget per [`Machine::call`]; exceeding it raises
    /// [`VmFault::FuelExhausted`].
    pub fuel_per_call: u64,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            mem: MemConfig::default(),
            fuel_per_call: 200_000_000,
        }
    }
}

impl MachineConfig {
    /// Config with the given memory mode and defaults elsewhere.
    pub fn with_mode(mode: foc_memory::Mode) -> MachineConfig {
        MachineConfig {
            mem: MemConfig::with_mode(mode),
            ..MachineConfig::default()
        }
    }

    /// Same config with a different object-table backend — the knob the
    /// farm and the server drivers thread down from their own configs.
    pub fn with_table(mut self, table: foc_memory::TableKind) -> MachineConfig {
        self.mem.table = table;
        self
    }

    /// Same config with a different manufactured-value strategy (the §3
    /// ablation knob, and a first-class axis of the mode sweep).
    pub fn with_sequence(mut self, sequence: foc_memory::ValueSequence) -> MachineConfig {
        self.mem.sequence = sequence;
        self
    }

    /// Same config with a different in-bounds lookup layer (page map vs
    /// direct table search) — a pure performance axis, observationally
    /// identical under either setting and cloned faithfully by
    /// checkpoints along with the rest of the space.
    pub fn with_lookup(mut self, lookup: foc_memory::LookupLayer) -> MachineConfig {
        self.mem.lookup = lookup;
        self
    }

    /// Same config with a different per-call instruction budget (the
    /// sweep's fuel axis: a tight budget converts manufactured-value
    /// non-termination into a prompt, classifiable fuel-out).
    pub fn with_fuel(mut self, fuel_per_call: u64) -> MachineConfig {
        self.fuel_per_call = fuel_per_call;
        self
    }
}

/// Execution counters (monotone across calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions interpreted.
    pub instrs: u64,
    /// Virtual cycles charged (includes I/O).
    pub cycles: u64,
    /// Cycles attributable to modelled I/O alone.
    pub io_cycles: u64,
    /// Guest function calls executed.
    pub calls: u64,
}

/// An active call frame.
#[derive(Debug, Clone)]
struct Frame {
    func: u32,
    pc: u32,
    frame_base: u64,
    stack_floor: usize,
}

/// A loaded guest program with its memory space and execution state.
///
/// A machine models one OS process: after any fault it is dead and every
/// further call fails with [`VmFault::MachineDead`] — restarting means
/// building a fresh machine, losing all in-memory state, exactly like the
/// process restarts discussed in §4.7 of the paper.
///
/// `Clone` snapshots the whole process image (memory space, evaluation
/// stack, I/O queues, counters); [`crate::Checkpoint`] freezes such a
/// snapshot so supervised restarts can restore a booted machine instead
/// of re-running boot and environment replay.
#[derive(Clone)]
pub struct Machine {
    program: ProgramImage,
    space: MemorySpace,
    global_addrs: Vec<u64>,
    string_addrs: Vec<u64>,
    stack: Vec<i64>,
    frames: Vec<Frame>,
    input: VecDeque<Vec<u8>>,
    output: Vec<u8>,
    fuel_per_call: u64,
    fuel: u64,
    stats: RunStats,
    dead: Option<VmFault>,
    checked: bool,
}

impl Machine {
    /// Loads a shared compiled image: allocates globals and string
    /// literals and applies relocations. The image is `Arc`-backed, so
    /// any number of machines (across any number of threads) share one
    /// copy of the bytecode — booting a machine never copies or
    /// recompiles the program.
    pub fn load(program: ProgramImage, config: MachineConfig) -> Result<Machine, VmFault> {
        let mut space = MemorySpace::new(config.mem);
        let checked = space.mode().is_checked();
        let mut string_addrs = Vec::with_capacity(program.strings.len());
        for (i, s) in program.strings.iter().enumerate() {
            let addr = space.alloc_global_bytes(s, &format!("$str{i}"))?;
            string_addrs.push(addr);
        }
        let mut global_addrs = Vec::with_capacity(program.globals.len());
        for g in &program.globals {
            let addr = space.alloc_global(g.size, &g.name)?;
            let ok = space.write_bytes_raw(addr, &g.init);
            debug_assert!(ok, "global image must fit its allocation");
            for &(off, sid) in &g.relocs {
                let ok = space.write_raw(addr + off, AccessSize::B8, string_addrs[sid as usize]);
                debug_assert!(ok);
            }
            global_addrs.push(addr);
        }
        Ok(Machine {
            program,
            space,
            global_addrs,
            string_addrs,
            stack: Vec::with_capacity(256),
            frames: Vec::with_capacity(64),
            input: VecDeque::new(),
            output: Vec::new(),
            fuel_per_call: config.fuel_per_call,
            fuel: 0,
            stats: RunStats::default(),
            dead: None,
            checked,
        })
    }

    /// Compiles and loads MiniC source in one step — a thin convenience
    /// over [`foc_compiler::compile_image`] plus [`Machine::load`].
    /// Callers that boot more than once should compile once and share
    /// the [`ProgramImage`] instead.
    pub fn from_source(source: &str, config: MachineConfig) -> Result<Machine, String> {
        let image = foc_compiler::compile_image(source)?;
        Machine::load(image, config).map_err(|e| e.to_string())
    }

    /// The shared image this machine runs (cheap to clone for booting
    /// sibling machines).
    pub fn image(&self) -> &ProgramImage {
        &self.program
    }

    // ------------------------------------------------------------------
    // Host interface.
    // ------------------------------------------------------------------

    /// The memory space (error log, stats, mode).
    pub fn space(&self) -> &MemorySpace {
        &self.space
    }

    /// Mutable access to the memory space.
    pub fn space_mut(&mut self) -> &mut MemorySpace {
        &mut self.space
    }

    /// Execution counters.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Why the machine died, if it did.
    pub fn dead_reason(&self) -> Option<&VmFault> {
        self.dead.as_ref()
    }

    /// Whether the machine has faulted.
    pub fn is_dead(&self) -> bool {
        self.dead.is_some()
    }

    /// Queues one input message for `read_input`.
    pub fn push_input(&mut self, bytes: impl Into<Vec<u8>>) {
        self.input.push_back(bytes.into());
    }

    /// Drains and returns everything the guest has written.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// Borrows the pending output.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Allocates a guest buffer holding `bytes` plus a NUL terminator,
    /// returning its address (driver-side `strdup` into the guest).
    pub fn alloc_cstring(&mut self, bytes: &[u8]) -> Result<u64, VmFault> {
        let p = self.space.malloc(bytes.len() as u64 + 1)?;
        let ok = self.space.write_bytes_raw(p, bytes);
        debug_assert!(ok);
        let ok = self
            .space
            .write_raw(p + bytes.len() as u64, AccessSize::B1, 0);
        debug_assert!(ok);
        Ok(p)
    }

    /// Frees a driver-allocated guest buffer.
    pub fn free_guest(&mut self, addr: u64) -> Result<(), VmFault> {
        self.space.free(addr, AccessCtx::default())?;
        Ok(())
    }

    /// Reads a NUL-terminated guest string (raw host access).
    pub fn read_cstring(&self, addr: u64) -> Vec<u8> {
        self.space
            .read_cstring_raw(addr, 1 << 20)
            .unwrap_or_default()
    }

    /// Calls a guest function by name with integer/pointer arguments,
    /// running it to completion.
    pub fn call(&mut self, name: &str, args: &[i64]) -> Result<i64, VmFault> {
        if let Some(f) = &self.dead {
            return Err(match f {
                VmFault::Exit(c) => VmFault::Exit(*c),
                _ => VmFault::MachineDead,
            });
        }
        let Some(fid) = self.program.func_index(name) else {
            return Err(VmFault::NoSuchFunction(name.to_owned()));
        };
        self.fuel = self.fuel_per_call;
        debug_assert!(self.frames.is_empty());
        self.stack.clear();
        match self.run_call(fid, args) {
            Ok(v) => Ok(v),
            Err(fault) => {
                self.dead = Some(fault.clone());
                Err(fault)
            }
        }
    }

    // ------------------------------------------------------------------
    // Core interpreter.
    // ------------------------------------------------------------------

    fn run_call(&mut self, fid: u32, args: &[i64]) -> Result<i64, VmFault> {
        self.enter(fid, args)?;
        // Dispatch tightening: the hot interpreter state — current
        // function, program counter, code slice, frame base, and fuel —
        // lives in locals for the whole loop instead of being re-read
        // from (and written back to) `self.frames.last()` on every
        // instruction. The image handle is `Arc`-backed, so cloning it
        // pins a borrowable copy of the code independent of `&mut self`.
        // The frame's architectural `pc` (and `self.fuel`) are synced at
        // exactly the points where anything can observe them: guest
        // memory ops receive the context directly, builtin dispatch and
        // calls write the frame back, and every fault return syncs
        // before unwinding. Observable accounting (fuel, instruction and
        // cycle counts, log contexts) is bit-identical to per-step
        // bookkeeping.
        let program = self.program.clone();
        let mut func = fid;
        let mut code: &[Instr] = &program.funcs[func as usize].code;
        let mut base = self.frames.last().expect("active frame").frame_base;
        let mut frame_total = program.funcs[func as usize].frame.total;
        let mut pc: u32 = 0;
        let mut fuel = self.fuel;

        // Writes the cached `pc`/`fuel` back to the architectural state.
        macro_rules! sync {
            () => {{
                self.fuel = fuel;
                self.frames.last_mut().expect("active frame").pc = pc;
            }};
        }
        // Syncs and returns the fault.
        macro_rules! fail {
            ($e:expr) => {{
                sync!();
                return Err($e);
            }};
        }
        // `?` with the cached state written back on the error path.
        macro_rules! try_vm {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(e) => fail!(e.into()),
                }
            };
        }
        // Compare handler with a fused conditional-branch peephole: a
        // comparison followed by `JumpIfZero`/`JumpIfNotZero` — the
        // loop-condition pair every scan loop executes per iteration —
        // branches directly on the flag instead of pushing, re-popping,
        // and re-dispatching. The fused path charges the second
        // instruction exactly as a separate dispatch would (one fuel,
        // one instruction, one base cycle), and falls back to the plain
        // push when the next instruction is not a branch or fuel is
        // exhausted (so fuel-out still lands *on* the branch, as it
        // does unfused).
        macro_rules! cmp_arm {
            ($cond:expr) => {{
                let b = self.pop();
                let a = self.pop();
                #[allow(clippy::redundant_closure_call)]
                let cond: bool = $cond(a, b);
                match code[pc as usize] {
                    Instr::JumpIfZero(t) if fuel > 0 => {
                        pc += 1;
                        fuel -= 1;
                        self.stats.instrs += 1;
                        self.stats.cycles += cost::BASE;
                        if !cond {
                            pc = t;
                        }
                    }
                    Instr::JumpIfNotZero(t) if fuel > 0 => {
                        pc += 1;
                        fuel -= 1;
                        self.stats.instrs += 1;
                        self.stats.cycles += cost::BASE;
                        if cond {
                            pc = t;
                        }
                    }
                    _ => self.stack.push(cond as i64),
                }
            }};
        }

        let native = program.native();
        // Scratch register file for register-form pure-local blocks,
        // zeroed once per activation instead of once per block. Block
        // semantics never read a register before writing it (beyond the
        // `consumes` prefix the executor fills), so stale values from
        // earlier blocks are dead by construction.
        let mut nregs = [0i64; LOCALS_REGS];

        loop {
            // Native tier (`ExecTier::Native`): whenever the current pc
            // is a lowered-region entry and remaining fuel covers the
            // region's whole charge, run the pre-decoded region array —
            // no per-instruction dispatch, fetch, or fuel check. The
            // region was charged up front, so the only mid-region exits
            // are the memory/divide fault seams, which refund the
            // not-yet-executed components and surface the architectural
            // pc the unfused stream would fault at. Everything else —
            // fuel exhaustion, calls, builtins, mid-pattern entry points
            // — lands on a pc without a region (or without fuel cover)
            // and falls through to the interpreter below, which is the
            // deopt path.
            if let Some(np) = native {
                let nf = &np.funcs[func as usize];
                while let Some(&ri) = nf.entry.get(pc as usize) {
                    if ri == NO_REGION {
                        break;
                    }
                    let region = &nf.regions[ri as usize];
                    if fuel < region.charge {
                        break;
                    }
                    fuel -= region.charge;
                    self.stats.instrs += region.charge;
                    self.stats.cycles += region.charge * cost::BASE;
                    match self.run_region(region, func, base, frame_total, &mut nregs) {
                        Ok(next) => pc = next,
                        Err((spent, at, e)) => {
                            let refund = region.charge - spent;
                            fuel += refund;
                            self.stats.instrs -= refund;
                            self.stats.cycles -= refund * cost::BASE;
                            pc = at;
                            fail!(e);
                        }
                    }
                }
            }

            let instr = code[pc as usize];
            pc += 1;

            if fuel == 0 {
                fail!(VmFault::FuelExhausted);
            }
            fuel -= 1;
            self.stats.instrs += 1;
            self.stats.cycles += cost::BASE;

            match instr {
                Instr::Const(v) => self.stack.push(v),
                Instr::Dup => {
                    let v = *self.stack.last().expect("dup on empty stack");
                    self.stack.push(v);
                }
                Instr::Drop => {
                    self.stack.pop().expect("drop on empty stack");
                }
                Instr::Swap => {
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                Instr::Rot3 => {
                    // [a, b, c] (c on top) → [b, c, a].
                    let n = self.stack.len();
                    let a = self.stack[n - 3];
                    self.stack[n - 3] = self.stack[n - 2];
                    self.stack[n - 2] = self.stack[n - 1];
                    self.stack[n - 1] = a;
                }
                Instr::LocalAddr(off) => {
                    self.stack.push((base + off as u64) as i64);
                }
                Instr::GlobalAddr(i) => {
                    self.stack.push(self.global_addrs[i as usize] as i64);
                }
                Instr::StrAddr(i) => {
                    self.stack.push(self.string_addrs[i as usize] as i64);
                }
                Instr::Load(size, signed) => {
                    let addr = self.pop() as u64;
                    let ctx = AccessCtx { func, pc };
                    let raw = try_vm!(self.g_load_at(addr, size, ctx));
                    self.stack.push(extend(raw, size, signed));
                }
                Instr::Store(size) => {
                    let addr = self.pop() as u64;
                    let value = self.pop();
                    let ctx = AccessCtx { func, pc };
                    try_vm!(self.g_store_at(addr, size, value as u64, ctx));
                }
                Instr::LoadLocal(off, size, signed) => {
                    let raw = self
                        .space
                        .read_raw(base + off as u64, size)
                        .expect("local slot is mapped");
                    self.stack.push(extend(raw, size, signed));
                }
                Instr::StoreLocal(off, size) => {
                    let value = self.pop();
                    let ok = self.space.write_raw(base + off as u64, size, value as u64);
                    debug_assert!(ok, "local slot is mapped");
                }
                Instr::Add => self.bin(|a, b| a.wrapping_add(b)),
                Instr::Sub => self.bin(|a, b| a.wrapping_sub(b)),
                Instr::Mul => self.bin(|a, b| a.wrapping_mul(b)),
                Instr::DivS => {
                    let b = self.pop();
                    let a = self.pop();
                    if b == 0 {
                        fail!(VmFault::DivideByZero);
                    }
                    self.stack.push(a.overflowing_div(b).0);
                }
                Instr::DivU => {
                    let b = self.pop() as u64;
                    let a = self.pop() as u64;
                    if b == 0 {
                        fail!(VmFault::DivideByZero);
                    }
                    self.stack.push((a / b) as i64);
                }
                Instr::RemS => {
                    let b = self.pop();
                    let a = self.pop();
                    if b == 0 {
                        fail!(VmFault::DivideByZero);
                    }
                    self.stack.push(a.overflowing_rem(b).0);
                }
                Instr::RemU => {
                    let b = self.pop() as u64;
                    let a = self.pop() as u64;
                    if b == 0 {
                        fail!(VmFault::DivideByZero);
                    }
                    self.stack.push((a % b) as i64);
                }
                Instr::And => self.bin(|a, b| a & b),
                Instr::Or => self.bin(|a, b| a | b),
                Instr::Xor => self.bin(|a, b| a ^ b),
                Instr::Shl => self.bin(|a, b| a.wrapping_shl(b as u32 & 63)),
                Instr::ShrS => self.bin(|a, b| a.wrapping_shr(b as u32 & 63)),
                Instr::ShrU => self.bin(|a, b| ((a as u64).wrapping_shr(b as u32 & 63)) as i64),
                Instr::Eq => cmp_arm!(|a: i64, b: i64| a == b),
                Instr::Ne => cmp_arm!(|a: i64, b: i64| a != b),
                Instr::LtS => cmp_arm!(|a: i64, b: i64| a < b),
                Instr::LeS => cmp_arm!(|a: i64, b: i64| a <= b),
                Instr::GtS => cmp_arm!(|a: i64, b: i64| a > b),
                Instr::GeS => cmp_arm!(|a: i64, b: i64| a >= b),
                Instr::LtU => cmp_arm!(|a: i64, b: i64| (a as u64) < b as u64),
                Instr::LeU => cmp_arm!(|a: i64, b: i64| a as u64 <= b as u64),
                Instr::GtU => cmp_arm!(|a: i64, b: i64| a as u64 > b as u64),
                Instr::GeU => cmp_arm!(|a: i64, b: i64| a as u64 >= b as u64),
                Instr::Neg => {
                    let v = self.pop();
                    self.stack.push(v.wrapping_neg());
                }
                Instr::BitNot => {
                    let v = self.pop();
                    self.stack.push(!v);
                }
                Instr::Not => {
                    let v = self.pop();
                    self.stack.push((v == 0) as i64);
                }
                Instr::Normalize(size, signed) => {
                    let v = self.pop();
                    self.stack.push(extend(v as u64, size, signed));
                }
                Instr::EffAddr => {
                    let v = self.pop() as u64;
                    self.stack.push(self.space.effective_addr(v) as i64);
                }
                Instr::PtrAdd(esz) => {
                    let count = self.pop();
                    let ptr = self.pop() as u64;
                    if self.checked {
                        self.stats.cycles += cost::PTR_CHECK_EXTRA;
                    }
                    let delta = count.wrapping_mul(esz as i64);
                    let out = self.space.ptr_add(ptr, delta);
                    self.stack.push(out as i64);
                }
                Instr::PtrDiff(esz) => {
                    let rhs = self.pop() as u64;
                    let lhs = self.pop() as u64;
                    let l = self.space.effective_addr(lhs) as i64;
                    let r = self.space.effective_addr(rhs) as i64;
                    self.stack.push(l.wrapping_sub(r) / esz.max(1) as i64);
                }
                Instr::Jump(t) => {
                    pc = t;
                }
                Instr::JumpIfZero(t) => {
                    if self.pop() == 0 {
                        pc = t;
                    }
                }
                Instr::JumpIfNotZero(t) => {
                    if self.pop() != 0 {
                        pc = t;
                    }
                }
                Instr::Call(callee) => {
                    let arity = program.funcs[callee as usize].param_count;
                    let split = self.stack.len() - arity;
                    let args: Vec<i64> = self.stack.split_off(split);
                    sync!();
                    try_vm!(self.enter(callee, &args));
                    func = callee;
                    code = &program.funcs[func as usize].code;
                    frame_total = program.funcs[func as usize].frame.total;
                    base = self.frames.last().expect("active frame").frame_base;
                    pc = 0;
                }
                Instr::CallBuiltin(b) => {
                    // Builtins observe and charge the architectural
                    // state (fuel via `charge`, context via `ctx`).
                    sync!();
                    let result = try_vm!(builtins::dispatch(self, b));
                    fuel = self.fuel;
                    self.stack.push(result);
                }
                Instr::Ret => {
                    let ret = self.pop();
                    try_vm!(self.space.pop_frame());
                    let fr = self.frames.pop().expect("active frame");
                    self.stack.truncate(fr.stack_floor);
                    if self.frames.is_empty() {
                        self.fuel = fuel;
                        return Ok(ret);
                    }
                    self.stack.push(ret);
                    let caller = self.frames.last().expect("active frame");
                    func = caller.func;
                    pc = caller.pc;
                    base = caller.frame_base;
                    code = &program.funcs[func as usize].code;
                    frame_total = program.funcs[func as usize].frame.total;
                }

                // ----------------------------------------------------
                // Superinstructions (`ExecTier::Super`). One dispatch
                // executes a whole fused pattern; the accounting is
                // exactly the `k` components' worth (the main loop
                // already charged one unit for the fused opcode, the
                // handler charges the remaining `k - 1` up front).
                // When remaining fuel cannot cover the pattern the
                // handler *deopts*: it executes only the first
                // component and resumes the interpreter at `pc` (the
                // original component instructions are still in place —
                // fusion is layout-preserving), so mid-pattern fuel
                // exhaustion reproduces the baseline tier's fault pc,
                // counts, and stack byte-for-byte. Patterns only fault
                // in their *last* component, which runs after the full
                // pre-charge — so fault-path accounting also matches
                // the unfused stream exactly, and memory components
                // receive the same `AccessCtx` pc the unfused
                // instruction would (error logs stay identical).
                // ----------------------------------------------------
                Instr::FusedCmpJump {
                    a,
                    b,
                    a_repr,
                    b_repr,
                    op,
                    target,
                } => {
                    let (asz, asg) = unpack_scalar(a_repr);
                    let araw = self
                        .space
                        .read_raw(base + a as u64, asz)
                        .expect("local slot is mapped");
                    let av = extend(araw, asz, asg);
                    if fuel >= 4 {
                        fuel -= 4;
                        self.stats.instrs += 4;
                        self.stats.cycles += 4 * cost::BASE;
                        let (bsz, bsg) = unpack_scalar(b_repr);
                        let braw = self
                            .space
                            .read_raw(base + b as u64, bsz)
                            .expect("local slot is mapped");
                        let bv = extend(braw, bsz, bsg);
                        pc = if op.eval(av, bv) { target } else { pc + 4 };
                    } else {
                        self.stack.push(av);
                    }
                }
                Instr::FusedLocalIdxLoad {
                    off,
                    idx,
                    esz,
                    repr,
                } => {
                    if fuel >= 3 {
                        fuel -= 3;
                        self.stats.instrs += 3;
                        self.stats.cycles += 3 * cost::BASE;
                        if self.checked {
                            self.stats.cycles += cost::PTR_CHECK_EXTRA;
                        }
                        let delta = (idx as i64).wrapping_mul(esz as i64);
                        let ptr = self.space.ptr_add(base + off as u64, delta);
                        pc += 3;
                        let (size, signed) = unpack_scalar(repr);
                        let ctx = AccessCtx { func, pc };
                        let raw = try_vm!(self.g_load_at(ptr, size, ctx));
                        self.stack.push(extend(raw, size, signed));
                    } else {
                        self.stack.push((base + off as u64) as i64);
                    }
                }
                Instr::FusedLoadIdxAccum {
                    acc,
                    addr,
                    delta,
                    load_repr,
                    acc_repr,
                    size,
                } => {
                    let (asz, asg) = unpack_scalar(acc_repr);
                    let araw = self
                        .space
                        .read_raw(base + acc as u64, asz)
                        .expect("local slot is mapped");
                    let av = extend(araw, asz, asg);
                    if fuel >= 8 {
                        fuel -= 8;
                        self.stats.instrs += 8;
                        self.stats.cycles += 8 * cost::BASE;
                        if self.checked {
                            self.stats.cycles += cost::PTR_CHECK_EXTRA;
                        }
                        let ptr = self.space.ptr_add(base + addr as u64, delta as i64);
                        let (lsz, lsg) = unpack_scalar(load_repr);
                        let ctx = AccessCtx { func, pc: pc + 4 };
                        let raw = match self.g_load_at(ptr, lsz, ctx) {
                            Ok(raw) => raw,
                            Err(e) => {
                                // Cold fault seam: the load is component
                                // 4 of 9, so the four pure stack ops
                                // behind it never ran in the unfused
                                // reference — refund their charge, leave
                                // the accumulator on the stack (the
                                // unfused `LoadLocal` pushed it; `Load`
                                // only popped the pointer), and fault at
                                // the load's own pc.
                                fuel += 4;
                                self.stats.instrs -= 4;
                                self.stats.cycles -= 4 * cost::BASE;
                                self.stack.push(av);
                                pc += 4;
                                fail!(e);
                            }
                        };
                        let v = av.wrapping_add(extend(raw, lsz, lsg));
                        let ok = self.space.write_raw(base + acc as u64, size, v as u64);
                        debug_assert!(ok, "local slot is mapped");
                        pc += 8;
                    } else {
                        self.stack.push(av);
                    }
                }
                Instr::FusedLocalIdxStore {
                    off,
                    idx,
                    esz,
                    size,
                } => {
                    if fuel >= 3 {
                        fuel -= 3;
                        self.stats.instrs += 3;
                        self.stats.cycles += 3 * cost::BASE;
                        if self.checked {
                            self.stats.cycles += cost::PTR_CHECK_EXTRA;
                        }
                        let delta = (idx as i64).wrapping_mul(esz as i64);
                        let ptr = self.space.ptr_add(base + off as u64, delta);
                        pc += 3;
                        let value = self.pop();
                        let ctx = AccessCtx { func, pc };
                        try_vm!(self.g_store_at(ptr, size, value as u64, ctx));
                    } else {
                        self.stack.push((base + off as u64) as i64);
                    }
                }
                Instr::FusedIncLocal {
                    off,
                    delta,
                    repr,
                    len,
                } => {
                    let (size, signed) = unpack_scalar(repr);
                    let raw = self
                        .space
                        .read_raw(base + off as u64, size)
                        .expect("local slot is mapped");
                    let old = extend(raw, size, signed);
                    let extra = (len - 1) as u64;
                    if fuel >= extra {
                        fuel -= extra;
                        self.stats.instrs += extra;
                        self.stats.cycles += extra * cost::BASE;
                        let mut new = old.wrapping_add(delta as i64);
                        if size != AccessSize::B8 {
                            new = extend(new as u64, size, signed);
                        }
                        let ok = self.space.write_raw(base + off as u64, size, new as u64);
                        debug_assert!(ok, "local slot is mapped");
                        pc += extra as u32;
                    } else {
                        self.stack.push(old);
                    }
                }
                Instr::FusedIncJump {
                    off,
                    delta,
                    repr,
                    len,
                    target,
                } => {
                    let (size, signed) = unpack_scalar(repr);
                    let raw = self
                        .space
                        .read_raw(base + off as u64, size)
                        .expect("local slot is mapped");
                    let old = extend(raw, size, signed);
                    let extra = (len - 1) as u64;
                    if fuel >= extra {
                        fuel -= extra;
                        self.stats.instrs += extra;
                        self.stats.cycles += extra * cost::BASE;
                        let mut new = old.wrapping_add(delta as i64);
                        if size != AccessSize::B8 {
                            new = extend(new as u64, size, signed);
                        }
                        let ok = self.space.write_raw(base + off as u64, size, new as u64);
                        debug_assert!(ok, "local slot is mapped");
                        pc = target;
                    } else {
                        self.stack.push(old);
                    }
                }
                Instr::FusedConstAlu { c, op } => {
                    if fuel >= 1 {
                        fuel -= 1;
                        self.stats.instrs += 1;
                        self.stats.cycles += cost::BASE;
                        let a = self.pop();
                        self.stack.push(op.eval(a, c as i64));
                        pc += 1;
                    } else {
                        self.stack.push(c as i64);
                    }
                }
                Instr::FusedStoreLocalPop { off, size } => {
                    if fuel >= 2 {
                        fuel -= 2;
                        self.stats.instrs += 2;
                        self.stats.cycles += 2 * cost::BASE;
                        let value = self.pop();
                        let ok = self.space.write_raw(base + off as u64, size, value as u64);
                        debug_assert!(ok, "local slot is mapped");
                        pc += 2;
                    } else {
                        let v = *self.stack.last().expect("dup on empty stack");
                        self.stack.push(v);
                    }
                }
                Instr::FusedLoadLoad { off, repr } => {
                    let praw = self
                        .space
                        .read_raw(base + off as u64, AccessSize::B8)
                        .expect("local slot is mapped");
                    if fuel >= 1 {
                        fuel -= 1;
                        self.stats.instrs += 1;
                        self.stats.cycles += cost::BASE;
                        pc += 1;
                        let (size, signed) = unpack_scalar(repr);
                        let ctx = AccessCtx { func, pc };
                        let raw = try_vm!(self.g_load_at(praw, size, ctx));
                        self.stack.push(extend(raw, size, signed));
                    } else {
                        self.stack.push(praw as i64);
                    }
                }
            }
        }
    }

    /// Executes one AOT-lowered region (native tier). The caller has
    /// already pre-charged the region's full `charge` against fuel,
    /// instruction, and cycle counts; this routine only adds the
    /// per-access extras (pointer/memory check and violation cycles)
    /// exactly where the interpreted stream would. On success it
    /// returns the successor pc. A fault returns `(spent, pc, fault)`:
    /// how many charge components the unfused stream would actually
    /// have consumed before surfacing the fault, and the architectural
    /// pc it surfaces at — the caller refunds `charge - spent` so the
    /// observable accounting is byte-identical to the baseline tier.
    fn run_region(
        &mut self,
        region: &NativeRegion,
        func: u32,
        base: u64,
        frame_total: u64,
        nregs: &mut [i64; LOCALS_REGS],
    ) -> Result<u32, (u64, u32, VmFault)> {
        for op in &region.ops {
            match *op {
                NOp::Const(v) => self.stack.push(v),
                NOp::Dup => {
                    let v = *self.stack.last().expect("dup on empty stack");
                    self.stack.push(v);
                }
                NOp::Drop => {
                    self.stack.pop().expect("drop on empty stack");
                }
                NOp::Swap => {
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                NOp::Rot3 => {
                    let n = self.stack.len();
                    let a = self.stack[n - 3];
                    self.stack[n - 3] = self.stack[n - 2];
                    self.stack[n - 2] = self.stack[n - 1];
                    self.stack[n - 1] = a;
                }
                NOp::LocalAddr(off) => self.stack.push((base + off as u64) as i64),
                NOp::GlobalAddr(i) => self.stack.push(self.global_addrs[i as usize] as i64),
                NOp::StrAddr(i) => self.stack.push(self.string_addrs[i as usize] as i64),
                NOp::LoadLocal { off, size, signed } => {
                    let raw = self
                        .space
                        .local_read(base + off as u64, size)
                        .expect("local slot is mapped");
                    self.stack.push(extend(raw, size, signed));
                }
                NOp::StoreLocal { off, size } => {
                    let value = self.pop();
                    let ok = self
                        .space
                        .local_write(base + off as u64, size, value as u64);
                    debug_assert!(ok, "local slot is mapped");
                }
                NOp::Alu(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(op.eval(a, b));
                }
                NOp::Div { signed, rem, at } => {
                    let b = self.pop();
                    let a = self.pop();
                    if b == 0 {
                        return Err((at.spent, at.pc, VmFault::DivideByZero));
                    }
                    let v = match (signed, rem) {
                        (true, false) => a.overflowing_div(b).0,
                        (false, false) => ((a as u64) / (b as u64)) as i64,
                        (true, true) => a.overflowing_rem(b).0,
                        (false, true) => ((a as u64) % (b as u64)) as i64,
                    };
                    self.stack.push(v);
                }
                NOp::Cmp(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(op.eval(a, b) as i64);
                }
                NOp::Neg => {
                    let v = self.pop();
                    self.stack.push(v.wrapping_neg());
                }
                NOp::BitNot => {
                    let v = self.pop();
                    self.stack.push(!v);
                }
                NOp::Not => {
                    let v = self.pop();
                    self.stack.push((v == 0) as i64);
                }
                NOp::Normalize { size, signed } => {
                    let v = self.pop();
                    self.stack.push(extend(v as u64, size, signed));
                }
                NOp::EffAddr => {
                    let v = self.pop() as u64;
                    self.stack.push(self.space.effective_addr(v) as i64);
                }
                NOp::PtrAdd { esz } => {
                    let count = self.pop();
                    let ptr = self.pop() as u64;
                    if self.checked {
                        self.stats.cycles += cost::PTR_CHECK_EXTRA;
                    }
                    let delta = count.wrapping_mul(esz as i64);
                    let out = self.space.ptr_add(ptr, delta);
                    self.stack.push(out as i64);
                }
                NOp::PtrDiff { esz } => {
                    let rhs = self.pop() as u64;
                    let lhs = self.pop() as u64;
                    let l = self.space.effective_addr(lhs) as i64;
                    let r = self.space.effective_addr(rhs) as i64;
                    self.stack.push(l.wrapping_sub(r) / esz.max(1) as i64);
                }
                NOp::Load { size, signed, at } => {
                    let addr = self.pop() as u64;
                    let ctx = AccessCtx { func, pc: at.pc };
                    match self.g_load_at(addr, size, ctx) {
                        Ok(raw) => self.stack.push(extend(raw, size, signed)),
                        Err(e) => return Err((at.spent, at.pc, e)),
                    }
                }
                NOp::Store { size, at } => {
                    let addr = self.pop() as u64;
                    let value = self.pop();
                    let ctx = AccessCtx { func, pc: at.pc };
                    if let Err(e) = self.g_store_at(addr, size, value as u64, ctx) {
                        return Err((at.spent, at.pc, e));
                    }
                }
                NOp::IdxLoad {
                    off,
                    delta,
                    size,
                    signed,
                    at,
                } => {
                    if self.checked {
                        self.stats.cycles += cost::PTR_CHECK_EXTRA;
                    }
                    if let Some(raw) = self.space.idx_load_fast(base + off as u64, delta, size) {
                        self.stats.cycles += cost::MEM_CHECK_EXTRA;
                        self.stack.push(extend(raw, size, signed));
                    } else {
                        let ptr = self.space.ptr_add(base + off as u64, delta);
                        let ctx = AccessCtx { func, pc: at.pc };
                        match self.g_load_at(ptr, size, ctx) {
                            Ok(raw) => self.stack.push(extend(raw, size, signed)),
                            Err(e) => return Err((at.spent, at.pc, e)),
                        }
                    }
                }
                NOp::IdxStore {
                    off,
                    delta,
                    size,
                    at,
                } => {
                    if self.checked {
                        self.stats.cycles += cost::PTR_CHECK_EXTRA;
                    }
                    let value = self.pop();
                    if self
                        .space
                        .idx_store_fast(base + off as u64, delta, size, value as u64)
                    {
                        self.stats.cycles += cost::MEM_CHECK_EXTRA;
                    } else {
                        let ptr = self.space.ptr_add(base + off as u64, delta);
                        let ctx = AccessCtx { func, pc: at.pc };
                        if let Err(e) = self.g_store_at(ptr, size, value as u64, ctx) {
                            return Err((at.spent, at.pc, e));
                        }
                    }
                }
                NOp::IdxAccum {
                    acc,
                    acc_size,
                    acc_signed,
                    store_size,
                    addr,
                    delta,
                    load_size,
                    load_signed,
                    at,
                } => {
                    let araw = self
                        .space
                        .local_read(base + acc as u64, acc_size)
                        .expect("local slot is mapped");
                    let av = extend(araw, acc_size, acc_signed);
                    if self.checked {
                        self.stats.cycles += cost::PTR_CHECK_EXTRA;
                    }
                    let raw = if let Some(raw) =
                        self.space
                            .idx_load_fast(base + addr as u64, delta, load_size)
                    {
                        self.stats.cycles += cost::MEM_CHECK_EXTRA;
                        raw
                    } else {
                        let ptr = self.space.ptr_add(base + addr as u64, delta);
                        let ctx = AccessCtx { func, pc: at.pc };
                        match self.g_load_at(ptr, load_size, ctx) {
                            Ok(raw) => raw,
                            Err(e) => {
                                // Same cold seam as the fused handler:
                                // the unfused stream pushed the
                                // accumulator before the faulting load.
                                self.stack.push(av);
                                return Err((at.spent, at.pc, e));
                            }
                        }
                    };
                    let v = av.wrapping_add(extend(raw, load_size, load_signed));
                    let ok = self
                        .space
                        .local_write(base + acc as u64, store_size, v as u64);
                    debug_assert!(ok, "local slot is mapped");
                }
                NOp::IncLocal {
                    off,
                    delta,
                    size,
                    signed,
                } => {
                    let raw = self
                        .space
                        .local_read(base + off as u64, size)
                        .expect("local slot is mapped");
                    let mut new = extend(raw, size, signed).wrapping_add(delta);
                    if size != AccessSize::B8 {
                        new = extend(new as u64, size, signed);
                    }
                    let ok = self.space.local_write(base + off as u64, size, new as u64);
                    debug_assert!(ok, "local slot is mapped");
                }
                NOp::ConstAlu { c, op } => {
                    let a = self.pop();
                    self.stack.push(op.eval(a, c));
                }
                NOp::StoreLocalPop { off, size } => {
                    let value = self.pop();
                    let ok = self
                        .space
                        .local_write(base + off as u64, size, value as u64);
                    debug_assert!(ok, "local slot is mapped");
                }
                NOp::LoadLoad {
                    off,
                    size,
                    signed,
                    at,
                } => {
                    let praw = self
                        .space
                        .local_read(base + off as u64, AccessSize::B8)
                        .expect("local slot is mapped");
                    let ctx = AccessCtx { func, pc: at.pc };
                    match self.g_load_at(praw, size, ctx) {
                        Ok(raw) => self.stack.push(extend(raw, size, signed)),
                        Err(e) => return Err((at.spent, at.pc, e)),
                    }
                }
                NOp::Locals(ref block) => {
                    // Register-form block: every operand-stack slot was
                    // resolved to a fixed scratch register at lowering
                    // time — no operand-stack traffic. A pure block
                    // (`!block.mem`) borrows the frame's byte range
                    // once for every local access and cannot fault, so
                    // no seam or stat bookkeeping is needed inside. A
                    // memory block runs the segmented executor, which
                    // releases the frame borrow at each guest access:
                    // the access probes the placement fast path inline
                    // against the register file and falls back to the
                    // full checked path (violation continuations,
                    // fault seams, spill) on a probe miss.
                    let consumes = block.consumes as usize;
                    if consumes != 0 {
                        let split = self.stack.len() - consumes;
                        nregs[..consumes].copy_from_slice(&self.stack[split..]);
                        self.stack.truncate(split);
                    }
                    if block.mem {
                        self.run_mem_block(block, func, base, frame_total, nregs)?;
                    } else {
                        let frame = self
                            .space
                            .frame_mut(base, frame_total)
                            .expect("active frame is mapped");
                        let regs = &mut *nregs;
                        for r in block.ops.iter() {
                            frame_rop(*r, regs, frame, base);
                        }
                    }
                    let produces = block.produces as usize;
                    if produces != 0 {
                        self.stack.extend_from_slice(&nregs[..produces]);
                    }
                }
            }
        }
        Ok(match region.term {
            Term::Jump(t) => t,
            Term::JumpIfZero { target, fall } => {
                if self.pop() == 0 {
                    target
                } else {
                    fall
                }
            }
            Term::JumpIfNotZero { target, fall } => {
                if self.pop() != 0 {
                    target
                } else {
                    fall
                }
            }
            Term::FlagJump { op, target, fall } => {
                let b = self.pop();
                let a = self.pop();
                if op.eval(a, b) {
                    target
                } else {
                    fall
                }
            }
            Term::CmpJump {
                a,
                a_size,
                a_signed,
                b,
                b_size,
                b_signed,
                op,
                target,
                fall,
            } => {
                // Both operands are frame locals, so one frame borrow
                // answers both reads (same committed-window semantics
                // as `local_read`, minus the per-access round-trip).
                let frame = self
                    .space
                    .frame_mut(base, frame_total)
                    .expect("active frame is mapped");
                let av = extend(frame_get(frame, a, a_size), a_size, a_signed);
                let bv = extend(frame_get(frame, b, b_size), b_size, b_signed);
                if op.eval(av, bv) {
                    target
                } else {
                    fall
                }
            }
            Term::IncJump {
                off,
                delta,
                size,
                signed,
                target,
            } => {
                let frame = self
                    .space
                    .frame_mut(base, frame_total)
                    .expect("active frame is mapped");
                let raw = frame_get(frame, off, size);
                let mut new = extend(raw, size, signed).wrapping_add(delta);
                if size != AccessSize::B8 {
                    new = extend(new as u64, size, signed);
                }
                frame_put(frame, off, size, new as u64);
                target
            }
            Term::Fall(next) => next,
        })
    }

    /// Executes a memory-spanning register block: the segmented twin of
    /// the pure-block loop in the `NOp::Locals` arm. Pure runs between
    /// guest accesses borrow the frame window once per segment; each
    /// guest access releases the borrow and probes the placement fast
    /// path ([`MemorySpace::probe_load`]/[`MemorySpace::probe_store`],
    /// or the combined index probes for fused address+access pairs)
    /// with the address straight out of the register file. A probe hit
    /// charges exactly what the interpreted hit path charges; a probe
    /// miss deopts to the full access path (`g_load_at`/`g_store_at`),
    /// which runs the complete checked machinery — violation
    /// continuations, manufactured values, redirects, log records —
    /// identically to one-dispatch-at-a-time interpretation. On a fault
    /// the op's pre-baked seam supplies the architectural pc and the
    /// spent component count, and the live registers below the faulting
    /// operand spill back to the operand stack so the machine's
    /// post-fault image is byte-identical to the baseline tier's.
    fn run_mem_block(
        &mut self,
        block: &LocalsBlock,
        func: u32,
        base: u64,
        frame_total: u64,
        regs: &mut [i64; LOCALS_REGS],
    ) -> Result<(), (u64, u32, VmFault)> {
        let ops = &block.ops;
        let mut i = 0;
        while i < ops.len() {
            if !is_heap_rop(&ops[i]) {
                let frame = self
                    .space
                    .frame_mut(base, frame_total)
                    .expect("active frame is mapped");
                while i < ops.len() && !is_heap_rop(&ops[i]) {
                    frame_rop(ops[i], regs, frame, base);
                    i += 1;
                }
                continue;
            }
            match ops[i] {
                ROp::GLoad {
                    at,
                    size,
                    signed,
                    seam,
                    spill,
                } => {
                    let addr = regs[at as usize] as u64;
                    if let Some(raw) = self.space.probe_load(addr, size) {
                        if self.checked {
                            self.stats.cycles += cost::MEM_CHECK_EXTRA;
                        }
                        regs[at as usize] = extend(raw, size, signed);
                    } else {
                        let ctx = AccessCtx { func, pc: seam.pc };
                        match self.g_load_at(addr, size, ctx) {
                            Ok(raw) => regs[at as usize] = extend(raw, size, signed),
                            Err(e) => {
                                self.stack.extend_from_slice(&regs[..spill as usize]);
                                return Err((seam.spent, seam.pc, e));
                            }
                        }
                    }
                }
                ROp::GStore {
                    addr,
                    val,
                    size,
                    seam,
                    spill,
                } => {
                    let a = regs[addr as usize] as u64;
                    let v = regs[val as usize] as u64;
                    if self.space.probe_store(a, size, v) {
                        if self.checked {
                            self.stats.cycles += cost::MEM_CHECK_EXTRA;
                        }
                    } else {
                        let ctx = AccessCtx { func, pc: seam.pc };
                        if let Err(e) = self.g_store_at(a, size, v, ctx) {
                            self.stack.extend_from_slice(&regs[..spill as usize]);
                            return Err((seam.spent, seam.pc, e));
                        }
                    }
                }
                ROp::GPtrAdd {
                    dst,
                    ptr,
                    count,
                    esz,
                } => {
                    if self.checked {
                        self.stats.cycles += cost::PTR_CHECK_EXTRA;
                    }
                    let delta = regs[count as usize].wrapping_mul(esz as i64);
                    let out = self.space.ptr_add(regs[ptr as usize] as u64, delta);
                    regs[dst as usize] = out as i64;
                }
                ROp::GPtrDiff { dst, a, b, esz } => {
                    let l = self.space.effective_addr(regs[a as usize] as u64) as i64;
                    let r = self.space.effective_addr(regs[b as usize] as u64) as i64;
                    regs[dst as usize] = l.wrapping_sub(r) / esz.max(1) as i64;
                }
                ROp::GEffAddr { at } => {
                    let v = self.space.effective_addr(regs[at as usize] as u64);
                    regs[at as usize] = v as i64;
                }
                ROp::GIdxLoad {
                    dst,
                    ptr,
                    count,
                    esz,
                    size,
                    signed,
                    seam,
                    spill,
                } => {
                    if self.checked {
                        self.stats.cycles += cost::PTR_CHECK_EXTRA;
                    }
                    let p = regs[ptr as usize] as u64;
                    let delta = regs[count as usize].wrapping_mul(esz as i64);
                    if let Some(raw) = self.space.idx_load_fast(p, delta, size) {
                        self.stats.cycles += cost::MEM_CHECK_EXTRA;
                        regs[dst as usize] = extend(raw, size, signed);
                    } else {
                        let target = self.space.ptr_add(p, delta);
                        let ctx = AccessCtx { func, pc: seam.pc };
                        match self.g_load_at(target, size, ctx) {
                            Ok(raw) => regs[dst as usize] = extend(raw, size, signed),
                            Err(e) => {
                                self.stack.extend_from_slice(&regs[..spill as usize]);
                                return Err((seam.spent, seam.pc, e));
                            }
                        }
                    }
                }
                ROp::GIdxStore {
                    ptr,
                    count,
                    val,
                    esz,
                    size,
                    seam,
                    spill,
                } => {
                    if self.checked {
                        self.stats.cycles += cost::PTR_CHECK_EXTRA;
                    }
                    let p = regs[ptr as usize] as u64;
                    let delta = regs[count as usize].wrapping_mul(esz as i64);
                    let v = regs[val as usize] as u64;
                    if self.space.idx_store_fast(p, delta, size, v) {
                        self.stats.cycles += cost::MEM_CHECK_EXTRA;
                    } else {
                        let target = self.space.ptr_add(p, delta);
                        let ctx = AccessCtx { func, pc: seam.pc };
                        if let Err(e) = self.g_store_at(target, size, v, ctx) {
                            self.stack.extend_from_slice(&regs[..spill as usize]);
                            return Err((seam.spent, seam.pc, e));
                        }
                    }
                }
                _ => unreachable!("pure op on the heap-op path"),
            }
            i += 1;
        }
        Ok(())
    }

    fn enter(&mut self, fid: u32, args: &[i64]) -> Result<(), VmFault> {
        let func = &self.program.funcs[fid as usize];
        debug_assert_eq!(
            args.len(),
            func.param_count,
            "arity mismatch in `{}`",
            func.name
        );
        self.stats.calls += 1;
        self.stats.cycles += cost::CALL_EXTRA;
        if self.checked {
            self.stats.cycles += func.frame.slots.len() as u64 * cost::LOCAL_REG_EXTRA;
        }
        let total = func.frame.total;
        let base = self.space.push_frame(total)?;
        // Registration and parameter copy-in read the layout; clone the
        // small slot table to sidestep borrowing `self.program` across
        // `self.space` calls.
        let slots: Vec<(u64, u64)> = func.frame.slots.clone();
        let param_count = func.param_count;
        for &(off, size) in &slots {
            self.space.register_local(base, off, size);
        }
        for (i, &arg) in args.iter().enumerate().take(param_count) {
            let (off, size) = slots[i];
            let acc = AccessSize::from_bytes(size.clamp(1, 8).next_power_of_two().min(8));
            let ok = self.space.write_raw(base + off, acc, arg as u64);
            debug_assert!(ok, "parameter slot must be mapped");
        }
        self.frames.push(Frame {
            func: fid,
            pc: 0,
            frame_base: base,
            stack_floor: self.stack.len(),
        });
        Ok(())
    }

    #[inline]
    fn pop(&mut self) -> i64 {
        self.stack.pop().expect("evaluation stack underflow")
    }

    /// Pops one value (builtin argument marshalling).
    pub(crate) fn pop_value(&mut self) -> i64 {
        self.pop()
    }

    #[inline]
    fn bin(&mut self, f: impl Fn(i64, i64) -> i64) {
        let b = self.pop();
        let a = self.pop();
        self.stack.push(f(a, b));
    }

    pub(crate) fn ctx(&self) -> AccessCtx {
        match self.frames.last() {
            Some(f) => AccessCtx {
                func: f.func,
                pc: f.pc,
            },
            None => AccessCtx::default(),
        }
    }

    // ------------------------------------------------------------------
    // Guest-semantic accesses (shared with builtins).
    // ------------------------------------------------------------------

    /// Checked guest load (policy applies), charging cycles. Context
    /// comes from the architectural frame — the builtins' entry point;
    /// the dispatch loop passes its cached context to
    /// [`Machine::g_load_at`] directly.
    pub(crate) fn g_load(&mut self, addr: u64, size: AccessSize) -> Result<u64, VmFault> {
        let ctx = self.ctx();
        self.g_load_at(addr, size, ctx)
    }

    /// Checked guest load with an explicit access context.
    #[inline]
    pub(crate) fn g_load_at(
        &mut self,
        addr: u64,
        size: AccessSize,
        ctx: AccessCtx,
    ) -> Result<u64, VmFault> {
        if self.checked {
            self.stats.cycles += cost::MEM_CHECK_EXTRA;
        }
        let out = self.space.load(addr, size, ctx)?;
        if out.violation {
            self.stats.cycles += cost::VIOLATION_EXTRA;
        }
        Ok(out.value)
    }

    /// Checked guest store (policy applies), charging cycles. See
    /// [`Machine::g_load`] for the context split.
    pub(crate) fn g_store(
        &mut self,
        addr: u64,
        size: AccessSize,
        value: u64,
    ) -> Result<(), VmFault> {
        let ctx = self.ctx();
        self.g_store_at(addr, size, value, ctx)
    }

    /// Checked guest store with an explicit access context.
    #[inline]
    pub(crate) fn g_store_at(
        &mut self,
        addr: u64,
        size: AccessSize,
        value: u64,
        ctx: AccessCtx,
    ) -> Result<(), VmFault> {
        if self.checked {
            self.stats.cycles += cost::MEM_CHECK_EXTRA;
        }
        let out = self.space.store(addr, size, value, ctx)?;
        if out.violation {
            self.stats.cycles += cost::VIOLATION_EXTRA;
        }
        Ok(())
    }

    /// Checked pointer arithmetic (for pointers produced by builtins).
    pub(crate) fn g_ptr_add(&mut self, ptr: u64, delta: i64) -> u64 {
        if self.checked {
            self.stats.cycles += cost::PTR_CHECK_EXTRA;
        }
        self.space.ptr_add(ptr, delta)
    }

    /// Charges `n` budgeted instructions from within a builtin loop.
    pub(crate) fn charge(&mut self, n: u64) -> Result<(), VmFault> {
        self.stats.instrs += n;
        self.stats.cycles += n * cost::BASE;
        if self.fuel < n {
            self.fuel = 0;
            return Err(VmFault::FuelExhausted);
        }
        self.fuel -= n;
        Ok(())
    }

    /// Charges modelled I/O time.
    pub(crate) fn charge_io(&mut self, bytes: u64) {
        let c = cost::IO_LATENCY + bytes * cost::IO_PER_BYTE;
        self.stats.cycles += c;
        self.stats.io_cycles += c;
    }

    pub(crate) fn pop_input(&mut self) -> Option<Vec<u8>> {
        self.input.pop_front()
    }

    pub(crate) fn push_output(&mut self, bytes: &[u8]) {
        self.output.extend_from_slice(bytes);
    }

    pub(crate) fn push_output_byte(&mut self, b: u8) {
        self.output.push(b);
    }
}

/// Executes one pure register op against the scratch register file and
/// a borrowed frame window. Shared by the pure-block fast loop (one
/// frame borrow for the whole block) and the segmented memory-block
/// executor (one borrow per pure segment between guest accesses).
/// Heap-crossing ops never reach this: both callers route them through
/// [`Machine::run_mem_block`]'s access arms.
#[inline(always)]
fn frame_rop(r: ROp, regs: &mut [i64; LOCALS_REGS], frame: &mut [u8], base: u64) {
    match r {
        ROp::Const { dst, c } => regs[dst as usize] = c,
        ROp::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
        ROp::Swap { a, b } => regs.swap(a as usize, b as usize),
        ROp::Rot3 { a, b, c } => {
            let t = regs[a as usize];
            regs[a as usize] = regs[b as usize];
            regs[b as usize] = regs[c as usize];
            regs[c as usize] = t;
        }
        ROp::Addr { dst, off } => {
            regs[dst as usize] = (base + off as u64) as i64;
        }
        ROp::Load {
            dst,
            off,
            size,
            signed,
        } => {
            let raw = frame_get(frame, off, size);
            regs[dst as usize] = extend(raw, size, signed);
        }
        ROp::Store { src, off, size } => {
            frame_put(frame, off, size, regs[src as usize] as u64);
        }
        ROp::Alu { dst, a, b, op } => {
            regs[dst as usize] = op.eval(regs[a as usize], regs[b as usize]);
        }
        ROp::ConstAlu { at, c, op } => {
            regs[at as usize] = op.eval(regs[at as usize], c);
        }
        ROp::Cmp { dst, a, b, op } => {
            regs[dst as usize] = op.eval(regs[a as usize], regs[b as usize]) as i64;
        }
        ROp::Neg { at } => {
            regs[at as usize] = regs[at as usize].wrapping_neg();
        }
        ROp::BitNot { at } => regs[at as usize] = !regs[at as usize],
        ROp::Not { at } => {
            regs[at as usize] = (regs[at as usize] == 0) as i64;
        }
        ROp::Normalize { at, size, signed } => {
            regs[at as usize] = extend(regs[at as usize] as u64, size, signed);
        }
        ROp::Inc {
            off,
            delta,
            size,
            signed,
        } => {
            let raw = frame_get(frame, off, size);
            let mut new = extend(raw, size, signed).wrapping_add(delta);
            if size != AccessSize::B8 {
                new = extend(new as u64, size, signed);
            }
            frame_put(frame, off, size, new as u64);
        }
        ROp::GLoad { .. }
        | ROp::GStore { .. }
        | ROp::GPtrAdd { .. }
        | ROp::GPtrDiff { .. }
        | ROp::GEffAddr { .. }
        | ROp::GIdxLoad { .. }
        | ROp::GIdxStore { .. } => unreachable!("heap op on the pure-block path"),
    }
}

/// Little-endian scalar read straight off a borrowed frame window.
/// Bounds are guaranteed by the frame borrow (`off + size` lies inside
/// the frame layout the lowering resolved against), so this is the
/// committed-window-free twin of `Region::read`. Each width reads a
/// fixed-size array so the access compiles to one load, not a
/// variable-length copy.
#[inline(always)]
fn frame_get(frame: &[u8], off: u32, size: AccessSize) -> u64 {
    let at = off as usize;
    match size {
        AccessSize::B1 => frame[at] as u64,
        AccessSize::B2 => {
            u16::from_le_bytes(frame[at..at + 2].try_into().expect("fixed width")) as u64
        }
        AccessSize::B4 => {
            u32::from_le_bytes(frame[at..at + 4].try_into().expect("fixed width")) as u64
        }
        AccessSize::B8 => u64::from_le_bytes(frame[at..at + 8].try_into().expect("fixed width")),
    }
}

/// Little-endian scalar write twin of [`frame_get`].
#[inline(always)]
fn frame_put(frame: &mut [u8], off: u32, size: AccessSize, value: u64) {
    let at = off as usize;
    match size {
        AccessSize::B1 => frame[at] = value as u8,
        AccessSize::B2 => frame[at..at + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        AccessSize::B4 => frame[at..at + 4].copy_from_slice(&(value as u32).to_le_bytes()),
        AccessSize::B8 => frame[at..at + 8].copy_from_slice(&value.to_le_bytes()),
    }
}

/// Sign- or zero-extends the low `size` bytes of `raw`.
#[inline]
fn extend(raw: u64, size: AccessSize, signed: bool) -> i64 {
    match (size, signed) {
        (AccessSize::B1, true) => raw as u8 as i8 as i64,
        (AccessSize::B1, false) => raw as u8 as i64,
        (AccessSize::B2, true) => raw as u16 as i16 as i64,
        (AccessSize::B2, false) => raw as u16 as i64,
        (AccessSize::B4, true) => raw as u32 as i32 as i64,
        (AccessSize::B4, false) => raw as u32 as i64,
        (AccessSize::B8, _) => raw as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_memory::Mode;

    fn run(src: &str, func: &str, args: &[i64]) -> i64 {
        run_mode(src, func, args, Mode::BoundsCheck)
    }

    fn run_mode(src: &str, func: &str, args: &[i64], mode: Mode) -> i64 {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).expect("compile");
        match m.call(func, args) {
            Ok(v) => v,
            Err(e) => panic!("run failed: {e}"),
        }
    }

    /// Runs one function under every execution tier at the given fuel
    /// and asserts identical observable outcomes: result/fault, run
    /// stats, space stats, and full error-log contents.
    fn assert_tier_parity(src: &str, func: &str, args: &[i64], mode: Mode, fuel: u64) {
        let mut outcomes = Vec::new();
        for tier in foc_compiler::ExecTier::ALL {
            let image = foc_compiler::compile_image_tier(src, tier).expect("compile");
            let mut m =
                Machine::load(image, MachineConfig::with_mode(mode).with_fuel(fuel)).expect("load");
            let result = m.call(func, args).map_err(|e| format!("{e:?}"));
            let log: Vec<String> = m
                .space()
                .error_log()
                .records()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            outcomes.push((tier, (result, m.stats(), *m.space().stats(), log)));
        }
        let (tier0, baseline) = &outcomes[0];
        for (tier, outcome) in &outcomes[1..] {
            assert_eq!(
                baseline, outcome,
                "{tier:?} diverges from {tier0:?} for {func} at fuel {fuel}"
            );
        }
    }

    #[test]
    fn fused_tier_matches_baseline_across_fuel_and_modes() {
        let src = "long spin(long n) { int xs[2]; long i; long acc = 0; \
                   for (i = 0; i < n; i++) acc += xs[5]; return acc; }";
        for mode in [
            Mode::Standard,
            Mode::BoundsCheck,
            Mode::FailureOblivious,
            Mode::Boundless,
            Mode::Redirect,
        ] {
            assert_tier_parity(src, "spin", &[6], mode, 1_000_000);
        }
        // Sweep fuel across every mid-pattern exhaustion point of the
        // first loop iterations: the fused tier must deopt to the same
        // fault pc, counts, and log prefix as the baseline.
        // Standard mode additionally faults on the OOB read itself, so
        // sweeping it covers the mega-op's mid-pattern fault-refund
        // seam (charge k-1, refund the components behind the faulting
        // load) at every interleaving of fuel exhaustion and fault.
        for fuel in 0..160 {
            assert_tier_parity(src, "spin", &[6], Mode::FailureOblivious, fuel);
            assert_tier_parity(src, "spin", &[6], Mode::Standard, fuel);
        }
    }

    #[test]
    fn fused_tier_matches_baseline_on_mixed_shapes() {
        let src = "int f(int n) { \
                     int xs[4]; int i; int acc; int *p; \
                     acc = 0; p = &xs[1]; xs[1] = 5; \
                     for (i = 0; i < n; i++) { acc = acc + *p + (i << 1) - (i & 3); } \
                     xs[6] = acc; \
                     return acc + xs[6] + *p; }";
        for mode in [Mode::FailureOblivious, Mode::Boundless, Mode::Redirect] {
            assert_tier_parity(src, "f", &[9], mode, 1_000_000);
        }
        for fuel in 0..220 {
            assert_tier_parity(src, "f", &[9], Mode::FailureOblivious, fuel);
        }
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(run("int f() { return 2 + 3 * 4; }", "f", &[]), 14);
        assert_eq!(
            run("int f(int a, int b) { return a - b; }", "f", &[10, 4]),
            6
        );
        assert_eq!(run("int f() { return 7 / 2; }", "f", &[]), 3);
        assert_eq!(run("int f() { return -7 / 2; }", "f", &[]), -3);
        assert_eq!(run("int f() { return 7 % 3; }", "f", &[]), 1);
    }

    #[test]
    fn unsigned_vs_signed_division() {
        assert_eq!(
            run(
                "int f(unsigned int a, unsigned int b) { return a / b; }",
                "f",
                &[0xFFFF_FFF0u32 as i64, 2]
            ),
            0x7FFF_FFF8
        );
        assert_eq!(
            run("int f(int a, int b) { return a / b; }", "f", &[-16, 2]),
            -8
        );
    }

    #[test]
    fn char_sign_extension_matters() {
        // The Sendmail-critical behaviour: a char holding 0xFF compares
        // equal to -1 after promotion to int.
        let src = "int f() { char c = 0xFF; if (c == -1) return 1; return 0; }";
        assert_eq!(run(src, "f", &[]), 1);
        let src = "int f() { unsigned char c = 0xFF; if (c == -1) return 1; return 0; }";
        assert_eq!(run(src, "f", &[]), 0);
    }

    #[test]
    fn locals_arrays_and_loops() {
        let src = "int f(int n) {\n\
                     int i; int acc = 0; int xs[16];\n\
                     for (i = 0; i < n; i++) xs[i] = i * i;\n\
                     for (i = 0; i < n; i++) acc += xs[i];\n\
                     return acc;\n\
                   }";
        assert_eq!(run(src, "f", &[5]), 1 + 4 + 9 + 16);
    }

    #[test]
    fn pointers_and_deref() {
        let src = "int f() {\n\
                     int x = 5;\n\
                     int *p = &x;\n\
                     *p = 9;\n\
                     return x + *p;\n\
                   }";
        assert_eq!(run(src, "f", &[]), 18);
    }

    #[test]
    fn recursion_factorial() {
        let src = "long fact(long n) { if (n <= 1) return 1; return n * fact(n - 1); }";
        assert_eq!(run(src, "fact", &[10]), 3_628_800);
    }

    #[test]
    fn struct_fields_round_trip() {
        let src = "struct pt { int x; int y; char name[8]; };\n\
                   int f() {\n\
                     struct pt p;\n\
                     p.x = 3; p.y = 4;\n\
                     p.name[0] = 'a';\n\
                     struct pt *q = &p;\n\
                     q->y = 40;\n\
                     return p.x + p.y + p.name[0];\n\
                   }";
        assert_eq!(run(src, "f", &[]), 3 + 40 + 97);
    }

    #[test]
    fn globals_and_string_literals() {
        let src = "int counter = 100;\n\
                   char tab[4] = \"ab\";\n\
                   char *msg = \"xyz\";\n\
                   int f() {\n\
                     counter += 1;\n\
                     return counter + tab[1] + msg[2];\n\
                   }";
        assert_eq!(run(src, "f", &[]), 101 + 98 + 122);
    }

    #[test]
    fn global_state_persists_across_calls() {
        let src = "int n = 0; int bump() { n += 1; return n; }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        assert_eq!(m.call("bump", &[]).unwrap(), 1);
        assert_eq!(m.call("bump", &[]).unwrap(), 2);
        assert_eq!(m.call("bump", &[]).unwrap(), 3);
    }

    #[test]
    fn malloc_free_round_trip() {
        let src = "int f() {\n\
                     int *p = (int *) malloc(10 * sizeof(int));\n\
                     int i;\n\
                     for (i = 0; i < 10; i++) p[i] = i;\n\
                     int acc = 0;\n\
                     for (i = 0; i < 10; i++) acc += p[i];\n\
                     free(p);\n\
                     return acc;\n\
                   }";
        assert_eq!(run(src, "f", &[]), 45);
    }

    #[test]
    fn string_builtins() {
        let src = "int f() {\n\
                     char buf[32];\n\
                     strcpy(buf, \"hello\");\n\
                     strcat(buf, \" world\");\n\
                     return strlen(buf) + (strcmp(buf, \"hello world\") == 0 ? 100 : 0);\n\
                   }";
        assert_eq!(run(src, "f", &[]), 11 + 100);
    }

    #[test]
    fn strchr_returns_usable_pointer() {
        let src = "int f() {\n\
                     char *s = \"path/to/file\";\n\
                     char *p = strchr(s, '/');\n\
                     if (!p) return -1;\n\
                     return p - s;\n\
                   }";
        assert_eq!(run(src, "f", &[]), 4);
    }

    #[test]
    fn memcpy_memset_memcmp() {
        let src = "int f() {\n\
                     char a[16]; char b[16];\n\
                     memset(a, 'x', 16);\n\
                     memcpy(b, a, 16);\n\
                     return memcmp(a, b, 16) == 0 && b[15] == 'x';\n\
                   }";
        assert_eq!(run(src, "f", &[]), 1);
    }

    #[test]
    fn output_and_input_builtins() {
        let src = "int echo() {\n\
                     char buf[64];\n\
                     long n = read_input(buf, 63);\n\
                     if (n <= 0) return -1;\n\
                     buf[n] = '\\0';\n\
                     print_str(buf);\n\
                     print_int(n);\n\
                     return (int) n;\n\
                   }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        m.push_input(b"ping".to_vec());
        assert_eq!(m.call("echo", &[]).unwrap(), 4);
        assert_eq!(m.take_output(), b"ping4".to_vec());
        // EOF returns -1.
        assert_eq!(m.call("echo", &[]).unwrap(), -1);
    }

    #[test]
    fn switch_dispatch() {
        let src = "int f(int c) {\n\
                     int r = 0;\n\
                     switch (c) {\n\
                       case 1: r = 10; break;\n\
                       case 2: r = 20; /* fall through */\n\
                       case 3: r += 1; break;\n\
                       default: r = -1;\n\
                     }\n\
                     return r;\n\
                   }";
        assert_eq!(run(src, "f", &[1]), 10);
        assert_eq!(run(src, "f", &[2]), 21);
        assert_eq!(run(src, "f", &[3]), 1);
        assert_eq!(run(src, "f", &[9]), -1);
    }

    #[test]
    fn goto_figure1_bail_pattern() {
        let src = "int f(int x) {\n\
                     int *buf = (int *) malloc(4);\n\
                     if (x < 0) goto bail;\n\
                     *buf = x;\n\
                     int v = *buf;\n\
                     free(buf);\n\
                     return v;\n\
                   bail:\n\
                     free(buf);\n\
                     return -1;\n\
                   }";
        assert_eq!(run(src, "f", &[7]), 7);
        assert_eq!(run(src, "f", &[-3]), -1);
    }

    #[test]
    fn division_by_zero_faults() {
        let src = "int f(int d) { return 10 / d; }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        assert_eq!(m.call("f", &[0]), Err(VmFault::DivideByZero));
        assert!(m.is_dead());
        assert_eq!(m.call("f", &[2]), Err(VmFault::MachineDead));
    }

    #[test]
    fn fuel_exhaustion_detects_infinite_loops() {
        let src = "int f() { while (1) {} return 0; }";
        let mut m = Machine::from_source(
            src,
            MachineConfig {
                fuel_per_call: 10_000,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(m.call("f", &[]), Err(VmFault::FuelExhausted));
    }

    #[test]
    fn exit_and_abort() {
        let src = "int f(int x) { if (x) exit(3); abort(); return 0; }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        assert_eq!(m.call("f", &[1]), Err(VmFault::Exit(3)));
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        assert_eq!(m.call("f", &[0]), Err(VmFault::Abort));
    }

    #[test]
    fn stack_overflow_from_unbounded_recursion() {
        let src = "int f(int n) { char pad[512]; pad[0] = (char) n; return f(n + 1) + pad[0]; }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        let err = m.call("f", &[0]).unwrap_err();
        assert_eq!(err, VmFault::Mem(foc_memory::MemFault::StackOverflow));
    }

    #[test]
    fn overflow_behaviour_differs_by_mode() {
        // Classic stack smash: write 64 bytes into an 8-byte buffer. `i`
        // is declared first so it sits below the buffer and the overflow
        // runs upward into the frame guard, not into the loop counter.
        let src = "int f() {\n\
                     int i;\n\
                     char buf[8];\n\
                     for (i = 0; i < 64; i++) buf[i] = 'A';\n\
                     return 7;\n\
                   }";
        // Standard: the frame canary is trampled → stack smash at return.
        let mut m = Machine::from_source(src, MachineConfig::with_mode(Mode::Standard)).unwrap();
        let err = m.call("f", &[]).unwrap_err();
        assert!(err.is_segfault_like(), "got {err}");
        // Bounds Check: memory error at the first out-of-bounds store.
        let mut m = Machine::from_source(src, MachineConfig::with_mode(Mode::BoundsCheck)).unwrap();
        let err = m.call("f", &[]).unwrap_err();
        assert!(err.is_memory_error(), "got {err}");
        // Failure-oblivious: writes discarded, function completes.
        let mut m =
            Machine::from_source(src, MachineConfig::with_mode(Mode::FailureOblivious)).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 7);
        assert_eq!(m.space().error_log().total_writes(), 64 - 8);
    }

    #[test]
    fn failure_oblivious_reads_get_manufactured_sequence() {
        let src = "int f() {\n\
                     int xs[2];\n\
                     xs[0] = 11; xs[1] = 22;\n\
                     return xs[5];\n\
                   }";
        let mut m =
            Machine::from_source(src, MachineConfig::with_mode(Mode::FailureOblivious)).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 0); // first manufactured value
        assert_eq!(m.call("f", &[]).unwrap(), 1); // second
        assert_eq!(m.call("f", &[]).unwrap(), 2); // third
    }

    #[test]
    fn comparisons_on_oob_pointers_work() {
        // CRED semantics: one-past-end pointers participate in arithmetic
        // and comparisons without faulting.
        let src = "int f() {\n\
                     char buf[4];\n\
                     char *p = buf;\n\
                     char *end = buf + 4;\n\
                     int n = 0;\n\
                     while (p < end) { *p = 'x'; p++; n++; }\n\
                     return n + (end - buf);\n\
                   }";
        assert_eq!(run(src, "f", &[]), 8);
        assert_eq!(run_mode(src, "f", &[], Mode::FailureOblivious), 8);
        assert_eq!(run_mode(src, "f", &[], Mode::Standard), 8);
    }

    #[test]
    fn virtual_clock_charges_more_for_checked_modes() {
        let src = "int f() {\n\
                     int xs[64]; int i; int acc = 0;\n\
                     for (i = 0; i < 64; i++) xs[i] = i;\n\
                     for (i = 0; i < 64; i++) acc += xs[i];\n\
                     return acc;\n\
                   }";
        let mut std = Machine::from_source(src, MachineConfig::with_mode(Mode::Standard)).unwrap();
        std.call("f", &[]).unwrap();
        let mut fo =
            Machine::from_source(src, MachineConfig::with_mode(Mode::FailureOblivious)).unwrap();
        fo.call("f", &[]).unwrap();
        assert!(
            fo.stats().cycles > std.stats().cycles,
            "checked execution must cost more cycles"
        );
        assert_eq!(
            fo.stats().instrs,
            std.stats().instrs,
            "same instruction path"
        );
    }

    #[test]
    fn io_wait_charges_io_cycles() {
        let src = "int f() { io_wait(1000); return 0; }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        m.call("f", &[]).unwrap();
        assert!(m.stats().io_cycles >= 1000 * crate::cost::IO_PER_BYTE);
    }

    #[test]
    fn driver_cstring_helpers() {
        let src = "long f(char *s) { return strlen(s); }";
        let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
        let p = m.alloc_cstring(b"four").unwrap();
        assert_eq!(m.call("f", &[p as i64]).unwrap(), 4);
        assert_eq!(m.read_cstring(p), b"four".to_vec());
        m.free_guest(p).unwrap();
    }

    #[test]
    fn nested_calls_and_eval_stack_discipline() {
        let src = "int g(int x) { return x * 2; }\n\
                   int f(int a) { return g(a) + g(a + 1) * g(a + 2); }";
        assert_eq!(run(src, "f", &[3]), 6 + 8 * 10);
    }

    #[test]
    fn postfix_and_prefix_semantics() {
        let src = "int f() {\n\
                     int x = 5;\n\
                     int a = x++;\n\
                     int b = ++x;\n\
                     int c = x--;\n\
                     int d = --x;\n\
                     return a * 1000 + b * 100 + c * 10 + d;\n\
                   }";
        assert_eq!(run(src, "f", &[]), 5 * 1000 + 7 * 100 + 7 * 10 + 5);
    }

    #[test]
    fn pointer_increment_in_expression() {
        let src = "int f() {\n\
                     char buf[8];\n\
                     char *p = buf;\n\
                     *p++ = 'a';\n\
                     *p++ = 'b';\n\
                     *p = '\\0';\n\
                     return buf[0] * 256 + buf[1];\n\
                   }";
        assert_eq!(run(src, "f", &[]), 97 * 256 + 98);
    }
}
