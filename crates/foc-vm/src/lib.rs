//! Bytecode virtual machine over the failure-oblivious memory substrate.
//!
//! The machine executes compiled MiniC programs against a
//! [`foc_memory::MemorySpace`], so every guest load, store, and pointer
//! operation flows through the configured access policy — the checking
//! code and continuation code of the paper live in the substrate; this
//! crate supplies the execution engine around them:
//!
//! * a stack-machine interpreter with frames allocated *inside* the
//!   simulated stack region (so Standard-mode overflows smash real frame
//!   metadata and are detected as segmentation violations / control-flow
//!   hijacks on return);
//! * the libc shim layer ([`builtins`]) whose string and memory functions
//!   perform byte-wise guest accesses, making them subject to the same
//!   checks as compiled code (as CRED instruments the C library);
//! * a deterministic virtual clock ([`cost`]) charging cycles for
//!   computation, checking overhead, and modelled I/O — the basis of the
//!   request-processing-time experiments;
//! * an instruction budget ("fuel") so that non-terminating executions
//!   (e.g. the Midnight Commander scan loop under a constant manufactured
//!   value sequence) surface as [`VmFault::FuelExhausted`] rather than
//!   hanging the host.

pub mod builtins;
pub mod checkpoint;
pub mod cost;
pub mod fault;
pub mod machine;

pub use checkpoint::Checkpoint;
pub use fault::VmFault;
pub use machine::{Machine, MachineConfig, RunStats};
