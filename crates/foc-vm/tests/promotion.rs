//! Correctness of direct-local "register promotion": scalar locals compile
//! to unchecked slot accesses, but the *same* local reached through a
//! pointer must still go through the checked path — and both views must
//! see the same memory.

use foc_memory::Mode;
use foc_vm::{Machine, MachineConfig};

fn run(src: &str, f: &str, args: &[i64], mode: Mode) -> i64 {
    let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
    m.call(f, args).unwrap()
}

#[test]
fn direct_and_pointer_views_agree() {
    let src = r#"
        int f() {
            int x = 5;
            int *p = &x;
            *p = 9;         /* pointer write (checked path) */
            x = x + 1;      /* direct write (promoted path) */
            return *p;      /* pointer read must see 10 */
        }
    "#;
    for mode in Mode::ALL {
        assert_eq!(run(src, "f", &[], mode), 10, "mode {mode:?}");
    }
}

#[test]
fn promoted_access_is_cheaper_but_pointer_access_is_not() {
    let direct = r#"
        long f() { long a = 0; int i; for (i = 0; i < 1000; i++) a += i; return a; }
    "#;
    let via_ptr = r#"
        long f() { long a = 0; long *p = &a; int i; for (i = 0; i < 1000; i++) *p += i; return a; }
    "#;
    let cycles = |src: &str, mode: Mode| {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
        m.call("f", &[]).unwrap();
        m.stats().cycles
    };
    // Same answer everywhere.
    for mode in Mode::ALL {
        assert_eq!(run(direct, "f", &[], mode), run(via_ptr, "f", &[], mode));
    }
    // Checking does not tax the scalar-local loop...
    let d_std = cycles(direct, Mode::Standard);
    let d_fo = cycles(direct, Mode::FailureOblivious);
    assert!(
        (d_fo as f64) < d_std as f64 * 1.2,
        "direct loop must be nearly check-free: {d_std} vs {d_fo}"
    );
    // ...but it does tax the pointer loop.
    let p_std = cycles(via_ptr, Mode::Standard);
    let p_fo = cycles(via_ptr, Mode::FailureOblivious);
    assert!(
        (p_fo as f64) > p_std as f64 * 1.5,
        "pointer loop must pay for checks: {p_std} vs {p_fo}"
    );
}

#[test]
fn overflow_spray_cannot_reach_other_units_in_checked_modes() {
    let src = r#"
        int f() {
            int guard = 7;
            char buf[8];
            int i;
            for (i = 0; i < 64; i++) buf[i] = 0x41;
            return guard;
        }
    "#;
    // FO: guard (a separate data unit) survives the spray.
    assert_eq!(run(src, "f", &[], Mode::FailureOblivious), 7);
    // Bounds Check: the first out-of-bounds store faults.
    let mut m = Machine::from_source(src, MachineConfig::with_mode(Mode::BoundsCheck)).unwrap();
    assert!(m.call("f", &[]).is_err());
}

#[test]
fn address_of_param_works() {
    let src = r#"
        void bump(int *p) { *p += 1; }
        int f(int x) { bump(&x); bump(&x); return x; }
    "#;
    for mode in Mode::ALL {
        assert_eq!(run(src, "f", &[40], mode), 42, "mode {mode:?}");
    }
}
