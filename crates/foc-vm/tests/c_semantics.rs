//! C-semantics torture tests: expressions whose values are fixed by the C
//! standard, executed through the full pipeline in every mode. Expected
//! values were computed with a reference C compiler.

use foc_memory::Mode;
use foc_vm::{Machine, MachineConfig};

fn eval(expr_src: &str) -> i64 {
    let src = format!("long f() {{ return {expr_src}; }}");
    let mut results = Vec::new();
    for mode in Mode::ALL {
        let mut m = Machine::from_source(&src, MachineConfig::with_mode(mode)).unwrap();
        results.push(m.call("f", &[]).unwrap());
    }
    for w in results.windows(2) {
        assert_eq!(w[0], w[1], "modes disagree on `{expr_src}`");
    }
    results[0]
}

#[test]
fn integer_promotion_and_conversion() {
    assert_eq!(eval("(char) 200"), -56);
    assert_eq!(eval("(unsigned char) 200"), 200);
    assert_eq!(eval("(char) 200 + 0"), -56);
    assert_eq!(eval("(short) 0x8000"), -32768);
    assert_eq!(eval("(unsigned short) -1"), 65535);
    assert_eq!(eval("(int) 0x80000000"), -2147483648);
    assert_eq!(eval("(unsigned int) -1"), 4294967295);
    assert_eq!(eval("(long) (unsigned int) -1"), 4294967295);
    assert_eq!(eval("(long) (int) -1"), -1);
}

#[test]
fn signed_division_truncates_toward_zero() {
    assert_eq!(eval("7 / 2"), 3);
    assert_eq!(eval("-7 / 2"), -3);
    assert_eq!(eval("7 / -2"), -3);
    assert_eq!(eval("-7 / -2"), 3);
    assert_eq!(eval("7 % 3"), 1);
    assert_eq!(eval("-7 % 3"), -1);
    assert_eq!(eval("7 % -3"), 1);
}

#[test]
fn shifts_are_type_aware() {
    assert_eq!(eval("1 << 10"), 1024);
    assert_eq!(eval("-8 >> 1"), -4, "arithmetic shift for signed");
    assert_eq!(
        eval("(unsigned int) -8 >> 1"),
        2147483644,
        "logical for unsigned"
    );
    assert_eq!(eval("((long) 1 << 40)"), 1 << 40);
}

#[test]
fn comparison_signedness() {
    assert_eq!(eval("-1 < 1"), 1);
    assert_eq!(eval("(unsigned int) -1 < 1"), 0, "wraps to UINT_MAX");
    assert_eq!(eval("(unsigned char) 255 > 0"), 1);
    assert_eq!(eval("(char) 255 > 0"), 0, "signed char 0xFF is -1");
}

#[test]
fn int_arithmetic_wraps_at_32_bits() {
    assert_eq!(eval("2147483647 + 1"), -2147483648);
    assert_eq!(eval("(int) (2147483647 * 2)"), -2);
    // But long arithmetic does not.
    assert_eq!(eval("(long) 2147483647 + 1"), 2147483648);
}

#[test]
fn logical_operators_yield_zero_or_one() {
    assert_eq!(eval("5 && 3"), 1);
    assert_eq!(eval("5 && 0"), 0);
    assert_eq!(eval("0 || 7"), 1);
    assert_eq!(eval("!7"), 0);
    assert_eq!(eval("!0"), 1);
    assert_eq!(eval("!!42"), 1);
}

#[test]
fn short_circuit_skips_side_effects() {
    let src = r#"
        int hits = 0;
        int bump() { hits++; return 1; }
        int f() {
            hits = 0;
            int a = 0 && bump();
            int b = 1 || bump();
            return hits * 100 + a * 10 + b;
        }
    "#;
    for mode in Mode::ALL {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 1, "mode {mode:?}");
    }
}

#[test]
fn evaluation_of_comma_and_ternary() {
    assert_eq!(eval("(1, 2, 3)"), 3);
    assert_eq!(eval("1 ? 10 : 20"), 10);
    assert_eq!(eval("0 ? 10 : 20"), 20);
    assert_eq!(eval("2 > 1 ? (3, 4) : 5"), 4);
}

#[test]
fn sizeof_values() {
    assert_eq!(eval("sizeof(char)"), 1);
    assert_eq!(eval("sizeof(int)"), 4);
    assert_eq!(eval("sizeof(char *)"), 8);
    assert_eq!(eval("sizeof(unsigned long)"), 8);
    let src = r#"
        struct s { char c; long l; char d; };
        long f() { struct s x; x.c = 1; return sizeof(struct s) + sizeof x.l; }
    "#;
    let mut m = Machine::from_source(src, MachineConfig::default()).unwrap();
    assert_eq!(m.call("f", &[]).unwrap(), 24 + 8);
}

#[test]
fn string_literal_properties() {
    let src = r#"
        long f() {
            char *s = "ab\tc";
            return strlen(s) * 1000 + s[2];
        }
    "#;
    for mode in Mode::ALL {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 4 * 1000 + 9, "mode {mode:?}");
    }
}

#[test]
fn two_dimensional_arrays() {
    let src = r#"
        long f() {
            int grid[3][4];
            int i; int j;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    grid[i][j] = i * 10 + j;
            return grid[2][3] * 100 + grid[1][0];
        }
    "#;
    for mode in Mode::ALL {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 23 * 100 + 10, "mode {mode:?}");
    }
}

#[test]
fn pointer_to_pointer_and_swap() {
    let src = r#"
        void swap(int **a, int **b) { int *t = *a; *a = *b; *b = t; }
        long f() {
            int x = 1; int y = 2;
            int *px = &x; int *py = &y;
            swap(&px, &py);
            return *px * 10 + *py;
        }
    "#;
    for mode in Mode::ALL {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 21, "mode {mode:?}");
    }
}

#[test]
fn struct_pointers_in_arrays_of_structs() {
    let src = r#"
        struct node { int value; int next; };
        struct node nodes[8];
        long f() {
            int i;
            for (i = 0; i < 8; i++) { nodes[i].value = i * i; nodes[i].next = (i + 1) % 8; }
            /* walk the ring twice */
            int at = 0; long acc = 0;
            for (i = 0; i < 16; i++) { acc += nodes[at].value; at = nodes[at].next; }
            return acc;
        }
    "#;
    let expect: i64 = 2 * (0..8).map(|i| i * i).sum::<i64>();
    for mode in Mode::ALL {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), expect, "mode {mode:?}");
    }
}

#[test]
fn do_while_and_nested_break_continue() {
    let src = r#"
        long f() {
            long acc = 0;
            int i = 0;
            do {
                int j;
                for (j = 0; j < 10; j++) {
                    if (j == 3) continue;
                    if (j == 7) break;
                    acc = acc * 10 + j;
                }
                i++;
            } while (i < 2);
            return acc;
        }
    "#;
    // inner loop contributes 0,1,2,4,5,6 twice
    let mut expect = 0i64;
    for _ in 0..2 {
        for j in [0, 1, 2, 4, 5, 6] {
            expect = expect * 10 + j;
        }
    }
    for mode in Mode::ALL {
        let mut m = Machine::from_source(src, MachineConfig::with_mode(mode)).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), expect, "mode {mode:?}");
    }
}
