//! Accounting audit: the interpreter's fused dispatch paths — the
//! compare+branch peephole in the main loop and the superinstruction
//! tier's fused opcodes — charge *exactly* what a naive one-dispatch-
//! per-instruction interpreter would, at every fuel interleaving.
//!
//! The referee is deliberately independent: a mini interpreter written
//! in this test from the instruction-set documentation alone, covering
//! the pure local/arithmetic/branch subset (no guest memory accesses, no
//! nested calls — accounting there is pinned by the VM's own parity
//! batteries). It executes the *baseline* bytecode one dispatch at a
//! time with no peepholes, and the production machine — under every
//! execution tier in `ExecTier::ALL` (baseline, superinstruction, and
//! native region execution; new tiers are audited automatically as the
//! array grows) — must land on identical instruction counts, cycle
//! counts, results, and fuel-out points for every budget from zero to
//! run-to-completion.

use foc_compiler::{compile_image_tier, ExecTier, Instr};
use foc_memory::{AccessSize, Mode};
use foc_vm::{cost, Machine, MachineConfig, VmFault};

/// What the referee and the machine each report for one budgeted call.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Audited {
    result: Result<i64, String>,
    instrs: u64,
    cycles: u64,
    calls: u64,
}

fn extend(raw: u64, size: AccessSize, signed: bool) -> i64 {
    match (size, signed) {
        (AccessSize::B1, true) => raw as u8 as i8 as i64,
        (AccessSize::B1, false) => raw as u8 as i64,
        (AccessSize::B2, true) => raw as u16 as i16 as i64,
        (AccessSize::B2, false) => raw as u16 as i64,
        (AccessSize::B4, true) => raw as u32 as i32 as i64,
        (AccessSize::B4, false) => raw as u32 as i64,
        (AccessSize::B8, _) => raw as i64,
    }
}

/// The reference interpreter: baseline bytecode, one dispatch per
/// instruction, no peepholes, charging the documented costs — one fuel,
/// one instruction, `BASE` cycles per dispatch; `CALL_EXTRA` (plus the
/// per-slot registration surcharge in checked modes) at entry.
fn reference_run(src: &str, func: &str, args: &[i64], mode: Mode, budget: u64) -> Audited {
    let image = compile_image_tier(src, ExecTier::Baseline).expect("compile");
    let fid = image.func_index(func).expect("function exists") as usize;
    let f = &image.funcs[fid];
    assert_eq!(args.len(), f.param_count);

    let mut instrs = 0u64;
    let mut cycles = cost::CALL_EXTRA;
    if mode.is_checked() {
        cycles += f.frame.slots.len() as u64 * cost::LOCAL_REG_EXTRA;
    }

    // The frame: a flat little-endian byte image of the locals, exactly
    // what `read_raw`/`write_raw` see.
    let mut frame = vec![0u8; f.frame.total as usize];
    let write = |frame: &mut [u8], off: u64, size: AccessSize, raw: u64| {
        let n = size.bytes() as usize;
        frame[off as usize..off as usize + n].copy_from_slice(&raw.to_le_bytes()[..n]);
    };
    let read = |frame: &[u8], off: u64, size: AccessSize| -> u64 {
        let n = size.bytes() as usize;
        let mut b = [0u8; 8];
        b[..n].copy_from_slice(&frame[off as usize..off as usize + n]);
        u64::from_le_bytes(b)
    };
    for (i, &arg) in args.iter().enumerate() {
        let (off, size) = f.frame.slots[i];
        let acc = AccessSize::from_bytes(size.clamp(1, 8).next_power_of_two().min(8));
        write(&mut frame, off, acc, arg as u64);
    }

    let mut stack: Vec<i64> = Vec::new();
    let mut pc = 0usize;
    let mut fuel = budget;
    let audited = |result, instrs, cycles| Audited {
        result,
        instrs,
        cycles,
        calls: 1,
    };
    macro_rules! bin {
        ($op:expr) => {{
            let b = stack.pop().unwrap();
            let a = stack.pop().unwrap();
            #[allow(clippy::redundant_closure_call)]
            stack.push($op(a, b));
        }};
    }
    loop {
        let instr = f.code[pc];
        pc += 1;
        if fuel == 0 {
            return audited(Err(format!("{:?}", VmFault::FuelExhausted)), instrs, cycles);
        }
        fuel -= 1;
        instrs += 1;
        cycles += cost::BASE;
        match instr {
            Instr::Const(v) => stack.push(v),
            Instr::Dup => stack.push(*stack.last().unwrap()),
            Instr::Drop => {
                stack.pop().unwrap();
            }
            Instr::Swap => {
                let n = stack.len();
                stack.swap(n - 1, n - 2);
            }
            Instr::LoadLocal(off, size, signed) => {
                stack.push(extend(read(&frame, off as u64, size), size, signed));
            }
            Instr::StoreLocal(off, size) => {
                let v = stack.pop().unwrap();
                write(&mut frame, off as u64, size, v as u64);
            }
            Instr::Add => bin!(|a: i64, b: i64| a.wrapping_add(b)),
            Instr::Sub => bin!(|a: i64, b: i64| a.wrapping_sub(b)),
            Instr::Mul => bin!(|a: i64, b: i64| a.wrapping_mul(b)),
            Instr::DivS => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                if b == 0 {
                    return audited(Err(format!("{:?}", VmFault::DivideByZero)), instrs, cycles);
                }
                stack.push(a.overflowing_div(b).0);
            }
            Instr::And => bin!(|a: i64, b: i64| a & b),
            Instr::Or => bin!(|a: i64, b: i64| a | b),
            Instr::Xor => bin!(|a: i64, b: i64| a ^ b),
            Instr::Shl => bin!(|a: i64, b: i64| a.wrapping_shl(b as u32 & 63)),
            Instr::ShrS => bin!(|a: i64, b: i64| a.wrapping_shr(b as u32 & 63)),
            Instr::Eq => bin!(|a: i64, b: i64| (a == b) as i64),
            Instr::Ne => bin!(|a: i64, b: i64| (a != b) as i64),
            Instr::LtS => bin!(|a: i64, b: i64| (a < b) as i64),
            Instr::LeS => bin!(|a: i64, b: i64| (a <= b) as i64),
            Instr::GtS => bin!(|a: i64, b: i64| (a > b) as i64),
            Instr::GeS => bin!(|a: i64, b: i64| (a >= b) as i64),
            Instr::LtU => bin!(|a: i64, b: i64| ((a as u64) < b as u64) as i64),
            Instr::LeU => bin!(|a: i64, b: i64| (a as u64 <= b as u64) as i64),
            Instr::GtU => bin!(|a: i64, b: i64| (a as u64 > b as u64) as i64),
            Instr::GeU => bin!(|a: i64, b: i64| (a as u64 >= b as u64) as i64),
            Instr::Neg => {
                let v = stack.pop().unwrap();
                stack.push(v.wrapping_neg());
            }
            Instr::BitNot => {
                let v = stack.pop().unwrap();
                stack.push(!v);
            }
            Instr::Not => {
                let v = stack.pop().unwrap();
                stack.push((v == 0) as i64);
            }
            Instr::Normalize(size, signed) => {
                let v = stack.pop().unwrap();
                stack.push(extend(v as u64, size, signed));
            }
            Instr::Jump(t) => pc = t as usize,
            Instr::JumpIfZero(t) => {
                if stack.pop().unwrap() == 0 {
                    pc = t as usize;
                }
            }
            Instr::JumpIfNotZero(t) => {
                if stack.pop().unwrap() != 0 {
                    pc = t as usize;
                }
            }
            Instr::Ret => {
                return audited(Ok(stack.pop().unwrap()), instrs, cycles);
            }
            other => panic!("outside the referee's pure subset: {other:?}"),
        }
    }
}

/// One budgeted call on the production machine, under the given tier.
fn machine_run(
    src: &str,
    func: &str,
    args: &[i64],
    mode: Mode,
    budget: u64,
    tier: ExecTier,
) -> Audited {
    let image = compile_image_tier(src, tier).expect("compile");
    let mut m =
        Machine::load(image, MachineConfig::with_mode(mode).with_fuel(budget)).expect("load");
    let result = m.call(func, args).map_err(|e| format!("{e:?}"));
    let stats = m.stats();
    Audited {
        result,
        instrs: stats.instrs,
        cycles: stats.cycles,
        calls: stats.calls,
    }
}

/// A pure local/arith/branch function whose compiled form contains every
/// shape the fused paths accelerate: compare+branch loop heads, local
/// increments, a loop latch back-jump, constant-operand ALU, and a mix
/// of `int`/`long` widths (so `Normalize` re-narrowing is in play).
const AUDIT_SRC: &str = "
    long audit(long n, long step) {
        long i; long acc = 0; int small = 0;
        for (i = 0; i < n; i++) {
            acc = acc + step;
            small = small + 3;
            if (acc > 100) { acc = acc - 7; }
        }
        return acc * 2 + small - acc / 3;
    }
";

#[test]
fn fused_dispatch_charges_exactly_like_the_reference() {
    for mode in [Mode::Standard, Mode::FailureOblivious] {
        // Ample fuel: the full run must agree to the instruction.
        let expected = reference_run(AUDIT_SRC, "audit", &[25, 9], mode, 100_000);
        assert!(
            expected.result.is_ok(),
            "referee must complete: {expected:?}"
        );
        for tier in ExecTier::ALL {
            let got = machine_run(AUDIT_SRC, "audit", &[25, 9], mode, 100_000, tier);
            assert_eq!(expected, got, "{mode:?}/{tier:?} ample-fuel drift");
        }
    }
}

#[test]
fn fuel_out_points_match_the_reference_at_every_budget() {
    // Sweep every budget through entry, several whole loop iterations,
    // and the epilogue: the machine must fault (or finish) with the
    // referee's exact instruction and cycle counts — under the baseline
    // tier (whose compare+branch peephole is the PR 5 path under audit),
    // the superinstruction tier (whose deopt seams re-create mid-pattern
    // exhaustion), and the native tier (whose whole-region pre-charge
    // gate must surface fuel exhaustion at the same instruction) alike.
    let full = reference_run(AUDIT_SRC, "audit", &[4, 9], Mode::Standard, 100_000);
    let run_len = full.instrs;
    for mode in [Mode::Standard, Mode::FailureOblivious] {
        for budget in 0..=(run_len + 2) {
            let expected = reference_run(AUDIT_SRC, "audit", &[4, 9], mode, budget);
            for tier in ExecTier::ALL {
                let got = machine_run(AUDIT_SRC, "audit", &[4, 9], mode, budget, tier);
                assert_eq!(expected, got, "{mode:?}/{tier:?} drift at budget {budget}");
            }
        }
    }
}
