//! Offline stand-in for the parts of the `proptest` crate this
//! workspace's property tests use.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate shadows the real `proptest` via a path
//! dependency. It keeps the same test-source API — the `proptest!`
//! macro, `Strategy` with `prop_map`, `Just`, `prop_oneof!`, integer
//! ranges, `collection::vec`, `any::<T>()`, a small character-class
//! subset of string regex strategies, and the `prop_assert*` macros —
//! but intentionally drops the machinery that is irrelevant to a
//! deterministic CI gate:
//!
//! * **no shrinking** — a failing case reports its index and message;
//!   cases are reproducible because the RNG seed is a hash of the test
//!   name, so re-running the test replays the identical sequence;
//! * **no persistence files**, no fork, no timeouts.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (carried by `prop_assert*` early returns).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The deterministic case generator: SplitMix64 seeded from a hash of
    /// the test's full path, so every test has its own stable stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values. Unlike the real proptest there is
    /// no value tree: generation is a single draw, with no shrinking.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` of this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.gen_value(rng)))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// A strategy choosing uniformly among `arms`.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((self.start as i128) + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    /// String strategies from a small regex subset: a sequence of atoms,
    /// each a literal character or a single character class `[a-z]`,
    /// optionally repeated `{n}` or `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;

        fn gen_value(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let bytes = pattern.as_bytes();
        let mut out = String::new();
        let mut i = 0;
        while i < bytes.len() {
            let (lo, hi) = if bytes[i] == b'[' {
                assert!(
                    i + 4 < bytes.len() && bytes[i + 2] == b'-' && bytes[i + 4] == b']',
                    "proptest shim supports only `[x-y]` classes, got {pattern:?}"
                );
                let pair = (bytes[i + 1], bytes[i + 3]);
                i += 5;
                pair
            } else {
                let c = bytes[i];
                i += 1;
                (c, c)
            };
            let (min, max) = if i < bytes.len() && bytes[i] == b'{' {
                let close = pattern[i..].find('}').expect("unterminated `{` in pattern") + i;
                let body = &pattern[i + 1..close];
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<u64>().expect("bad repeat count"),
                        n.parse::<u64>().expect("bad repeat count"),
                    ),
                    None => {
                        let n = body.parse::<u64>().expect("bad repeat count");
                        (n, n)
                    }
                };
                i = close + 1;
                (min, max)
            } else {
                (1, 1)
            };
            let n = min + rng.below(max - min + 1);
            for _ in 0..n {
                out.push((lo + rng.below(u64::from(hi - lo) + 1) as u8) as char);
            }
        }
        out
    }
}

pub mod collection {
    use core::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T` ([`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion: fails the current case without panicking the
/// generator loop (the failure is reported with its case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// The property-test declaration macro: wraps each `fn name(x in strat)`
/// into a `#[test]` running `cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[doc = $doc:expr])* #[test] fn $name:ident(
          $($arg:pat in $strat:expr),+ $(,)?
      ) $body:block )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property `{}` failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = Strategy::gen_value(&(3u64..64), &mut rng);
            assert!((3..64).contains(&v));
            let w = Strategy::gen_value(&(-512i64..512), &mut rng);
            assert!((-512..512).contains(&w));
        }
    }

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = TestRng::deterministic("patterns");
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z]{1,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()), "{s:?}");
            let d = Strategy::gen_value(&"[0-9]{2}x", &mut rng);
            assert_eq!(d.len(), 3);
            assert!(d.ends_with('x'));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let st = prop_oneof![Just("a".to_string()), "[b-d]{1}"].prop_map(|s| s.len());
        let mut rng = TestRng::deterministic("compose");
        for _ in 0..50 {
            assert_eq!(st.clone().gen_value(&mut rng), 1);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let st = crate::collection::vec((0u8..3, 0u64..64), 1..20);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = st.gen_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                assert!(a < 3 && b < 64);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0i64..100, flips in crate::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x >= 0);
            prop_assert!(x < 100, "x was {}", x);
            prop_assert_eq!(flips.len() < 8, true);
        }
    }
}
