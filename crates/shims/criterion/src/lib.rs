//! Offline stand-in for the parts of the `criterion` crate the bench
//! targets use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate shadows the real `criterion` via a path
//! dependency. It keeps the same bench-source API but replaces the
//! statistics engine with a warmup + timed-batch loop whose batch
//! samples go through [`stats::robust_summary`]: Tukey/IQR outlier
//! rejection followed by a 95% confidence interval, printed as
//! `mean ± ci ns/iter` per benchmark — enough to defend the
//! repository's perf trajectory points without the dependency tree.

pub mod stats;

use std::fmt;
use std::time::{Duration, Instant};

use stats::Summary;

/// An opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How long each benchmark warms up before measurement, unless
/// overridden with the `FOC_BENCH_WARMUP_MS` environment variable.
const DEFAULT_WARMUP_MS: u64 = 30;
/// Minimum measurement window per benchmark (`FOC_BENCH_MEASURE_MS`).
const DEFAULT_MEASURE_MS: u64 = 150;

fn env_ms(var: &str, default: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default);
    Duration::from_millis(ms)
}

/// Identifies a benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("lookup", "local")` → `lookup/local`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (accepted and ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch samples the measurement loop aims to collect (the statistics
/// need a population to reject outliers from).
const TARGET_SAMPLES: usize = 24;
/// Batch samples the loop insists on even when the routine is slower
/// than the measurement window.
const MIN_SAMPLES: usize = 5;

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Robust mean nanoseconds per iteration, filled in by
    /// [`Bencher::iter`] (outliers rejected).
    mean_ns: f64,
    iters: u64,
    summary: Option<Summary>,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            warmup: env_ms("FOC_BENCH_WARMUP_MS", DEFAULT_WARMUP_MS),
            measure: env_ms("FOC_BENCH_MEASURE_MS", DEFAULT_MEASURE_MS),
            mean_ns: 0.0,
            iters: 0,
            summary: None,
        }
    }

    /// Runs `routine` repeatedly: first until the warmup window expires
    /// (calibrating the batch size), then in timed batches until the
    /// measurement window expires and at least [`MIN_SAMPLES`] batches
    /// exist. Each batch contributes one ns/iter sample; the samples go
    /// through IQR outlier rejection and a 95% confidence interval
    /// ([`stats::robust_summary`]).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if start.elapsed() >= self.warmup {
                break;
            }
        }
        let warm_ns = (start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let measure_ns = self.measure.as_nanos() as f64;
        let batch = ((measure_ns / TARGET_SAMPLES as f64 / warm_ns).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(TARGET_SAMPLES + 8);
        let mut iters = 0u64;
        let begun = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            iters += batch;
            if begun.elapsed() >= self.measure && samples.len() >= MIN_SAMPLES {
                break;
            }
        }
        let summary = stats::robust_summary(&samples);
        self.mean_ns = summary.mean;
        self.iters = iters;
        self.summary = Some(summary);
    }

    /// The robust statistics of the last [`Bencher::iter`] run.
    pub fn summary(&self) -> Option<&Summary> {
        self.summary.as_ref()
    }
}

fn run_benchmark(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    match b.summary {
        None => println!("bench {label:<48} (no measurement: Bencher::iter never called)"),
        Some(s) => println!(
            "bench {label:<48} {:>14.1} ns/iter ± {:>10.1} (95% CI, n={}, {} outliers, {} iters)",
            s.mean, s.ci95, s.used, s.rejected, b.iters
        ),
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Compatibility no-op.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a benchmark that borrows a per-case input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, &mut |b| f(b, input));
        self
    }

    /// Accepted and ignored: the shim sizes samples by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as the real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("FOC_BENCH_WARMUP_MS", "1");
        std::env::set_var("FOC_BENCH_MEASURE_MS", "5");
        let mut b = Bencher::new();
        b.iter(|| black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.mean_ns > 0.0);
        let s = b.summary().expect("summary recorded");
        assert!(s.used >= MIN_SAMPLES);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
