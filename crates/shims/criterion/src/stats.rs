//! Robust summary statistics for noisy wall-time samples.
//!
//! The offline bench loop measures on shared, unpinned hardware, so raw
//! batch means carry scheduler spikes. [`robust_summary`] makes the
//! numbers defensible: Tukey's IQR fences discard outliers, then the
//! surviving samples get a mean, a sample standard deviation, and a
//! normal-approximation 95% confidence interval. The same routine
//! serves the criterion shim's per-benchmark lines and the farm
//! trajectory record's wall-time rows (`BENCH_farm.json`).

/// Robust summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean of the samples that survived outlier rejection.
    pub mean: f64,
    /// Sample standard deviation of the survivors.
    pub sd: f64,
    /// Half-width of the 95% confidence interval around `mean`
    /// (`1.96 * sd / sqrt(n)`, normal approximation).
    pub ci95: f64,
    /// Median of the survivors.
    pub median: f64,
    /// Samples used after rejection.
    pub used: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
}

impl Summary {
    /// The all-zero summary of an empty sample set.
    fn empty() -> Summary {
        Summary {
            mean: 0.0,
            sd: 0.0,
            ci95: 0.0,
            median: 0.0,
            used: 0,
            rejected: 0,
        }
    }
}

/// Linear-interpolation quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Mean and sample standard deviation.
fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Summarises `samples` robustly: Tukey IQR fences (1.5 × IQR beyond
/// the quartiles) reject outliers, then the survivors get mean, sample
/// standard deviation, median, and a 95% confidence interval. With
/// fewer than 4 samples there is no meaningful quartile spread, so
/// nothing is rejected.
pub fn robust_summary(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary::empty();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));

    let kept: Vec<f64> = if sorted.len() < 4 {
        sorted.clone()
    } else {
        let q1 = quantile(&sorted, 0.25);
        let q3 = quantile(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo = q1 - 1.5 * iqr;
        let hi = q3 + 1.5 * iqr;
        sorted
            .iter()
            .copied()
            .filter(|&x| x >= lo && x <= hi)
            .collect()
    };
    let rejected = sorted.len() - kept.len();

    let (mean, sd) = mean_sd(&kept);
    let ci95 = if kept.len() >= 2 {
        1.96 * sd / (kept.len() as f64).sqrt()
    } else {
        0.0
    };
    Summary {
        mean,
        sd,
        ci95,
        median: quantile(&kept, 0.5),
        used: kept.len(),
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_samples_keep_everything() {
        let s = robust_summary(&[10.0, 11.0, 9.0, 10.5, 9.5, 10.0]);
        assert_eq!(s.used, 6);
        assert_eq!(s.rejected, 0);
        assert!((s.mean - 10.0).abs() < 0.5);
        assert!(s.ci95 > 0.0);
        assert!((s.median - 10.0).abs() < 0.5);
    }

    #[test]
    fn gross_outlier_is_rejected() {
        let s = robust_summary(&[10.0, 10.2, 9.8, 10.1, 9.9, 10.0, 500.0]);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.used, 6);
        assert!(s.mean < 11.0, "outlier must not drag the mean: {}", s.mean);
    }

    #[test]
    fn tiny_sample_sets_are_passed_through() {
        let s = robust_summary(&[5.0]);
        assert_eq!((s.used, s.rejected), (1, 0));
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci95, 0.0);

        let s = robust_summary(&[1.0, 100.0, 3.0]);
        assert_eq!((s.used, s.rejected), (3, 0));
    }

    #[test]
    fn empty_input_yields_zeroes() {
        let s = robust_summary(&[]);
        assert_eq!(s.used, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let few: Vec<f64> = (0..8).map(|i| 10.0 + (i % 3) as f64).collect();
        let many: Vec<f64> = (0..128).map(|i| 10.0 + (i % 3) as f64).collect();
        let a = robust_summary(&few);
        let b = robust_summary(&many);
        assert!(b.ci95 < a.ci95, "CI must tighten: {} vs {}", b.ci95, a.ci95);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }
}
