//! Deterministic in-memory sockets with epoll-style readiness — the
//! network stack stand-in for the offline build environment.
//!
//! The workspace's connection edge (`foc_servers::conn`) wants the real
//! shape of a readiness-driven server: listeners with bounded accept
//! backlogs, byte-stream sockets with bounded kernel buffers that
//! return `WouldBlock` instead of blocking, half-closed peers that
//! read as EOF, and a level-triggered `epoll_wait` that reports which
//! registered descriptors are ready. This crate provides exactly that
//! surface as a tiny user-space kernel — no host sockets, no threads,
//! no host time — so every byte movement is a pure function of the
//! call sequence. Determinism is the point: two identical call
//! sequences observe identical readiness, identical partial-write
//! splits, and identical accept orders, which is what lets the farm's
//! socket edge participate in the repository's byte-identical-report
//! contract.
//!
//! One [`NetStack`] is one isolated network namespace. The connection
//! edge gives every server process its own stack (sharded event loops,
//! the `SO_REUSEPORT` idiom), which keeps the whole stack single-owner
//! `&mut` state: no locks, trivially `Send`, and scheduler-movable.
//!
//! Descriptor slots are never reused within a stack, so a stale [`Fd`]
//! held after `close` can never alias a newer connection.

use std::collections::VecDeque;

/// A descriptor into one [`NetStack`]: a listener, a stream socket, or
/// an epoll instance. Only meaningful for the stack that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(u32);

impl Fd {
    /// The raw slot index (diagnostics only).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Which readiness directions an epoll registration watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Watch for readable readiness (data, EOF, or a pending accept).
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Watch for writable readiness (peer buffer has free space).
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Watch both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`NetStack::epoll_wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    token: u64,
    readable: bool,
    writable: bool,
}

impl Event {
    /// The caller-chosen registration token.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Readable: buffered bytes, a pending accept, or EOF/reset.
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Writable: the peer's receive buffer has free space.
    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// Why a `connect` was not established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// No live listener on the port, or its accept backlog is full —
    /// both surface to a real client as connection refused.
    Refused,
}

/// What one `read` call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` bytes were copied into the caller's buffer.
    Data(usize),
    /// No bytes buffered and the peer is still open.
    WouldBlock,
    /// The peer closed and every buffered byte has been drained: EOF.
    Closed,
}

/// What one `write` call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// `n` bytes were accepted into the peer's receive buffer
    /// (possibly fewer than offered — a partial write).
    Wrote(usize),
    /// The peer's receive buffer is full; nothing was accepted.
    WouldBlock,
    /// The peer endpoint is closed (`EPIPE`).
    Broken,
}

/// A stream endpoint: its receive buffer plus liveness of both ends.
struct SocketState {
    /// The peer endpoint's slot.
    peer: u32,
    /// Bytes written by the peer, awaiting `read` here.
    recv: VecDeque<u8>,
    /// This endpoint has been closed by its owner.
    local_closed: bool,
    /// The peer endpoint has been closed (reads drain then EOF,
    /// writes break).
    peer_closed: bool,
}

/// A listener: its port, backlog bound, and pending (un-accepted)
/// server-side endpoints in arrival order.
struct ListenerState {
    port: u16,
    backlog: usize,
    queue: VecDeque<u32>,
    closed: bool,
}

/// One epoll registration.
struct EpollEntry {
    fd: u32,
    interest: Interest,
    token: u64,
}

enum Node {
    Socket(SocketState),
    Listener(ListenerState),
    Epoll(Vec<EpollEntry>),
}

/// One isolated deterministic network namespace.
pub struct NetStack {
    nodes: Vec<Node>,
    /// Per-direction receive-buffer capacity in bytes (the "kernel"
    /// socket buffer size; the backpressure bound).
    capacity: usize,
}

impl NetStack {
    /// A fresh namespace whose sockets buffer at most `capacity` bytes
    /// per direction (clamped to ≥ 1 so progress is always possible).
    pub fn new(capacity: usize) -> NetStack {
        NetStack {
            nodes: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// The per-direction buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push(&mut self, node: Node) -> Fd {
        let fd = u32::try_from(self.nodes.len()).expect("netshim descriptor space exhausted");
        self.nodes.push(node);
        Fd(fd)
    }

    fn socket(&self, fd: Fd) -> &SocketState {
        match &self.nodes[fd.0 as usize] {
            Node::Socket(s) => s,
            _ => panic!("fd {} is not a stream socket", fd.0),
        }
    }

    fn socket_mut(&mut self, fd: Fd) -> &mut SocketState {
        match &mut self.nodes[fd.0 as usize] {
            Node::Socket(s) => s,
            _ => panic!("fd {} is not a stream socket", fd.0),
        }
    }

    /// Opens a listener on `port` with the given accept backlog
    /// (clamped to ≥ 1). Connects beyond the backlog are refused — the
    /// flood-scenario bound.
    pub fn listen(&mut self, port: u16, backlog: usize) -> Fd {
        self.push(Node::Listener(ListenerState {
            port,
            backlog: backlog.max(1),
            queue: VecDeque::new(),
            closed: false,
        }))
    }

    /// Connects to `port`: creates a socket pair, queues the server
    /// endpoint on the listener, and returns the client endpoint (which
    /// may write immediately — bytes buffer ahead of the accept, as on
    /// a real accepted-but-unserviced connection).
    pub fn connect(&mut self, port: u16) -> Result<Fd, ConnectError> {
        let listener = self
            .nodes
            .iter()
            .position(|n| matches!(n, Node::Listener(l) if l.port == port && !l.closed))
            .ok_or(ConnectError::Refused)?;
        if let Node::Listener(l) = &self.nodes[listener] {
            if l.queue.len() >= l.backlog {
                return Err(ConnectError::Refused);
            }
        }
        let client = self.push(Node::Socket(SocketState {
            peer: 0, // patched below
            recv: VecDeque::new(),
            local_closed: false,
            peer_closed: false,
        }));
        let server = self.push(Node::Socket(SocketState {
            peer: client.0,
            recv: VecDeque::new(),
            local_closed: false,
            peer_closed: false,
        }));
        self.socket_mut(client).peer = server.0;
        match &mut self.nodes[listener] {
            Node::Listener(l) => l.queue.push_back(server.0),
            _ => unreachable!(),
        }
        Ok(client)
    }

    /// Pops the oldest pending connection off a listener, if any.
    pub fn accept(&mut self, listener: Fd) -> Option<Fd> {
        match &mut self.nodes[listener.0 as usize] {
            Node::Listener(l) => l.queue.pop_front().map(Fd),
            _ => panic!("fd {} is not a listener", listener.0),
        }
    }

    /// Number of connections awaiting accept.
    pub fn pending_accepts(&self, listener: Fd) -> usize {
        match &self.nodes[listener.0 as usize] {
            Node::Listener(l) => l.queue.len(),
            _ => panic!("fd {} is not a listener", listener.0),
        }
    }

    /// Closes a listener: subsequent connects are refused, and every
    /// still-queued connection is reset (its client reads EOF).
    pub fn close_listener(&mut self, listener: Fd) {
        let queued: Vec<u32> = match &mut self.nodes[listener.0 as usize] {
            Node::Listener(l) => {
                l.closed = true;
                l.queue.drain(..).collect()
            }
            _ => panic!("fd {} is not a listener", listener.0),
        };
        for fd in queued {
            self.close(Fd(fd));
        }
    }

    /// Writes as much of `bytes` as the peer's buffer accepts.
    pub fn write(&mut self, fd: Fd, bytes: &[u8]) -> WriteOutcome {
        let capacity = self.capacity;
        let (peer, local_closed, peer_closed) = {
            let s = self.socket(fd);
            (s.peer, s.local_closed, s.peer_closed)
        };
        assert!(!local_closed, "write on closed fd {}", fd.0);
        if peer_closed {
            return WriteOutcome::Broken;
        }
        let peer_recv = &mut self.socket_mut(Fd(peer)).recv;
        let free = capacity.saturating_sub(peer_recv.len());
        if free == 0 {
            return WriteOutcome::WouldBlock;
        }
        let n = free.min(bytes.len());
        peer_recv.extend(&bytes[..n]);
        WriteOutcome::Wrote(n)
    }

    /// Reads buffered bytes into `buf`.
    pub fn read(&mut self, fd: Fd, buf: &mut [u8]) -> ReadOutcome {
        let s = self.socket_mut(fd);
        assert!(!s.local_closed, "read on closed fd {}", fd.0);
        if s.recv.is_empty() {
            return if s.peer_closed {
                ReadOutcome::Closed
            } else {
                ReadOutcome::WouldBlock
            };
        }
        let n = s.recv.len().min(buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = s.recv.pop_front().expect("length checked");
        }
        ReadOutcome::Data(n)
    }

    /// Closes a stream endpoint. The peer keeps draining already-sent
    /// bytes, then reads EOF; peer writes break immediately.
    pub fn close(&mut self, fd: Fd) {
        let peer = {
            let s = self.socket_mut(fd);
            if s.local_closed {
                return;
            }
            s.local_closed = true;
            s.recv.clear();
            s.peer
        };
        if let Node::Socket(p) = &mut self.nodes[peer as usize] {
            p.peer_closed = true;
        }
    }

    /// Whether this endpoint's owner has closed it.
    pub fn is_closed(&self, fd: Fd) -> bool {
        self.socket(fd).local_closed
    }

    /// Creates an epoll instance.
    pub fn epoll_create(&mut self) -> Fd {
        self.push(Node::Epoll(Vec::new()))
    }

    fn epoll_entries(&mut self, ep: Fd) -> &mut Vec<EpollEntry> {
        match &mut self.nodes[ep.0 as usize] {
            Node::Epoll(entries) => entries,
            _ => panic!("fd {} is not an epoll instance", ep.0),
        }
    }

    /// Registers `fd` (socket or listener) with `interest` under
    /// `token`. Registration order is the order `epoll_wait` reports
    /// ready descriptors in — the deterministic stand-in for the
    /// kernel's ready list.
    pub fn epoll_add(&mut self, ep: Fd, fd: Fd, interest: Interest, token: u64) {
        debug_assert!(
            matches!(
                self.nodes[fd.0 as usize],
                Node::Socket(_) | Node::Listener(_)
            ),
            "epoll watches sockets and listeners only"
        );
        let entries = self.epoll_entries(ep);
        debug_assert!(
            entries.iter().all(|e| e.fd != fd.0),
            "fd {} registered twice",
            fd.0
        );
        entries.push(EpollEntry {
            fd: fd.0,
            interest,
            token,
        });
    }

    /// Removes `fd`'s registration, if present.
    pub fn epoll_del(&mut self, ep: Fd, fd: Fd) {
        self.epoll_entries(ep).retain(|e| e.fd != fd.0);
    }

    /// Level-triggered poll: appends one [`Event`] per ready registered
    /// descriptor, in registration order, and returns how many fired.
    /// A socket is readable when bytes are buffered *or* its peer has
    /// closed (EOF is a readable condition, as under real epoll); a
    /// listener is readable when accepts are pending; a socket is
    /// writable when the peer buffer has free space. Closed-by-owner
    /// descriptors never fire (the owner already knows).
    pub fn epoll_wait(&mut self, ep: Fd, events: &mut Vec<Event>) -> usize {
        let entries: Vec<(u32, Interest, u64)> = self
            .epoll_entries(ep)
            .iter()
            .map(|e| (e.fd, e.interest, e.token))
            .collect();
        let mut fired = 0;
        for (fd, interest, token) in entries {
            let (mut readable, mut writable) = match &self.nodes[fd as usize] {
                Node::Listener(l) => (!l.queue.is_empty(), false),
                Node::Socket(s) => {
                    if s.local_closed {
                        (false, false)
                    } else {
                        let can_write = !s.peer_closed && {
                            let peer = match &self.nodes[s.peer as usize] {
                                Node::Socket(p) => p,
                                _ => unreachable!("socket peers are sockets"),
                            };
                            peer.recv.len() < self.capacity
                        };
                        (!s.recv.is_empty() || s.peer_closed, can_write)
                    }
                }
                Node::Epoll(_) => (false, false),
            };
            readable &= interest.readable;
            writable &= interest.writable;
            if readable || writable {
                events.push(Event {
                    token,
                    readable,
                    writable,
                });
                fired += 1;
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(net: &mut NetStack) -> (Fd, Fd) {
        let listener = net.listen(80, 4);
        let client = net.connect(80).expect("listener is live");
        let server = net.accept(listener).expect("connect queued an accept");
        (client, server)
    }

    #[test]
    fn bytes_round_trip_through_a_socket_pair() {
        let mut net = NetStack::new(64);
        let (client, server) = pair(&mut net);
        assert_eq!(net.write(client, b"hello"), WriteOutcome::Wrote(5));
        let mut buf = [0u8; 16];
        assert_eq!(net.read(server, &mut buf), ReadOutcome::Data(5));
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(net.read(server, &mut buf), ReadOutcome::WouldBlock);
    }

    #[test]
    fn bounded_buffers_split_writes_and_block_when_full() {
        let mut net = NetStack::new(4);
        let (client, server) = pair(&mut net);
        assert_eq!(net.write(client, b"abcdef"), WriteOutcome::Wrote(4));
        assert_eq!(net.write(client, b"ef"), WriteOutcome::WouldBlock);
        let mut buf = [0u8; 2];
        assert_eq!(net.read(server, &mut buf), ReadOutcome::Data(2));
        assert_eq!(&buf, b"ab");
        // Draining frees capacity: the retry now accepts the tail.
        assert_eq!(net.write(client, b"ef"), WriteOutcome::Wrote(2));
    }

    #[test]
    fn backlog_bounds_pending_accepts() {
        let mut net = NetStack::new(8);
        let listener = net.listen(80, 2);
        assert!(net.connect(80).is_ok());
        assert!(net.connect(80).is_ok());
        assert_eq!(net.connect(80), Err(ConnectError::Refused));
        assert_eq!(net.pending_accepts(listener), 2);
        net.accept(listener).unwrap();
        assert!(net.connect(80).is_ok(), "accept frees a backlog slot");
        assert_eq!(net.connect(9999), Err(ConnectError::Refused));
    }

    #[test]
    fn close_drains_then_eofs_and_breaks_peer_writes() {
        let mut net = NetStack::new(16);
        let (client, server) = pair(&mut net);
        assert_eq!(net.write(client, b"bye"), WriteOutcome::Wrote(3));
        net.close(client);
        let mut buf = [0u8; 8];
        // In-flight bytes survive the close, then EOF.
        assert_eq!(net.read(server, &mut buf), ReadOutcome::Data(3));
        assert_eq!(net.read(server, &mut buf), ReadOutcome::Closed);
        assert_eq!(net.write(server, b"x"), WriteOutcome::Broken);
        // Closing twice is a no-op.
        net.close(client);
    }

    #[test]
    fn closed_listener_refuses_and_resets_its_queue() {
        let mut net = NetStack::new(8);
        let listener = net.listen(80, 4);
        let queued = net.connect(80).unwrap();
        net.close_listener(listener);
        assert_eq!(net.connect(80), Err(ConnectError::Refused));
        let mut buf = [0u8; 1];
        assert_eq!(net.read(queued, &mut buf), ReadOutcome::Closed);
    }

    #[test]
    fn epoll_reports_level_triggered_readiness_in_registration_order() {
        let mut net = NetStack::new(4);
        let listener = net.listen(80, 4);
        let client = net.connect(80).unwrap();
        let server = net.accept(listener).unwrap();
        let ep = net.epoll_create();
        net.epoll_add(ep, listener, Interest::READABLE, 1);
        net.epoll_add(ep, server, Interest::READABLE, 2);
        net.epoll_add(ep, client, Interest::BOTH, 3);
        let mut events = Vec::new();
        // Nothing pending: only the client's writable side fires.
        assert_eq!(net.epoll_wait(ep, &mut events), 1);
        assert_eq!((events[0].token(), events[0].is_writable()), (3, true));
        // A second connect + a client write: listener and server fire
        // too, in registration order, and (level-triggered) keep firing
        // until the condition clears.
        net.connect(80).unwrap();
        net.write(client, b"hihi").unwrap_wrote();
        for _ in 0..2 {
            events.clear();
            assert_eq!(net.epoll_wait(ep, &mut events), 2);
            assert_eq!(events[0].token(), 1);
            assert!(events[0].is_readable());
            assert_eq!(events[1].token(), 2);
            assert!(events[1].is_readable());
            // Buffer full: the client's writable edge is gone.
        }
        net.epoll_del(ep, listener);
        events.clear();
        assert_eq!(net.epoll_wait(ep, &mut events), 1);
        assert_eq!(events[0].token(), 2);
    }

    #[test]
    fn eof_is_a_readable_condition() {
        let mut net = NetStack::new(8);
        let (client, server) = pair(&mut net);
        let ep = net.epoll_create();
        net.epoll_add(ep, server, Interest::READABLE, 7);
        net.close(client);
        let mut events = Vec::new();
        assert_eq!(net.epoll_wait(ep, &mut events), 1);
        assert!(events[0].is_readable(), "EOF must wake the reader");
    }

    impl WriteOutcome {
        fn unwrap_wrote(self) -> usize {
            match self {
                WriteOutcome::Wrote(n) => n,
                other => panic!("expected Wrote, got {other:?}"),
            }
        }
    }
}
