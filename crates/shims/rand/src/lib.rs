//! Offline stand-in for the parts of the `rand` crate this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen_range` / `gen_ratio` / `gen_bool`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate shadows the real `rand` via a path dependency.
//! The generator is SplitMix64 — not cryptographic, but statistically
//! fine for workload synthesis and, crucially, **stable**: experiment
//! reproducibility (same seed → same bytes, forever) is part of the
//! repository's contract, so the algorithm here must never change.

use core::ops::Range;

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire output is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that `gen_range` can sample uniformly.
pub trait SampleUniform: Copy {
    /// Maps `raw` into `[low, high)`. `high > low` is the caller's duty.
    fn from_raw(raw: u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_raw(raw: u64, low: Self, high: Self) -> Self {
                let span = (high as i128) - (low as i128);
                debug_assert!(span > 0, "gen_range called with an empty range");
                let off = (raw as u128 % span as u128) as i128;
                ((low as i128) + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (modulo method; the tiny bias is
    /// irrelevant for workload synthesis).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::from_raw(self.next_u64(), range.start, range.end)
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.next_u64() % u64::from(denominator) < u64::from(numerator)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "1/4 ratio gave {hits}/10000");
    }
}
