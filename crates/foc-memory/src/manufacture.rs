//! Manufactured values for invalid reads.
//!
//! §3 of the paper: "In principle, any sequence of manufactured values
//! should work. In practice, these values are sometimes used to determine
//! loop conditions. [...] We therefore generate a sequence that iterates
//! through all small integers, increasing the chance that, if the values
//! are used to determine loop conditions, the computation will hit upon a
//! value that will exit the loop (and avoid nontermination). Because zero
//! and one are usually the most commonly loaded values in computer
//! programs, the sequence is designed to return these values more
//! frequently than other, less common, values."
//!
//! [`ValueSequence::Cycling`] implements exactly that shape: the sequence
//! is emitted in groups of three — `0, 1, k` — with `k` stepping through
//! `2, 3, 4, …` up to a wrap limit and then restarting. Every small
//! integer appears, and 0 and 1 each appear in every group.
//!
//! The alternative strategies exist for the ablation study: a constant
//! sequence reproduces the Midnight Commander hang the paper describes
//! (a loop scanning for `'/'` never sees one).

/// Strategy for generating the values returned by invalid reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueSequence {
    /// The paper's sequence: groups of `0, 1, k` for `k = 2, 3, …, wrap`.
    Cycling {
        /// Exclusive upper bound for `k`; when reached, `k` restarts at 2.
        wrap: u64,
    },
    /// Always zero. Terminates `strlen`-style loops but never satisfies a
    /// search for a specific non-zero byte.
    Zero,
    /// Always the given value.
    Constant(u64),
}

impl Default for ValueSequence {
    fn default() -> ValueSequence {
        ValueSequence::Cycling { wrap: 256 }
    }
}

impl ValueSequence {
    /// Stable, parseable label for sweep axes and report files:
    /// `zero`, `constant<v>`, `cycling<wrap>`.
    pub fn label(self) -> String {
        match self {
            ValueSequence::Zero => "zero".to_string(),
            ValueSequence::Constant(v) => format!("constant{v}"),
            ValueSequence::Cycling { wrap } => format!("cycling{wrap}"),
        }
    }
}

impl std::fmt::Display for ValueSequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for ValueSequence {
    type Err = String;

    /// Parses the [`ValueSequence::label`] format back into a strategy.
    fn from_str(s: &str) -> Result<ValueSequence, String> {
        let s = s.trim().to_ascii_lowercase();
        if s == "zero" {
            return Ok(ValueSequence::Zero);
        }
        if let Some(v) = s.strip_prefix("constant") {
            return v
                .parse()
                .map(ValueSequence::Constant)
                .map_err(|_| format!("bad constant value in {s:?}"));
        }
        if let Some(w) = s.strip_prefix("cycling") {
            return w
                .parse()
                .map(|wrap| ValueSequence::Cycling { wrap })
                .map_err(|_| format!("bad cycling wrap in {s:?}"));
        }
        Err(format!(
            "unknown value sequence {s:?} (want zero, constant<v>, or cycling<wrap>)"
        ))
    }
}

/// Stateful generator of manufactured read values.
#[derive(Debug, Clone)]
pub struct Manufacturer {
    sequence: ValueSequence,
    /// Position within the current `0, 1, k` group (0, 1 or 2).
    phase: u8,
    /// Current `k` for the cycling sequence.
    k: u64,
    /// Total number of values manufactured.
    produced: u64,
}

impl Manufacturer {
    /// Creates a generator with the given strategy.
    pub fn new(sequence: ValueSequence) -> Manufacturer {
        Manufacturer {
            sequence,
            phase: 0,
            k: 2,
            produced: 0,
        }
    }

    /// Produces the next manufactured value.
    pub fn next_value(&mut self) -> u64 {
        self.produced += 1;
        match self.sequence {
            ValueSequence::Zero => 0,
            ValueSequence::Constant(v) => v,
            ValueSequence::Cycling { wrap } => {
                let v = match self.phase {
                    0 => 0,
                    1 => 1,
                    _ => self.k,
                };
                self.phase += 1;
                if self.phase == 3 {
                    self.phase = 0;
                    self.k += 1;
                    if self.k >= wrap.max(3) {
                        self.k = 2;
                    }
                }
                v
            }
        }
    }

    /// Total number of values manufactured so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Resets the generator to its initial state.
    pub fn reset(&mut self) {
        self.phase = 0;
        self.k = 2;
        self.produced = 0;
    }
}

impl Default for Manufacturer {
    fn default() -> Manufacturer {
        Manufacturer::new(ValueSequence::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycling_prefix_matches_paper_shape() {
        let mut m = Manufacturer::new(ValueSequence::Cycling { wrap: 256 });
        let got: Vec<u64> = (0..12).map(|_| m.next_value()).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 3, 0, 1, 4, 0, 1, 5]);
    }

    #[test]
    fn cycling_hits_every_small_integer() {
        let mut m = Manufacturer::new(ValueSequence::Cycling { wrap: 256 });
        let mut seen = [false; 256];
        for _ in 0..(256 * 3) {
            let v = m.next_value();
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every value below the wrap limit must eventually appear"
        );
    }

    #[test]
    fn cycling_favours_zero_and_one() {
        let mut m = Manufacturer::default();
        let mut zeros = 0;
        let mut ones = 0;
        let mut others = 0;
        for _ in 0..3000 {
            match m.next_value() {
                0 => zeros += 1,
                1 => ones += 1,
                _ => others += 1,
            }
        }
        assert_eq!(zeros, 1000);
        assert_eq!(ones, 1000);
        assert_eq!(others, 1000);
        // Each individual non-0/1 value appears far less often than 0 or 1.
    }

    #[test]
    fn cycling_wraps() {
        let mut m = Manufacturer::new(ValueSequence::Cycling { wrap: 4 });
        let got: Vec<u64> = (0..9).map(|_| m.next_value()).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 3, 0, 1, 2]);
    }

    #[test]
    fn degenerate_wrap_still_cycles() {
        let mut m = Manufacturer::new(ValueSequence::Cycling { wrap: 0 });
        let got: Vec<u64> = (0..6).map(|_| m.next_value()).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn constant_and_zero_strategies() {
        let mut z = Manufacturer::new(ValueSequence::Zero);
        let mut c = Manufacturer::new(ValueSequence::Constant(42));
        for _ in 0..10 {
            assert_eq!(z.next_value(), 0);
            assert_eq!(c.next_value(), 42);
        }
        assert_eq!(z.produced(), 10);
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        let cases = [
            ValueSequence::Zero,
            ValueSequence::Constant(0),
            ValueSequence::Constant(47),
            ValueSequence::Cycling { wrap: 4 },
            ValueSequence::Cycling { wrap: 256 },
        ];
        for seq in cases {
            let label = seq.label();
            assert_eq!(label.parse::<ValueSequence>().unwrap(), seq, "{label}");
        }
        assert_eq!(
            "ZERO".parse::<ValueSequence>().unwrap(),
            ValueSequence::Zero
        );
        assert!("sawtooth".parse::<ValueSequence>().is_err());
        assert!("constantx".parse::<ValueSequence>().is_err());
    }

    #[test]
    fn reset_restarts_sequence() {
        let mut m = Manufacturer::default();
        let first: Vec<u64> = (0..5).map(|_| m.next_value()).collect();
        m.reset();
        let second: Vec<u64> = (0..5).map(|_| m.next_value()).collect();
        assert_eq!(first, second);
    }
}
