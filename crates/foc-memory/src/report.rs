//! Memory-error log analysis.
//!
//! §3 motivates the log as an administration tool: "This log may help
//! administrators to detect and respond appropriately to the presence of
//! such errors." The stability studies read it exactly that way — it is
//! how the authors discovered that Sendmail errs on every wake-up and
//! that Midnight Commander errs on every blank configuration line.
//!
//! [`summarize`] aggregates raw records into per-site counts (a *site* is
//! a guest function/pc pair — the static program location committing the
//! error), which is the form an administrator would actually read.

use std::collections::HashMap;
use std::fmt;

use crate::log::{ErrorKind, MemoryErrorLog};

/// Aggregated statistics for one error site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// Guest function index.
    pub func: u32,
    /// Guest program counter.
    pub pc: u32,
    /// Violation classification.
    pub kind: ErrorKind,
    /// Occurrences among the retained records.
    pub count: u64,
    /// Smallest intended offset observed (when provenance was known).
    pub min_offset: Option<i64>,
    /// Largest intended offset observed.
    pub max_offset: Option<i64>,
}

impl fmt::Display for SiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fn {} pc {}: {} ×{}",
            self.func, self.pc, self.kind, self.count
        )?;
        if let (Some(lo), Some(hi)) = (self.min_offset, self.max_offset) {
            write!(f, " (offsets {lo}..{hi})")?;
        }
        Ok(())
    }
}

/// A digest of the whole log.
#[derive(Debug, Clone, Default)]
pub struct LogReport {
    /// Per-site aggregates, most frequent first.
    pub sites: Vec<SiteReport>,
    /// Total errors ever recorded (including evicted records).
    pub total: u64,
    /// Of which reads.
    pub reads: u64,
    /// Of which writes.
    pub writes: u64,
}

impl LogReport {
    /// Number of distinct error sites among retained records.
    pub fn distinct_sites(&self) -> usize {
        self.sites.len()
    }

    /// Renders a plain-text administrator summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "memory errors: {} total ({} reads, {} writes), {} distinct sites",
            self.total,
            self.reads,
            self.writes,
            self.distinct_sites()
        );
        for site in &self.sites {
            let _ = writeln!(out, "  {site}");
        }
        out
    }
}

/// Aggregates a log's retained records into per-site counts.
pub fn summarize(log: &MemoryErrorLog) -> LogReport {
    let mut map: HashMap<(u32, u32, ErrorKind), SiteReport> = HashMap::new();
    for rec in log.records() {
        let entry = map
            .entry((rec.func, rec.pc, rec.kind))
            .or_insert_with(|| SiteReport {
                func: rec.func,
                pc: rec.pc,
                kind: rec.kind,
                count: 0,
                min_offset: None,
                max_offset: None,
            });
        entry.count += 1;
        if let Some(off) = rec.offset {
            entry.min_offset = Some(entry.min_offset.map_or(off, |m| m.min(off)));
            entry.max_offset = Some(entry.max_offset.map_or(off, |m| m.max(off)));
        }
    }
    let mut sites: Vec<SiteReport> = map.into_values().collect();
    sites.sort_by(|a, b| b.count.cmp(&a.count).then(a.pc.cmp(&b.pc)));
    LogReport {
        sites,
        total: log.total(),
        reads: log.total_reads(),
        writes: log.total_writes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AccessSize;
    use crate::unit::UnitId;

    fn record(log: &mut MemoryErrorLog, kind: ErrorKind, pc: u32, offset: i64) {
        log.record(
            kind,
            0x1000,
            AccessSize::B1,
            Some(UnitId(1)),
            Some(offset),
            3,
            pc,
        );
    }

    #[test]
    fn aggregates_by_site() {
        let mut log = MemoryErrorLog::new(128);
        for i in 0..5 {
            record(&mut log, ErrorKind::InvalidWrite, 10, 64 + i);
        }
        record(&mut log, ErrorKind::InvalidRead, 22, -1);
        let report = summarize(&log);
        assert_eq!(report.distinct_sites(), 2);
        assert_eq!(report.sites[0].pc, 10);
        assert_eq!(report.sites[0].count, 5);
        assert_eq!(report.sites[0].min_offset, Some(64));
        assert_eq!(report.sites[0].max_offset, Some(68));
        assert_eq!(report.sites[1].kind, ErrorKind::InvalidRead);
        assert_eq!(report.total, 6);
        assert_eq!(report.writes, 5);
    }

    #[test]
    fn render_is_readable() {
        let mut log = MemoryErrorLog::new(16);
        record(&mut log, ErrorKind::DanglingRead, 7, 0);
        let text = summarize(&log).render();
        assert!(text.contains("1 total"));
        assert!(text.contains("dangling read"));
        assert!(text.contains("pc 7"));
    }

    #[test]
    fn empty_log_reports_cleanly() {
        let log = MemoryErrorLog::new(16);
        let report = summarize(&log);
        assert_eq!(report.distinct_sites(), 0);
        assert!(report.render().contains("0 total"));
    }
}
