//! Virtual address space layout.
//!
//! The simulated address space is a 64-bit flat space carved into fixed
//! regions. Addresses below [`GLOBAL_BASE`] are never mapped so that null
//! and near-null dereferences fault in every mode, as they would on a real
//! OS with an unmapped zero page.
//!
//! ```text
//!   0x0000_0000_0000_0000 .. GLOBAL_BASE     unmapped (null page)
//!   GLOBAL_BASE .. GLOBAL_BASE+len           globals and string literals
//!   HEAP_BASE   .. HEAP_BASE+len             heap (free-list allocator)
//!   STACK_BASE  .. STACK_BASE+len            stack (grows downward)
//!   OOB_ZONE_BASE ..                         out-of-bounds descriptors
//! ```
//!
//! The OOB zone is never backed by bytes: addresses in it encode an index
//! into the [`crate::oob::OobRegistry`], mirroring how CRED replaces
//! out-of-bounds pointer values with pointers to descriptor objects.

/// Base address of the global data region.
pub const GLOBAL_BASE: u64 = 0x0001_0000;

/// Base address of the heap region.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// Base address of the stack region. The stack grows downward from
/// `STACK_BASE + stack_len` toward `STACK_BASE`.
pub const STACK_BASE: u64 = 0x7000_0000;

/// Base of the out-of-bounds descriptor zone.
///
/// Pointer arithmetic that leaves its data unit produces an address in this
/// zone; dereferencing such an address is a memory error in every checked
/// mode. The zone is placed far above all mapped regions so no legitimate
/// address can collide with it.
pub const OOB_ZONE_BASE: u64 = 0xF000_0000_0000_0000;

/// Stride between consecutive OOB descriptor addresses.
///
/// A non-unit stride keeps distinct descriptors from comparing equal after
/// small integer offsets are folded into the encoded address.
pub const OOB_STRIDE: u64 = 0x10;

/// Which mapped region an address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Global variables and string literals.
    Global,
    /// The simulated heap.
    Heap,
    /// The simulated stack.
    Stack,
}

/// Width of a single memory access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// One byte (`char`).
    B1,
    /// Two bytes (`short`).
    B2,
    /// Four bytes (`int`).
    B4,
    /// Eight bytes (`long` and pointers).
    B8,
}

impl AccessSize {
    /// Number of bytes covered by the access.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            AccessSize::B1 => 1,
            AccessSize::B2 => 2,
            AccessSize::B4 => 4,
            AccessSize::B8 => 8,
        }
    }

    /// Access size for a value of `bytes` width.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 1, 2, 4, or 8.
    #[inline]
    pub fn from_bytes(bytes: u64) -> AccessSize {
        match bytes {
            1 => AccessSize::B1,
            2 => AccessSize::B2,
            4 => AccessSize::B4,
            8 => AccessSize::B8,
            other => panic!("unsupported access width: {other}"),
        }
    }
}

/// A contiguous mapped region, committed lazily.
///
/// The region *reserves* `len` bytes of address space but backs only a
/// committed window `[commit_base, commit_base + bytes.len())` with real
/// storage; everything outside the window is logically zero. Reads
/// manufacture those zeros without allocating; writes grow the window
/// geometrically toward the touched offset (which handles both the
/// upward-growing heap and the downward-growing stack). This is what
/// makes booting a machine cheap — a fresh space costs three empty
/// `Vec`s instead of ~76 MB of eager zeroing — which in turn is what
/// makes farm restarts cheap (§4.7's availability argument prices every
/// restart). `Clone` snapshots the committed window — the region half
/// of a boot checkpoint.
#[derive(Debug, Clone)]
pub struct Region {
    kind: RegionKind,
    base: u64,
    /// Reserved size in bytes; bounds checks answer against this.
    len: usize,
    /// Offset of `bytes[0]` within the region.
    commit_base: usize,
    /// The committed window's storage.
    bytes: Vec<u8>,
}

/// Commit granularity (window edges are aligned to it).
const COMMIT_CHUNK: usize = 64 << 10;

impl Region {
    /// Creates a logically zero region of `len` bytes starting at
    /// `base`, committing no storage yet.
    pub fn new(kind: RegionKind, base: u64, len: usize) -> Region {
        Region {
            kind,
            base,
            len,
            commit_base: 0,
            bytes: Vec::new(),
        }
    }

    /// Bytes of real storage currently committed (diagnostics).
    pub fn committed_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Extends the committed window to cover `[off, end)`, padding
    /// geometrically (at least the current window size, at least one
    /// chunk) in the direction(s) that grew so repeated nearby touches
    /// amortise to O(final window).
    #[cold]
    fn grow(&mut self, off: usize, end: usize) {
        // An empty window anchors at the touched range, not at offset 0
        // — the stack's first touch is near the *top* of its region, and
        // anchoring low would commit the whole region eagerly.
        let (cur_lo, cur_hi) = if self.bytes.is_empty() {
            (off, end)
        } else {
            (self.commit_base, self.commit_base + self.bytes.len())
        };
        let pad = self.bytes.len().max(COMMIT_CHUNK);
        let mut lo = cur_lo.min(off);
        let mut hi = cur_hi.max(end);
        if self.bytes.is_empty() || off < cur_lo {
            lo = lo.saturating_sub(pad);
        }
        if self.bytes.is_empty() || end > cur_hi {
            hi = hi.saturating_add(pad);
        }
        lo -= lo % COMMIT_CHUNK;
        hi = hi.div_ceil(COMMIT_CHUNK) * COMMIT_CHUNK;
        hi = hi.min(self.len);
        debug_assert!(lo <= off && end <= hi);
        let mut grown = vec![0u8; hi - lo];
        if !self.bytes.is_empty() {
            grown[cur_lo - lo..cur_hi - lo].copy_from_slice(&self.bytes);
        }
        self.commit_base = lo;
        self.bytes = grown;
    }

    /// Copies the committed overlap of `[off, off + out.len())` into
    /// `out`; bytes outside the window keep their existing (zero)
    /// contents. The one place the window-overlap arithmetic lives.
    #[inline]
    fn copy_committed(&self, off: usize, out: &mut [u8]) {
        let lo = off.max(self.commit_base);
        let hi = (off + out.len()).min(self.commit_base + self.bytes.len());
        if lo < hi {
            out[lo - off..hi - off]
                .copy_from_slice(&self.bytes[lo - self.commit_base..hi - self.commit_base]);
        }
    }

    /// Ensures `[off, end)` is backed by committed storage.
    #[inline]
    fn commit(&mut self, off: usize, end: usize) {
        if off < self.commit_base || end > self.commit_base + self.bytes.len() {
            self.grow(off, end);
        }
    }

    /// The region's kind.
    #[inline]
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// First mapped address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the last mapped address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.len as u64
    }

    /// Whether the whole access `[addr, addr + len)` is inside the region.
    #[inline]
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.checked_add(len).is_some_and(|e| e <= self.end())
    }

    /// Reads `size` bytes at `addr` as a little-endian unsigned value.
    /// Bytes outside the committed window read as zero.
    ///
    /// Returns `None` when any byte of the access is outside the region.
    #[inline]
    pub fn read(&self, addr: u64, size: AccessSize) -> Option<u64> {
        let len = size.bytes() as usize;
        if !self.contains(addr, len as u64) {
            return None;
        }
        let off = (addr - self.base) as usize;
        let mut buf = [0u8; 8];
        self.copy_committed(off, &mut buf[..len]);
        Some(u64::from_le_bytes(buf))
    }

    /// Writes the low `size` bytes of `value` at `addr`, little-endian,
    /// committing storage as needed.
    ///
    /// Returns `false` when any byte of the access is outside the region.
    #[inline]
    pub fn write(&mut self, addr: u64, size: AccessSize, value: u64) -> bool {
        let len = size.bytes() as usize;
        if !self.contains(addr, len as u64) {
            return false;
        }
        let off = (addr - self.base) as usize;
        self.commit(off, off + len);
        let at = off - self.commit_base;
        self.bytes[at..at + len].copy_from_slice(&value.to_le_bytes()[..len]);
        true
    }

    /// Copies `len` raw bytes starting at `addr` out to the host; bytes
    /// outside the committed window read as zero.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Option<Vec<u8>> {
        if !self.contains(addr, len) {
            return None;
        }
        let off = (addr - self.base) as usize;
        let mut out = vec![0u8; len as usize];
        self.copy_committed(off, &mut out);
        Some(out)
    }

    /// Mutably borrows `len` raw bytes starting at `addr`, committing
    /// storage as needed.
    pub fn slice_mut(&mut self, addr: u64, len: u64) -> Option<&mut [u8]> {
        if !self.contains(addr, len) {
            return None;
        }
        let off = (addr - self.base) as usize;
        let len = len as usize;
        self.commit(off, off + len);
        let at = off - self.commit_base;
        Some(&mut self.bytes[at..at + len])
    }
}

/// Whether `addr` encodes an out-of-bounds descriptor.
#[inline]
pub const fn is_oob_zone(addr: u64) -> bool {
    addr >= OOB_ZONE_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_round_trips_all_access_sizes() {
        let mut r = Region::new(RegionKind::Heap, 0x1000, 64);
        for (size, value) in [
            (AccessSize::B1, 0xABu64),
            (AccessSize::B2, 0xBEEF),
            (AccessSize::B4, 0xDEAD_BEEF),
            (AccessSize::B8, 0x0123_4567_89AB_CDEF),
        ] {
            assert!(r.write(0x1008, size, value));
            assert_eq!(r.read(0x1008, size), Some(value));
        }
    }

    #[test]
    fn region_truncates_to_access_width() {
        let mut r = Region::new(RegionKind::Heap, 0, 16);
        assert!(r.write(0, AccessSize::B8, 0));
        assert!(r.write(0, AccessSize::B1, 0x1FF));
        assert_eq!(r.read(0, AccessSize::B8), Some(0xFF));
    }

    #[test]
    fn region_rejects_out_of_range_accesses() {
        let mut r = Region::new(RegionKind::Stack, 0x100, 8);
        assert_eq!(r.read(0xFF, AccessSize::B1), None);
        assert_eq!(r.read(0x108, AccessSize::B1), None);
        assert_eq!(r.read(0x101, AccessSize::B8), None);
        assert!(!r.write(0x105, AccessSize::B4, 1));
        // The final in-bounds byte is still writable.
        assert!(r.write(0x107, AccessSize::B1, 1));
    }

    #[test]
    fn region_rejects_wrapping_accesses() {
        let r = Region::new(RegionKind::Heap, 0x1000, 64);
        assert_eq!(r.read(u64::MAX - 2, AccessSize::B8), None);
        assert!(!r.contains(u64::MAX, 8));
    }

    #[test]
    fn little_endian_layout_is_observable_bytewise() {
        let mut r = Region::new(RegionKind::Global, 0, 8);
        assert!(r.write(0, AccessSize::B4, 0x0403_0201));
        assert_eq!(r.read(0, AccessSize::B1), Some(0x01));
        assert_eq!(r.read(1, AccessSize::B1), Some(0x02));
        assert_eq!(r.read(2, AccessSize::B1), Some(0x03));
        assert_eq!(r.read(3, AccessSize::B1), Some(0x04));
    }

    #[test]
    fn lazy_commit_stays_near_the_touched_offset() {
        // A fresh region commits nothing.
        let mut r = Region::new(RegionKind::Stack, 0, 8 << 20);
        assert_eq!(r.committed_bytes(), 0);
        // Reads never commit.
        assert_eq!(r.read(4 << 20, AccessSize::B8), Some(0));
        assert_eq!(r.committed_bytes(), 0);
        // The first write near the TOP of the region (where the
        // downward-growing stack starts) must not commit the whole
        // region — the window anchors at the touched offset.
        let top = (8 << 20) - 16;
        assert!(r.write(top, AccessSize::B8, 0xDEAD));
        assert!(
            r.committed_bytes() <= 4 * COMMIT_CHUNK,
            "first stack write committed {} bytes",
            r.committed_bytes()
        );
        // The window then grows geometrically toward deeper frames and
        // reads straddling the window edge see committed and zero bytes.
        assert!(r.write(top - (1 << 20), AccessSize::B8, 0xBEEF));
        assert_eq!(r.read(top, AccessSize::B8), Some(0xDEAD));
        assert_eq!(r.read(top - (1 << 20), AccessSize::B8), Some(0xBEEF));
        assert_eq!(r.read(1024, AccessSize::B8), Some(0));
        assert!(r.committed_bytes() <= (3 << 20));
    }

    #[test]
    fn oob_zone_is_disjoint_from_regions() {
        assert!(is_oob_zone(OOB_ZONE_BASE));
        assert!(!is_oob_zone(STACK_BASE + 0x100_0000));
        // Any mapped region must end far below the zone.
        let r = Region::new(RegionKind::Stack, STACK_BASE, 64 << 20);
        assert!(!is_oob_zone(r.end()));
    }
}
