//! Virtual address space layout.
//!
//! The simulated address space is a 64-bit flat space carved into fixed
//! regions. Addresses below [`GLOBAL_BASE`] are never mapped so that null
//! and near-null dereferences fault in every mode, as they would on a real
//! OS with an unmapped zero page.
//!
//! ```text
//!   0x0000_0000_0000_0000 .. GLOBAL_BASE     unmapped (null page)
//!   GLOBAL_BASE .. GLOBAL_BASE+len           globals and string literals
//!   HEAP_BASE   .. HEAP_BASE+len             heap (free-list allocator)
//!   STACK_BASE  .. STACK_BASE+len            stack (grows downward)
//!   OOB_ZONE_BASE ..                         out-of-bounds descriptors
//! ```
//!
//! The OOB zone is never backed by bytes: addresses in it encode an index
//! into the [`crate::oob::OobRegistry`], mirroring how CRED replaces
//! out-of-bounds pointer values with pointers to descriptor objects.

/// Base address of the global data region.
pub const GLOBAL_BASE: u64 = 0x0001_0000;

/// Base address of the heap region.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// Base address of the stack region. The stack grows downward from
/// `STACK_BASE + stack_len` toward `STACK_BASE`.
pub const STACK_BASE: u64 = 0x7000_0000;

/// Base of the out-of-bounds descriptor zone.
///
/// Pointer arithmetic that leaves its data unit produces an address in this
/// zone; dereferencing such an address is a memory error in every checked
/// mode. The zone is placed far above all mapped regions so no legitimate
/// address can collide with it.
pub const OOB_ZONE_BASE: u64 = 0xF000_0000_0000_0000;

/// Stride between consecutive OOB descriptor addresses.
///
/// A non-unit stride keeps distinct descriptors from comparing equal after
/// small integer offsets are folded into the encoded address.
pub const OOB_STRIDE: u64 = 0x10;

/// Which mapped region an address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Global variables and string literals.
    Global,
    /// The simulated heap.
    Heap,
    /// The simulated stack.
    Stack,
}

/// Width of a single memory access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// One byte (`char`).
    B1,
    /// Two bytes (`short`).
    B2,
    /// Four bytes (`int`).
    B4,
    /// Eight bytes (`long` and pointers).
    B8,
}

impl AccessSize {
    /// Number of bytes covered by the access.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            AccessSize::B1 => 1,
            AccessSize::B2 => 2,
            AccessSize::B4 => 4,
            AccessSize::B8 => 8,
        }
    }

    /// Access size for a value of `bytes` width.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 1, 2, 4, or 8.
    #[inline]
    pub fn from_bytes(bytes: u64) -> AccessSize {
        match bytes {
            1 => AccessSize::B1,
            2 => AccessSize::B2,
            4 => AccessSize::B4,
            8 => AccessSize::B8,
            other => panic!("unsupported access width: {other}"),
        }
    }
}

/// A contiguous mapped region backed by real bytes.
#[derive(Debug)]
pub struct Region {
    kind: RegionKind,
    base: u64,
    bytes: Vec<u8>,
}

impl Region {
    /// Creates a zero-initialised region of `len` bytes starting at `base`.
    pub fn new(kind: RegionKind, base: u64, len: usize) -> Region {
        Region {
            kind,
            base,
            bytes: vec![0; len],
        }
    }

    /// The region's kind.
    #[inline]
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// First mapped address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the last mapped address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Whether the whole access `[addr, addr + len)` is inside the region.
    #[inline]
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.checked_add(len).is_some_and(|e| e <= self.end())
    }

    /// Reads `size` bytes at `addr` as a little-endian unsigned value.
    ///
    /// Returns `None` when any byte of the access is outside the region.
    #[inline]
    pub fn read(&self, addr: u64, size: AccessSize) -> Option<u64> {
        let len = size.bytes();
        if !self.contains(addr, len) {
            return None;
        }
        let off = (addr - self.base) as usize;
        let mut buf = [0u8; 8];
        buf[..len as usize].copy_from_slice(&self.bytes[off..off + len as usize]);
        Some(u64::from_le_bytes(buf))
    }

    /// Writes the low `size` bytes of `value` at `addr`, little-endian.
    ///
    /// Returns `false` when any byte of the access is outside the region.
    #[inline]
    pub fn write(&mut self, addr: u64, size: AccessSize, value: u64) -> bool {
        let len = size.bytes();
        if !self.contains(addr, len) {
            return false;
        }
        let off = (addr - self.base) as usize;
        self.bytes[off..off + len as usize].copy_from_slice(&value.to_le_bytes()[..len as usize]);
        true
    }

    /// Borrows `len` raw bytes starting at `addr`.
    pub fn slice(&self, addr: u64, len: u64) -> Option<&[u8]> {
        if !self.contains(addr, len) {
            return None;
        }
        let off = (addr - self.base) as usize;
        Some(&self.bytes[off..off + len as usize])
    }

    /// Mutably borrows `len` raw bytes starting at `addr`.
    pub fn slice_mut(&mut self, addr: u64, len: u64) -> Option<&mut [u8]> {
        if !self.contains(addr, len) {
            return None;
        }
        let off = (addr - self.base) as usize;
        Some(&mut self.bytes[off..off + len as usize])
    }
}

/// Whether `addr` encodes an out-of-bounds descriptor.
#[inline]
pub const fn is_oob_zone(addr: u64) -> bool {
    addr >= OOB_ZONE_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_round_trips_all_access_sizes() {
        let mut r = Region::new(RegionKind::Heap, 0x1000, 64);
        for (size, value) in [
            (AccessSize::B1, 0xABu64),
            (AccessSize::B2, 0xBEEF),
            (AccessSize::B4, 0xDEAD_BEEF),
            (AccessSize::B8, 0x0123_4567_89AB_CDEF),
        ] {
            assert!(r.write(0x1008, size, value));
            assert_eq!(r.read(0x1008, size), Some(value));
        }
    }

    #[test]
    fn region_truncates_to_access_width() {
        let mut r = Region::new(RegionKind::Heap, 0, 16);
        assert!(r.write(0, AccessSize::B8, 0));
        assert!(r.write(0, AccessSize::B1, 0x1FF));
        assert_eq!(r.read(0, AccessSize::B8), Some(0xFF));
    }

    #[test]
    fn region_rejects_out_of_range_accesses() {
        let mut r = Region::new(RegionKind::Stack, 0x100, 8);
        assert_eq!(r.read(0xFF, AccessSize::B1), None);
        assert_eq!(r.read(0x108, AccessSize::B1), None);
        assert_eq!(r.read(0x101, AccessSize::B8), None);
        assert!(!r.write(0x105, AccessSize::B4, 1));
        // The final in-bounds byte is still writable.
        assert!(r.write(0x107, AccessSize::B1, 1));
    }

    #[test]
    fn region_rejects_wrapping_accesses() {
        let r = Region::new(RegionKind::Heap, 0x1000, 64);
        assert_eq!(r.read(u64::MAX - 2, AccessSize::B8), None);
        assert!(!r.contains(u64::MAX, 8));
    }

    #[test]
    fn little_endian_layout_is_observable_bytewise() {
        let mut r = Region::new(RegionKind::Global, 0, 8);
        assert!(r.write(0, AccessSize::B4, 0x0403_0201));
        assert_eq!(r.read(0, AccessSize::B1), Some(0x01));
        assert_eq!(r.read(1, AccessSize::B1), Some(0x02));
        assert_eq!(r.read(2, AccessSize::B1), Some(0x03));
        assert_eq!(r.read(3, AccessSize::B1), Some(0x04));
    }

    #[test]
    fn oob_zone_is_disjoint_from_regions() {
        assert!(is_oob_zone(OOB_ZONE_BASE));
        assert!(!is_oob_zone(STACK_BASE + 0x100_0000));
        // Any mapped region must end far below the zone.
        let r = Region::new(RegionKind::Stack, STACK_BASE, 64 << 20);
        assert!(!is_oob_zone(r.end()));
    }
}
