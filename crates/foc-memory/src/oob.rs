//! Out-of-bounds pointer registry.
//!
//! CRED's key enhancement over the original Jones & Kelly scheme is that
//! pointer arithmetic which leaves a data unit does not immediately abort:
//! the result is replaced with a pointer to an *out-of-bounds object* that
//! records the intended address and the referent unit. The program may
//! hold, copy, compare, and further offset such a pointer — only
//! *dereferencing* it is a memory error. Arithmetic that brings the
//! intended address back inside the referent restores an ordinary pointer.
//!
//! We reproduce this with a registry of descriptors addressed through a
//! reserved zone of the virtual address space (see [`crate::addr`]). The
//! encoded address can be stored to memory and reloaded like any other
//! 8-byte value without losing the association, exactly as CRED's
//! descriptor pointers survive a round trip through memory.

use std::collections::HashMap;

use crate::addr::{OOB_STRIDE, OOB_ZONE_BASE};
use crate::unit::UnitId;

/// Identifier of an out-of-bounds descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OobId(pub u32);

/// A single out-of-bounds descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobEntry {
    /// The unit the pointer was derived from.
    pub referent: UnitId,
    /// Base address of the referent at the time of derivation.
    pub referent_base: u64,
    /// Size of the referent at the time of derivation.
    pub referent_size: u64,
    /// The address the program arithmetic actually produced.
    pub intended: u64,
}

impl OobEntry {
    /// Byte offset of the intended address relative to the referent base.
    ///
    /// Negative when the pointer underflows the unit.
    pub fn offset(&self) -> i64 {
        self.intended.wrapping_sub(self.referent_base) as i64
    }
}

/// Registry of live out-of-bounds descriptors.
///
/// Descriptors are deduplicated on `(referent, intended)`, so repeatedly
/// computing the same out-of-bounds pointer (e.g. in a loop) does not grow
/// the registry. When a data unit dies the memory space purges its
/// descriptors and the slots are recycled; a stale encoded address held by
/// the guest across its referent's death may afterwards decode to an
/// unrelated descriptor, which is harmless — dereferencing it was already a
/// memory error, and the policy layer treats it as such either way. (CRED
/// leaks its out-of-bounds objects instead; recycling keeps multi-day
/// stability runs in bounded memory.)
#[derive(Debug, Clone, Default)]
pub struct OobRegistry {
    entries: Vec<Option<OobEntry>>,
    dedup: HashMap<(UnitId, u64), OobId>,
    by_unit: HashMap<UnitId, Vec<OobId>>,
    free: Vec<OobId>,
    live: usize,
}

impl OobRegistry {
    /// Creates an empty registry.
    pub fn new() -> OobRegistry {
        OobRegistry::default()
    }

    /// Registers (or finds) the descriptor for `intended` relative to the
    /// given referent, returning the encoded address for the guest.
    pub fn intern(
        &mut self,
        referent: UnitId,
        referent_base: u64,
        referent_size: u64,
        intended: u64,
    ) -> u64 {
        let key = (referent, intended);
        let id = if let Some(&id) = self.dedup.get(&key) {
            id
        } else {
            let entry = OobEntry {
                referent,
                referent_base,
                referent_size,
                intended,
            };
            let id = if let Some(id) = self.free.pop() {
                self.entries[id.0 as usize] = Some(entry);
                id
            } else {
                self.entries.push(Some(entry));
                OobId((self.entries.len() - 1) as u32)
            };
            self.dedup.insert(key, id);
            self.by_unit.entry(referent).or_default().push(id);
            self.live += 1;
            id
        };
        encode(id)
    }

    /// Decodes a guest address in the OOB zone back to its descriptor.
    ///
    /// Returns `None` for addresses that are in the zone but do not
    /// correspond to a registered descriptor (a wild pointer manufactured
    /// by the guest).
    pub fn decode(&self, addr: u64) -> Option<&OobEntry> {
        let id = decode(addr)?;
        self.entries.get(id.0 as usize)?.as_ref()
    }

    /// Drops every descriptor derived from `unit`, recycling their slots.
    pub fn purge_unit(&mut self, unit: UnitId) {
        let Some(ids) = self.by_unit.remove(&unit) else {
            return;
        };
        for id in ids {
            if let Some(entry) = self.entries[id.0 as usize].take() {
                self.dedup.remove(&(entry.referent, entry.intended));
                self.free.push(id);
                self.live -= 1;
            }
        }
    }

    /// Number of live descriptors.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no descriptors exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// Encodes a descriptor id as a guest address.
#[inline]
fn encode(id: OobId) -> u64 {
    OOB_ZONE_BASE + id.0 as u64 * OOB_STRIDE
}

/// Decodes a guest address to a descriptor id, if exactly on a stride.
#[inline]
fn decode(addr: u64) -> Option<OobId> {
    if addr < OOB_ZONE_BASE {
        return None;
    }
    let off = addr - OOB_ZONE_BASE;
    if !off.is_multiple_of(OOB_STRIDE) {
        return None;
    }
    Some(OobId((off / OOB_STRIDE) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips() {
        let mut reg = OobRegistry::new();
        let addr = reg.intern(UnitId(7), 1000, 16, 1024);
        let entry = reg.decode(addr).unwrap();
        assert_eq!(entry.referent, UnitId(7));
        assert_eq!(entry.intended, 1024);
        assert_eq!(entry.offset(), 24);
    }

    #[test]
    fn intern_deduplicates() {
        let mut reg = OobRegistry::new();
        let a = reg.intern(UnitId(1), 0x1000, 8, 0x1010);
        let b = reg.intern(UnitId(1), 0x1000, 8, 0x1010);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        let c = reg.intern(UnitId(1), 0x1000, 8, 0x1018);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn underflow_offsets_are_negative() {
        let mut reg = OobRegistry::new();
        let addr = reg.intern(UnitId(2), 0x2000, 8, 0x1FF0);
        assert_eq!(reg.decode(addr).unwrap().offset(), -16);
    }

    #[test]
    fn purge_unit_recycles_slots() {
        let mut reg = OobRegistry::new();
        let a = reg.intern(UnitId(1), 0x1000, 8, 0x1010);
        let _b = reg.intern(UnitId(2), 0x2000, 8, 0x2010);
        assert_eq!(reg.len(), 2);
        reg.purge_unit(UnitId(1));
        assert_eq!(reg.len(), 1);
        assert!(reg.decode(a).is_none());
        // The freed slot is reused by the next intern.
        let c = reg.intern(UnitId(3), 0x3000, 8, 0x3010);
        assert_eq!(c, a, "slot must be recycled");
        assert_eq!(reg.decode(c).unwrap().referent, UnitId(3));
    }

    #[test]
    fn purge_unknown_unit_is_noop() {
        let mut reg = OobRegistry::new();
        reg.intern(UnitId(1), 0, 8, 16);
        reg.purge_unit(UnitId(99));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn decode_rejects_wild_zone_addresses() {
        let mut reg = OobRegistry::new();
        reg.intern(UnitId(1), 0, 8, 16);
        // Mis-aligned within the zone.
        assert!(reg.decode(OOB_ZONE_BASE + 3).is_none());
        // Aligned but never interned.
        assert!(reg.decode(OOB_ZONE_BASE + 100 * OOB_STRIDE).is_none());
        // Not in the zone at all.
        assert!(reg.decode(0x1234).is_none());
    }
}
