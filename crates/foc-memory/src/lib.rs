//! Memory substrate for failure-oblivious computing.
//!
//! This crate implements the runtime half of the system described in
//! *Enhancing Server Availability and Security Through Failure-Oblivious
//! Computing* (Rinard et al., OSDI 2004): a byte-addressable simulated
//! address space partitioned into data units, an object table in the style
//! of Jones & Kelly as enhanced by Ruwase & Lam (CRED), an out-of-bounds
//! pointer registry, and the access policies under evaluation:
//!
//! * [`Mode::Standard`] — unchecked accesses; out-of-bounds writes corrupt
//!   neighbouring memory exactly as an unsafe C compiler would allow.
//! * [`Mode::BoundsCheck`] — every access is checked against the object
//!   table; the first violation terminates the computation (the CRED
//!   safe-C compiler behaviour).
//! * [`Mode::FailureOblivious`] — invalid writes are discarded and invalid
//!   reads return a manufactured value sequence, so execution continues
//!   (the paper's contribution).
//! * [`Mode::Boundless`] — the §5.1 variant that stores out-of-bounds
//!   writes in a hash table indexed by data unit and offset, and returns
//!   them for matching out-of-bounds reads.
//! * [`Mode::Redirect`] — the §5.1 variant that redirects out-of-bounds
//!   accesses back into the accessed data unit at a wrapped offset.
//!
//! The crate is independent of any particular guest language; the `foc-vm`
//! crate drives it with the memory traffic of compiled MiniC programs.

pub mod addr;
pub mod heap;
pub mod log;
pub mod manufacture;
pub mod oob;
pub mod page;
pub mod policy;
pub mod report;
pub mod space;
pub mod store;
pub mod table;
pub mod unit;

pub use addr::{AccessSize, RegionKind, OOB_ZONE_BASE};
pub use heap::HeapError;
pub use log::{ErrorKind, MemoryErrorLog, MemoryErrorRecord};
pub use manufacture::{Manufacturer, ValueSequence};
pub use oob::{OobId, OobRegistry};
pub use page::{LookupLayer, PageHit, PageMap, LOOKUP_ENV, PAGE_SHIFT, PAGE_SIZE};
pub use policy::{BoundlessStore, Mode};
pub use report::{summarize, LogReport, SiteReport};
pub use space::{
    AccessCtx, MemConfig, MemFault, MemorySpace, ReadOutcome, SpaceStats, WriteOutcome,
    FRAME_GUARD_SIZE,
};
pub use store::UnitStore;
pub use table::{
    AutoTable, BTreeTable, FlatTable, ObjectTable, Placement, SplayTable, TableKind, AUTO_PROMOTE,
    TABLE_ENV,
};
pub use unit::{DataUnit, UnitId, UnitKind};
