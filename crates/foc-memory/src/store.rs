//! The arena-backed unit store.
//!
//! Every [`crate::space::MemorySpace`] owns one [`UnitStore`]: a
//! generational slab holding all of the space's [`DataUnit`]s. The store
//! exists to keep per-machine allocator traffic near zero at farm scale —
//! thousands of simulated server processes each carry a store, so a
//! per-unit `Box` or per-label `String` multiplies into real host heap
//! churn:
//!
//! * units live inline in one `Vec` (the slab), addressed by the slot
//!   half of their [`UnitId`];
//! * vacated slots form an **intrusive** free list threaded through the
//!   slab itself — no side `Vec<u32>` of free indices to grow and shrink;
//! * debug labels (global/variable names) are appended to one shared
//!   string arena per store instead of one `String` per unit (arena
//!   allocation, not interning — repeated labels store repeated bytes,
//!   which is still far cheaper than one heap box per unit);
//! * each slot carries a **generation**, bumped on reuse and packed into
//!   the ids it mints, so a stale id held across its unit's death and the
//!   slot's recycling resolves to `None` instead of aliasing the slot's
//!   new occupant.
//!
//! Dead units stay readable (for dangling-pointer diagnostics) until their
//! slot is actually reused, matching the behaviour the error log and the
//! out-of-bounds registry were built against.

use crate::unit::{DataUnit, UnitId, UnitKind};

/// Sentinel for "no next free slot".
const NONE: u32 = u32::MAX;

/// One slab slot: the unit, the intrusive free link, and the label span
/// into the store's string arena. The slot's current generation is not
/// stored separately — it *is* `unit.id.generation()`, so the id check
/// in `get`/`kill`/`label` has a single source of truth.
#[derive(Debug, Clone)]
struct Slot {
    unit: DataUnit,
    /// Next vacant slot when this slot is on the free list.
    next_free: u32,
    /// `(offset, len)` into [`UnitStore::label_arena`]; `len == 0` means
    /// unlabelled.
    label: (u32, u32),
}

/// Generational slab of data units with arena-allocated labels.
/// `Clone` snapshots the whole slab (boot checkpoints).
#[derive(Debug, Clone)]
pub struct UnitStore {
    slots: Vec<Slot>,
    /// Head of the intrusive free list (`NONE` when full).
    free_head: u32,
    /// Number of live units.
    live: usize,
    /// Shared label text; spans never move (append-only).
    label_arena: String,
}

impl Default for UnitStore {
    fn default() -> UnitStore {
        UnitStore::new()
    }
}

impl UnitStore {
    /// Creates an empty store.
    pub fn new() -> UnitStore {
        UnitStore {
            slots: Vec::new(),
            free_head: NONE,
            live: 0,
            label_arena: String::new(),
        }
    }

    /// Allocates a live unit, recycling a vacant slot when one exists.
    /// The returned id carries the slot's current generation.
    ///
    /// `#[inline]` throughout the alloc/kill/get trio: these sit on the
    /// per-access hot path of every checked machine, and without
    /// cross-crate inlining the call overhead alone costs more than the
    /// slab work.
    #[inline]
    pub fn alloc(&mut self, base: u64, size: u64, kind: UnitKind, label: Option<&str>) -> UnitId {
        let label_span = match label {
            Some(text) if !text.is_empty() => {
                let offset = self.label_arena.len() as u32;
                self.label_arena.push_str(text);
                (offset, text.len() as u32)
            }
            _ => (0, 0),
        };
        self.live += 1;
        if self.free_head != NONE {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            let id = UnitId::new(index, slot.unit.id.generation().wrapping_add(1));
            self.free_head = slot.next_free;
            *slot = Slot {
                unit: DataUnit {
                    id,
                    base,
                    size,
                    kind,
                    live: true,
                },
                next_free: NONE,
                label: label_span,
            };
            return id;
        }
        let index = self.slots.len() as u32;
        let id = UnitId::new(index, 0);
        self.slots.push(Slot {
            unit: DataUnit {
                id,
                base,
                size,
                kind,
                live: true,
            },
            next_free: NONE,
            label: label_span,
        });
        id
    }

    /// Marks the unit dead and queues its slot for recycling. The unit
    /// stays readable through [`UnitStore::get`] until the slot is
    /// actually reused. Returns the unit's placement base.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not name a live unit (killing twice, or
    /// killing through a stale id, is a space-layer bug).
    #[inline]
    pub fn kill(&mut self, id: UnitId) -> u64 {
        let index = id.slot();
        let slot = &mut self.slots[index as usize];
        assert!(
            slot.unit.id == id && slot.unit.live,
            "unit {id} is stale or already dead"
        );
        slot.unit.live = false;
        slot.next_free = self.free_head;
        self.free_head = index;
        self.live -= 1;
        slot.unit.base
    }

    /// Resolves an id to its unit — live or dead-but-not-yet-recycled.
    /// Returns `None` when the slot has been recycled under a newer
    /// generation (or never existed).
    #[inline]
    pub fn get(&self, id: UnitId) -> Option<&DataUnit> {
        let slot = self.slots.get(id.slot() as usize)?;
        if slot.unit.id == id {
            Some(&slot.unit)
        } else {
            None
        }
    }

    /// The arena-allocated debug label of a unit, when it has one.
    #[inline]
    pub fn label(&self, id: UnitId) -> Option<&str> {
        let slot = self.slots.get(id.slot() as usize)?;
        if slot.unit.id != id || slot.label.1 == 0 {
            return None;
        }
        let (offset, len) = (slot.label.0 as usize, slot.label.1 as usize);
        Some(&self.label_arena[offset..offset + len])
    }

    /// Number of live units.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Number of slab slots (live + recyclable) — the arena's footprint.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of label text in the arena.
    pub fn label_bytes(&self) -> usize {
        self.label_arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_round_trip() {
        let mut s = UnitStore::new();
        let a = s.alloc(0x1000, 16, UnitKind::Heap, None);
        let b = s.alloc(0x2000, 32, UnitKind::Global, Some("counter"));
        assert_eq!(s.live_len(), 2);
        assert_eq!(s.get(a).unwrap().base, 0x1000);
        assert_eq!(s.get(b).unwrap().size, 32);
        assert_eq!(s.get(b).unwrap().id, b);
        assert_eq!(s.label(a), None);
        assert_eq!(s.label(b), Some("counter"));
    }

    #[test]
    fn dead_units_stay_readable_until_recycled() {
        let mut s = UnitStore::new();
        let a = s.alloc(0x1000, 16, UnitKind::Heap, None);
        assert_eq!(s.kill(a), 0x1000);
        assert_eq!(s.live_len(), 0);
        // Still resolvable, flagged dead — dangling diagnostics depend on
        // this window.
        let dead = s.get(a).unwrap();
        assert!(!dead.live);
        assert_eq!(dead.base, 0x1000);
        // Recycling the slot retires the old id.
        let b = s.alloc(0x3000, 8, UnitKind::Stack, None);
        assert_eq!(b.slot(), a.slot(), "slot must be recycled");
        assert_eq!(b.generation(), a.generation() + 1);
        assert!(s.get(a).is_none(), "stale id must not alias");
        assert_eq!(s.get(b).unwrap().base, 0x3000);
    }

    #[test]
    fn free_list_is_intrusive_and_lifo() {
        let mut s = UnitStore::new();
        let ids: Vec<UnitId> = (0..4)
            .map(|i| s.alloc(i * 64, 16, UnitKind::Heap, None))
            .collect();
        assert_eq!(s.slot_count(), 4);
        for &id in &ids {
            s.kill(id);
        }
        // Reuse consumes the most recently freed slot first and never
        // grows the slab.
        let r = s.alloc(0x9000, 16, UnitKind::Heap, None);
        assert_eq!(r.slot(), ids[3].slot());
        assert_eq!(s.slot_count(), 4);
        for _ in 0..3 {
            s.alloc(0xA000, 16, UnitKind::Heap, None);
        }
        assert_eq!(s.slot_count(), 4);
        let grown = s.alloc(0xB000, 16, UnitKind::Heap, None);
        assert_eq!(grown.slot(), 4, "slab grows only when the free list is dry");
    }

    #[test]
    fn generation_wraps_without_losing_the_slot() {
        let mut s = UnitStore::new();
        let mut id = s.alloc(0, 8, UnitKind::Heap, None);
        for i in 0..600u64 {
            s.kill(id);
            id = s.alloc(i, 8, UnitKind::Heap, None);
            assert_eq!(id.slot(), 0);
        }
        assert_eq!(s.slot_count(), 1);
        assert_eq!(s.get(id).unwrap().base, 599);
    }

    #[test]
    fn labels_share_one_arena() {
        let mut s = UnitStore::new();
        let ids: Vec<UnitId> = (0..16)
            .map(|i| s.alloc(i * 32, 8, UnitKind::Global, Some("g")))
            .collect();
        assert_eq!(s.label_bytes(), 16);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(s.label(*id), Some("g"), "unit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "stale or already dead")]
    fn double_kill_is_a_bug() {
        let mut s = UnitStore::new();
        let a = s.alloc(0, 8, UnitKind::Heap, None);
        s.kill(a);
        s.kill(a);
    }
}
