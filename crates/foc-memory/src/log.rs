//! The memory-error log.
//!
//! §3: "our compiler can optionally augment the generated code to produce
//! a log containing information about the program's attempts to commit
//! memory errors. This log may help administrators to detect and respond
//! appropriately to the presence of such errors." The stability studies in
//! §4 rely on this log (e.g. discovering that Sendmail commits a memory
//! error on every wake-up, and that Midnight Commander commits one on every
//! blank configuration line).

use std::fmt;

use crate::addr::AccessSize;
use crate::unit::UnitId;

/// Classification of a logged memory error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// A read outside every live data unit.
    InvalidRead,
    /// A write outside every live data unit.
    InvalidWrite,
    /// A read through a pointer whose referent has been freed.
    DanglingRead,
    /// A write through a pointer whose referent has been freed.
    DanglingWrite,
    /// A `free` of a pointer that is not the base of a live heap unit.
    InvalidFree,
}

impl ErrorKind {
    /// Whether the error is a read.
    pub fn is_read(self) -> bool {
        matches!(self, ErrorKind::InvalidRead | ErrorKind::DanglingRead)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::InvalidRead => "invalid read",
            ErrorKind::InvalidWrite => "invalid write",
            ErrorKind::DanglingRead => "dangling read",
            ErrorKind::DanglingWrite => "dangling write",
            ErrorKind::InvalidFree => "invalid free",
        };
        f.write_str(s)
    }
}

/// One logged attempt to commit a memory error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryErrorRecord {
    /// Monotone sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: ErrorKind,
    /// The guest address of the attempted access (the *intended* address
    /// for accesses through out-of-bounds descriptors).
    pub addr: u64,
    /// Width of the attempted access.
    pub size: AccessSize,
    /// The data unit the pointer was derived from, when known.
    pub referent: Option<UnitId>,
    /// Offset from the referent base, when known.
    pub offset: Option<i64>,
    /// Guest function index active at the time of the access.
    pub func: u32,
    /// Guest program counter at the time of the access.
    pub pc: u32,
}

/// Append-only log of memory errors with bounded retention and
/// **batched eviction**.
///
/// Long stability runs commit millions of errors; the log keeps exact
/// counters forever but retains only the most recent `capacity` records.
///
/// The seed implementation evicted eagerly — one `Vec::remove(0)` per
/// record once full, an O(capacity) memmove on *every* violation — which
/// is what held manufactured-value loops to a few million instructions
/// per host second. This version batches the bookkeeping instead: the
/// buffer is append-only scratch until it reaches twice the retention
/// capacity, at which point the stale front half is reclaimed in one
/// drain. Appends are therefore O(1) amortized, and the observable state
/// — the retained window, totals, and drop count — is identical to the
/// eager path at every step (the buffer's live view is always its last
/// `min(len, capacity)` entries; the `violation_batching` test battery
/// diffs it against an eager reference implementation).
#[derive(Debug, Clone)]
pub struct MemoryErrorLog {
    /// Retained window plus not-yet-reclaimed evicted prefix: the
    /// observable records are the last `min(len, capacity)` entries.
    buffer: Vec<MemoryErrorRecord>,
    capacity: usize,
    next_seq: u64,
    reads: u64,
    writes: u64,
}

impl MemoryErrorLog {
    /// Creates a log retaining at most `capacity` records.
    pub fn new(capacity: usize) -> MemoryErrorLog {
        MemoryErrorLog {
            buffer: Vec::new(),
            capacity,
            next_seq: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Appends a record, logically evicting the oldest if at capacity
    /// (physical reclamation happens in batches).
    #[allow(clippy::too_many_arguments)] // mirrors the access-site tuple
    #[inline]
    pub fn record(
        &mut self,
        kind: ErrorKind,
        addr: u64,
        size: AccessSize,
        referent: Option<UnitId>,
        offset: Option<i64>,
        func: u32,
        pc: u32,
    ) {
        if kind.is_read() {
            self.reads += 1;
        } else {
            self.writes += 1;
        }
        let rec = MemoryErrorRecord {
            seq: self.next_seq,
            kind,
            addr,
            size,
            referent,
            offset,
            func,
            pc,
        };
        self.next_seq += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buffer.len() >= self.capacity * 2 {
            self.compact();
        }
        self.buffer.push(rec);
    }

    /// Reclaims the logically-evicted prefix in one batch, leaving only
    /// the retained window.
    #[cold]
    fn compact(&mut self) {
        let evicted = self.buffer.len() - self.capacity;
        self.buffer.drain(..evicted);
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> &[MemoryErrorRecord] {
        let retained = self.buffer.len().min(self.capacity);
        &self.buffer[self.buffer.len() - retained..]
    }

    /// Total number of errors ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Total invalid/dangling reads ever recorded.
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Total invalid/dangling writes ever recorded.
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Number of records evicted (logically or physically) due to the
    /// retention limit.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.records().len() as u64
    }

    /// Clears retained records and counters.
    pub fn clear(&mut self) {
        self.buffer.clear();
        self.next_seq = 0;
        self.reads = 0;
        self.writes = 0;
    }
}

impl Default for MemoryErrorLog {
    fn default() -> MemoryErrorLog {
        MemoryErrorLog::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(log: &mut MemoryErrorLog, kind: ErrorKind, addr: u64) {
        log.record(kind, addr, AccessSize::B1, None, None, 0, 0);
    }

    #[test]
    fn counts_reads_and_writes_separately() {
        let mut log = MemoryErrorLog::new(16);
        push(&mut log, ErrorKind::InvalidRead, 1);
        push(&mut log, ErrorKind::InvalidWrite, 2);
        push(&mut log, ErrorKind::DanglingRead, 3);
        push(&mut log, ErrorKind::DanglingWrite, 4);
        assert_eq!(log.total(), 4);
        assert_eq!(log.total_reads(), 2);
        assert_eq!(log.total_writes(), 2);
    }

    #[test]
    fn retention_evicts_oldest_but_keeps_totals() {
        let mut log = MemoryErrorLog::new(2);
        push(&mut log, ErrorKind::InvalidWrite, 10);
        push(&mut log, ErrorKind::InvalidWrite, 11);
        push(&mut log, ErrorKind::InvalidWrite, 12);
        assert_eq!(log.total(), 3);
        assert_eq!(log.dropped(), 1);
        let addrs: Vec<u64> = log.records().iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![11, 12]);
        assert_eq!(log.records()[0].seq, 1);
    }

    #[test]
    fn zero_capacity_log_only_counts() {
        let mut log = MemoryErrorLog::new(0);
        push(&mut log, ErrorKind::InvalidRead, 1);
        assert_eq!(log.total(), 1);
        assert!(log.records().is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut log = MemoryErrorLog::new(4);
        push(&mut log, ErrorKind::InvalidRead, 1);
        log.clear();
        assert_eq!(log.total(), 0);
        assert!(log.records().is_empty());
    }
}
