//! The paged lookup layer: shift+mask in-bounds resolution.
//!
//! The object table answers "which data unit contains this address?" with
//! a search — splay rotations, a B-tree descent, or a binary search. Real
//! memory subsystems answer the same question with a page table: divide
//! the address space into fixed power-of-two pages and key a flat map by
//! `addr >> PAGE_SHIFT`, so the common case is one shift, one bounds
//! mask, and one array load. This module is that layer for the simulated
//! space: a per-region page map sitting *above* the object table, which
//! stays authoritative and serves as the fallback for pages the map
//! cannot answer alone.
//!
//! Each [`PAGE_SIZE`]-byte page of guest address space carries two words
//! of bookkeeping: how many live units intersect the page, and a
//! candidate unit id. The three answers a lookup can produce:
//!
//! * **guard page** — no live unit intersects the page. Any unit
//!   containing the queried address would necessarily intersect its
//!   page, so the access is a violation with no referent and routes
//!   straight to the `#[cold]` continuation handlers, exactly as an
//!   object-table miss does. Every unmapped page is a guard page, so
//!   units whose neighbours live on other pages are automatically
//!   fenced on both sides.
//! * **single unit** — exactly one unit intersects the page (the
//!   interior of a multi-page allocation, or a lone unit on its page).
//!   The candidate id resolves through the generation-checked unit
//!   store; a bounds compare against the unit finishes the check with
//!   no search at all. An address on the page but outside the unit is
//!   a definitive miss for the same intersection argument as above.
//! * **fallback** — several small units share the page, or a unit
//!   boundary is torn across it. The candidate (the most recently
//!   inserted or most recently hit unit on the page) is probed first —
//!   containment in any live unit is proof enough, since units never
//!   overlap — and only a candidate miss pays the full table search.
//!
//! The map is maintained by the space's unit bookkeeping (insert on
//! allocation, invalidate on death) and is only an accelerator: every
//! answer it gives is provably the answer the object table would give,
//! which is what the paged-vs-table equivalence battery pins end to end.

use std::fmt;

use crate::addr;
use crate::unit::UnitId;

/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Bytes per page of guest address space (4 KiB, the classic small page).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Which in-bounds lookup path the space runs.
///
/// Like the execution tier, this is a pure performance axis: both layers
/// are observationally identical (transcripts, stats, log records), so it
/// is threaded through configs and bench CLIs but excluded from sweep
/// fingerprints and report-equality checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LookupLayer {
    /// Every checked access searches the object table (the historical
    /// path; default).
    #[default]
    Table,
    /// Checked accesses resolve through the per-space page map first and
    /// fall back to the object table only for shared or torn pages.
    Paged,
}

impl LookupLayer {
    /// Every layer, in bench-report order.
    pub const ALL: [LookupLayer; 2] = [LookupLayer::Table, LookupLayer::Paged];

    /// Stable lower-case name (bench rows, CLI flags, env).
    pub fn name(self) -> &'static str {
        match self {
            LookupLayer::Table => "table",
            LookupLayer::Paged => "paged",
        }
    }

    /// The layer selected by the [`LOOKUP_ENV`] environment variable,
    /// or the default. Like `ExecTier::from_env`, an unknown value is a
    /// configuration error: the process exits with a one-line
    /// diagnostic listing the valid layers rather than silently running
    /// a different lookup path than the operator asked for (the layers
    /// are observationally identical, but the bench gates are not).
    /// Read once per process. Library embedders who want an error value
    /// instead of an exit parse through `FromStr` (what
    /// `foc-servers`' `BootSpec::from_env` does).
    pub fn from_env() -> LookupLayer {
        static LAYER: std::sync::OnceLock<LookupLayer> = std::sync::OnceLock::new();
        *LAYER.get_or_init(|| match std::env::var(LOOKUP_ENV) {
            Ok(v) => v.parse().unwrap_or_else(|e| {
                eprintln!("{LOOKUP_ENV}: {e}");
                std::process::exit(2);
            }),
            Err(_) => LookupLayer::default(),
        })
    }
}

/// Environment variable selecting the in-bounds lookup layer.
pub const LOOKUP_ENV: &str = "FOC_LOOKUP";

impl fmt::Display for LookupLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for LookupLayer {
    type Err = String;

    fn from_str(s: &str) -> Result<LookupLayer, String> {
        match s.to_ascii_lowercase().as_str() {
            "table" => Ok(LookupLayer::Table),
            "paged" => Ok(LookupLayer::Paged),
            other => Err(format!(
                "unknown lookup layer {other:?} (expected table or paged)"
            )),
        }
    }
}

/// What the page map knows about an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageHit {
    /// No live unit intersects the page: the access is a violation with
    /// no referent. The table would answer `None`; skip the search.
    Guard,
    /// Exactly one live unit intersects the page; a bounds compare
    /// against it is the complete answer.
    One(UnitId),
    /// The page is shared or its candidate is unknown: probe the hint
    /// (if any), then fall back to the object table.
    Table(Option<UnitId>),
}

/// Candidate sentinel: no unit id recorded for the page.
const NO_UNIT: u32 = u32::MAX;

/// Per-page bookkeeping: intersecting-unit count plus a candidate id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageEntry {
    cand: u32,
    count: u32,
}

const EMPTY: PageEntry = PageEntry {
    cand: NO_UNIT,
    count: 0,
};

/// Committed pages are grown in chunks of this many entries (one chunk
/// is 512 bytes of host memory covering 256 KiB of guest space).
const CHUNK: u64 = 64;

/// A lazily committed window of page entries, in the style of
/// [`crate::addr::Region`]'s committed byte window: a fresh space pays
/// nothing, and a space only commits entries around the pages its units
/// actually touch. Growth is geometric at both ends so stack-shaped
/// (downward) and heap-shaped (upward) unit churn both amortise to O(1).
#[derive(Debug, Clone, Default)]
struct PageWindow {
    /// First committed page index (region-relative); meaningful only
    /// when `entries` is non-empty.
    lo: u64,
    entries: Vec<PageEntry>,
}

impl PageWindow {
    /// The entry for `rel`, with uncommitted pages reading as [`EMPTY`].
    #[inline]
    fn get(&self, rel: u64) -> PageEntry {
        match rel.checked_sub(self.lo) {
            Some(off) => *self.entries.get(off as usize).unwrap_or(&EMPTY),
            None => EMPTY,
        }
    }

    /// The committed entry for `rel`, if any (no growth).
    #[inline]
    fn get_mut(&mut self, rel: u64) -> Option<&mut PageEntry> {
        let off = rel.checked_sub(self.lo)?;
        self.entries.get_mut(off as usize)
    }

    /// The entry for `rel`, committing (and growing) as needed.
    fn entry_mut(&mut self, rel: u64) -> &mut PageEntry {
        if self.entries.is_empty() {
            self.lo = rel - (rel % CHUNK);
            self.entries = vec![EMPTY; CHUNK as usize];
        } else if rel < self.lo {
            let needed = self.lo - rel;
            let grow = needed
                .max(self.entries.len() as u64)
                .max(CHUNK)
                .min(self.lo);
            let mut fresh = vec![EMPTY; grow as usize + self.entries.len()];
            fresh[grow as usize..].copy_from_slice(&self.entries);
            self.entries = fresh;
            self.lo -= grow;
        } else if rel >= self.lo + self.entries.len() as u64 {
            let needed = rel + 1 - (self.lo + self.entries.len() as u64);
            let grow = needed.max(self.entries.len() as u64).max(CHUNK);
            self.entries
                .resize(self.entries.len() + grow as usize, EMPTY);
        }
        &mut self.entries[(rel - self.lo) as usize]
    }
}

/// Page bookkeeping for one address region.
#[derive(Debug, Clone)]
struct RegionPages {
    /// First byte of the region (page-aligned by the address layout).
    base: u64,
    /// One past the last byte of the region.
    end: u64,
    win: PageWindow,
}

impl RegionPages {
    fn new(base: u64, len: usize) -> RegionPages {
        debug_assert_eq!(base % PAGE_SIZE, 0, "region base must be page-aligned");
        RegionPages {
            base,
            end: base + len as u64,
            win: PageWindow::default(),
        }
    }

    #[inline]
    fn rel_page(&self, a: u64) -> u64 {
        (a - self.base) >> PAGE_SHIFT
    }
}

/// The per-space page map: one [`RegionPages`] per address region.
///
/// Spaces running [`LookupLayer::Table`] carry an empty (never-updated)
/// map, so the layer axis costs nothing when it is off.
#[derive(Debug, Clone)]
pub struct PageMap {
    globals: RegionPages,
    heap: RegionPages,
    stack: RegionPages,
}

impl PageMap {
    /// An empty map covering the configured region sizes.
    pub fn new(global_len: usize, heap_len: usize, stack_len: usize) -> PageMap {
        PageMap {
            globals: RegionPages::new(addr::GLOBAL_BASE, global_len),
            heap: RegionPages::new(addr::HEAP_BASE, heap_len),
            stack: RegionPages::new(addr::STACK_BASE, stack_len),
        }
    }

    /// The region covering `a`, ordered as the space's own region probe.
    #[inline]
    fn region_for(&self, a: u64) -> Option<&RegionPages> {
        if a >= self.stack.base && a < self.stack.end {
            Some(&self.stack)
        } else if a >= self.heap.base && a < self.heap.end {
            Some(&self.heap)
        } else if a >= self.globals.base && a < self.globals.end {
            Some(&self.globals)
        } else {
            None
        }
    }

    #[inline]
    fn region_for_mut(&mut self, a: u64) -> Option<&mut RegionPages> {
        if a >= self.stack.base && a < self.stack.end {
            Some(&mut self.stack)
        } else if a >= self.heap.base && a < self.heap.end {
            Some(&mut self.heap)
        } else if a >= self.globals.base && a < self.globals.end {
            Some(&mut self.globals)
        } else {
            None
        }
    }

    /// Resolves `a` to what the map knows: one shift, one window probe.
    /// Addresses outside every region (null and wild pointers) are guard
    /// hits — no unit can live there.
    #[inline]
    pub fn hit(&self, a: u64) -> PageHit {
        let Some(r) = self.region_for(a) else {
            return PageHit::Guard;
        };
        let e = r.win.get(r.rel_page(a));
        match e.count {
            0 => PageHit::Guard,
            1 if e.cand != NO_UNIT => PageHit::One(UnitId(e.cand)),
            _ => PageHit::Table((e.cand != NO_UNIT).then_some(UnitId(e.cand))),
        }
    }

    /// Registers a unit placement: every page the unit intersects gains
    /// an intersection count and adopts the unit as its candidate.
    /// Multi-page units fill the contiguous run of entries.
    pub fn cover(&mut self, base: u64, size: u64, unit: UnitId) {
        if size == 0 {
            return; // zero-size units occupy no bytes, hence no pages
        }
        let Some(r) = self.region_for_mut(base) else {
            debug_assert!(false, "unit outside every region: {base:#x}");
            return;
        };
        let (first, last) = (r.rel_page(base), r.rel_page(base + size - 1));
        for page in first..=last {
            let e = r.win.entry_mut(page);
            e.count += 1;
            e.cand = unit.0;
        }
    }

    /// Unregisters a dead unit's placement, restoring guard pages where
    /// it was the last occupant and dropping it as a candidate
    /// elsewhere, so no entry can name a recycled store slot.
    pub fn uncover(&mut self, base: u64, size: u64, unit: UnitId) {
        if size == 0 {
            return;
        }
        let Some(r) = self.region_for_mut(base) else {
            return;
        };
        let (first, last) = (r.rel_page(base), r.rel_page(base + size - 1));
        for page in first..=last {
            let Some(e) = r.win.get_mut(page) else {
                debug_assert!(false, "uncover of an uncommitted page");
                continue;
            };
            debug_assert!(e.count > 0, "uncover of an empty page");
            e.count = e.count.saturating_sub(1);
            if e.count == 0 {
                *e = EMPTY;
            } else if e.cand == unit.0 {
                e.cand = NO_UNIT;
            }
        }
    }

    /// Adopts `unit` as the candidate for `a`'s page after a fallback
    /// search found it — the page-granular analogue of the flat table's
    /// last-hit memo.
    #[inline]
    pub fn note(&mut self, a: u64, unit: UnitId) {
        if let Some(r) = self.region_for_mut(a) {
            let page = r.rel_page(a);
            if let Some(e) = r.win.get_mut(page) {
                if e.count > 0 {
                    e.cand = unit.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PageMap {
        PageMap::new(64 << 10, 256 << 10, 64 << 10)
    }

    #[test]
    fn layer_names_round_trip() {
        for layer in LookupLayer::ALL {
            assert_eq!(layer.name().parse::<LookupLayer>().unwrap(), layer);
        }
        assert_eq!("PAGED".parse::<LookupLayer>().unwrap(), LookupLayer::Paged);
        assert!("tlb".parse::<LookupLayer>().is_err());
        assert_eq!(LookupLayer::default(), LookupLayer::Table);
    }

    #[test]
    fn fresh_map_answers_guard_everywhere() {
        let m = map();
        assert_eq!(m.hit(0), PageHit::Guard); // null, outside every region
        assert_eq!(m.hit(addr::GLOBAL_BASE), PageHit::Guard);
        assert_eq!(m.hit(addr::HEAP_BASE + 123), PageHit::Guard);
        assert_eq!(m.hit(addr::STACK_BASE + (63 << 10)), PageHit::Guard);
    }

    #[test]
    fn single_unit_pages_resolve_without_the_table() {
        let mut m = map();
        let base = addr::HEAP_BASE + 100;
        m.cover(base, 40, UnitId(7));
        assert_eq!(m.hit(base), PageHit::One(UnitId(7)));
        assert_eq!(m.hit(base + 39), PageHit::One(UnitId(7)));
        // Same page, outside the unit: still a One hit — the bounds
        // compare at the space layer turns it into a definitive miss.
        assert_eq!(m.hit(base + 200), PageHit::One(UnitId(7)));
        // A different page entirely: guard.
        assert_eq!(m.hit(base + 2 * PAGE_SIZE), PageHit::Guard);
    }

    #[test]
    fn multi_page_units_fill_a_contiguous_run() {
        let mut m = map();
        let base = addr::HEAP_BASE + PAGE_SIZE + 16;
        let size = 3 * PAGE_SIZE; // spans 4 pages (torn at both ends)
        m.cover(base, size, UnitId(9));
        for off in (0..size).step_by(PAGE_SIZE as usize / 2) {
            assert_eq!(m.hit(base + off), PageHit::One(UnitId(9)));
        }
        // Pages on either side of the run are guards.
        assert_eq!(m.hit(addr::HEAP_BASE), PageHit::Guard);
        assert_eq!(m.hit(base + size + PAGE_SIZE), PageHit::Guard);
        m.uncover(base, size, UnitId(9));
        for off in (0..size).step_by(PAGE_SIZE as usize / 2) {
            assert_eq!(m.hit(base + off), PageHit::Guard);
        }
    }

    #[test]
    fn shared_pages_fall_back_with_the_latest_candidate() {
        let mut m = map();
        let page = addr::HEAP_BASE;
        m.cover(page + 16, 32, UnitId(1));
        m.cover(page + 64, 32, UnitId(2));
        assert_eq!(m.hit(page + 20), PageHit::Table(Some(UnitId(2))));
        // A fallback search that lands on unit 1 re-seeds the candidate.
        m.note(page + 20, UnitId(1));
        assert_eq!(m.hit(page + 70), PageHit::Table(Some(UnitId(1))));
        // Removing the candidate clears it — the page keeps its count
        // but must never name a dead unit; the survivor is found through
        // the table and can be re-adopted via `note`.
        m.uncover(page + 16, 32, UnitId(1));
        assert_eq!(m.hit(page + 70), PageHit::Table(None));
        m.note(page + 70, UnitId(2));
        assert_eq!(m.hit(page + 70), PageHit::One(UnitId(2)));
        m.uncover(page + 64, 32, UnitId(2));
        assert_eq!(m.hit(page + 70), PageHit::Guard);
    }

    #[test]
    fn removing_the_candidate_demotes_to_table_fallback() {
        let mut m = map();
        let page = addr::HEAP_BASE;
        m.cover(page + 16, 32, UnitId(1));
        m.cover(page + 64, 32, UnitId(2));
        // Candidate is unit 2; removing it must not leave its id behind.
        m.uncover(page + 64, 32, UnitId(2));
        assert_eq!(m.hit(page + 20), PageHit::Table(None));
        m.uncover(page + 16, 32, UnitId(1));
        assert_eq!(m.hit(page + 20), PageHit::Guard);
    }

    #[test]
    fn windows_grow_downward_for_stack_churn() {
        let mut m = map();
        let top = addr::STACK_BASE + (64 << 10);
        // Units marching downward from the stack top, as frames push.
        for i in 0..16u64 {
            let base = top - (i + 1) * PAGE_SIZE;
            m.cover(base, 64, UnitId(i as u32));
        }
        for i in 0..16u64 {
            let base = top - (i + 1) * PAGE_SIZE;
            assert_eq!(m.hit(base), PageHit::One(UnitId(i as u32)));
        }
    }

    #[test]
    fn zero_size_units_occupy_no_pages() {
        let mut m = map();
        m.cover(addr::HEAP_BASE + 8, 0, UnitId(1));
        assert_eq!(m.hit(addr::HEAP_BASE + 8), PageHit::Guard);
        m.uncover(addr::HEAP_BASE + 8, 0, UnitId(1));
    }
}
