//! Data units.
//!
//! The checking scheme "maintains a table that maps locations to data units
//! (each struct, array, and variable is a data unit)" (§3). A data unit is
//! the granularity at which bounds are enforced: an access is legal only
//! when it falls entirely inside one live data unit.
//!
//! Units live in the arena-backed [`crate::store::UnitStore`]; a
//! [`UnitId`] names a store slot plus a generation, so recycled slots never
//! alias stale identifiers held by dangling pointers or old descriptors.

use std::fmt;

/// Identifier of a data unit, unique for the lifetime of a memory space.
///
/// The identifier packs a store slot index (low [`UnitId::SLOT_BITS`]
/// bits) with a slot generation (high bits). The generation advances each
/// time a slot is recycled, so an identifier held across its unit's death
/// and the slot's reuse resolves to *nothing* rather than to the unrelated
/// unit now occupying the slot. (The generation wraps at 256; an alias
/// therefore needs 256 reuses of one slot between derivation and use,
/// and even then the confusion is bounded: dereferencing the stale id was
/// already a memory error, and the policy layer treats it as one.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub u32);

impl UnitId {
    /// Bits of the packed representation carrying the slot index.
    pub const SLOT_BITS: u32 = 24;
    /// Maximum representable slot index.
    pub const MAX_SLOT: u32 = (1 << UnitId::SLOT_BITS) - 1;

    /// Packs a slot index and generation into an identifier.
    ///
    /// # Panics
    ///
    /// Panics when `slot` exceeds [`UnitId::MAX_SLOT`] (more than 16M live
    /// unit slots in one space is a harness bug, not a workload).
    #[inline]
    pub fn new(slot: u32, generation: u32) -> UnitId {
        assert!(slot <= UnitId::MAX_SLOT, "unit slot {slot} out of range");
        UnitId(((generation & 0xFF) << UnitId::SLOT_BITS) | slot)
    }

    /// The store slot this identifier names.
    #[inline]
    pub fn slot(self) -> u32 {
        self.0 & UnitId::MAX_SLOT
    }

    /// The slot generation this identifier was minted under.
    #[inline]
    pub fn generation(self) -> u32 {
        self.0 >> UnitId::SLOT_BITS
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation() == 0 {
            write!(f, "u{}", self.slot())
        } else {
            write!(f, "u{}g{}", self.slot(), self.generation())
        }
    }
}

/// Storage class of a data unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// A global variable or string literal; lives for the whole program.
    Global,
    /// A stack-allocated local; dies when its frame is popped.
    Stack,
    /// A heap allocation; dies when freed.
    Heap,
}

/// A single allocation known to the object table.
///
/// Debug labels are *not* stored inline: the owning
/// [`crate::store::UnitStore`] appends them to a shared string arena
/// (see [`crate::store::UnitStore::label`]), so a unit costs no per-unit
/// heap allocation — load-bearing when thousands of machines each
/// maintain their own store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataUnit {
    /// Stable identifier.
    pub id: UnitId,
    /// First byte of the unit.
    pub base: u64,
    /// Size in bytes. Zero-size units are legal (e.g. `malloc(0)`), but no
    /// access inside them is.
    pub size: u64,
    /// Storage class.
    pub kind: UnitKind,
    /// Whether the unit is still live. Dead units stay in the store for
    /// diagnostics (until their slot is recycled) but are removed from the
    /// object table.
    pub live: bool,
}

impl DataUnit {
    /// One past the last byte of the unit.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether the access `[addr, addr + len)` lies entirely inside.
    #[inline]
    pub fn contains_access(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.checked_add(len).is_some_and(|e| e <= self.end())
    }

    /// Whether `addr` points anywhere inside the unit.
    #[inline]
    pub fn contains_addr(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(base: u64, size: u64) -> DataUnit {
        DataUnit {
            id: UnitId(1),
            base,
            size,
            kind: UnitKind::Heap,
            live: true,
        }
    }

    #[test]
    fn access_containment_is_exclusive_at_end() {
        let u = unit(100, 10);
        assert!(u.contains_access(100, 10));
        assert!(u.contains_access(109, 1));
        assert!(!u.contains_access(109, 2));
        assert!(!u.contains_access(110, 1));
        assert!(!u.contains_access(99, 1));
    }

    #[test]
    fn zero_size_unit_admits_no_access() {
        let u = unit(100, 0);
        assert!(!u.contains_access(100, 1));
        assert!(!u.contains_addr(100));
        // A zero-length access is trivially "inside".
        assert!(u.contains_access(100, 0));
    }

    #[test]
    fn containment_rejects_wrapping() {
        let u = unit(u64::MAX - 4, 4);
        assert!(!u.contains_access(u64::MAX - 1, 8));
    }

    #[test]
    fn id_packs_slot_and_generation() {
        let id = UnitId::new(7, 3);
        assert_eq!(id.slot(), 7);
        assert_eq!(id.generation(), 3);
        assert_ne!(id, UnitId::new(7, 4));
        assert_ne!(id, UnitId::new(8, 3));
        // Bare construction (tests, tables) means generation 0.
        assert_eq!(UnitId(7), UnitId::new(7, 0));
        assert_eq!(UnitId::new(UnitId::MAX_SLOT, 255).slot(), UnitId::MAX_SLOT);
    }

    #[test]
    fn id_generation_wraps_at_256() {
        assert_eq!(UnitId::new(1, 256), UnitId::new(1, 0));
        assert_eq!(UnitId::new(1, 257).generation(), 1);
    }

    #[test]
    fn id_display_names_slot_and_nonzero_generation() {
        assert_eq!(UnitId::new(5, 0).to_string(), "u5");
        assert_eq!(UnitId::new(5, 2).to_string(), "u5g2");
    }
}
