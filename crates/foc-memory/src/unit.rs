//! Data units.
//!
//! The checking scheme "maintains a table that maps locations to data units
//! (each struct, array, and variable is a data unit)" (§3). A data unit is
//! the granularity at which bounds are enforced: an access is legal only
//! when it falls entirely inside one live data unit.

use std::fmt;

/// Identifier of a data unit, unique for the lifetime of a memory space.
///
/// Identifiers are never reused, so a dangling pointer's referent can be
/// named in diagnostics even after the unit dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub u32);

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Storage class of a data unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// A global variable or string literal; lives for the whole program.
    Global,
    /// A stack-allocated local; dies when its frame is popped.
    Stack,
    /// A heap allocation; dies when freed.
    Heap,
}

/// A single allocation known to the object table.
#[derive(Debug, Clone)]
pub struct DataUnit {
    /// Stable identifier.
    pub id: UnitId,
    /// First byte of the unit.
    pub base: u64,
    /// Size in bytes. Zero-size units are legal (e.g. `malloc(0)`), but no
    /// access inside them is.
    pub size: u64,
    /// Storage class.
    pub kind: UnitKind,
    /// Whether the unit is still live. Dead units stay in the unit list for
    /// diagnostics but are removed from the object table.
    pub live: bool,
    /// Debug label (variable name, allocation site), used by the error log.
    pub label: Option<String>,
}

impl DataUnit {
    /// One past the last byte of the unit.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether the access `[addr, addr + len)` lies entirely inside.
    #[inline]
    pub fn contains_access(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.checked_add(len).is_some_and(|e| e <= self.end())
    }

    /// Whether `addr` points anywhere inside the unit.
    #[inline]
    pub fn contains_addr(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(base: u64, size: u64) -> DataUnit {
        DataUnit {
            id: UnitId(1),
            base,
            size,
            kind: UnitKind::Heap,
            live: true,
            label: None,
        }
    }

    #[test]
    fn access_containment_is_exclusive_at_end() {
        let u = unit(100, 10);
        assert!(u.contains_access(100, 10));
        assert!(u.contains_access(109, 1));
        assert!(!u.contains_access(109, 2));
        assert!(!u.contains_access(110, 1));
        assert!(!u.contains_access(99, 1));
    }

    #[test]
    fn zero_size_unit_admits_no_access() {
        let u = unit(100, 0);
        assert!(!u.contains_access(100, 1));
        assert!(!u.contains_addr(100));
        // A zero-length access is trivially "inside".
        assert!(u.contains_access(100, 0));
    }

    #[test]
    fn containment_rejects_wrapping() {
        let u = unit(u64::MAX - 4, 4);
        assert!(!u.contains_access(u64::MAX - 1, 8));
    }
}
