//! The memory space: regions, data units, checks, and continuation code.
//!
//! [`MemorySpace`] is the façade the virtual machine drives. Every guest
//! load, store, pointer arithmetic operation, allocation, and stack frame
//! transition goes through it, and the configured [`Mode`] decides what
//! happens at each step:
//!
//! * **checking code** — in the checked modes, each access is resolved
//!   against the object table and the out-of-bounds registry;
//! * **continuation code** — on a violation, the failure-oblivious family
//!   of modes discards the write or manufactures a read value (§3 of the
//!   paper), while Bounds Check mode returns a fatal [`MemFault`].

use std::fmt;

use crate::addr::{self, AccessSize, Region, RegionKind};
use crate::heap::{HeapAllocator, HeapError};
use crate::log::{ErrorKind, MemoryErrorLog};
use crate::manufacture::{Manufacturer, ValueSequence};
use crate::oob::OobRegistry;
use crate::page::{LookupLayer, PageHit, PageMap};
use crate::policy::{BoundlessStore, Mode};
use crate::store::UnitStore;
use crate::table::{ObjectTable, Placement, TableKind};
use crate::unit::{DataUnit, UnitId, UnitKind};

/// First canary token word written at the top of each stack frame.
const CANARY_A: u64 = 0xCAFE_F00D_5AFE_57AC;
/// Second canary token word (stand-in for the saved return address).
const CANARY_B: u64 = 0x004E_70DD_4E55_C00D ^ 0x1111_1111_1111_1111;

/// Bytes reserved above each frame's locals for the canary pair.
pub const FRAME_GUARD_SIZE: u64 = 16;

/// Configuration for a memory space.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Access policy.
    pub mode: Mode,
    /// Size of the global region in bytes.
    pub global_len: usize,
    /// Size of the heap region in bytes.
    pub heap_len: usize,
    /// Size of the stack region in bytes.
    pub stack_len: usize,
    /// Manufactured-value strategy for invalid reads.
    pub sequence: ValueSequence,
    /// Object table backend.
    pub table: TableKind,
    /// In-bounds lookup layer (page map vs direct table search).
    pub lookup: LookupLayer,
    /// Retention capacity of the memory-error log.
    pub log_capacity: usize,
}

impl MemConfig {
    /// A configuration with default sizes for the given mode.
    pub fn with_mode(mode: Mode) -> MemConfig {
        MemConfig {
            mode,
            ..MemConfig::default()
        }
    }

    /// Same configuration with a different manufactured-value strategy —
    /// a first-class sweep axis: the mode search-space grid varies it
    /// alongside the mode and the table backend.
    pub fn with_sequence(mut self, sequence: ValueSequence) -> MemConfig {
        self.sequence = sequence;
        self
    }

    /// Same configuration on a different object-table backend.
    pub fn with_table(mut self, table: TableKind) -> MemConfig {
        self.table = table;
        self
    }

    /// Same configuration on a different in-bounds lookup layer. A pure
    /// performance axis: both layers are observationally identical.
    pub fn with_lookup(mut self, lookup: LookupLayer) -> MemConfig {
        self.lookup = lookup;
        self
    }
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            mode: Mode::FailureOblivious,
            global_len: 4 << 20,
            heap_len: 64 << 20,
            stack_len: 8 << 20,
            sequence: ValueSequence::default(),
            table: TableKind::Splay,
            lookup: LookupLayer::Table,
            log_capacity: 4096,
        }
    }
}

/// Fatal memory faults. In Standard mode these model hardware traps and
/// allocator aborts; in Bounds Check mode [`MemFault::MemoryError`] models
/// the CRED compiler's terminate-with-message behaviour. The
/// failure-oblivious family never raises `MemoryError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemFault {
    /// Access to an unmapped address (Standard mode only).
    Segv {
        /// Faulting address.
        addr: u64,
    },
    /// A checked-mode violation that terminates the program (Bounds Check).
    MemoryError {
        /// Violation classification.
        kind: ErrorKind,
        /// Intended access address.
        addr: u64,
        /// Referent unit, when the pointer's provenance is known.
        referent: Option<UnitId>,
        /// Guest function index at the fault.
        func: u32,
        /// Guest program counter at the fault.
        pc: u32,
    },
    /// The frame canary was overwritten: a Standard-mode stack smash. The
    /// trampled bytes are reported so callers can recognise
    /// attacker-controlled data (i.e. a control-flow hijack).
    StackSmashed {
        /// Address of the damaged canary word.
        addr: u64,
        /// Value found in place of the canary.
        found: u64,
    },
    /// Stack region exhausted.
    StackOverflow,
    /// Allocator failure or corruption (see [`HeapError`]).
    Heap(HeapError),
    /// Global region exhausted (program image too large).
    GlobalExhausted,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Segv { addr } => write!(f, "segmentation violation at {addr:#x}"),
            MemFault::MemoryError {
                kind, addr, func, ..
            } => {
                write!(f, "memory error: {kind} at {addr:#x} in function {func}")
            }
            MemFault::StackSmashed { addr, found } => {
                write!(f, "stack smashed at {addr:#x} (found {found:#018x})")
            }
            MemFault::StackOverflow => write!(f, "stack overflow"),
            MemFault::Heap(e) => write!(f, "heap fault: {e}"),
            MemFault::GlobalExhausted => write!(f, "global region exhausted"),
        }
    }
}

impl From<HeapError> for MemFault {
    fn from(e: HeapError) -> MemFault {
        MemFault::Heap(e)
    }
}

/// Guest context attached to log records (who attempted the access).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCtx {
    /// Guest function index.
    pub func: u32,
    /// Guest program counter.
    pub pc: u32,
}

/// Result of a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The loaded (or manufactured) raw value, zero-extended.
    pub value: u64,
    /// Whether this load violated memory safety (and was intercepted).
    pub violation: bool,
}

/// Result of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Whether this store violated memory safety (and was intercepted).
    pub violation: bool,
}

/// Counters describing a space's activity. `PartialEq` so differential
/// harnesses can assert two runs drove the substrate identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Total loads.
    pub loads: u64,
    /// Total stores.
    pub stores: u64,
    /// Loads/stores that consulted the object table.
    pub checked_accesses: u64,
    /// Invalid reads intercepted.
    pub invalid_reads: u64,
    /// Invalid writes intercepted.
    pub invalid_writes: u64,
    /// Out-of-bounds descriptors created by pointer arithmetic.
    pub oob_interned: u64,
    /// Heap allocations.
    pub mallocs: u64,
    /// Heap frees.
    pub frees: u64,
    /// Stack frames pushed.
    pub frames: u64,
}

/// A pushed frame's bookkeeping.
#[derive(Debug, Clone)]
struct FrameRec {
    prev_sp: u64,
    units_start: usize,
    canary_addr: u64,
}

/// The simulated address space and its access policy.
///
/// `Clone` snapshots the entire space — committed region bytes, the
/// unit store, the object table, out-of-bounds descriptors, allocator
/// and manufacturer state, and the error log. A clone of a freshly
/// booted space is the memory half of a boot checkpoint: restoring it
/// is a memcpy of the committed windows instead of a re-run of boot and
/// environment replay, which is what makes supervised restarts O(1).
#[derive(Debug)]
pub struct MemorySpace {
    mode: Mode,
    globals: Region,
    heap: Region,
    stack: Region,
    store: UnitStore,
    table: Box<dyn ObjectTable>,
    lookup: LookupLayer,
    pages: PageMap,
    oob: OobRegistry,
    allocator: HeapAllocator,
    boundless: BoundlessStore,
    manufacturer: Manufacturer,
    log: MemoryErrorLog,
    stats: SpaceStats,
    global_brk: u64,
    sp: u64,
    frames: Vec<FrameRec>,
    frame_units: Vec<u32>,
}

impl Clone for MemorySpace {
    fn clone(&self) -> MemorySpace {
        MemorySpace {
            mode: self.mode,
            globals: self.globals.clone(),
            heap: self.heap.clone(),
            stack: self.stack.clone(),
            store: self.store.clone(),
            table: self.table.boxed_clone(),
            lookup: self.lookup,
            pages: self.pages.clone(),
            oob: self.oob.clone(),
            allocator: self.allocator.clone(),
            boundless: self.boundless.clone(),
            manufacturer: self.manufacturer.clone(),
            log: self.log.clone(),
            stats: self.stats,
            global_brk: self.global_brk,
            sp: self.sp,
            frames: self.frames.clone(),
            frame_units: self.frame_units.clone(),
        }
    }
}

impl MemorySpace {
    /// Creates a space from a configuration.
    pub fn new(config: MemConfig) -> MemorySpace {
        let globals = Region::new(RegionKind::Global, addr::GLOBAL_BASE, config.global_len);
        let heap = Region::new(RegionKind::Heap, addr::HEAP_BASE, config.heap_len);
        let stack = Region::new(RegionKind::Stack, addr::STACK_BASE, config.stack_len);
        let allocator = HeapAllocator::new(&heap);
        let sp = stack.end();
        MemorySpace {
            mode: config.mode,
            global_brk: globals.base(),
            globals,
            heap,
            allocator,
            sp,
            stack,
            store: UnitStore::new(),
            table: config.table.build(),
            lookup: config.lookup,
            pages: PageMap::new(config.global_len, config.heap_len, config.stack_len),
            oob: OobRegistry::new(),
            boundless: BoundlessStore::new(),
            manufacturer: Manufacturer::new(config.sequence),
            log: MemoryErrorLog::new(config.log_capacity),
            stats: SpaceStats::default(),
            frames: Vec::new(),
            frame_units: Vec::new(),
        }
    }

    /// The configured access policy.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Activity counters.
    pub fn stats(&self) -> &SpaceStats {
        &self.stats
    }

    /// The memory-error log.
    pub fn error_log(&self) -> &MemoryErrorLog {
        &self.log
    }

    /// Clears the error log (between stability phases).
    pub fn clear_error_log(&mut self) {
        self.log.clear();
    }

    /// Number of live data units (0 in Standard mode, which keeps none).
    pub fn live_units(&self) -> usize {
        self.table.len()
    }

    /// Live heap allocation count.
    pub fn heap_live(&self) -> u64 {
        self.allocator.live()
    }

    // ------------------------------------------------------------------
    // Region plumbing.
    // ------------------------------------------------------------------

    fn region(&self, a: u64) -> Option<&Region> {
        if a >= self.stack.base() && a < self.stack.end() {
            Some(&self.stack)
        } else if a >= self.heap.base() && a < self.heap.end() {
            Some(&self.heap)
        } else if a >= self.globals.base() && a < self.globals.end() {
            Some(&self.globals)
        } else {
            None
        }
    }

    fn region_mut(&mut self, a: u64) -> Option<&mut Region> {
        if a >= self.stack.base() && a < self.stack.end() {
            Some(&mut self.stack)
        } else if a >= self.heap.base() && a < self.heap.end() {
            Some(&mut self.heap)
        } else if a >= self.globals.base() && a < self.globals.end() {
            Some(&mut self.globals)
        } else {
            None
        }
    }

    /// Raw host-side read, bypassing all checks (driver/runtime use only).
    pub fn read_raw(&self, a: u64, size: AccessSize) -> Option<u64> {
        self.region(a)?.read(a, size)
    }

    /// Raw host-side write, bypassing all checks (driver/runtime use only).
    pub fn write_raw(&mut self, a: u64, size: AccessSize, value: u64) -> bool {
        match self.region_mut(a) {
            Some(r) => r.write(a, size, value),
            None => false,
        }
    }

    /// Raw read of a local slot. Frame slots always live in the stack
    /// region, so this skips [`MemorySpace::read_raw`]'s region
    /// classification — the VM's native tier calls it on every
    /// direct-local micro-op. Identical results to `read_raw` for any
    /// stack address.
    #[inline(always)]
    pub fn local_read(&self, a: u64, size: AccessSize) -> Option<u64> {
        self.stack.read(a, size)
    }

    /// Raw write of a local slot; see [`MemorySpace::local_read`].
    #[inline(always)]
    pub fn local_write(&mut self, a: u64, size: AccessSize, value: u64) -> bool {
        self.stack.write(a, size, value)
    }

    /// Mutably borrows a frame's whole byte window on the stack region,
    /// committing storage as needed. The native tier acquires this once
    /// per pure-local block and services every local access in the
    /// block straight off the slice — one bounds check and commit
    /// round for the block instead of one per access. Committing ahead
    /// of individual writes is unobservable: uncommitted bytes read as
    /// zero and commits zero-fill.
    #[inline]
    pub fn frame_mut(&mut self, base: u64, len: u64) -> Option<&mut [u8]> {
        self.stack.slice_mut(base, len)
    }

    /// Combined fast path for the fused constant-index access shapes:
    /// checked `ptr_add(base, delta)` immediately followed by a checked
    /// load of the result. When the base pointer resolves to a unit and
    /// the whole target access sits inside that same unit, the derived
    /// pointer is provably in bounds and the access provably hits —
    /// units never overlap, so one placement lookup answers both
    /// questions. Counters advance exactly as the two-step sequence
    /// would on its hit path. `None` means "run the exact two-step
    /// sequence": unchecked mode, no provenance, a straddle, or any
    /// out-of-unit target (including every violation).
    #[inline]
    pub fn idx_load_fast(&mut self, ptr: u64, delta: i64, size: AccessSize) -> Option<u64> {
        if !self.mode.is_checked() {
            return None;
        }
        let target = ptr.wrapping_add(delta as u64);
        let pl = self.lookup_placement(ptr)?;
        if target >= pl.base && target.wrapping_add(size.bytes()) <= pl.base + pl.size {
            self.stats.loads += 1;
            self.stats.checked_accesses += 1;
            let value = self
                .region(target)
                .and_then(|r| r.read(target, size))
                .expect("resolved access must be mapped");
            Some(value)
        } else {
            None
        }
    }

    /// Store twin of [`MemorySpace::idx_load_fast`]; `false` means "run
    /// the exact two-step sequence" (the value is untouched).
    #[inline]
    pub fn idx_store_fast(&mut self, ptr: u64, delta: i64, size: AccessSize, value: u64) -> bool {
        if !self.mode.is_checked() {
            return false;
        }
        let target = ptr.wrapping_add(delta as u64);
        let Some(pl) = self.lookup_placement(ptr) else {
            return false;
        };
        if target >= pl.base && target.wrapping_add(size.bytes()) <= pl.base + pl.size {
            self.stats.stores += 1;
            self.stats.checked_accesses += 1;
            let ok = self
                .region_mut(target)
                .map(|r| r.write(target, size, value))
                .unwrap_or(false);
            debug_assert!(ok, "resolved access must be mapped");
            true
        } else {
            false
        }
    }

    /// Pre-resolved probe for a register-form guest load — the
    /// fast-path entry the native tier's memory-spanning blocks call
    /// with an address straight out of the live register file. The hit
    /// path is byte-for-byte the hit path of [`MemorySpace::load`]:
    /// same placement lookup (shift+mask page probe under
    /// [`LookupLayer::Paged`], table search under
    /// [`LookupLayer::Table`]), same bounds compare, same counter
    /// advances — so a probe hit is observationally indistinguishable
    /// from the interpreted access. `None` means "run the full access":
    /// an out-of-bounds-zone pointer, a guard page, a placement miss,
    /// a bounds failure, or (unchecked mode) an unmapped address. The
    /// probe touches no counters on a miss, so the caller's fallback
    /// through [`MemorySpace::load`] re-drives the substrate exactly
    /// once, violations and faults included.
    #[inline]
    pub fn probe_load(&mut self, a: u64, size: AccessSize) -> Option<u64> {
        if !self.mode.is_checked() {
            let value = self.region(a)?.read(a, size)?;
            self.stats.loads += 1;
            return Some(value);
        }
        if addr::is_oob_zone(a) {
            return None;
        }
        let pl = self.lookup_placement(a)?;
        if a + size.bytes() <= pl.base + pl.size {
            self.stats.loads += 1;
            self.stats.checked_accesses += 1;
            let value = self
                .region(a)
                .and_then(|r| r.read(a, size))
                .expect("resolved access must be mapped");
            Some(value)
        } else {
            None
        }
    }

    /// Store twin of [`MemorySpace::probe_load`]; `false` means "run
    /// the full access" (the value is untouched).
    #[inline]
    pub fn probe_store(&mut self, a: u64, size: AccessSize, value: u64) -> bool {
        if !self.mode.is_checked() {
            let ok = match self.region_mut(a) {
                Some(r) => r.write(a, size, value),
                None => false,
            };
            if ok {
                self.stats.stores += 1;
            }
            return ok;
        }
        if addr::is_oob_zone(a) {
            return false;
        }
        let Some(pl) = self.lookup_placement(a) else {
            return false;
        };
        if a + size.bytes() <= pl.base + pl.size {
            self.stats.stores += 1;
            self.stats.checked_accesses += 1;
            let ok = self
                .region_mut(a)
                .map(|r| r.write(a, size, value))
                .unwrap_or(false);
            debug_assert!(ok, "resolved access must be mapped");
            true
        } else {
            false
        }
    }

    /// Copies host bytes into guest memory, bypassing checks.
    pub fn write_bytes_raw(&mut self, a: u64, bytes: &[u8]) -> bool {
        match self.region_mut(a) {
            Some(r) => match r.slice_mut(a, bytes.len() as u64) {
                Some(dst) => {
                    dst.copy_from_slice(bytes);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Copies guest bytes out to the host, bypassing checks.
    pub fn read_bytes_raw(&self, a: u64, len: u64) -> Option<Vec<u8>> {
        self.region(a)?.read_bytes(a, len)
    }

    /// Reads a NUL-terminated guest string (host-side, unchecked), with a
    /// length cap to survive unterminated buffers.
    pub fn read_cstring_raw(&self, a: u64, max: u64) -> Option<Vec<u8>> {
        let region = self.region(a)?;
        let mut out = Vec::new();
        let mut p = a;
        while p < region.end() && (p - a) < max {
            let b = region.read(p, AccessSize::B1)? as u8;
            if b == 0 {
                return Some(out);
            }
            out.push(b);
            p += 1;
        }
        Some(out)
    }

    // ------------------------------------------------------------------
    // Unit bookkeeping.
    // ------------------------------------------------------------------

    fn new_unit(&mut self, base: u64, size: u64, kind: UnitKind, label: Option<&str>) -> UnitId {
        let id = self.store.alloc(base, size, kind, label);
        self.table.insert(base, size, id);
        if self.lookup == LookupLayer::Paged {
            self.pages.cover(base, size, id);
        }
        id
    }

    fn kill_unit(&mut self, id: UnitId) {
        let base = self.store.kill(id);
        let removed = self.table.remove(base);
        if self.lookup == LookupLayer::Paged {
            // Invalidate eagerly: a page entry must never outlive its
            // unit, or a recycled store slot could masquerade as it.
            if let Some(pl) = removed {
                self.pages.uncover(pl.base, pl.size, pl.unit);
            }
        }
        self.oob.purge_unit(id);
        self.boundless.forget_unit(id);
    }

    /// Resolves the live unit containing `a`, if any — semantically
    /// identical to `self.table.lookup(a)` under either lookup layer.
    ///
    /// Under [`LookupLayer::Paged`] the page map answers first:
    ///
    /// * a guard page proves no unit contains `a` (any such unit would
    ///   intersect `a`'s page), so the miss needs no search;
    /// * a single-unit page needs one generation-checked store load and
    ///   one bounds compare — `a` outside that unit is a proven miss by
    ///   the same intersection argument;
    /// * a shared page probes the candidate (containment in a live unit
    ///   is proof regardless of neighbours) and only then falls back to
    ///   the table, re-seeding the candidate on a hit.
    #[inline]
    fn lookup_placement(&mut self, a: u64) -> Option<Placement> {
        match self.lookup {
            LookupLayer::Table => self.table.lookup(a),
            LookupLayer::Paged => match self.pages.hit(a) {
                PageHit::Guard => None,
                PageHit::One(id) => {
                    if let Some(u) = self.store.get(id) {
                        if u.live {
                            return u.contains_addr(a).then_some(Placement {
                                base: u.base,
                                size: u.size,
                                unit: id,
                            });
                        }
                    }
                    // A stale entry would be a bookkeeping bug; the
                    // table stays authoritative either way.
                    debug_assert!(false, "page map names a dead unit at {a:#x}");
                    self.table.lookup(a)
                }
                PageHit::Table(hint) => {
                    if let Some(id) = hint {
                        if let Some(u) = self.store.get(id) {
                            if u.live && u.contains_addr(a) {
                                return Some(Placement {
                                    base: u.base,
                                    size: u.size,
                                    unit: id,
                                });
                            }
                        }
                    }
                    let pl = self.table.lookup(a);
                    if let Some(pl) = pl {
                        self.pages.note(a, pl.unit);
                    }
                    pl
                }
            },
        }
    }

    /// Looks up a unit by id (for diagnostics). Returns the unit while it
    /// is live or dead-awaiting-recycling; a recycled slot's stale id
    /// resolves to `None`.
    pub fn unit(&self, id: UnitId) -> Option<&DataUnit> {
        self.store.get(id)
    }

    /// The arena-allocated debug label of a unit (allocation-site names).
    pub fn unit_label(&self, id: UnitId) -> Option<&str> {
        self.store.label(id)
    }

    /// The arena-backed unit store (diagnostics, capacity accounting).
    pub fn unit_store(&self) -> &UnitStore {
        &self.store
    }

    /// Which object-table backend this space runs.
    pub fn table_kind(&self) -> TableKind {
        self.table.kind()
    }

    /// Which in-bounds lookup layer this space runs.
    pub fn lookup_layer(&self) -> LookupLayer {
        self.lookup
    }

    // ------------------------------------------------------------------
    // Globals.
    // ------------------------------------------------------------------

    /// Allocates a zeroed global data unit; used by the program loader.
    pub fn alloc_global(&mut self, size: u64, label: &str) -> Result<u64, MemFault> {
        // 16-byte alignment plus a 16-byte gap isolates adjacent units so
        // address-based lookups cannot blur across them.
        let base = self.global_brk.div_ceil(16) * 16;
        let end = base + size.max(1) + 16;
        if end > self.globals.end() {
            return Err(MemFault::GlobalExhausted);
        }
        self.global_brk = end;
        if self.mode.is_checked() {
            self.new_unit(base, size, UnitKind::Global, Some(label));
        }
        Ok(base)
    }

    /// Allocates a global initialised with `bytes` (string literals).
    pub fn alloc_global_bytes(&mut self, bytes: &[u8], label: &str) -> Result<u64, MemFault> {
        let base = self.alloc_global(bytes.len() as u64, label)?;
        let ok = self.write_bytes_raw(base, bytes);
        debug_assert!(ok);
        Ok(base)
    }

    // ------------------------------------------------------------------
    // Heap.
    // ------------------------------------------------------------------

    /// Guest `malloc`.
    pub fn malloc(&mut self, size: u64) -> Result<u64, MemFault> {
        self.stats.mallocs += 1;
        let p = self.allocator.malloc(&mut self.heap, size)?;
        if self.mode.is_checked() {
            self.new_unit(p, size, UnitKind::Heap, None);
        }
        Ok(p)
    }

    /// Guest `free`.
    ///
    /// In the checked modes an invalid free is itself a memory error:
    /// Bounds Check terminates, the failure-oblivious family logs and
    /// discards the operation. In Standard mode allocator corruption
    /// detected here is fatal (a glibc-style abort).
    pub fn free(&mut self, p: u64, ctx: AccessCtx) -> Result<(), MemFault> {
        self.stats.frees += 1;
        if !self.mode.is_checked() {
            self.allocator.free(&mut self.heap, p)?;
            return Ok(());
        }
        // Checked modes: `p` must be the exact base of a live heap unit.
        let placement = self.lookup_placement(p);
        let valid = placement
            .map(|pl| {
                pl.base == p
                    && self
                        .store
                        .get(pl.unit)
                        .is_some_and(|u| u.kind == UnitKind::Heap)
            })
            .unwrap_or(false);
        if !valid {
            return self.violation_op(ErrorKind::InvalidFree, p, None, ctx);
        }
        let unit = placement.expect("checked above").unit;
        self.allocator.free(&mut self.heap, p)?;
        self.kill_unit(unit);
        Ok(())
    }

    /// Guest `realloc`. Returns the new payload address (0 for `size == 0`
    /// frees, matching common C library behaviour).
    pub fn realloc(&mut self, p: u64, size: u64, ctx: AccessCtx) -> Result<u64, MemFault> {
        if p == 0 {
            return self.malloc(size);
        }
        if size == 0 {
            self.free(p, ctx)?;
            return Ok(0);
        }
        let old_size = if self.mode.is_checked() {
            match self.lookup_placement(p) {
                Some(pl) if pl.base == p => pl.size,
                _ => {
                    // Invalid realloc: same policy as invalid free; the
                    // continuing modes treat it as a fresh allocation so the
                    // program can keep going with a usable pointer.
                    self.violation_op(ErrorKind::InvalidFree, p, None, ctx)?;
                    return self.malloc(size);
                }
            }
        } else {
            self.allocator.block_size(&self.heap, p)?
        };
        let fresh = self.malloc(size)?;
        let n = old_size.min(size);
        if n > 0 {
            let bytes = self
                .read_bytes_raw(p, n)
                .expect("live heap block must be mapped");
            let ok = self.write_bytes_raw(fresh, &bytes);
            debug_assert!(ok);
        }
        self.free(p, ctx)?;
        Ok(fresh)
    }

    // ------------------------------------------------------------------
    // Stack frames.
    // ------------------------------------------------------------------

    /// Pushes a stack frame with room for `locals_size` bytes of locals,
    /// returning the frame base address. Individual locals must then be
    /// registered with [`MemorySpace::register_local`]. A 16-byte canary
    /// pair sits immediately above the locals.
    pub fn push_frame(&mut self, locals_size: u64) -> Result<u64, MemFault> {
        self.stats.frames += 1;
        let total = locals_size.div_ceil(16) * 16 + FRAME_GUARD_SIZE;
        let new_sp = self
            .sp
            .checked_sub(total)
            .filter(|&s| s >= self.stack.base())
            .ok_or(MemFault::StackOverflow)?;
        let canary_addr = new_sp + total - FRAME_GUARD_SIZE;
        self.stack.write(canary_addr, AccessSize::B8, CANARY_A);
        self.stack.write(canary_addr + 8, AccessSize::B8, CANARY_B);
        self.frames.push(FrameRec {
            prev_sp: self.sp,
            units_start: self.frame_units.len(),
            canary_addr,
        });
        self.sp = new_sp;
        Ok(new_sp)
    }

    /// Registers one local variable of the current frame as a data unit.
    ///
    /// `offset` is relative to the frame base returned by
    /// [`MemorySpace::push_frame`]. No-op in Standard mode.
    pub fn register_local(&mut self, frame_base: u64, offset: u64, size: u64) {
        if !self.mode.is_checked() {
            return;
        }
        let id = self.new_unit(frame_base + offset, size, UnitKind::Stack, None);
        self.frame_units.push(id.0);
    }

    /// Pops the current frame, verifying the canary pair.
    ///
    /// A trampled canary means guest writes escaped the frame's data units,
    /// which only Standard mode permits; the fault carries the observed
    /// bytes so callers can attribute the smash to attacker input.
    pub fn pop_frame(&mut self) -> Result<(), MemFault> {
        let rec = self.frames.pop().expect("pop_frame without frame");
        for i in (rec.units_start..self.frame_units.len()).rev() {
            let slot = self.frame_units[i];
            self.kill_unit(UnitId(slot));
        }
        self.frame_units.truncate(rec.units_start);
        let a = self.stack.read(rec.canary_addr, AccessSize::B8);
        let b = self.stack.read(rec.canary_addr + 8, AccessSize::B8);
        self.sp = rec.prev_sp;
        if a != Some(CANARY_A) {
            return Err(MemFault::StackSmashed {
                addr: rec.canary_addr,
                found: a.unwrap_or(0),
            });
        }
        if b != Some(CANARY_B) {
            return Err(MemFault::StackSmashed {
                addr: rec.canary_addr + 8,
                found: b.unwrap_or(0),
            });
        }
        Ok(())
    }

    /// Current stack depth in frames.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Remaining stack bytes.
    pub fn stack_headroom(&self) -> u64 {
        self.sp - self.stack.base()
    }

    // ------------------------------------------------------------------
    // Pointer arithmetic.
    // ------------------------------------------------------------------

    /// Guest pointer arithmetic: `ptr + delta` bytes.
    ///
    /// In Standard mode this is a plain wrapping add. In the checked modes
    /// it is the instrumented operation of the Jones & Kelly scheme: if the
    /// result leaves the source pointer's data unit, the result is an
    /// out-of-bounds descriptor address; arithmetic on a descriptor that
    /// re-enters its referent restores an ordinary address.
    pub fn ptr_add(&mut self, ptr: u64, delta: i64) -> u64 {
        if !self.mode.is_checked() {
            return ptr.wrapping_add(delta as u64);
        }
        if addr::is_oob_zone(ptr) {
            if let Some(entry) = self.oob.decode(ptr).copied() {
                let intended = entry.intended.wrapping_add(delta as u64);
                let back_in_bounds = self
                    .store
                    .get(entry.referent)
                    .is_some_and(|u| u.live && u.contains_addr(intended));
                if back_in_bounds {
                    return intended;
                }
                self.stats.oob_interned += 1;
                return self.oob.intern(
                    entry.referent,
                    entry.referent_base,
                    entry.referent_size,
                    intended,
                );
            }
            // Wild pointer inside the zone: plain arithmetic.
            return ptr.wrapping_add(delta as u64);
        }
        let target = ptr.wrapping_add(delta as u64);
        match self.lookup_placement(ptr) {
            Some(pl) => {
                if target >= pl.base && target < pl.base + pl.size {
                    target
                } else {
                    self.stats.oob_interned += 1;
                    self.oob.intern(pl.unit, pl.base, pl.size, target)
                }
            }
            // No provenance (integer arithmetic routed through pointer ops,
            // or a pointer into a gap): plain arithmetic, as in CRED, which
            // only tracks pointers derived from known allocations.
            None => target,
        }
    }

    /// The address a pointer value *means*: out-of-bounds descriptors
    /// resolve to their intended address. Used for pointer comparison,
    /// subtraction, and pointer-to-integer casts, which CRED supports on
    /// out-of-bounds pointers.
    pub fn effective_addr(&self, ptr: u64) -> u64 {
        if addr::is_oob_zone(ptr) {
            if let Some(entry) = self.oob.decode(ptr) {
                return entry.intended;
            }
        }
        ptr
    }

    // ------------------------------------------------------------------
    // Loads and stores.
    // ------------------------------------------------------------------

    /// Guest load of `size` bytes at `a` (zero-extended raw value).
    ///
    /// The in-bounds hit is a straight-line fast path: one unit lookup
    /// (a shift+mask page-map probe under [`LookupLayer::Paged`], a
    /// table search under [`LookupLayer::Table`]), one bounds compare,
    /// one region read. Everything else — the whole continuation
    /// machinery — lives in the cold [`Self::load_violation`] so a
    /// violation-free request stream never pays for it.
    #[inline]
    pub fn load(
        &mut self,
        a: u64,
        size: AccessSize,
        ctx: AccessCtx,
    ) -> Result<ReadOutcome, MemFault> {
        self.stats.loads += 1;
        if !self.mode.is_checked() {
            return match self.region(a).and_then(|r| r.read(a, size)) {
                Some(value) => Ok(ReadOutcome {
                    value,
                    violation: false,
                }),
                None => Err(MemFault::Segv { addr: a }),
            };
        }
        self.stats.checked_accesses += 1;
        if !addr::is_oob_zone(a) {
            if let Some(pl) = self.lookup_placement(a) {
                if a + size.bytes() <= pl.base + pl.size {
                    let value = self
                        .region(a)
                        .and_then(|r| r.read(a, size))
                        .expect("resolved access must be mapped");
                    return Ok(ReadOutcome {
                        value,
                        violation: false,
                    });
                }
                // Straddles the end of the unit: the canonical overrun.
                return self.load_violation(
                    ErrorKind::InvalidRead,
                    a,
                    Some((pl.unit, pl.base, pl.size)),
                    size,
                    ctx,
                );
            }
            return self.load_violation(ErrorKind::InvalidRead, a, None, size, ctx);
        }
        let (kind, intended, referent) = self.resolve_oob(a);
        self.load_violation(kind, intended, referent, size, ctx)
    }

    /// Continuation code for an invalid read: log, then discard /
    /// manufacture / redirect / terminate per the mode.
    #[cold]
    fn load_violation(
        &mut self,
        kind: ErrorKind,
        intended: u64,
        referent: Option<(UnitId, u64, u64)>,
        size: AccessSize,
        ctx: AccessCtx,
    ) -> Result<ReadOutcome, MemFault> {
        self.stats.invalid_reads += 1;
        let kind = kind_for_read(kind);
        self.log_violation(kind, intended, size, referent, ctx);
        match self.mode {
            Mode::BoundsCheck => Err(MemFault::MemoryError {
                kind,
                addr: intended,
                referent: referent.map(|r| r.0),
                func: ctx.func,
                pc: ctx.pc,
            }),
            Mode::Boundless => {
                if let Some((unit, base, _)) = referent {
                    let off = intended.wrapping_sub(base) as i64;
                    if let Some(v) = self.boundless.load(unit, off, size.bytes()) {
                        return Ok(ReadOutcome {
                            value: v,
                            violation: true,
                        });
                    }
                }
                Ok(ReadOutcome {
                    value: self.manufacture(size),
                    violation: true,
                })
            }
            Mode::Redirect => {
                if let Some(at) = self.redirect_target(referent, intended, size) {
                    let value = self
                        .region(at)
                        .and_then(|r| r.read(at, size))
                        .expect("redirect target must be mapped");
                    return Ok(ReadOutcome {
                        value,
                        violation: true,
                    });
                }
                Ok(ReadOutcome {
                    value: self.manufacture(size),
                    violation: true,
                })
            }
            _ => Ok(ReadOutcome {
                value: self.manufacture(size),
                violation: true,
            }),
        }
    }

    /// Guest store of the low `size` bytes of `value` at `a`.
    ///
    /// Fast/cold split as in [`Self::load`].
    #[inline]
    pub fn store(
        &mut self,
        a: u64,
        size: AccessSize,
        value: u64,
        ctx: AccessCtx,
    ) -> Result<WriteOutcome, MemFault> {
        self.stats.stores += 1;
        if !self.mode.is_checked() {
            let ok = match self.region_mut(a) {
                Some(r) => r.write(a, size, value),
                None => false,
            };
            return if ok {
                Ok(WriteOutcome { violation: false })
            } else {
                Err(MemFault::Segv { addr: a })
            };
        }
        self.stats.checked_accesses += 1;
        if !addr::is_oob_zone(a) {
            if let Some(pl) = self.lookup_placement(a) {
                if a + size.bytes() <= pl.base + pl.size {
                    let ok = self
                        .region_mut(a)
                        .map(|r| r.write(a, size, value))
                        .unwrap_or(false);
                    debug_assert!(ok, "resolved access must be mapped");
                    return Ok(WriteOutcome { violation: false });
                }
                return self.store_violation(
                    ErrorKind::InvalidRead,
                    a,
                    Some((pl.unit, pl.base, pl.size)),
                    size,
                    value,
                    ctx,
                );
            }
            return self.store_violation(ErrorKind::InvalidRead, a, None, size, value, ctx);
        }
        let (kind, intended, referent) = self.resolve_oob(a);
        self.store_violation(kind, intended, referent, size, value, ctx)
    }

    /// Continuation code for an invalid write.
    #[cold]
    fn store_violation(
        &mut self,
        kind: ErrorKind,
        intended: u64,
        referent: Option<(UnitId, u64, u64)>,
        size: AccessSize,
        value: u64,
        ctx: AccessCtx,
    ) -> Result<WriteOutcome, MemFault> {
        self.stats.invalid_writes += 1;
        let kind = kind_for_write(kind);
        self.log_violation(kind, intended, size, referent, ctx);
        match self.mode {
            Mode::BoundsCheck => Err(MemFault::MemoryError {
                kind,
                addr: intended,
                referent: referent.map(|r| r.0),
                func: ctx.func,
                pc: ctx.pc,
            }),
            Mode::Boundless => {
                if let Some((unit, base, _)) = referent {
                    let off = intended.wrapping_sub(base) as i64;
                    self.boundless.store(unit, off, size.bytes(), value);
                }
                Ok(WriteOutcome { violation: true })
            }
            Mode::Redirect => {
                if let Some(at) = self.redirect_target(referent, intended, size) {
                    let ok = self
                        .region_mut(at)
                        .map(|r| r.write(at, size, value))
                        .unwrap_or(false);
                    debug_assert!(ok);
                }
                Ok(WriteOutcome { violation: true })
            }
            // Failure-oblivious: discard the write.
            _ => Ok(WriteOutcome { violation: true }),
        }
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    /// Classifies an access through an out-of-bounds descriptor address:
    /// the violation kind, the intended address, and the best-known
    /// referent.
    #[cold]
    fn resolve_oob(&self, a: u64) -> (ErrorKind, u64, Option<(UnitId, u64, u64)>) {
        match self.oob.decode(a) {
            Some(entry) => {
                // A recycled referent slot (stale generation) means the
                // unit died long ago: classify as dangling.
                let kind = match self.store.get(entry.referent) {
                    Some(u) if u.live => ErrorKind::InvalidRead,
                    _ => ErrorKind::DanglingRead,
                };
                (
                    kind,
                    entry.intended,
                    Some((entry.referent, entry.referent_base, entry.referent_size)),
                )
            }
            None => (ErrorKind::InvalidRead, a, None),
        }
    }

    /// Where a redirected access lands: the intended offset wrapped into
    /// the referent, clamped so the whole access fits.
    fn redirect_target(
        &self,
        referent: Option<(UnitId, u64, u64)>,
        intended: u64,
        size: AccessSize,
    ) -> Option<u64> {
        let (unit, base, usize_) = referent?;
        let len = size.bytes();
        if usize_ < len {
            return None;
        }
        if !self.store.get(unit).is_some_and(|u| u.live) {
            return None;
        }
        let off = (intended.wrapping_sub(base) as i64).rem_euclid(usize_ as i64) as u64;
        let off = off.min(usize_ - len);
        Some(base + off)
    }

    fn manufacture(&mut self, size: AccessSize) -> u64 {
        let v = self.manufacturer.next_value();
        match size {
            AccessSize::B1 => v & 0xFF,
            AccessSize::B2 => v & 0xFFFF,
            AccessSize::B4 => v & 0xFFFF_FFFF,
            AccessSize::B8 => v,
        }
    }

    fn log_violation(
        &mut self,
        kind: ErrorKind,
        intended: u64,
        size: AccessSize,
        referent: Option<(UnitId, u64, u64)>,
        ctx: AccessCtx,
    ) {
        let (unit, offset) = match referent {
            Some((u, base, _)) => (Some(u), Some(intended.wrapping_sub(base) as i64)),
            None => (None, None),
        };
        self.log
            .record(kind, intended, size, unit, offset, ctx.func, ctx.pc);
    }

    /// Shared policy for non-access operations (free/realloc misuse).
    fn violation_op(
        &mut self,
        kind: ErrorKind,
        a: u64,
        referent: Option<UnitId>,
        ctx: AccessCtx,
    ) -> Result<(), MemFault> {
        self.log
            .record(kind, a, AccessSize::B8, referent, None, ctx.func, ctx.pc);
        if self.mode.continues_through_errors() {
            Ok(())
        } else {
            Err(MemFault::MemoryError {
                kind,
                addr: a,
                referent,
                func: ctx.func,
                pc: ctx.pc,
            })
        }
    }

    /// Direct access to the manufactured-value generator (tests, harness).
    pub fn manufacturer_mut(&mut self) -> &mut Manufacturer {
        &mut self.manufacturer
    }
}

fn kind_for_read(kind: ErrorKind) -> ErrorKind {
    match kind {
        ErrorKind::DanglingRead | ErrorKind::DanglingWrite => ErrorKind::DanglingRead,
        _ => ErrorKind::InvalidRead,
    }
}

fn kind_for_write(kind: ErrorKind) -> ErrorKind {
    match kind {
        ErrorKind::DanglingRead | ErrorKind::DanglingWrite => ErrorKind::DanglingWrite,
        _ => ErrorKind::InvalidWrite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(mode: Mode) -> MemorySpace {
        MemorySpace::new(MemConfig {
            mode,
            global_len: 64 << 10,
            heap_len: 256 << 10,
            stack_len: 64 << 10,
            ..MemConfig::default()
        })
    }

    const CTX: AccessCtx = AccessCtx { func: 0, pc: 0 };

    #[test]
    fn in_bounds_round_trip_all_modes() {
        for mode in Mode::ALL {
            let mut s = space(mode);
            let p = s.malloc(32).unwrap();
            s.store(p, AccessSize::B8, 0xFEED_FACE, CTX).unwrap();
            let r = s.load(p, AccessSize::B8, CTX).unwrap();
            assert_eq!(r.value, 0xFEED_FACE, "mode {mode:?}");
            assert!(!r.violation);
        }
    }

    #[test]
    fn standard_mode_overflow_corrupts_neighbour() {
        let mut s = space(Mode::Standard);
        let a = s.malloc(16).unwrap();
        let b = s.malloc(16).unwrap();
        s.store(b, AccessSize::B8, 7, CTX).unwrap();
        // Write 8 bytes at a+32: in this allocator layout that lands on
        // b's payload (16-byte blocks + 16-byte headers).
        let delta = b - a;
        s.store(a + delta, AccessSize::B8, 0x41414141, CTX).unwrap();
        assert_eq!(s.load(b, AccessSize::B8, CTX).unwrap().value, 0x41414141);
    }

    #[test]
    fn standard_mode_unmapped_access_segfaults() {
        let mut s = space(Mode::Standard);
        assert_eq!(
            s.load(0x10, AccessSize::B1, CTX),
            Err(MemFault::Segv { addr: 0x10 })
        );
        assert_eq!(
            s.store(0x10, AccessSize::B1, 0, CTX),
            Err(MemFault::Segv { addr: 0x10 })
        );
    }

    #[test]
    fn bounds_check_terminates_on_overrun() {
        let mut s = space(Mode::BoundsCheck);
        let p = s.malloc(16).unwrap();
        let q = s.ptr_add(p, 16);
        let err = s.store(q, AccessSize::B1, 0x41, CTX).unwrap_err();
        assert!(matches!(
            err,
            MemFault::MemoryError {
                kind: ErrorKind::InvalidWrite,
                ..
            }
        ));
    }

    #[test]
    fn bounds_check_rejects_straddling_access() {
        let mut s = space(Mode::BoundsCheck);
        let p = s.malloc(16).unwrap();
        // 8-byte load starting at the 12th byte straddles the end.
        let q = s.ptr_add(p, 12);
        assert!(s.load(q, AccessSize::B8, CTX).is_err());
        // 4-byte load at the same spot is fine.
        assert!(s.load(q, AccessSize::B4, CTX).is_ok());
    }

    #[test]
    fn failure_oblivious_discards_writes_and_manufactures_reads() {
        let mut s = space(Mode::FailureOblivious);
        let victim = s.malloc(16).unwrap();
        s.store(victim, AccessSize::B8, 0x1234, CTX).unwrap();
        let p = s.malloc(16).unwrap();
        let oob = s.ptr_add(p, 64);
        let w = s.store(oob, AccessSize::B8, 0x4141_4141, CTX).unwrap();
        assert!(w.violation);
        // Neighbouring allocation is untouched.
        assert_eq!(s.load(victim, AccessSize::B8, CTX).unwrap().value, 0x1234);
        // Reads manufacture the paper's sequence: 0, 1, 2, 0, 1, 3, ...
        let vals: Vec<u64> = (0..6)
            .map(|_| s.load(oob, AccessSize::B4, CTX).unwrap().value)
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 0, 1, 3]);
        assert_eq!(s.error_log().total_writes(), 1);
        assert_eq!(s.error_log().total_reads(), 6);
    }

    #[test]
    fn oob_pointer_can_return_in_bounds() {
        let mut s = space(Mode::FailureOblivious);
        let p = s.malloc(16).unwrap();
        s.store(p, AccessSize::B1, 99, CTX).unwrap();
        let past = s.ptr_add(p, 20);
        assert!(addr::is_oob_zone(past));
        assert_eq!(s.effective_addr(past), p + 20);
        let back = s.ptr_add(past, -20);
        assert_eq!(back, p);
        assert_eq!(s.load(back, AccessSize::B1, CTX).unwrap().value, 99);
    }

    #[test]
    fn one_past_end_pointer_compares_but_does_not_deref() {
        let mut s = space(Mode::BoundsCheck);
        let p = s.malloc(8).unwrap();
        let end = s.ptr_add(p, 8);
        assert_eq!(s.effective_addr(end), p + 8);
        assert!(s.load(end, AccessSize::B1, CTX).is_err());
    }

    #[test]
    fn boundless_mode_round_trips_oob_data() {
        let mut s = space(Mode::Boundless);
        let p = s.malloc(8).unwrap();
        let oob = s.ptr_add(p, 24);
        s.store(oob, AccessSize::B4, 0xBEEF, CTX).unwrap();
        let r = s.load(oob, AccessSize::B4, CTX).unwrap();
        assert!(r.violation);
        assert_eq!(r.value, 0xBEEF);
        // A different out-of-bounds offset was never written: manufactured.
        let oob2 = s.ptr_add(p, 48);
        let r2 = s.load(oob2, AccessSize::B4, CTX).unwrap();
        assert_eq!(r2.value, 0); // first manufactured value
    }

    #[test]
    fn redirect_mode_wraps_into_unit() {
        let mut s = space(Mode::Redirect);
        let p = s.malloc(8).unwrap();
        s.store(p, AccessSize::B1, 0xAB, CTX).unwrap();
        let oob = s.ptr_add(p, 8); // wraps to offset 0
        let r = s.load(oob, AccessSize::B1, CTX).unwrap();
        assert!(r.violation);
        assert_eq!(r.value, 0xAB);
        // Writes wrap too.
        let oob9 = s.ptr_add(p, 9);
        s.store(oob9, AccessSize::B1, 0xCD, CTX).unwrap();
        let in1 = s.ptr_add(p, 1);
        assert_eq!(s.load(in1, AccessSize::B1, CTX).unwrap().value, 0xCD);
    }

    #[test]
    fn free_then_use_is_dangling_in_checked_modes() {
        let mut s = space(Mode::FailureOblivious);
        let p = s.malloc(16).unwrap();
        let past = s.ptr_add(p, 100); // keep a descriptor alive
        s.free(p, CTX).unwrap();
        // The plain pointer now resolves to no live unit.
        let r = s.load(p, AccessSize::B8, CTX).unwrap();
        assert!(r.violation);
        // The descriptor was purged with its unit; access is a violation.
        let r2 = s.load(past, AccessSize::B8, CTX).unwrap();
        assert!(r2.violation);
    }

    #[test]
    fn invalid_free_policies() {
        // Bounds Check: fatal.
        let mut s = space(Mode::BoundsCheck);
        let p = s.malloc(16).unwrap();
        let q = s.ptr_add(p, 4);
        assert!(s.free(q, CTX).is_err());
        // Failure-oblivious: logged and discarded; the block stays usable.
        let mut s = space(Mode::FailureOblivious);
        let p = s.malloc(16).unwrap();
        let q = s.ptr_add(p, 4);
        s.free(q, CTX).unwrap();
        assert_eq!(s.error_log().total(), 1);
        s.store(p, AccessSize::B8, 5, CTX).unwrap();
        assert_eq!(s.load(p, AccessSize::B8, CTX).unwrap().value, 5);
        // Standard: allocator detects the bad header and aborts.
        let mut s = space(Mode::Standard);
        let p = s.malloc(16).unwrap();
        assert!(matches!(s.free(p + 4, CTX), Err(MemFault::Heap(_))));
    }

    #[test]
    fn double_free_is_caught_per_mode() {
        for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut s = space(mode);
            let p = s.malloc(16).unwrap();
            s.free(p, CTX).unwrap();
            let second = s.free(p, CTX);
            match mode {
                Mode::Standard => assert!(matches!(second, Err(MemFault::Heap(_)))),
                Mode::BoundsCheck => assert!(matches!(second, Err(MemFault::MemoryError { .. }))),
                _ => {
                    second.unwrap();
                    assert_eq!(s.error_log().total(), 1);
                }
            }
        }
    }

    #[test]
    fn realloc_preserves_prefix() {
        for mode in [Mode::Standard, Mode::FailureOblivious] {
            let mut s = space(mode);
            let p = s.malloc(8).unwrap();
            s.store(p, AccessSize::B8, 0xABCD_EF01, CTX).unwrap();
            let q = s.realloc(p, 64, CTX).unwrap();
            assert_eq!(s.load(q, AccessSize::B8, CTX).unwrap().value, 0xABCD_EF01);
            let r = s.realloc(q, 0, CTX).unwrap();
            assert_eq!(r, 0);
        }
    }

    #[test]
    fn frame_push_pop_and_locals() {
        let mut s = space(Mode::BoundsCheck);
        let base = s.push_frame(64).unwrap();
        s.register_local(base, 0, 16);
        s.register_local(base, 32, 16);
        s.store(base, AccessSize::B8, 1, CTX).unwrap();
        s.store(base + 32, AccessSize::B8, 2, CTX).unwrap();
        // The gap between locals is not accessible.
        assert!(s.load(base + 16, AccessSize::B8, CTX).is_err());
        s.pop_frame().unwrap();
        // After pop, the local is dead.
        let mut s2 = space(Mode::FailureOblivious);
        let base2 = s2.push_frame(32).unwrap();
        s2.register_local(base2, 0, 16);
        s2.pop_frame().unwrap();
        let r = s2.load(base2, AccessSize::B8, CTX).unwrap();
        assert!(r.violation);
    }

    #[test]
    fn standard_mode_stack_smash_detected_on_pop() {
        let mut s = space(Mode::Standard);
        let base = s.push_frame(16).unwrap();
        // Overflow: write past the 16 local bytes into the canary.
        s.store(base + 16, AccessSize::B8, 0x4242_4242_4242_4242, CTX)
            .unwrap();
        let err = s.pop_frame().unwrap_err();
        assert!(matches!(
            err,
            MemFault::StackSmashed {
                found: 0x4242_4242_4242_4242,
                ..
            }
        ));
    }

    #[test]
    fn checked_modes_protect_the_canary() {
        for mode in [Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut s = space(mode);
            let base = s.push_frame(16).unwrap();
            s.register_local(base, 0, 16);
            // Attempt the same overflow through a derived pointer.
            let p = s.ptr_add(base, 16);
            let _ = s.store(p, AccessSize::B8, 0x4242, CTX);
            assert!(s.pop_frame().is_ok(), "mode {mode:?} must keep the canary");
        }
    }

    #[test]
    fn stack_overflow_reported() {
        let mut s = space(Mode::Standard);
        let mut n = 0;
        loop {
            match s.push_frame(4096) {
                Ok(_) => n += 1,
                Err(MemFault::StackOverflow) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(n < 1_000_000);
        }
        assert!(n > 0);
    }

    #[test]
    fn globals_allocate_and_initialise() {
        let mut s = space(Mode::BoundsCheck);
        let g = s.alloc_global_bytes(b"hello\0", "greeting").unwrap();
        assert_eq!(s.load(g, AccessSize::B1, CTX).unwrap().value, b'h' as u64);
        let g2 = s.alloc_global(8, "counter").unwrap();
        assert!(g2 >= g + 6);
        // Units do not blur together.
        let past = s.ptr_add(g, 6);
        assert!(s.load(past, AccessSize::B1, CTX).is_err());
    }

    #[test]
    fn null_deref_behaviour_per_mode() {
        let mut s = space(Mode::Standard);
        assert!(matches!(
            s.load(0, AccessSize::B8, CTX),
            Err(MemFault::Segv { .. })
        ));
        let mut s = space(Mode::BoundsCheck);
        assert!(s.load(0, AccessSize::B8, CTX).is_err());
        let mut s = space(Mode::FailureOblivious);
        let r = s.load(0, AccessSize::B8, CTX).unwrap();
        assert!(r.violation);
    }

    #[test]
    fn stats_count_checked_accesses() {
        let mut s = space(Mode::BoundsCheck);
        let p = s.malloc(8).unwrap();
        s.store(p, AccessSize::B8, 1, CTX).unwrap();
        s.load(p, AccessSize::B8, CTX).unwrap();
        assert_eq!(s.stats().checked_accesses, 2);
        let mut s = space(Mode::Standard);
        let p = s.malloc(8).unwrap();
        s.store(p, AccessSize::B8, 1, CTX).unwrap();
        assert_eq!(s.stats().checked_accesses, 0);
    }

    #[test]
    fn unit_slots_are_recycled() {
        let mut s = space(Mode::FailureOblivious);
        for _ in 0..1000 {
            let p = s.malloc(32).unwrap();
            s.free(p, CTX).unwrap();
        }
        assert!(
            s.store.slot_count() <= 4,
            "unit slots must be reused, got {}",
            s.store.slot_count()
        );
    }

    fn paged_space(mode: Mode) -> MemorySpace {
        MemorySpace::new(MemConfig {
            mode,
            global_len: 64 << 10,
            heap_len: 256 << 10,
            stack_len: 64 << 10,
            lookup: LookupLayer::Paged,
            ..MemConfig::default()
        })
    }

    /// Drives the same access script under both lookup layers and
    /// asserts every observable — outcomes, stats, the full error log —
    /// is byte-identical.
    fn assert_layer_blind(mode: Mode, script: impl Fn(&mut MemorySpace) -> Vec<String>) {
        let mut a = space(mode);
        let mut b = paged_space(mode);
        let ta = script(&mut a);
        let tb = script(&mut b);
        assert_eq!(ta, tb, "outcomes must match under {mode:?}");
        assert_eq!(a.stats(), b.stats(), "stats must match under {mode:?}");
        assert_eq!(
            a.error_log().records(),
            b.error_log().records(),
            "log records must match under {mode:?}"
        );
    }

    #[test]
    fn paged_layer_is_observationally_identical_on_mixed_traffic() {
        for mode in Mode::ALL {
            assert_layer_blind(mode, |s| {
                let mut t = Vec::new();
                let big = s.malloc(3 * crate::page::PAGE_SIZE).unwrap(); // multi-page run
                let a = s.malloc(24).unwrap();
                let b = s.malloc(24).unwrap(); // shares a's page: table fallback
                for off in [0u64, 100, 4096, 3 * crate::page::PAGE_SIZE - 8] {
                    t.push(format!(
                        "{:?}",
                        s.store(big + off, AccessSize::B8, off, CTX)
                    ));
                    t.push(format!("{:?}", s.load(big + off, AccessSize::B8, CTX)));
                }
                // Straddle, overrun, gap, and null accesses.
                let end = s.ptr_add(big, 3 * crate::page::PAGE_SIZE as i64 - 4);
                t.push(format!("{:?}", s.load(end, AccessSize::B8, CTX)));
                let oob = s.ptr_add(a, 64);
                t.push(format!("{:?}", s.store(oob, AccessSize::B4, 7, CTX)));
                t.push(format!("{:?}", s.load(oob, AccessSize::B4, CTX)));
                t.push(format!("{:?}", s.load(0, AccessSize::B1, CTX)));
                t.push(format!("{:?}", s.load(b + 8, AccessSize::B8, CTX)));
                t.push(format!("{:?}", s.free(a, CTX)));
                // Dangling access through the freed unit's address.
                t.push(format!("{:?}", s.load(a, AccessSize::B8, CTX)));
                t.push(format!("{:?}", s.realloc(b, 4096, CTX)));
                t.push(format!("{:?}", s.free(big, CTX)));
                t.push(format!("{:?}", s.stats().checked_accesses));
                t
            });
        }
    }

    #[test]
    fn guard_page_hits_classify_like_table_misses() {
        // Addresses on pages no unit intersects: below the first global,
        // in the heap frontier, and between far-apart allocations. Both
        // layers must log the same kind with no referent.
        for mode in [Mode::BoundsCheck, Mode::FailureOblivious] {
            assert_layer_blind(mode, |s| {
                let g = s.alloc_global(8, "g").unwrap();
                let h = s.malloc(16).unwrap();
                let mut t = Vec::new();
                for a in [
                    g + 3 * crate::page::PAGE_SIZE,    // unmapped global page
                    h + 40 * crate::page::PAGE_SIZE,   // heap frontier
                    addr::STACK_BASE + 4,              // stack, no frame
                    addr::GLOBAL_BASE.wrapping_sub(8), // outside every region
                ] {
                    t.push(format!("{:?}", s.load(a, AccessSize::B4, CTX)));
                    t.push(format!("{:?}", s.store(a, AccessSize::B4, 1, CTX)));
                }
                t
            });
        }
    }

    #[test]
    fn paged_layer_survives_frame_and_slot_churn() {
        // Push/pop frames and malloc/free in a tight loop so store slots
        // recycle constantly; the page map must never resolve a stale
        // id, and both layers must agree throughout.
        assert_layer_blind(Mode::FailureOblivious, |s| {
            let mut t = Vec::new();
            for round in 0..50u64 {
                let fb = s.push_frame(64).unwrap();
                s.register_local(fb, 0, 24);
                s.register_local(fb, 32, 16);
                let p = s.malloc(16 + (round % 7) * 8).unwrap();
                t.push(format!("{:?}", s.store(fb, AccessSize::B8, round, CTX)));
                t.push(format!("{:?}", s.load(fb + 32, AccessSize::B8, CTX)));
                // The previous round's pointers are dead or recycled.
                t.push(format!("{:?}", s.load(p + 200, AccessSize::B4, CTX)));
                t.push(format!("{:?}", s.free(p, CTX)));
                t.push(format!("{:?}", s.load(p, AccessSize::B4, CTX)));
                s.pop_frame().unwrap();
            }
            t.push(format!("{}", s.unit_store().slot_count()));
            t
        });
    }

    #[test]
    fn paged_space_clone_round_trips_the_page_map() {
        let mut s = paged_space(Mode::FailureOblivious);
        let big = s.malloc(2 * crate::page::PAGE_SIZE).unwrap();
        let small = s.malloc(8).unwrap();
        s.store(big + 4096, AccessSize::B8, 0xABCD, CTX).unwrap();
        let mut c = s.clone();
        assert_eq!(c.lookup_layer(), LookupLayer::Paged);
        // The clone resolves through its own map copy...
        assert_eq!(
            c.load(big + 4096, AccessSize::B8, CTX).unwrap().value,
            0xABCD
        );
        // ...and diverges independently: freeing in the clone restores
        // its guard pages without touching the original.
        c.free(big, CTX).unwrap();
        assert!(c.load(big + 4096, AccessSize::B8, CTX).unwrap().violation);
        assert!(!s.load(big + 4096, AccessSize::B8, CTX).unwrap().violation);
        assert!(!c.load(small, AccessSize::B4, CTX).unwrap().violation);
    }
}
