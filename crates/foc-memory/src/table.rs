//! The object table: locations → data units.
//!
//! Jones & Kelly's checking scheme keeps every live allocation in an
//! ordered structure searched by address on each pointer operation; their
//! implementation (and CRED's) used a splay tree because memory accesses
//! have high temporal locality — the unit touched by one access is very
//! likely to be touched by the next. The table is a first-class,
//! swappable backend layer: every implementation of [`ObjectTable`]
//! provides byte-identical failure-oblivious semantics (asserted by the
//! cross-backend transcript-equivalence tests), so backend choice is a
//! pure performance decision made per [`TableKind`] in the memory
//! configuration and threaded from there through machines, server
//! drivers, and the farm.
//!
//! Three searchable backends ship, plus an adaptive wrapper:
//!
//! * [`SplayTable`] — self-adjusting, faithful to the original runtime;
//! * [`BTreeTable`] — the standard-library B-tree baseline;
//! * [`FlatTable`] — a cache-friendly sorted interval vector with
//!   last-hit memoization, for workloads whose table stays small and hot;
//! * [`AutoTable`] — per-space auto-selection: flat while the table is
//!   small (the farm's hot shape), promoted in place to a splay tree
//!   once it grows past [`AUTO_PROMOTE`] entries (deep single-machine
//!   traces). `Auto` is deliberately *not* part of [`TableKind::ALL`]:
//!   the sweep grids and their committed artifacts enumerate the three
//!   structural backends, and the adaptive wrapper is a policy over
//!   them, not a fourth structure.
//!
//! The table stores `(base, size, unit)` entries keyed by base address.
//! A lookup finds the entry with the greatest base not exceeding the query
//! address and checks that the address falls before `base + size`. The
//! memory space guarantees entries never overlap.

use std::collections::BTreeMap;
use std::fmt;

use crate::unit::UnitId;

/// A table entry: a live allocation's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// First byte of the unit.
    pub base: u64,
    /// Size of the unit in bytes.
    pub size: u64,
    /// The unit occupying `[base, base + size)`.
    pub unit: UnitId,
}

/// Which object-table backend to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TableKind {
    /// Self-adjusting splay tree (default; as in Jones & Kelly).
    #[default]
    Splay,
    /// B-tree baseline.
    BTree,
    /// Sorted interval vector with last-hit memoization.
    Flat,
    /// Adaptive per-space selection: flat until [`AUTO_PROMOTE`]
    /// entries, then promoted in place to a splay tree.
    Auto,
}

impl TableKind {
    /// Every *structural* backend, in bench-report order. [`TableKind::Auto`]
    /// is a policy over these and is intentionally excluded — the sweep
    /// grids and their committed artifacts enumerate structures only.
    pub const ALL: [TableKind; 3] = [TableKind::Splay, TableKind::BTree, TableKind::Flat];

    /// Stable lower-case name (bench rows, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            TableKind::Splay => "splay",
            TableKind::BTree => "btree",
            TableKind::Flat => "flat",
            TableKind::Auto => "auto",
        }
    }

    /// Builds an empty table of this kind.
    ///
    /// Boxed dispatch costs one indirect call per checked access; the
    /// 4096-server stress rows show backend *structure* still dominating
    /// (flat vs splay differ by double digits through the vtable), so
    /// the open backend layer is worth the indirection. Revisit with an
    /// enum wrapper only if a profile ever shows the call itself.
    pub fn build(self) -> Box<dyn ObjectTable> {
        match self {
            TableKind::Splay => Box::new(SplayTable::new()),
            TableKind::BTree => Box::new(BTreeTable::new()),
            TableKind::Flat => Box::new(FlatTable::new()),
            TableKind::Auto => Box::new(AutoTable::new()),
        }
    }
}

impl TableKind {
    /// The backend selected by the [`TABLE_ENV`] environment variable,
    /// or the default. Strict like `ExecTier::from_env` and
    /// `LookupLayer::from_env`: an unknown value exits with a one-line
    /// diagnostic rather than silently benchmarking a different
    /// backend. Read once per process; `BootSpec::from_env` in
    /// `foc-servers` parses through `FromStr` for an error value
    /// instead.
    pub fn from_env() -> TableKind {
        static KIND: std::sync::OnceLock<TableKind> = std::sync::OnceLock::new();
        *KIND.get_or_init(|| match std::env::var(TABLE_ENV) {
            Ok(v) => v.parse().unwrap_or_else(|e| {
                eprintln!("{TABLE_ENV}: {e}");
                std::process::exit(2);
            }),
            Err(_) => TableKind::default(),
        })
    }
}

/// Environment variable selecting the object-table backend.
pub const TABLE_ENV: &str = "FOC_TABLE";

impl fmt::Display for TableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TableKind {
    type Err = String;

    fn from_str(s: &str) -> Result<TableKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "splay" => Ok(TableKind::Splay),
            "btree" => Ok(TableKind::BTree),
            "flat" => Ok(TableKind::Flat),
            "auto" => Ok(TableKind::Auto),
            other => Err(format!(
                "unknown table backend {other:?} (expected splay, btree, flat, or auto)"
            )),
        }
    }
}

/// Address-indexed lookup of live data units.
///
/// Lookup takes `&mut self` because self-adjusting implementations (the
/// splay tree, the flat table's memo) reorganise on every query. `Send`
/// and `Debug` are supertraits so boxed tables travel with their
/// machines across farm worker threads; `Sync` so frozen boot
/// checkpoints holding a table can be shared (`Arc`) across them.
pub trait ObjectTable: fmt::Debug + Send + Sync {
    /// Clones the table behind fresh storage — the object-table half of
    /// a [`crate::MemorySpace`] checkpoint.
    fn boxed_clone(&self) -> Box<dyn ObjectTable>;

    /// Registers a live unit. The caller guarantees the range does not
    /// overlap any registered range.
    fn insert(&mut self, base: u64, size: u64, unit: UnitId);

    /// Removes the unit based at exactly `base`, returning it if present.
    fn remove(&mut self, base: u64) -> Option<Placement>;

    /// Finds the unit whose range contains `addr`.
    fn lookup(&mut self, addr: u64) -> Option<Placement>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the table is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which backend this is (reports, diagnostics).
    fn kind(&self) -> TableKind;
}

/// Object table backed by the standard library B-tree.
#[derive(Debug, Clone, Default)]
pub struct BTreeTable {
    map: BTreeMap<u64, (u64, UnitId)>,
}

impl BTreeTable {
    /// Creates an empty table.
    pub fn new() -> BTreeTable {
        BTreeTable::default()
    }
}

impl ObjectTable for BTreeTable {
    fn boxed_clone(&self) -> Box<dyn ObjectTable> {
        Box::new(self.clone())
    }

    fn insert(&mut self, base: u64, size: u64, unit: UnitId) {
        self.map.insert(base, (size, unit));
    }

    fn remove(&mut self, base: u64) -> Option<Placement> {
        self.map
            .remove(&base)
            .map(|(size, unit)| Placement { base, size, unit })
    }

    fn lookup(&mut self, addr: u64) -> Option<Placement> {
        let (&base, &(size, unit)) = self.map.range(..=addr).next_back()?;
        if addr < base + size {
            Some(Placement { base, size, unit })
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn kind(&self) -> TableKind {
        TableKind::BTree
    }
}

/// Sorted interval vector with last-hit memoization.
///
/// Entries live base-sorted in one contiguous `Vec`, so a lookup is a
/// branch-light binary search over cache-dense memory, and the
/// temporal-locality case the splay tree rotates for is served by a
/// one-entry memo instead: the index of the last hit is probed first, in
/// O(1) and with no structural writes. Inserts and removes shift the
/// tail (`memmove`), which is exactly the right trade for server-shaped
/// tables — a few hundred mostly-stable entries hammered by lookups.
#[derive(Debug, Clone, Default)]
pub struct FlatTable {
    entries: Vec<Placement>,
    /// Index of the most recent lookup hit (memo; may be stale).
    last_hit: usize,
}

impl FlatTable {
    /// Creates an empty table.
    pub fn new() -> FlatTable {
        FlatTable::default()
    }

    /// Index of the first entry with `base > addr`.
    #[inline]
    fn upper_bound(&self, addr: u64) -> usize {
        self.entries.partition_point(|p| p.base <= addr)
    }
}

impl ObjectTable for FlatTable {
    fn boxed_clone(&self) -> Box<dyn ObjectTable> {
        Box::new(self.clone())
    }

    fn insert(&mut self, base: u64, size: u64, unit: UnitId) {
        let at = self.upper_bound(base);
        self.entries.insert(at, Placement { base, size, unit });
    }

    fn remove(&mut self, base: u64) -> Option<Placement> {
        let at = self.upper_bound(base);
        if at == 0 || self.entries[at - 1].base != base {
            return None;
        }
        let removed = self.entries.remove(at - 1);
        self.last_hit = 0;
        Some(removed)
    }

    fn lookup(&mut self, addr: u64) -> Option<Placement> {
        // Memo probe: server traffic touches the same unit in runs.
        if let Some(p) = self.entries.get(self.last_hit) {
            if p.base <= addr && addr < p.base + p.size {
                return Some(*p);
            }
        }
        let at = self.upper_bound(addr);
        if at == 0 {
            return None;
        }
        let p = self.entries[at - 1];
        if addr < p.base + p.size {
            self.last_hit = at - 1;
            Some(p)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn kind(&self) -> TableKind {
        TableKind::Flat
    }
}

/// Index of a splay tree node, with `NONE` as the null sentinel.
type NodeIdx = u32;
const NONE: NodeIdx = u32::MAX;

#[derive(Debug, Clone)]
struct SplayNode {
    base: u64,
    size: u64,
    unit: UnitId,
    left: NodeIdx,
    right: NodeIdx,
}

/// Self-adjusting object table, as in the Jones & Kelly runtime.
///
/// Nodes live in a `Vec` and are addressed by index; removed slots are
/// recycled through a free list. Every lookup splays the closest entry to
/// the root, so repeated accesses to the same data unit are O(1) after the
/// first — the common case for server request processing.
#[derive(Debug, Clone, Default)]
pub struct SplayTable {
    nodes: Vec<SplayNode>,
    root: NodeIdx,
    free: Vec<NodeIdx>,
    len: usize,
}

impl SplayTable {
    /// Creates an empty table.
    pub fn new() -> SplayTable {
        SplayTable {
            nodes: Vec::new(),
            root: NONE,
            free: Vec::new(),
            len: 0,
        }
    }

    fn node(&self, i: NodeIdx) -> &SplayNode {
        &self.nodes[i as usize]
    }

    fn node_mut(&mut self, i: NodeIdx) -> &mut SplayNode {
        &mut self.nodes[i as usize]
    }

    fn alloc_node(&mut self, base: u64, size: u64, unit: UnitId) -> NodeIdx {
        let node = SplayNode {
            base,
            size,
            unit,
            left: NONE,
            right: NONE,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeIdx
        }
    }

    /// Top-down splay: reorganises the subtree rooted at `root` so the node
    /// with key `key` (or the last node on the search path) becomes the
    /// root. This is the classic Sleator–Tarjan top-down formulation.
    fn splay(&mut self, mut root: NodeIdx, key: u64) -> NodeIdx {
        if root == NONE {
            return NONE;
        }
        // `left_tail` / `right_tail` are the attachment points of the
        // assembled left and right trees; `header` slots stand in for the
        // missing parent of each.
        let mut left_head = NONE;
        let mut left_tail = NONE;
        let mut right_head = NONE;
        let mut right_tail = NONE;

        loop {
            let rb = self.node(root).base;
            if key < rb {
                let mut child = self.node(root).left;
                if child == NONE {
                    break;
                }
                if key < self.node(child).base {
                    // Zig-zig: rotate right.
                    self.node_mut(root).left = self.node(child).right;
                    self.node_mut(child).right = root;
                    root = child;
                    child = self.node(root).left;
                    if child == NONE {
                        break;
                    }
                }
                // Link right.
                if right_tail == NONE {
                    right_head = root;
                } else {
                    self.node_mut(right_tail).left = root;
                }
                right_tail = root;
                root = child;
            } else if key > rb {
                let mut child = self.node(root).right;
                if child == NONE {
                    break;
                }
                if key > self.node(child).base {
                    // Zig-zig: rotate left.
                    self.node_mut(root).right = self.node(child).left;
                    self.node_mut(child).left = root;
                    root = child;
                    child = self.node(root).right;
                    if child == NONE {
                        break;
                    }
                }
                // Link left.
                if left_tail == NONE {
                    left_head = root;
                } else {
                    self.node_mut(left_tail).right = root;
                }
                left_tail = root;
                root = child;
            } else {
                break;
            }
        }

        // Assemble.
        let root_left = self.node(root).left;
        let root_right = self.node(root).right;
        if left_tail == NONE {
            left_head = root_left;
        } else {
            self.node_mut(left_tail).right = root_left;
        }
        if right_tail == NONE {
            right_head = root_right;
        } else {
            self.node_mut(right_tail).left = root_right;
        }
        self.node_mut(root).left = left_head;
        self.node_mut(root).right = right_head;
        root
    }

    #[cfg(test)]
    fn check_bst(&self) {
        fn walk(t: &SplayTable, n: NodeIdx, lo: Option<u64>, hi: Option<u64>, count: &mut usize) {
            if n == NONE {
                return;
            }
            let node = t.node(n);
            if let Some(lo) = lo {
                assert!(node.base > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(node.base < hi, "BST order violated");
            }
            *count += 1;
            walk(t, node.left, lo, Some(node.base), count);
            walk(t, node.right, Some(node.base), hi, count);
        }
        let mut count = 0;
        walk(self, self.root, None, None, &mut count);
        assert_eq!(count, self.len, "node count mismatch");
    }
}

impl ObjectTable for SplayTable {
    fn boxed_clone(&self) -> Box<dyn ObjectTable> {
        Box::new(self.clone())
    }

    fn insert(&mut self, base: u64, size: u64, unit: UnitId) {
        let fresh = self.alloc_node(base, size, unit);
        if self.root == NONE {
            self.root = fresh;
            self.len += 1;
            return;
        }
        let root = self.splay(self.root, base);
        let rb = self.node(root).base;
        if base == rb {
            // Replace in place (the caller never does this for live units,
            // but replacement keeps the structure consistent regardless).
            let (l, r) = (self.node(root).left, self.node(root).right);
            self.node_mut(fresh).left = l;
            self.node_mut(fresh).right = r;
            self.free.push(root);
            self.root = fresh;
            return;
        }
        if base < rb {
            self.node_mut(fresh).left = self.node(root).left;
            self.node_mut(fresh).right = root;
            self.node_mut(root).left = NONE;
        } else {
            self.node_mut(fresh).right = self.node(root).right;
            self.node_mut(fresh).left = root;
            self.node_mut(root).right = NONE;
        }
        self.root = fresh;
        self.len += 1;
    }

    fn remove(&mut self, base: u64) -> Option<Placement> {
        if self.root == NONE {
            return None;
        }
        let root = self.splay(self.root, base);
        self.root = root;
        if self.node(root).base != base {
            return None;
        }
        let removed = {
            let n = self.node(root);
            Placement {
                base: n.base,
                size: n.size,
                unit: n.unit,
            }
        };
        let (left, right) = (self.node(root).left, self.node(root).right);
        self.root = if left == NONE {
            right
        } else {
            // Splay the maximum of the left subtree to its root; it then
            // has no right child and adopts `right`.
            let new_root = self.splay(left, u64::MAX);
            self.node_mut(new_root).right = right;
            new_root
        };
        self.free.push(root);
        self.len -= 1;
        Some(removed)
    }

    fn lookup(&mut self, addr: u64) -> Option<Placement> {
        if self.root == NONE {
            return None;
        }
        let root = self.splay(self.root, addr);
        self.root = root;
        let candidate = {
            let n = self.node(root);
            if n.base <= addr {
                Some(Placement {
                    base: n.base,
                    size: n.size,
                    unit: n.unit,
                })
            } else {
                None
            }
        };
        let candidate = candidate.or_else(|| {
            // Root is the successor of `addr`; the containing unit, if any,
            // is the maximum of the left subtree.
            let mut n = self.node(root).left;
            if n == NONE {
                return None;
            }
            while self.node(n).right != NONE {
                n = self.node(n).right;
            }
            let node = self.node(n);
            Some(Placement {
                base: node.base,
                size: node.size,
                unit: node.unit,
            })
        })?;
        if addr < candidate.base + candidate.size {
            Some(candidate)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn kind(&self) -> TableKind {
        TableKind::Splay
    }
}

/// Entry count at which an [`AutoTable`] promotes its flat inner table
/// to a splay tree. Chosen from the stress rows: farm-resident tables
/// sit at a few dozen entries (flat's cache-dense sweet spot), while
/// single-machine traces that blow past ~a hundred live units are deep
/// enough for the splay tree's self-adjustment to pay for itself.
pub const AUTO_PROMOTE: usize = 96;

#[derive(Debug)]
enum AutoInner {
    Flat(FlatTable),
    Splay(SplayTable),
}

/// Adaptive object table: starts as a [`FlatTable`] and promotes itself
/// in place to a [`SplayTable`] when an insert would grow it past
/// [`AUTO_PROMOTE`] entries. Promotion is one-way — a table that was
/// ever deep keeps the structure built for depth, so churn around the
/// threshold cannot thrash migrations. Used directly as a backend and
/// as the paged lookup layer's natural fallback table (shared pages are
/// few, so the fallback table stays in its flat regime).
#[derive(Debug)]
pub struct AutoTable {
    inner: AutoInner,
}

impl Default for AutoTable {
    fn default() -> AutoTable {
        AutoTable::new()
    }
}

impl AutoTable {
    /// Creates an empty table (in its flat regime).
    pub fn new() -> AutoTable {
        AutoTable {
            inner: AutoInner::Flat(FlatTable::new()),
        }
    }

    /// Which structural backend currently serves this table.
    pub fn current(&self) -> TableKind {
        match self.inner {
            AutoInner::Flat(_) => TableKind::Flat,
            AutoInner::Splay(_) => TableKind::Splay,
        }
    }
}

impl ObjectTable for AutoTable {
    fn boxed_clone(&self) -> Box<dyn ObjectTable> {
        Box::new(AutoTable {
            inner: match &self.inner {
                AutoInner::Flat(t) => AutoInner::Flat(t.clone()),
                AutoInner::Splay(t) => AutoInner::Splay(t.clone()),
            },
        })
    }

    fn insert(&mut self, base: u64, size: u64, unit: UnitId) {
        if let AutoInner::Flat(flat) = &self.inner {
            if flat.entries.len() >= AUTO_PROMOTE {
                let mut splay = SplayTable::new();
                for p in &flat.entries {
                    splay.insert(p.base, p.size, p.unit);
                }
                self.inner = AutoInner::Splay(splay);
            }
        }
        match &mut self.inner {
            AutoInner::Flat(t) => t.insert(base, size, unit),
            AutoInner::Splay(t) => t.insert(base, size, unit),
        }
    }

    fn remove(&mut self, base: u64) -> Option<Placement> {
        match &mut self.inner {
            AutoInner::Flat(t) => t.remove(base),
            AutoInner::Splay(t) => t.remove(base),
        }
    }

    fn lookup(&mut self, addr: u64) -> Option<Placement> {
        match &mut self.inner {
            AutoInner::Flat(t) => t.lookup(addr),
            AutoInner::Splay(t) => t.lookup(addr),
        }
    }

    fn len(&self) -> usize {
        match &self.inner {
            AutoInner::Flat(t) => t.len(),
            AutoInner::Splay(t) => t.len(),
        }
    }

    fn kind(&self) -> TableKind {
        TableKind::Auto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<T: ObjectTable + ?Sized>(t: &mut T) {
        t.insert(100, 10, UnitId(1));
        t.insert(200, 20, UnitId(2));
        t.insert(50, 5, UnitId(3));
        assert_eq!(t.len(), 3);

        assert_eq!(t.lookup(100).unwrap().unit, UnitId(1));
        assert_eq!(t.lookup(109).unwrap().unit, UnitId(1));
        assert_eq!(t.lookup(110), None);
        assert_eq!(t.lookup(55), None);
        assert_eq!(t.lookup(54).unwrap().unit, UnitId(3));
        assert_eq!(t.lookup(219).unwrap().unit, UnitId(2));
        assert_eq!(t.lookup(220), None);
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.lookup(u64::MAX), None);

        assert_eq!(t.remove(200).unwrap().unit, UnitId(2));
        assert_eq!(t.remove(200), None);
        assert_eq!(t.lookup(210), None);
        assert_eq!(t.len(), 2);

        // Re-insert at the removed base.
        t.insert(200, 8, UnitId(4));
        assert_eq!(t.lookup(207).unwrap().unit, UnitId(4));
        assert_eq!(t.lookup(208), None);
    }

    #[test]
    fn btree_table_basics() {
        exercise(&mut BTreeTable::new());
    }

    #[test]
    fn splay_table_basics() {
        let mut t = SplayTable::new();
        exercise(&mut t);
        t.check_bst();
    }

    #[test]
    fn flat_table_basics() {
        exercise(&mut FlatTable::new());
    }

    #[test]
    fn every_kind_builds_a_working_backend() {
        for kind in TableKind::ALL {
            let mut t = kind.build();
            assert_eq!(t.kind(), kind);
            assert!(t.is_empty());
            exercise(t.as_mut());
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TableKind::ALL {
            assert_eq!(kind.name().parse::<TableKind>().unwrap(), kind);
        }
        assert_eq!("SPLAY".parse::<TableKind>().unwrap(), TableKind::Splay);
        assert_eq!("auto".parse::<TableKind>().unwrap(), TableKind::Auto);
        assert!("avl".parse::<TableKind>().is_err());
    }

    #[test]
    fn auto_table_basics() {
        let mut t = AutoTable::new();
        exercise(&mut t);
        assert_eq!(t.kind(), TableKind::Auto);
        assert_eq!(t.current(), TableKind::Flat);
        let mut boxed = TableKind::Auto.build();
        assert_eq!(boxed.kind(), TableKind::Auto);
        exercise(boxed.as_mut());
    }

    #[test]
    fn auto_table_promotes_once_and_keeps_every_entry() {
        let mut t = AutoTable::new();
        for i in 0..(AUTO_PROMOTE as u64 + 32) {
            t.insert(i * 32, 16, UnitId(i as u32));
            let expect = if i < AUTO_PROMOTE as u64 {
                TableKind::Flat
            } else {
                TableKind::Splay
            };
            assert_eq!(t.current(), expect, "after {} inserts", i + 1);
        }
        // Every entry survived the migration, including lookups across
        // the promotion boundary and in the gaps.
        for i in 0..(AUTO_PROMOTE as u64 + 32) {
            assert_eq!(t.lookup(i * 32 + 3).unwrap().unit, UnitId(i as u32));
            assert!(t.lookup(i * 32 + 20).is_none());
        }
        // Promotion is one-way: shrinking far below the threshold keeps
        // the splay structure (no migration thrash).
        for i in 0..(AUTO_PROMOTE as u64 + 24) {
            assert!(t.remove(i * 32).is_some());
        }
        assert_eq!(t.current(), TableKind::Splay);
        assert_eq!(t.len(), 8);
        // A clone carries the promoted structure.
        let mut c = t.boxed_clone();
        assert_eq!(c.len(), 8);
        assert_eq!(
            c.lookup((AUTO_PROMOTE as u64 + 28) * 32).map(|p| p.unit),
            t.lookup((AUTO_PROMOTE as u64 + 28) * 32).map(|p| p.unit)
        );
    }

    #[test]
    fn flat_memo_survives_interleaved_mutation() {
        let mut t = FlatTable::new();
        for i in 0..64u64 {
            t.insert(i * 32, 16, UnitId(i as u32));
        }
        // Warm the memo on unit 40, then remove a lower entry (shifting
        // the memoized index) and verify lookups stay correct.
        assert_eq!(t.lookup(40 * 32 + 3).unwrap().unit, UnitId(40));
        assert_eq!(t.remove(10 * 32).unwrap().unit, UnitId(10));
        assert_eq!(t.lookup(40 * 32 + 3).unwrap().unit, UnitId(40));
        assert_eq!(t.lookup(10 * 32 + 3), None);
        // Insert below the memoized slot, shifting entries up.
        t.insert(10 * 32, 16, UnitId(99));
        assert_eq!(t.lookup(10 * 32 + 3).unwrap().unit, UnitId(99));
        assert_eq!(t.lookup(40 * 32 + 3).unwrap().unit, UnitId(40));
    }

    #[test]
    fn splay_handles_many_interleaved_ops() {
        let mut t = SplayTable::new();
        // Insert 1000 spaced units, remove every third, verify lookups.
        for i in 0..1000u64 {
            t.insert(i * 16, 8, UnitId(i as u32));
        }
        t.check_bst();
        for i in (0..1000u64).step_by(3) {
            assert!(t.remove(i * 16).is_some());
        }
        t.check_bst();
        for i in 0..1000u64 {
            let hit = t.lookup(i * 16 + 4);
            if i % 3 == 0 {
                assert!(hit.is_none(), "unit {i} should be gone");
            } else {
                assert_eq!(hit.unwrap().unit, UnitId(i as u32));
            }
            // The 8-byte gap between units never resolves.
            assert!(t.lookup(i * 16 + 12).is_none());
        }
        t.check_bst();
    }

    #[test]
    fn splay_reuses_freed_slots() {
        let mut t = SplayTable::new();
        for i in 0..64u64 {
            t.insert(i * 32, 16, UnitId(i as u32));
        }
        let nodes_before = t.nodes.len();
        for i in 0..64u64 {
            t.remove(i * 32);
        }
        for i in 0..64u64 {
            t.insert(i * 32 + 4096, 16, UnitId(i as u32 + 100));
        }
        assert_eq!(t.nodes.len(), nodes_before, "slots must be recycled");
    }
}
