//! The object table: locations → data units.
//!
//! Jones & Kelly's checking scheme keeps every live allocation in an
//! ordered structure searched by address on each pointer operation; their
//! implementation (and CRED's) used a splay tree because memory accesses
//! have high temporal locality — the unit touched by one access is very
//! likely to be touched by the next. We provide both a [`SplayTable`]
//! (faithful to the original) and a [`BTreeTable`] baseline; the bench
//! suite compares them on server-like access traces.
//!
//! The table stores `(base, size, unit)` entries keyed by base address.
//! A lookup finds the entry with the greatest base not exceeding the query
//! address and checks that the address falls before `base + size`. The
//! memory space guarantees entries never overlap.

use std::collections::BTreeMap;

use crate::unit::UnitId;

/// A table entry: a live allocation's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// First byte of the unit.
    pub base: u64,
    /// Size of the unit in bytes.
    pub size: u64,
    /// The unit occupying `[base, base + size)`.
    pub unit: UnitId,
}

/// Address-indexed lookup of live data units.
///
/// Lookup takes `&mut self` because self-adjusting implementations (the
/// splay tree) reorganise on every query.
pub trait ObjectTable {
    /// Registers a live unit. The caller guarantees the range does not
    /// overlap any registered range.
    fn insert(&mut self, base: u64, size: u64, unit: UnitId);

    /// Removes the unit based at exactly `base`, returning it if present.
    fn remove(&mut self, base: u64) -> Option<Placement>;

    /// Finds the unit whose range contains `addr`.
    fn lookup(&mut self, addr: u64) -> Option<Placement>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the table is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Object table backed by the standard library B-tree.
#[derive(Debug, Default)]
pub struct BTreeTable {
    map: BTreeMap<u64, (u64, UnitId)>,
}

impl BTreeTable {
    /// Creates an empty table.
    pub fn new() -> BTreeTable {
        BTreeTable::default()
    }
}

impl ObjectTable for BTreeTable {
    fn insert(&mut self, base: u64, size: u64, unit: UnitId) {
        self.map.insert(base, (size, unit));
    }

    fn remove(&mut self, base: u64) -> Option<Placement> {
        self.map
            .remove(&base)
            .map(|(size, unit)| Placement { base, size, unit })
    }

    fn lookup(&mut self, addr: u64) -> Option<Placement> {
        let (&base, &(size, unit)) = self.map.range(..=addr).next_back()?;
        if addr < base + size {
            Some(Placement { base, size, unit })
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Index of a splay tree node, with `NONE` as the null sentinel.
type NodeIdx = u32;
const NONE: NodeIdx = u32::MAX;

#[derive(Debug, Clone)]
struct SplayNode {
    base: u64,
    size: u64,
    unit: UnitId,
    left: NodeIdx,
    right: NodeIdx,
}

/// Self-adjusting object table, as in the Jones & Kelly runtime.
///
/// Nodes live in a `Vec` and are addressed by index; removed slots are
/// recycled through a free list. Every lookup splays the closest entry to
/// the root, so repeated accesses to the same data unit are O(1) after the
/// first — the common case for server request processing.
#[derive(Debug, Default)]
pub struct SplayTable {
    nodes: Vec<SplayNode>,
    root: NodeIdx,
    free: Vec<NodeIdx>,
    len: usize,
}

impl SplayTable {
    /// Creates an empty table.
    pub fn new() -> SplayTable {
        SplayTable {
            nodes: Vec::new(),
            root: NONE,
            free: Vec::new(),
            len: 0,
        }
    }

    fn node(&self, i: NodeIdx) -> &SplayNode {
        &self.nodes[i as usize]
    }

    fn node_mut(&mut self, i: NodeIdx) -> &mut SplayNode {
        &mut self.nodes[i as usize]
    }

    fn alloc_node(&mut self, base: u64, size: u64, unit: UnitId) -> NodeIdx {
        let node = SplayNode {
            base,
            size,
            unit,
            left: NONE,
            right: NONE,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeIdx
        }
    }

    /// Top-down splay: reorganises the subtree rooted at `root` so the node
    /// with key `key` (or the last node on the search path) becomes the
    /// root. This is the classic Sleator–Tarjan top-down formulation.
    fn splay(&mut self, mut root: NodeIdx, key: u64) -> NodeIdx {
        if root == NONE {
            return NONE;
        }
        // `left_tail` / `right_tail` are the attachment points of the
        // assembled left and right trees; `header` slots stand in for the
        // missing parent of each.
        let mut left_head = NONE;
        let mut left_tail = NONE;
        let mut right_head = NONE;
        let mut right_tail = NONE;

        loop {
            let rb = self.node(root).base;
            if key < rb {
                let mut child = self.node(root).left;
                if child == NONE {
                    break;
                }
                if key < self.node(child).base {
                    // Zig-zig: rotate right.
                    self.node_mut(root).left = self.node(child).right;
                    self.node_mut(child).right = root;
                    root = child;
                    child = self.node(root).left;
                    if child == NONE {
                        break;
                    }
                }
                // Link right.
                if right_tail == NONE {
                    right_head = root;
                } else {
                    self.node_mut(right_tail).left = root;
                }
                right_tail = root;
                root = child;
            } else if key > rb {
                let mut child = self.node(root).right;
                if child == NONE {
                    break;
                }
                if key > self.node(child).base {
                    // Zig-zig: rotate left.
                    self.node_mut(root).right = self.node(child).left;
                    self.node_mut(child).left = root;
                    root = child;
                    child = self.node(root).right;
                    if child == NONE {
                        break;
                    }
                }
                // Link left.
                if left_tail == NONE {
                    left_head = root;
                } else {
                    self.node_mut(left_tail).right = root;
                }
                left_tail = root;
                root = child;
            } else {
                break;
            }
        }

        // Assemble.
        let root_left = self.node(root).left;
        let root_right = self.node(root).right;
        if left_tail == NONE {
            left_head = root_left;
        } else {
            self.node_mut(left_tail).right = root_left;
        }
        if right_tail == NONE {
            right_head = root_right;
        } else {
            self.node_mut(right_tail).left = root_right;
        }
        self.node_mut(root).left = left_head;
        self.node_mut(root).right = right_head;
        root
    }

    #[cfg(test)]
    fn check_bst(&self) {
        fn walk(t: &SplayTable, n: NodeIdx, lo: Option<u64>, hi: Option<u64>, count: &mut usize) {
            if n == NONE {
                return;
            }
            let node = t.node(n);
            if let Some(lo) = lo {
                assert!(node.base > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(node.base < hi, "BST order violated");
            }
            *count += 1;
            walk(t, node.left, lo, Some(node.base), count);
            walk(t, node.right, Some(node.base), hi, count);
        }
        let mut count = 0;
        walk(self, self.root, None, None, &mut count);
        assert_eq!(count, self.len, "node count mismatch");
    }
}

impl ObjectTable for SplayTable {
    fn insert(&mut self, base: u64, size: u64, unit: UnitId) {
        let fresh = self.alloc_node(base, size, unit);
        if self.root == NONE {
            self.root = fresh;
            self.len += 1;
            return;
        }
        let root = self.splay(self.root, base);
        let rb = self.node(root).base;
        if base == rb {
            // Replace in place (the caller never does this for live units,
            // but replacement keeps the structure consistent regardless).
            let (l, r) = (self.node(root).left, self.node(root).right);
            self.node_mut(fresh).left = l;
            self.node_mut(fresh).right = r;
            self.free.push(root);
            self.root = fresh;
            return;
        }
        if base < rb {
            self.node_mut(fresh).left = self.node(root).left;
            self.node_mut(fresh).right = root;
            self.node_mut(root).left = NONE;
        } else {
            self.node_mut(fresh).right = self.node(root).right;
            self.node_mut(fresh).left = root;
            self.node_mut(root).right = NONE;
        }
        self.root = fresh;
        self.len += 1;
    }

    fn remove(&mut self, base: u64) -> Option<Placement> {
        if self.root == NONE {
            return None;
        }
        let root = self.splay(self.root, base);
        self.root = root;
        if self.node(root).base != base {
            return None;
        }
        let removed = {
            let n = self.node(root);
            Placement {
                base: n.base,
                size: n.size,
                unit: n.unit,
            }
        };
        let (left, right) = (self.node(root).left, self.node(root).right);
        self.root = if left == NONE {
            right
        } else {
            // Splay the maximum of the left subtree to its root; it then
            // has no right child and adopts `right`.
            let new_root = self.splay(left, u64::MAX);
            self.node_mut(new_root).right = right;
            new_root
        };
        self.free.push(root);
        self.len -= 1;
        Some(removed)
    }

    fn lookup(&mut self, addr: u64) -> Option<Placement> {
        if self.root == NONE {
            return None;
        }
        let root = self.splay(self.root, addr);
        self.root = root;
        let candidate = {
            let n = self.node(root);
            if n.base <= addr {
                Some(Placement {
                    base: n.base,
                    size: n.size,
                    unit: n.unit,
                })
            } else {
                None
            }
        };
        let candidate = candidate.or_else(|| {
            // Root is the successor of `addr`; the containing unit, if any,
            // is the maximum of the left subtree.
            let mut n = self.node(root).left;
            if n == NONE {
                return None;
            }
            while self.node(n).right != NONE {
                n = self.node(n).right;
            }
            let node = self.node(n);
            Some(Placement {
                base: node.base,
                size: node.size,
                unit: node.unit,
            })
        })?;
        if addr < candidate.base + candidate.size {
            Some(candidate)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Runtime-selectable table implementation.
#[derive(Debug)]
pub enum TableImpl {
    /// Self-adjusting splay tree (the default, as in Jones & Kelly).
    Splay(SplayTable),
    /// B-tree baseline.
    BTree(BTreeTable),
}

impl Default for TableImpl {
    fn default() -> TableImpl {
        TableImpl::Splay(SplayTable::new())
    }
}

impl ObjectTable for TableImpl {
    fn insert(&mut self, base: u64, size: u64, unit: UnitId) {
        match self {
            TableImpl::Splay(t) => t.insert(base, size, unit),
            TableImpl::BTree(t) => t.insert(base, size, unit),
        }
    }

    fn remove(&mut self, base: u64) -> Option<Placement> {
        match self {
            TableImpl::Splay(t) => t.remove(base),
            TableImpl::BTree(t) => t.remove(base),
        }
    }

    fn lookup(&mut self, addr: u64) -> Option<Placement> {
        match self {
            TableImpl::Splay(t) => t.lookup(addr),
            TableImpl::BTree(t) => t.lookup(addr),
        }
    }

    fn len(&self) -> usize {
        match self {
            TableImpl::Splay(t) => t.len(),
            TableImpl::BTree(t) => t.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<T: ObjectTable>(t: &mut T) {
        t.insert(100, 10, UnitId(1));
        t.insert(200, 20, UnitId(2));
        t.insert(50, 5, UnitId(3));
        assert_eq!(t.len(), 3);

        assert_eq!(t.lookup(100).unwrap().unit, UnitId(1));
        assert_eq!(t.lookup(109).unwrap().unit, UnitId(1));
        assert_eq!(t.lookup(110), None);
        assert_eq!(t.lookup(55), None);
        assert_eq!(t.lookup(54).unwrap().unit, UnitId(3));
        assert_eq!(t.lookup(219).unwrap().unit, UnitId(2));
        assert_eq!(t.lookup(220), None);
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.lookup(u64::MAX), None);

        assert_eq!(t.remove(200).unwrap().unit, UnitId(2));
        assert_eq!(t.remove(200), None);
        assert_eq!(t.lookup(210), None);
        assert_eq!(t.len(), 2);

        // Re-insert at the removed base.
        t.insert(200, 8, UnitId(4));
        assert_eq!(t.lookup(207).unwrap().unit, UnitId(4));
        assert_eq!(t.lookup(208), None);
    }

    #[test]
    fn btree_table_basics() {
        exercise(&mut BTreeTable::new());
    }

    #[test]
    fn splay_table_basics() {
        let mut t = SplayTable::new();
        exercise(&mut t);
        t.check_bst();
    }

    #[test]
    fn table_impl_dispatches() {
        exercise(&mut TableImpl::default());
        exercise(&mut TableImpl::BTree(BTreeTable::new()));
    }

    #[test]
    fn splay_handles_many_interleaved_ops() {
        let mut t = SplayTable::new();
        // Insert 1000 spaced units, remove every third, verify lookups.
        for i in 0..1000u64 {
            t.insert(i * 16, 8, UnitId(i as u32));
        }
        t.check_bst();
        for i in (0..1000u64).step_by(3) {
            assert!(t.remove(i * 16).is_some());
        }
        t.check_bst();
        for i in 0..1000u64 {
            let hit = t.lookup(i * 16 + 4);
            if i % 3 == 0 {
                assert!(hit.is_none(), "unit {i} should be gone");
            } else {
                assert_eq!(hit.unwrap().unit, UnitId(i as u32));
            }
            // The 8-byte gap between units never resolves.
            assert!(t.lookup(i * 16 + 12).is_none());
        }
        t.check_bst();
    }

    #[test]
    fn splay_reuses_freed_slots() {
        let mut t = SplayTable::new();
        for i in 0..64u64 {
            t.insert(i * 32, 16, UnitId(i as u32));
        }
        let nodes_before = t.nodes.len();
        for i in 0..64u64 {
            t.remove(i * 32);
        }
        for i in 0..64u64 {
            t.insert(i * 32 + 4096, 16, UnitId(i as u32 + 100));
        }
        assert_eq!(t.nodes.len(), nodes_before, "slots must be recycled");
    }
}
