//! Free-list heap allocator with in-memory block headers.
//!
//! The allocator's metadata (a magic word and the block size) lives in the
//! simulated address space immediately before each payload, exactly like a
//! classic `dlmalloc`-style allocator. This is load-bearing for the
//! Standard-mode experiments: a heap buffer overflow tramples the next
//! block's header, and the corruption is detected — as a fatal fault — on a
//! subsequent `malloc`/`free`, reproducing the paper's "writes beyond the
//! end of the buffer, corrupts its heap, and terminates with a segmentation
//! violation" behaviour for Pine and Mutt. In the checked modes the bounds
//! checks make headers unreachable from guest code, so the same allocator
//! never observes corruption.
//!
//! Blocks are never coalesced; server workloads allocate and free a small
//! set of sizes repeatedly, so first-fit reuse keeps fragmentation bounded.

use std::fmt;

use crate::addr::{AccessSize, Region};

/// Magic word marking a live allocated block.
const MAGIC_ALLOCATED: u64 = 0xA110_C8ED_0B5E_55ED;
/// Magic word marking a freed block on the free list.
const MAGIC_FREE: u64 = 0xF4EE_B10C_F4EE_B10C;

/// Header size in bytes: `[magic: u64][size: u64]`.
pub const HEADER_SIZE: u64 = 16;

/// Payload alignment and rounding granule.
const ALIGN: u64 = 16;

/// Fatal allocator conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// A block header no longer carries a valid magic word — guest writes
    /// corrupted allocator metadata (only possible in Standard mode).
    CorruptHeader {
        /// Payload address of the block whose header is damaged.
        addr: u64,
        /// The corrupted magic value found.
        found: u64,
    },
    /// `free` called on an address that is not a live allocation.
    InvalidFree {
        /// The address passed to `free`.
        addr: u64,
    },
    /// `free` called twice on the same allocation.
    DoubleFree {
        /// The address passed to `free`.
        addr: u64,
    },
    /// The heap region is exhausted.
    OutOfMemory,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::CorruptHeader { addr, found } => {
                write!(f, "corrupt heap header at {addr:#x} (magic {found:#x})")
            }
            HeapError::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            HeapError::DoubleFree { addr } => write!(f, "double free of {addr:#x}"),
            HeapError::OutOfMemory => write!(f, "heap exhausted"),
        }
    }
}

/// First-fit free-list allocator over a [`Region`].
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    /// Payload address of the first free block, or 0 when the list is
    /// empty. Free blocks store the next free payload address in their
    /// first 8 payload bytes.
    free_head: u64,
    /// Bump pointer: next never-allocated address.
    brk: u64,
    /// Number of live allocations.
    live: u64,
    /// Total bytes handed out and not yet freed (payload bytes).
    live_bytes: u64,
}

impl HeapAllocator {
    /// Creates an allocator managing the given region.
    pub fn new(region: &Region) -> HeapAllocator {
        HeapAllocator {
            free_head: 0,
            brk: region.base(),
            live: 0,
            live_bytes: 0,
        }
    }

    /// Rounds a request up to the allocation granule. Zero-byte requests
    /// consume a granule so the returned pointer is unique.
    fn rounded(size: u64) -> u64 {
        size.max(1).div_ceil(ALIGN) * ALIGN
    }

    /// Allocates `size` payload bytes, returning the payload address.
    ///
    /// The payload is *not* zeroed when recycled from the free list —
    /// uninitialised heap memory retains stale bytes, as with real
    /// `malloc`. (Fresh memory from the bump pointer is zero because the
    /// region starts zeroed; that also matches common OS behaviour.)
    pub fn malloc(&mut self, region: &mut Region, size: u64) -> Result<u64, HeapError> {
        let want = Self::rounded(size);

        // First fit over the free list.
        let mut prev: u64 = 0;
        let mut cur = self.free_head;
        while cur != 0 {
            let header = cur - HEADER_SIZE;
            let magic = region
                .read(header, AccessSize::B8)
                .ok_or(HeapError::CorruptHeader {
                    addr: cur,
                    found: 0,
                })?;
            if magic != MAGIC_FREE {
                // Guest writes trampled a free block header (or the free
                // list pointer led somewhere wild).
                return Err(HeapError::CorruptHeader {
                    addr: cur,
                    found: magic,
                });
            }
            let bsize = region.read(header + 8, AccessSize::B8).unwrap_or(0);
            let next = region.read(cur, AccessSize::B8).unwrap_or(0);
            if !(next == 0 || region.contains(next, 1)) {
                // The intrusive next pointer was overwritten with a value
                // that cannot be a heap payload.
                return Err(HeapError::CorruptHeader {
                    addr: cur,
                    found: next,
                });
            }
            if bsize >= want {
                // Unlink.
                if prev == 0 {
                    self.free_head = next;
                } else {
                    region.write(prev, AccessSize::B8, next);
                }
                // Split when the remainder can hold a header plus a
                // minimal payload; the remainder becomes a new free block
                // immediately after the handed-out payload — which is what
                // puts allocator metadata directly in the path of heap
                // buffer overflows, as with a real dlmalloc-style heap.
                let handed = if bsize >= want + HEADER_SIZE + ALIGN {
                    let rem_header = cur + want;
                    let rem_payload = rem_header + HEADER_SIZE;
                    let rem_size = bsize - want - HEADER_SIZE;
                    region.write(rem_header, AccessSize::B8, MAGIC_FREE);
                    region.write(rem_header + 8, AccessSize::B8, rem_size);
                    region.write(rem_payload, AccessSize::B8, self.free_head);
                    self.free_head = rem_payload;
                    region.write(header + 8, AccessSize::B8, want);
                    want
                } else {
                    bsize
                };
                region.write(header, AccessSize::B8, MAGIC_ALLOCATED);
                self.live += 1;
                self.live_bytes += handed;
                return Ok(cur);
            }
            prev = cur;
            cur = next;
        }

        // Bump allocation.
        let header = self.brk;
        let payload = header + HEADER_SIZE;
        let new_brk = payload + want;
        if !region.contains(header, HEADER_SIZE + want) {
            return Err(HeapError::OutOfMemory);
        }
        self.brk = new_brk;
        region.write(header, AccessSize::B8, MAGIC_ALLOCATED);
        region.write(header + 8, AccessSize::B8, want);
        self.live += 1;
        self.live_bytes += want;
        Ok(payload)
    }

    /// Frees the allocation at payload address `addr`, returning its stored
    /// capacity on success.
    pub fn free(&mut self, region: &mut Region, addr: u64) -> Result<u64, HeapError> {
        if addr < region.base() + HEADER_SIZE || !region.contains(addr, 1) {
            return Err(HeapError::InvalidFree { addr });
        }
        let header = addr - HEADER_SIZE;
        let magic = region.read(header, AccessSize::B8).unwrap_or(0);
        match magic {
            MAGIC_ALLOCATED => {}
            MAGIC_FREE => return Err(HeapError::DoubleFree { addr }),
            found => return Err(HeapError::CorruptHeader { addr, found }),
        }
        let size = region.read(header + 8, AccessSize::B8).unwrap_or(0);
        if size == 0 || !region.contains(addr, size) {
            // Size word trampled: treat as corruption.
            return Err(HeapError::CorruptHeader { addr, found: size });
        }
        // Validate the physically adjacent block's header, as glibc's
        // consolidation path does — this is how real allocators detect the
        // classic heap-buffer-overflow pattern at `free` time. Every block
        // below the bump pointer is followed by another header.
        let block_end = addr + size;
        if block_end < self.brk {
            match region.read(block_end, AccessSize::B8) {
                Some(MAGIC_ALLOCATED) | Some(MAGIC_FREE) => {}
                other => {
                    return Err(HeapError::CorruptHeader {
                        addr: block_end + HEADER_SIZE,
                        found: other.unwrap_or(0),
                    });
                }
            }
        }
        region.write(header, AccessSize::B8, MAGIC_FREE);
        region.write(addr, AccessSize::B8, self.free_head);
        self.free_head = addr;
        self.live -= 1;
        self.live_bytes -= size;
        Ok(size)
    }

    /// Stored payload capacity of the live allocation at `addr`.
    pub fn block_size(&self, region: &Region, addr: u64) -> Result<u64, HeapError> {
        if addr < region.base() + HEADER_SIZE {
            return Err(HeapError::InvalidFree { addr });
        }
        let header = addr - HEADER_SIZE;
        match region.read(header, AccessSize::B8) {
            Some(MAGIC_ALLOCATED) => Ok(region.read(header + 8, AccessSize::B8).unwrap_or(0)),
            Some(found) => Err(HeapError::CorruptHeader { addr, found }),
            None => Err(HeapError::InvalidFree { addr }),
        }
    }

    /// Number of live allocations.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Live payload bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of the bump pointer.
    pub fn brk(&self) -> u64 {
        self.brk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RegionKind;

    fn heap() -> (HeapAllocator, Region) {
        let region = Region::new(RegionKind::Heap, 0x1000, 64 * 1024);
        let alloc = HeapAllocator::new(&region);
        (alloc, region)
    }

    #[test]
    fn malloc_returns_aligned_disjoint_blocks() {
        let (mut a, mut r) = heap();
        let p1 = a.malloc(&mut r, 10).unwrap();
        let p2 = a.malloc(&mut r, 10).unwrap();
        assert_eq!(p1 % ALIGN, 0);
        assert_eq!(p2 % ALIGN, 0);
        assert!(p2 >= p1 + 16, "payloads must not overlap");
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn free_then_malloc_reuses_block() {
        let (mut a, mut r) = heap();
        let p1 = a.malloc(&mut r, 32).unwrap();
        a.free(&mut r, p1).unwrap();
        let p2 = a.malloc(&mut r, 32).unwrap();
        assert_eq!(p1, p2, "first fit must recycle the freed block");
    }

    #[test]
    fn free_list_is_lifo_and_skips_small_blocks() {
        let (mut a, mut r) = heap();
        let small = a.malloc(&mut r, 16).unwrap();
        let big = a.malloc(&mut r, 256).unwrap();
        a.free(&mut r, small).unwrap();
        a.free(&mut r, big).unwrap();
        // Request bigger than `small`: must skip it and take `big`.
        let p = a.malloc(&mut r, 100).unwrap();
        assert_eq!(p, big);
        // The split remainder of `big` heads the free list now.
        let q = a.malloc(&mut r, 8).unwrap();
        assert_eq!(q, big + 112 + HEADER_SIZE, "remainder payload expected");
        // `small` is still reachable once the remainders are consumed: a
        // request too big for every remainder but fitting `small`... is
        // impossible (16 is the minimum), so exhaust the list instead and
        // verify `small` gets reused eventually.
        let mut seen_small = false;
        for _ in 0..8 {
            if a.malloc(&mut r, 16).unwrap() == small {
                seen_small = true;
                break;
            }
        }
        assert!(seen_small, "small block must be reused by first fit");
    }

    #[test]
    fn splitting_creates_adjacent_free_block() {
        let (mut a, mut r) = heap();
        let big = a.malloc(&mut r, 512).unwrap();
        a.free(&mut r, big).unwrap();
        // Take a 96-byte slice out of the 512 block.
        let p = a.malloc(&mut r, 96).unwrap();
        assert_eq!(p, big);
        // The remainder's header sits immediately after the payload: an
        // overflow past `p` tramples it, and the corruption is caught on
        // the next free-list walk.
        r.write(p + 96, AccessSize::B8, 0x4141_4141_4141_4141);
        assert!(matches!(
            a.malloc(&mut r, 200),
            Err(HeapError::CorruptHeader { .. })
        ));
    }

    #[test]
    fn double_free_detected() {
        let (mut a, mut r) = heap();
        let p = a.malloc(&mut r, 8).unwrap();
        a.free(&mut r, p).unwrap();
        assert_eq!(a.free(&mut r, p), Err(HeapError::DoubleFree { addr: p }));
    }

    #[test]
    fn invalid_free_detected() {
        let (mut a, mut r) = heap();
        assert!(matches!(
            a.free(&mut r, 0x20),
            Err(HeapError::InvalidFree { .. })
        ));
        assert!(matches!(
            a.free(&mut r, 0x1000 + 24),
            Err(HeapError::CorruptHeader { .. }) | Err(HeapError::InvalidFree { .. })
        ));
    }

    #[test]
    fn overflow_corrupting_next_header_is_detected_on_free() {
        let (mut a, mut r) = heap();
        let p1 = a.malloc(&mut r, 16).unwrap();
        let p2 = a.malloc(&mut r, 16).unwrap();
        // Simulate a Standard-mode overflow: write past p1 into p2's header.
        let next_header = p2 - HEADER_SIZE;
        r.write(next_header, AccessSize::B8, 0x4141_4141_4141_4141);
        // Freeing the victim itself is caught by the magic check...
        assert!(matches!(
            a.free(&mut r, p2),
            Err(HeapError::CorruptHeader { .. })
        ));
        // ...and freeing the overflowing neighbour is caught by the
        // adjacent-header (consolidation) check.
        assert!(matches!(
            a.free(&mut r, p1),
            Err(HeapError::CorruptHeader { .. })
        ));
    }

    #[test]
    fn overflow_corrupting_free_list_is_detected_on_malloc() {
        let (mut a, mut r) = heap();
        let p1 = a.malloc(&mut r, 16).unwrap();
        let _p2 = a.malloc(&mut r, 16).unwrap();
        a.free(&mut r, p1).unwrap();
        // Trample the freed block's magic word.
        r.write(p1 - HEADER_SIZE, AccessSize::B8, 0xBAD0_BAD0);
        assert!(matches!(
            a.malloc(&mut r, 16),
            Err(HeapError::CorruptHeader { .. })
        ));
    }

    #[test]
    fn overflow_into_neighbour_detected_at_free_time() {
        let (mut a, mut r) = heap();
        let p1 = a.malloc(&mut r, 16).unwrap();
        let _p2 = a.malloc(&mut r, 16).unwrap();
        // Overflow p1 into p2's header (the glibc-abort scenario).
        r.write(p1 + 16, AccessSize::B8, 0x6161_6161_6161_6161);
        assert!(matches!(
            a.free(&mut r, p1),
            Err(HeapError::CorruptHeader { .. })
        ));
    }

    #[test]
    fn out_of_memory_is_reported() {
        let region = Region::new(RegionKind::Heap, 0x1000, 256);
        let mut a = HeapAllocator::new(&region);
        let mut r = region;
        let mut got = Vec::new();
        loop {
            match a.malloc(&mut r, 64) {
                Ok(p) => got.push(p),
                Err(HeapError::OutOfMemory) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(!got.is_empty());
        // Freeing everything makes allocation succeed again.
        for p in got {
            a.free(&mut r, p).unwrap();
        }
        assert!(a.malloc(&mut r, 64).is_ok());
    }

    #[test]
    fn zero_byte_allocations_get_unique_pointers() {
        let (mut a, mut r) = heap();
        let p1 = a.malloc(&mut r, 0).unwrap();
        let p2 = a.malloc(&mut r, 0).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn live_bytes_tracks_capacity() {
        let (mut a, mut r) = heap();
        let p = a.malloc(&mut r, 20).unwrap();
        assert_eq!(a.live_bytes(), 32); // rounded to granule
        a.free(&mut r, p).unwrap();
        assert_eq!(a.live_bytes(), 0);
    }
}
