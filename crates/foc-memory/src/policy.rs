//! Access policies: the three compilers of §4.1 plus the §5.1 variants.

use std::collections::HashMap;

use crate::unit::UnitId;

/// How memory accesses are checked and what happens on a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// The *Standard* version: no checks. Out-of-bounds accesses hit
    /// whatever bytes are at the target address; unmapped addresses fault
    /// with a segmentation violation.
    Standard,
    /// The *Bounds Check* version (CRED): every access is checked and the
    /// first violation terminates the program with a memory error.
    BoundsCheck,
    /// The *Failure Oblivious* version: invalid writes are discarded,
    /// invalid reads return manufactured values, execution continues.
    #[default]
    FailureOblivious,
    /// §5.1 variant — boundless memory blocks: out-of-bounds writes are
    /// stored in a hash table indexed by data unit and offset; matching
    /// out-of-bounds reads return the stored values. Accesses with no known
    /// referent behave as in failure-oblivious mode.
    Boundless,
    /// §5.1 variant — redirection: out-of-bounds accesses are redirected
    /// back into the referent data unit at the intended offset wrapped
    /// modulo the unit size. Accesses with no known referent behave as in
    /// failure-oblivious mode.
    Redirect,
}

impl Mode {
    /// Whether accesses consult the object table at all.
    #[inline]
    pub fn is_checked(self) -> bool {
        !matches!(self, Mode::Standard)
    }

    /// Whether a detected violation continues execution (rather than
    /// terminating, as the Bounds Check version does).
    #[inline]
    pub fn continues_through_errors(self) -> bool {
        matches!(
            self,
            Mode::FailureOblivious | Mode::Boundless | Mode::Redirect
        )
    }

    /// Short human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Standard => "Standard",
            Mode::BoundsCheck => "Bounds Check",
            Mode::FailureOblivious => "Failure Oblivious",
            Mode::Boundless => "Boundless",
            Mode::Redirect => "Redirect",
        }
    }

    /// All modes, for matrix experiments.
    pub const ALL: [Mode; 5] = [
        Mode::Standard,
        Mode::BoundsCheck,
        Mode::FailureOblivious,
        Mode::Boundless,
        Mode::Redirect,
    ];
}

/// Backing store for boundless memory blocks.
///
/// Values written out of bounds are kept per byte, keyed by the referent
/// unit and the byte's offset from the unit base. A read that finds all of
/// its bytes returns the stored value; a read with any missing byte falls
/// back to value manufacturing (the write never happened, so there is
/// nothing to return — this matches the conceptual model of an infinitely
/// extended block whose untouched bytes are undefined).
#[derive(Debug, Clone, Default)]
pub struct BoundlessStore {
    bytes: HashMap<(UnitId, i64), u8>,
}

impl BoundlessStore {
    /// Creates an empty store.
    pub fn new() -> BoundlessStore {
        BoundlessStore::default()
    }

    /// Stores `len` bytes of `value` at `offset` from the unit base.
    pub fn store(&mut self, unit: UnitId, offset: i64, len: u64, value: u64) {
        let bytes = value.to_le_bytes();
        for i in 0..len {
            self.bytes
                .insert((unit, offset + i as i64), bytes[i as usize]);
        }
    }

    /// Loads `len` bytes at `offset` from the unit base, if all present.
    pub fn load(&self, unit: UnitId, offset: i64, len: u64) -> Option<u64> {
        let mut buf = [0u8; 8];
        for i in 0..len {
            buf[i as usize] = *self.bytes.get(&(unit, offset + i as i64))?;
        }
        Some(u64::from_le_bytes(buf))
    }

    /// Number of stored bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Discards everything stored for the given unit (called on free, since
    /// a new unit may reuse the identifier-less address range).
    pub fn forget_unit(&mut self, unit: UnitId) {
        self.bytes.retain(|(u, _), _| *u != unit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(!Mode::Standard.is_checked());
        assert!(Mode::BoundsCheck.is_checked());
        assert!(!Mode::BoundsCheck.continues_through_errors());
        for m in [Mode::FailureOblivious, Mode::Boundless, Mode::Redirect] {
            assert!(m.is_checked());
            assert!(m.continues_through_errors());
        }
    }

    #[test]
    fn boundless_store_round_trips_multibyte() {
        let mut s = BoundlessStore::new();
        s.store(UnitId(1), 100, 4, 0xDDCC_BBAA);
        assert_eq!(s.load(UnitId(1), 100, 4), Some(0xDDCC_BBAA));
        // Partial overlap reads see the little-endian bytes.
        assert_eq!(s.load(UnitId(1), 101, 2), Some(0xCCBB));
        // A byte outside the written range is missing.
        assert_eq!(s.load(UnitId(1), 101, 4), None);
    }

    #[test]
    fn boundless_store_is_per_unit() {
        let mut s = BoundlessStore::new();
        s.store(UnitId(1), 0, 1, 7);
        assert_eq!(s.load(UnitId(2), 0, 1), None);
    }

    #[test]
    fn boundless_store_supports_negative_offsets() {
        let mut s = BoundlessStore::new();
        s.store(UnitId(3), -8, 8, u64::MAX);
        assert_eq!(s.load(UnitId(3), -8, 8), Some(u64::MAX));
    }

    #[test]
    fn forget_unit_drops_only_that_unit() {
        let mut s = BoundlessStore::new();
        s.store(UnitId(1), 0, 4, 1);
        s.store(UnitId(2), 0, 4, 2);
        s.forget_unit(UnitId(1));
        assert_eq!(s.load(UnitId(1), 0, 4), None);
        assert_eq!(s.load(UnitId(2), 0, 4), Some(2));
    }
}
