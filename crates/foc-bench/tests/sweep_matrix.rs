//! The sweep's determinism contract, end to end through the report
//! layer:
//!
//! 1. **Byte-identical matrices.** Running the same grid twice — at
//!    different thread counts and scheduling grains — renders exactly
//!    the same `SWEEP_matrix.json` bytes. This is what lets CI diff the
//!    committed matrix and what makes resume sound.
//! 2. **Resume completes to the identical file.** Interrupting a sweep
//!    (simulated by truncating the rendered matrix at a chunk boundary)
//!    and resuming from the partial file produces the same bytes as the
//!    uninterrupted run.
//! 3. **Outcome classes are scheduling-invariant** (property test over
//!    thread count and slice grain): classification is a pure function
//!    of the cell coordinates.

use proptest::prelude::*;

use foc_bench::sweep_report::{
    merge_cells, parse_matrix_json, render_matrix_json, render_matrix_markdown, split_resume,
};
use foc_memory::{Mode, TableKind, ValueSequence};
use foc_servers::sweep::{
    reference_transcripts, run_cell, run_cells, CellSpec, FuelBudget, SweepGrid, SweepMatrix,
    INPUT_LIBRARY,
};

/// A grid small enough for tests but wide enough to hit every class:
/// Standard (policy kills), Bounds Check (restart exhaustion),
/// Failure Oblivious (continuation), two sequences (divergence), tight
/// fuel (fuel-outs), two backends (collapse/agreement).
fn test_grid() -> SweepGrid {
    SweepGrid {
        modes: vec![Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious],
        sequences: vec![ValueSequence::Zero, ValueSequence::Cycling { wrap: 256 }],
        fuels: vec![FuelBudget::Tight],
        tables: vec![TableKind::Splay, TableKind::Flat],
    }
}

fn matrix_for(grid: &SweepGrid, threads: usize, slice: usize) -> SweepMatrix {
    let reference = reference_transcripts();
    let cells = run_cells(&grid.cells(), &reference, threads, slice);
    SweepMatrix {
        grid: grid.clone(),
        reference,
        cells,
    }
}

#[test]
fn same_grid_twice_renders_byte_identical_json() {
    let grid = test_grid();
    let a = render_matrix_json(&matrix_for(&grid, 1, usize::MAX));
    let b = render_matrix_json(&matrix_for(&grid, 4, 2));
    assert_eq!(a, b, "two sweeps of one substrate must render identically");
    // The markdown rendering is deterministic too.
    assert_eq!(
        render_matrix_markdown(&matrix_for(&grid, 1, 3)),
        render_matrix_markdown(&matrix_for(&grid, 3, 1)),
    );
}

#[test]
fn resume_after_interrupt_completes_to_identical_bytes() {
    let grid = test_grid();
    let full = matrix_for(&grid, 2, 4);
    let full_json = render_matrix_json(&full);

    // Simulate an interrupt: keep only the first 5 completed cells, as
    // the chunked writer would have left them.
    let partial = SweepMatrix {
        grid: grid.clone(),
        reference: full.reference.clone(),
        cells: full.cells[..5].to_vec(),
    };
    let partial_json = render_matrix_json(&partial);

    // Resume: parse the partial file, reuse what matches, run the rest.
    let parsed = parse_matrix_json(&partial_json).expect("parse partial");
    let reference = reference_transcripts();
    let all = grid.cells();
    let (reused, missing) = split_resume(&all, Some(&parsed), &reference);
    assert_eq!(reused.len(), 5, "the partial cells must be reusable");
    assert_eq!(missing.len(), all.len() - 5);
    let fresh = run_cells(&missing, &reference, 2, 4);
    let resumed = SweepMatrix {
        grid,
        reference,
        cells: merge_cells(&all, vec![reused, fresh]),
    };
    assert_eq!(
        render_matrix_json(&resumed),
        full_json,
        "a resumed sweep must be byte-identical to an uninterrupted one"
    );
}

#[test]
fn backend_axis_never_changes_outcome_classes() {
    // The object-table backend is a pure performance knob end to end:
    // for every (mode, sequence, fuel) group of the test grid, the
    // per-input classes and transcripts must agree across backends.
    let matrix = matrix_for(&test_grid(), 2, 8);
    for a in &matrix.cells {
        for b in &matrix.cells {
            if a.cell.mode == b.cell.mode
                && a.cell.sequence == b.cell.sequence
                && a.cell.fuel == b.cell.fuel
            {
                assert_eq!(
                    a.runs,
                    b.runs,
                    "{} vs {}: backends disagree",
                    a.cell.label(),
                    b.cell.label()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Outcome classes (and transcripts) are invariant under the
    /// executor's thread count and slice grain, for a random scheduling
    /// shape and a random slice of the grid.
    #[test]
    fn outcome_classes_are_scheduling_invariant(
        threads in 1usize..6,
        slice in 1usize..(INPUT_LIBRARY.len() + 4),
        skip in 0usize..6,
    ) {
        let reference = reference_transcripts();
        let all = test_grid().cells();
        let cells: Vec<CellSpec> = all.into_iter().skip(skip).take(3).collect();
        let scheduled = run_cells(&cells, &reference, threads, slice);
        let sequential: Vec<_> = cells.iter().map(|c| run_cell(c, &reference)).collect();
        prop_assert_eq!(scheduled, sequential);
    }
}
