//! Criterion micro-benchmarks: the object-table implementations under
//! server-like access traces (real wall time — this is the one place the
//! repository measures host performance rather than virtual time).
//!
//! The splay tree's advantage is temporal locality: server request
//! processing hammers a handful of data units repeatedly, so the splayed
//! root hits. The uniform-random trace shows the flip side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use foc_memory::{BTreeTable, FlatTable, ObjectTable, SplayTable, UnitId};

const UNITS: u64 = 1024;

fn populate<T: ObjectTable>(t: &mut T) {
    for i in 0..UNITS {
        t.insert(i * 64, 48, UnitId(i as u32));
    }
}

/// A server-like trace: long runs of accesses to the same few units.
fn local_trace() -> Vec<u64> {
    let mut trace = Vec::with_capacity(10_000);
    let mut unit = 7u64;
    for i in 0..10_000u64 {
        if i % 200 == 0 {
            unit = (unit * 31 + 17) % UNITS;
        }
        trace.push(unit * 64 + (i % 48));
    }
    trace
}

/// A uniform-random trace (adversarial for the splay tree).
fn random_trace() -> Vec<u64> {
    let mut x = 0x12345678u64;
    (0..10_000)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % (UNITS * 64)
        })
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("object_table_lookup");
    for (trace_name, trace) in [("local", local_trace()), ("random", random_trace())] {
        group.bench_with_input(BenchmarkId::new("splay", trace_name), &trace, |b, trace| {
            let mut t = SplayTable::new();
            populate(&mut t);
            b.iter(|| {
                let mut hits = 0u64;
                for &addr in trace {
                    if t.lookup(std::hint::black_box(addr)).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
        group.bench_with_input(BenchmarkId::new("btree", trace_name), &trace, |b, trace| {
            let mut t = BTreeTable::new();
            populate(&mut t);
            b.iter(|| {
                let mut hits = 0u64;
                for &addr in trace {
                    if t.lookup(std::hint::black_box(addr)).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
        group.bench_with_input(BenchmarkId::new("flat", trace_name), &trace, |b, trace| {
            let mut t = FlatTable::new();
            populate(&mut t);
            b.iter(|| {
                let mut hits = 0u64;
                for &addr in trace {
                    if t.lookup(std::hint::black_box(addr)).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    // Allocation churn: insert/remove cycles as malloc/free drives them.
    let mut group = c.benchmark_group("object_table_churn");
    group.bench_function("splay", |b| {
        b.iter(|| {
            let mut t = SplayTable::new();
            for round in 0..8u64 {
                for i in 0..256u64 {
                    t.insert(i * 64 + round, 32, UnitId(i as u32));
                }
                for i in 0..256u64 {
                    t.remove(i * 64 + round);
                }
            }
            t.len()
        });
    });
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut t = BTreeTable::new();
            for round in 0..8u64 {
                for i in 0..256u64 {
                    t.insert(i * 64 + round, 32, UnitId(i as u32));
                }
                for i in 0..256u64 {
                    t.remove(i * 64 + round);
                }
            }
            t.len()
        });
    });
    group.bench_function("flat", |b| {
        b.iter(|| {
            let mut t = FlatTable::new();
            for round in 0..8u64 {
                for i in 0..256u64 {
                    t.insert(i * 64 + round, 32, UnitId(i as u32));
                }
                for i in 0..256u64 {
                    t.remove(i * 64 + round);
                }
            }
            t.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_churn);
criterion_main!(benches);
