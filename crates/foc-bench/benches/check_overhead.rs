//! Criterion micro-benchmarks: end-to-end guest execution per mode, and
//! the cost of the failure-oblivious continuation path itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use foc_memory::Mode;
use foc_vm::{Machine, MachineConfig};

/// A pointer-chasing guest kernel: the worst case for checking.
const POINTER_KERNEL: &str = r#"
    int kernel(int n) {
        char buf[256];
        int i;
        int acc = 0;
        char *p = buf;
        for (i = 0; i < 256; i++) buf[i] = (char) i;
        while (n--) {
            p = buf;
            while (p < buf + 256) { acc += *p; p++; }
        }
        return acc;
    }
"#;

/// A guest kernel that continually commits memory errors (the
/// continuation path: log + manufacture).
const VIOLATION_KERNEL: &str = r#"
    int kernel(int n) {
        int xs[4];
        int acc = 0;
        while (n--) acc += xs[1000 + n];
        return acc;
    }
"#;

fn bench_guest_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("guest_execution");
    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        group.bench_with_input(
            BenchmarkId::new("pointer_kernel", mode.name()),
            &mode,
            |b, &mode| {
                let mut m =
                    Machine::from_source(POINTER_KERNEL, MachineConfig::with_mode(mode)).unwrap();
                b.iter(|| m.call("kernel", &[std::hint::black_box(8)]).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_continuation(c: &mut Criterion) {
    let mut group = c.benchmark_group("continuation_code");
    group.bench_function("manufacture_reads", |b| {
        let mut m = Machine::from_source(
            VIOLATION_KERNEL,
            MachineConfig::with_mode(Mode::FailureOblivious),
        )
        .unwrap();
        b.iter(|| m.call("kernel", &[std::hint::black_box(64)]).unwrap());
    });
    group.bench_function("boundless_reads", |b| {
        let mut m =
            Machine::from_source(VIOLATION_KERNEL, MachineConfig::with_mode(Mode::Boundless))
                .unwrap();
        b.iter(|| m.call("kernel", &[std::hint::black_box(64)]).unwrap());
    });
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compile_mutt_server", |b| {
        b.iter(|| {
            foc_compiler::compile_source(std::hint::black_box(foc_servers::mutt::MUTT_SOURCE))
                .unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_guest_modes,
    bench_continuation,
    bench_compile
);
criterion_main!(benches);
