//! Criterion benchmark for the boot/restart cost the shared-image layer
//! eliminates: compiling a server from MiniC source on every boot
//! versus loading the interned [`foc_compiler::ProgramImage`].
//!
//! This is the capacity-planning number behind the farm's restart
//! supervision — a farm under persistent attack restarts constantly, so
//! the ratio between these two bars is the ratio between a farm that
//! spends its cores compiling and one that spends them serving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use foc_memory::Mode;
use foc_servers::apache::ApacheWorker;
use foc_servers::farm::ServerKind;
use foc_servers::mutt::Mutt;

fn bench_compile_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("boot_cost");
    for kind in [ServerKind::Apache, ServerKind::Mutt] {
        group.bench_with_input(
            BenchmarkId::new("compile", kind.name()),
            &kind,
            |b, &kind| b.iter(|| kind.fresh_image()),
        );
    }
    group.finish();
}

fn bench_apache_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("boot_cost");
    group.bench_function("apache/cold_compile_boot", |b| {
        b.iter(|| {
            ApacheWorker::from_image(&ServerKind::Apache.fresh_image(), Mode::FailureOblivious)
        })
    });
    // Populate the cache outside the timed region.
    let _ = ServerKind::Apache.image();
    group.bench_function("apache/cached_image_boot", |b| {
        b.iter(|| ApacheWorker::boot(Mode::FailureOblivious))
    });
    group.finish();
}

fn bench_mutt_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("boot_cost");
    group.bench_function("mutt/cold_compile_boot", |b| {
        b.iter(|| Mutt::boot_image(&ServerKind::Mutt.fresh_image(), Mode::FailureOblivious, 2))
    });
    let _ = ServerKind::Mutt.image();
    group.bench_function("mutt/cached_image_boot", |b| {
        b.iter(|| Mutt::boot(Mode::FailureOblivious, 2))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compile_only,
    bench_apache_boot,
    bench_mutt_boot
);
criterion_main!(benches);
