//! Criterion benchmark for the server-farm harness: end-to-end farm
//! runs (boot + request streams + aggregation) per mode and per thread
//! count. This is a host-time measurement — the repository's first perf
//! trajectory point for the scaling work the ROADMAP targets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use foc_memory::Mode;
use foc_servers::farm::{run_farm, FarmConfig, ServerKind};

/// A farm small enough to iterate under the bench harness but large
/// enough to exercise boot, restart, and aggregation paths.
fn bench_config(kind: ServerKind, mode: Mode) -> FarmConfig {
    let mut config = FarmConfig::new(kind, mode);
    config.servers = 2;
    config.threads = 2;
    config.requests_per_server = 10;
    config
}

fn bench_farm_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("farm_throughput");
    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        group.bench_with_input(
            BenchmarkId::new("apache", mode.name()),
            &mode,
            |b, &mode| {
                let config = bench_config(ServerKind::Apache, mode);
                b.iter(|| run_farm(&config).stats.completed);
            },
        );
    }
    group.finish();
}

fn bench_farm_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("farm_scaling");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("apache_fo", threads),
            &threads,
            |b, &threads| {
                let mut config = bench_config(ServerKind::Apache, Mode::FailureOblivious);
                config.servers = 4;
                config.threads = threads;
                b.iter(|| run_farm(&config).stats.completed);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_farm_modes, bench_farm_threads);
criterion_main!(benches);
