//! The shared `--check` contract of the benchmark bins.
//!
//! Every measuring bin exposes the same CI surface: a `--check` flag
//! that re-measures at smoke scale and gates a ratio against a floor, a
//! one-line `FAIL:` diagnostic on stderr with a nonzero exit (CI logs
//! get a readable reason, not a panic backtrace), an optional positive
//! rep-count argument for full runs, and a fingerprint-keyed row upsert
//! into `BENCH_farm.json`. The helpers here are that surface, written
//! once; the bins contribute only their measurement and its wording.

/// Gates `ratio` against the `min` floor. `name` describes the measured
/// quantity ("superinstruction tier over baseline interpretation
/// rate"); `detail` carries the raw readings for the diagnostic ("412.0
/// vs 233.1 Minstr/s"). Returns the `Err` line the caller hands to
/// [`check_fail`].
pub fn check_gate(name: &str, ratio: f64, min: f64, detail: &str) -> Result<(), String> {
    if ratio >= min {
        Ok(())
    } else {
        Err(format!(
            "{name} must hold a ≥{min}× ratio: {detail} ({ratio:.2}x)"
        ))
    }
}

/// Prints the one-line diagnostic and exits nonzero — the `--check`
/// contract shared by every bench bin.
pub fn check_fail(bin: &str, msg: &str) -> ! {
    eprintln!("{bin}: FAIL: {msg}");
    std::process::exit(1);
}

/// Parses the optional leading rep-count argument of a full measurement
/// run, exiting with usage code 2 on anything but a positive integer.
pub fn parse_reps(bin: &str, args: &[String], default: usize) -> usize {
    match args.first() {
        None => default,
        Some(arg) => match arg.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{bin}: invalid rep count {arg:?} (want a positive integer)");
                std::process::exit(2);
            }
        },
    }
}

/// Upserts one pre-rendered trajectory row into `BENCH_farm.json` via
/// the section-specific `append` helper, with the shared read/write and
/// failure wording.
pub fn record_farm_row(
    bin: &str,
    row: &str,
    append: impl FnOnce(&str, &str) -> Result<String, String>,
) {
    let path = "BENCH_farm.json";
    match std::fs::read_to_string(path) {
        Ok(json) => match append(&json, row) {
            Ok(updated) => {
                std::fs::write(path, updated).expect("write BENCH_farm.json");
                println!("recorded {bin} row in {path}");
            }
            Err(e) => check_fail(bin, &e),
        },
        Err(e) => check_fail(bin, &format!("cannot read {path}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_at_and_above_the_floor() {
        assert!(check_gate("rate", 1.5, 1.5, "3.0 vs 2.0").is_ok());
        assert!(check_gate("rate", 2.31, 1.5, "detail").is_ok());
    }

    #[test]
    fn gate_diagnostic_names_the_quantity_floor_and_readings() {
        let msg = check_gate(
            "paged lookup over table search",
            1.31,
            1.5,
            "13.1 vs 10.0 Maccess/s",
        )
        .expect_err("below the floor");
        assert!(msg.contains("paged lookup over table search"), "{msg}");
        assert!(msg.contains("1.5×"), "{msg}");
        assert!(msg.contains("13.1 vs 10.0 Maccess/s"), "{msg}");
        assert!(msg.contains("(1.31x)"), "{msg}");
    }
}
