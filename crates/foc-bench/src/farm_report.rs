//! Farm benchmark reporting: runs the cross-mode, cross-server farm
//! suite plus a thread-scaling sweep and a boot-cost measurement, and
//! renders `BENCH_farm.json` — the repository's perf trajectory record
//! for the farm harness.
//!
//! Wall-time rows are measured over repeated runs and summarised with
//! IQR outlier rejection plus a 95% confidence interval
//! ([`criterion::stats::robust_summary`]), so the trajectory points are
//! defensible rather than single noisy observations.
//!
//! JSON is rendered by hand: the build environment is offline and the
//! schema is flat, so a serde dependency would buy nothing.

use std::hint::black_box;
use std::time::Instant;

use criterion::stats::robust_summary;
use foc_memory::Mode;
use foc_servers::farm::{run_farm, FarmConfig, FarmReport, ServerKind};

/// Shape of the recorded suite: every server kind under every mode.
pub fn suite_config(kind: ServerKind, mode: Mode, requests: usize) -> FarmConfig {
    let mut config = FarmConfig::new(kind, mode);
    config.requests_per_server = requests;
    config
}

/// Runs the full kind × mode matrix.
pub fn farm_suite(requests: usize) -> Vec<FarmReport> {
    let mut reports = Vec::new();
    for kind in ServerKind::ALL {
        for mode in Mode::ALL {
            reports.push(run_farm(&suite_config(kind, mode, requests)));
        }
    }
    reports
}

/// One thread count's wall-time measurement in the scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Worker threads driving the farm.
    pub threads: usize,
    /// Robust mean host wall time per run, milliseconds.
    pub wall_ms: f64,
    /// Half-width of the 95% confidence interval on `wall_ms`.
    pub wall_ms_ci95: f64,
    /// Completed requests per host second at the mean wall time.
    pub host_rps: f64,
    /// Repetitions measured.
    pub reps: usize,
}

/// Runs the same Pine failure-oblivious farm at increasing thread
/// counts, `reps` times each. Pine is the most compute-heavy per
/// request of the fast servers, so the sweep actually exposes parallel
/// speedup. The deterministic stats are identical across every run
/// (asserted), so the wall-time statistics isolate parallelism alone.
pub fn thread_scaling(requests: usize, thread_counts: &[usize], reps: usize) -> Vec<ScalingRow> {
    let reps = reps.max(1);
    let base = {
        let mut c = suite_config(ServerKind::Pine, Mode::FailureOblivious, requests);
        c.servers = thread_counts.iter().copied().max().unwrap_or(4).max(4);
        c
    };
    let mut reference: Option<FarmReport> = None;
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let mut walls = Vec::with_capacity(reps);
        let mut completed = 0u64;
        for _ in 0..reps {
            let report = run_farm(&base.clone().with_threads(threads));
            if let Some(r) = &reference {
                assert_eq!(*r, report, "thread scaling must not change results");
            } else {
                reference = Some(report.clone());
            }
            completed = report.stats.completed;
            walls.push(report.host_wall_ms);
        }
        let s = robust_summary(&walls);
        let host_rps = if s.mean > 0.0 {
            completed as f64 / (s.mean / 1e3)
        } else {
            0.0
        };
        rows.push(ScalingRow {
            threads,
            wall_ms: s.mean,
            wall_ms_ci95: s.ci95,
            host_rps,
            reps,
        });
    }
    rows
}

/// The measured cost split the shared-image layer exists to win: what a
/// server boot costs when the compiler runs (cold) versus when the
/// interned image is reused (cached).
#[derive(Debug, Clone, Copy)]
pub struct BootCost {
    /// Robust mean nanoseconds for compile-from-source + boot + init.
    pub cold_ns: f64,
    /// 95% CI half-width on `cold_ns`.
    pub cold_ci95_ns: f64,
    /// Robust mean nanoseconds for cached-image boot + init.
    pub cached_ns: f64,
    /// 95% CI half-width on `cached_ns`.
    pub cached_ci95_ns: f64,
    /// Repetitions measured per flavour.
    pub reps: usize,
}

impl BootCost {
    /// How many cached boots fit in one cold boot.
    pub fn speedup(&self) -> f64 {
        if self.cached_ns <= 0.0 {
            return 0.0;
        }
        self.cold_ns / self.cached_ns
    }
}

/// Measures [`BootCost`] on the Apache server process (the server whose
/// pool architecture §4.3.2 charges for process-management overhead),
/// `reps` boots per flavour. "Boot" here is the process boot the image
/// layer changed — compile (cold only) plus loading the image into a
/// fresh machine; the driver-side environment replay (documents, rewrite
/// rules, mailboxes) is the same work in both flavours and is measured
/// separately by the `boot_cost` criterion bench's worker lines.
pub fn measure_boot_cost(reps: usize) -> BootCost {
    let reps = reps.max(1);
    let kind = ServerKind::Apache;
    let mode = Mode::FailureOblivious;
    // Populate the cache first so "cached" measures the steady state
    // every farm boot and restart after the very first one sees.
    black_box(kind.image());

    let mut cold = Vec::with_capacity(reps);
    let mut cached = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        black_box(foc_servers::Process::boot_source(
            kind.source(),
            mode,
            kind.fuel(),
        ));
        cold.push(t.elapsed().as_nanos() as f64);

        let t = Instant::now();
        black_box(foc_servers::Process::boot(&kind.image(), mode, kind.fuel()));
        cached.push(t.elapsed().as_nanos() as f64);
    }
    let c = robust_summary(&cold);
    let h = robust_summary(&cached);
    BootCost {
        cold_ns: c.mean,
        cold_ci95_ns: c.ci95,
        cached_ns: h.mean,
        cached_ci95_ns: h.ci95,
        reps,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn report_json(r: &FarmReport) -> String {
    let s = &r.stats;
    format!(
        concat!(
            "    {{\"server\": \"{}\", \"mode\": \"{}\", \"servers\": {}, ",
            "\"requests\": {}, \"completed\": {}, \"dropped\": {}, \"attacks\": {}, ",
            "\"deaths\": {}, \"restarts\": {}, \"servers_down\": {}, ",
            "\"total_cycles\": {}, \"service_cycles\": {}, \"restart_cycles\": {}, ",
            "\"survival_rate\": {:.4}, ",
            "\"throughput_per_mcycle\": {:.4}, \"latency_p50\": {}, ",
            "\"latency_p90\": {}, \"latency_p99\": {}, \"latency_max\": {}, ",
            "\"host_wall_ms\": {:.2}}}"
        ),
        json_escape(r.config.kind.name()),
        json_escape(r.config.mode.name()),
        r.config.servers,
        s.requests,
        s.completed,
        s.dropped,
        s.attacks,
        s.deaths,
        s.restarts,
        s.servers_down,
        s.total_cycles,
        s.service_cycles(),
        s.restart_cycles,
        s.survival_rate(),
        s.throughput_per_mcycle(),
        s.latency_p50,
        s.latency_p90,
        s.latency_p99,
        s.latency_max,
        r.host_wall_ms,
    )
}

/// Renders the whole benchmark record.
pub fn render_farm_json(reports: &[FarmReport], scaling: &[ScalingRow], boot: &BootCost) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"farm\",\n  \"reports\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&report_json(r));
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"thread_scaling\": [\n");
    for (i, row) in scaling.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"threads\": {}, \"host_wall_ms\": {:.2}, ",
                "\"host_wall_ms_ci95\": {:.2}, \"host_rps\": {:.1}, \"reps\": {}}}"
            ),
            row.threads, row.wall_ms, row.wall_ms_ci95, row.host_rps, row.reps
        ));
        if i + 1 < scaling.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!(
        concat!(
            "  ],\n  \"boot_cost\": {{\"cold_compile_boot_ns\": {:.0}, ",
            "\"cold_ci95_ns\": {:.0}, \"cached_image_boot_ns\": {:.0}, ",
            "\"cached_ci95_ns\": {:.0}, \"speedup\": {:.1}, \"reps\": {}}}\n"
        ),
        boot.cold_ns,
        boot.cold_ci95_ns,
        boot.cached_ns,
        boot.cached_ci95_ns,
        boot.speedup(),
        boot.reps,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_balances() {
        let mut config = suite_config(ServerKind::Apache, Mode::FailureOblivious, 5);
        config.servers = 2;
        config.threads = 2;
        let reports = vec![run_farm(&config)];
        let scaling = vec![
            ScalingRow {
                threads: 1,
                wall_ms: 10.0,
                wall_ms_ci95: 0.5,
                host_rps: 100.0,
                reps: 3,
            },
            ScalingRow {
                threads: 2,
                wall_ms: 5.0,
                wall_ms_ci95: 0.25,
                host_rps: 200.0,
                reps: 3,
            },
        ];
        let boot = BootCost {
            cold_ns: 1_000_000.0,
            cold_ci95_ns: 1000.0,
            cached_ns: 50_000.0,
            cached_ci95_ns: 500.0,
            reps: 10,
        };
        let json = render_farm_json(&reports, &scaling, &boot);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(json.contains("\"server\": \"Apache\""));
        assert!(json.contains("\"mode\": \"Failure Oblivious\""));
        assert!(json.contains("\"service_cycles\""));
        assert!(json.contains("\"restart_cycles\""));
        assert!(json.contains("\"thread_scaling\""));
        assert!(json.contains("\"host_wall_ms_ci95\""));
        assert!(json.contains("\"boot_cost\""));
        assert!(json.contains("\"speedup\": 20.0"));
    }

    #[test]
    fn cached_image_boot_is_at_least_5x_faster_than_cold_compile() {
        // The acceptance bar of the shared-image layer. The real margin
        // is far larger (compilation runs the whole front end + lowering
        // while a cached boot only loads globals), so 5× holds with room
        // even on noisy CI hosts.
        let boot = measure_boot_cost(12);
        assert!(
            boot.speedup() >= 5.0,
            "cached-image boot must be ≥5× faster: cold {:.0}ns vs cached {:.0}ns ({:.1}×)",
            boot.cold_ns,
            boot.cached_ns,
            boot.speedup()
        );
    }

    #[test]
    fn thread_scaling_rows_carry_confidence_intervals() {
        let rows = thread_scaling(4, &[1, 2], 3);
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert_eq!(row.reps, 3);
            assert!(row.wall_ms > 0.0);
            assert!(row.host_rps > 0.0);
            assert!(row.wall_ms_ci95 >= 0.0);
        }
    }
}
