//! Farm benchmark reporting: runs the cross-mode, cross-server farm
//! suite plus a thread-scaling sweep and renders `BENCH_farm.json` — the
//! repository's perf trajectory record for the farm harness.
//!
//! JSON is rendered by hand: the build environment is offline and the
//! schema is flat, so a serde dependency would buy nothing.

use foc_memory::Mode;
use foc_servers::farm::{run_farm, FarmConfig, FarmReport, ServerKind};

/// Shape of the recorded suite: every server kind under every mode.
pub fn suite_config(kind: ServerKind, mode: Mode, requests: usize) -> FarmConfig {
    let mut config = FarmConfig::new(kind, mode);
    config.requests_per_server = requests;
    config
}

/// Runs the full kind × mode matrix.
pub fn farm_suite(requests: usize) -> Vec<FarmReport> {
    let mut reports = Vec::new();
    for kind in ServerKind::ALL {
        for mode in Mode::ALL {
            reports.push(run_farm(&suite_config(kind, mode, requests)));
        }
    }
    reports
}

/// Runs the same Pine failure-oblivious farm at increasing thread
/// counts, returning `(threads, host_wall_ms, host_rps)` rows. Pine is
/// the most compute-heavy per request of the fast servers, so the sweep
/// actually exposes parallel speedup. The deterministic stats are
/// identical across rows (asserted), so the wall times isolate it.
pub fn thread_scaling(requests: usize, thread_counts: &[usize]) -> Vec<(usize, f64, f64)> {
    let base = {
        let mut c = suite_config(ServerKind::Pine, Mode::FailureOblivious, requests);
        c.servers = thread_counts.iter().copied().max().unwrap_or(4).max(4);
        c
    };
    let mut reference: Option<FarmReport> = None;
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let report = run_farm(&base.clone().with_threads(threads));
        if let Some(r) = &reference {
            assert_eq!(*r, report, "thread scaling must not change results");
        } else {
            reference = Some(report.clone());
        }
        rows.push((threads, report.host_wall_ms, report.host_throughput_rps()));
    }
    rows
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn report_json(r: &FarmReport) -> String {
    let s = &r.stats;
    format!(
        concat!(
            "    {{\"server\": \"{}\", \"mode\": \"{}\", \"servers\": {}, ",
            "\"requests\": {}, \"completed\": {}, \"dropped\": {}, \"attacks\": {}, ",
            "\"deaths\": {}, \"restarts\": {}, \"servers_down\": {}, ",
            "\"total_cycles\": {}, \"survival_rate\": {:.4}, ",
            "\"throughput_per_mcycle\": {:.4}, \"latency_p50\": {}, ",
            "\"latency_p90\": {}, \"latency_p99\": {}, \"latency_max\": {}, ",
            "\"host_wall_ms\": {:.2}}}"
        ),
        json_escape(r.config.kind.name()),
        json_escape(r.config.mode.name()),
        r.config.servers,
        s.requests,
        s.completed,
        s.dropped,
        s.attacks,
        s.deaths,
        s.restarts,
        s.servers_down,
        s.total_cycles,
        s.survival_rate(),
        s.throughput_per_mcycle(),
        s.latency_p50,
        s.latency_p90,
        s.latency_p99,
        s.latency_max,
        r.host_wall_ms,
    )
}

/// Renders the whole benchmark record.
pub fn render_farm_json(reports: &[FarmReport], scaling: &[(usize, f64, f64)]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"farm\",\n  \"reports\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&report_json(r));
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"thread_scaling\": [\n");
    for (i, (threads, wall_ms, rps)) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {threads}, \"host_wall_ms\": {wall_ms:.2}, \"host_rps\": {rps:.1}}}"
        ));
        if i + 1 < scaling.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_balances() {
        let mut config = suite_config(ServerKind::Apache, Mode::FailureOblivious, 5);
        config.servers = 2;
        config.threads = 2;
        let reports = vec![run_farm(&config)];
        let scaling = vec![(1usize, 10.0, 100.0), (2, 5.0, 200.0)];
        let json = render_farm_json(&reports, &scaling);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(json.contains("\"server\": \"Apache\""));
        assert!(json.contains("\"mode\": \"Failure Oblivious\""));
        assert!(json.contains("\"thread_scaling\""));
    }
}
