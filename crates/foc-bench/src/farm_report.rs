//! Farm benchmark reporting: runs the cross-mode, cross-server farm
//! suite plus a thread-scaling sweep and a boot-cost measurement, and
//! renders `BENCH_farm.json` — the repository's perf trajectory record
//! for the farm harness.
//!
//! Wall-time rows are measured over repeated runs and summarised with
//! IQR outlier rejection plus a 95% confidence interval
//! ([`criterion::stats::robust_summary`]), so the trajectory points are
//! defensible rather than single noisy observations.
//!
//! JSON is rendered by hand: the build environment is offline and the
//! schema is flat, so a serde dependency would buy nothing.

use std::hint::black_box;
use std::time::Instant;

use criterion::stats::robust_summary;
use foc_memory::{
    AccessCtx, AccessSize, LookupLayer, MemConfig, MemorySpace, Mode, TableKind, UnitKind,
    UnitStore,
};
use foc_servers::conn::{slo_within_basis_points, Edge, Scenario, SocketEdge};
use foc_servers::farm::{run_farm, FarmConfig, FarmReport, ServerKind};
use foc_servers::latency::LatencyHist;

/// Shape of the recorded suite: every server kind under every mode.
pub fn suite_config(kind: ServerKind, mode: Mode, requests: usize) -> FarmConfig {
    let mut config = FarmConfig::new(kind, mode);
    config.requests_per_server = requests;
    config
}

/// Runs the full kind × mode matrix.
pub fn farm_suite(requests: usize) -> Vec<FarmReport> {
    let mut reports = Vec::new();
    for kind in ServerKind::ALL {
        for mode in Mode::ALL {
            reports.push(run_farm(&suite_config(kind, mode, requests)));
        }
    }
    reports
}

/// One thread count's wall-time measurement in the scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Worker threads driving the farm.
    pub threads: usize,
    /// Robust mean host wall time per run, milliseconds.
    pub wall_ms: f64,
    /// Half-width of the 95% confidence interval on `wall_ms`.
    pub wall_ms_ci95: f64,
    /// Completed requests per host second at the mean wall time.
    pub host_rps: f64,
    /// Repetitions measured.
    pub reps: usize,
}

/// Runs the same Pine failure-oblivious farm at increasing thread
/// counts, `reps` times each. Pine is the most compute-heavy per
/// request of the fast servers, so the sweep actually exposes parallel
/// speedup. The deterministic stats are identical across every run
/// (asserted), so the wall-time statistics isolate parallelism alone.
pub fn thread_scaling(
    requests: usize,
    thread_counts: &[usize],
    reps: usize,
) -> Result<Vec<ScalingRow>, String> {
    let reps = reps.max(1);
    let base = {
        let mut c = suite_config(ServerKind::Pine, Mode::FailureOblivious, requests);
        c.servers = thread_counts.iter().copied().max().unwrap_or(4).max(4);
        c
    };
    let mut reference: Option<FarmReport> = None;
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let mut walls = Vec::with_capacity(reps);
        let mut completed = 0u64;
        for _ in 0..reps {
            let report = run_farm(&base.clone().with_threads(threads));
            match &reference {
                Some(r) if *r != report => {
                    return Err(format!(
                        "thread scaling changed results at {threads} threads \
                         (completed {} vs {})",
                        report.stats.completed, r.stats.completed
                    ));
                }
                Some(_) => {}
                None => reference = Some(report.clone()),
            }
            completed = report.stats.completed;
            walls.push(report.host_wall_ms);
        }
        let s = robust_summary(&walls);
        let host_rps = if s.mean > 0.0 {
            completed as f64 / (s.mean / 1e3)
        } else {
            0.0
        };
        rows.push(ScalingRow {
            threads,
            wall_ms: s.mean,
            wall_ms_ci95: s.ci95,
            host_rps,
            reps,
        });
    }
    Ok(rows)
}

/// The measured cost split the shared-image layer exists to win: what a
/// server boot costs when the compiler runs (cold) versus when the
/// interned image is reused (cached).
#[derive(Debug, Clone, Copy)]
pub struct BootCost {
    /// Robust mean nanoseconds for compile-from-source + boot + init.
    pub cold_ns: f64,
    /// 95% CI half-width on `cold_ns`.
    pub cold_ci95_ns: f64,
    /// Robust mean nanoseconds for cached-image boot + init.
    pub cached_ns: f64,
    /// 95% CI half-width on `cached_ns`.
    pub cached_ci95_ns: f64,
    /// Repetitions measured per flavour.
    pub reps: usize,
}

impl BootCost {
    /// How many cached boots fit in one cold boot.
    pub fn speedup(&self) -> f64 {
        if self.cached_ns <= 0.0 {
            return 0.0;
        }
        self.cold_ns / self.cached_ns
    }
}

/// Measures [`BootCost`] on the Apache server process (the server whose
/// pool architecture §4.3.2 charges for process-management overhead),
/// `reps` boots per flavour. "Boot" here is the process boot the image
/// layer changed — compile (cold only) plus loading the image into a
/// fresh machine; the driver-side environment replay (documents, rewrite
/// rules, mailboxes) is the same work in both flavours and is measured
/// separately by the `boot_cost` criterion bench's worker lines.
pub fn measure_boot_cost(reps: usize) -> BootCost {
    let reps = reps.max(1);
    let kind = ServerKind::Apache;
    let mode = Mode::FailureOblivious;
    // Populate the cache first so "cached" measures the steady state
    // every farm boot and restart after the very first one sees.
    black_box(kind.image());

    let mut cold = Vec::with_capacity(reps);
    let mut cached = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        black_box(foc_servers::Process::boot_source(
            kind.source(),
            mode,
            kind.fuel(),
        ));
        cold.push(t.elapsed().as_nanos() as f64);

        let t = Instant::now();
        black_box(foc_servers::Process::boot_spec(
            &kind.image(),
            &foc_servers::BootSpec::new(kind, mode),
        ));
        cached.push(t.elapsed().as_nanos() as f64);
    }
    let c = robust_summary(&cold);
    let h = robust_summary(&cached);
    BootCost {
        cold_ns: c.mean,
        cold_ci95_ns: c.ci95,
        cached_ns: h.mean,
        cached_ci95_ns: h.ci95,
        reps,
    }
}

// ----------------------------------------------------------------------
// Restart cost: checkpoint restore versus cold boot + environment replay.
// ----------------------------------------------------------------------

/// The measured cost split the boot-checkpoint layer exists to win:
/// what a supervised restart costs when it re-runs boot plus the
/// standard environment replay (cold) versus when it restores the
/// frozen boot snapshot (checkpoint).
#[derive(Debug, Clone, Copy)]
pub struct RestartCost {
    /// Robust mean nanoseconds for a cold boot + environment replay.
    pub cold_ns: f64,
    /// 95% CI half-width on `cold_ns`.
    pub cold_ci95_ns: f64,
    /// Robust mean nanoseconds for a checkpoint restore.
    pub restore_ns: f64,
    /// 95% CI half-width on `restore_ns`.
    pub restore_ci95_ns: f64,
    /// Repetitions measured per flavour.
    pub reps: usize,
}

impl RestartCost {
    /// How many checkpoint restores fit in one cold boot + replay.
    pub fn speedup(&self) -> f64 {
        if self.restore_ns <= 0.0 {
            return 0.0;
        }
        self.cold_ns / self.restore_ns
    }
}

/// Measures [`RestartCost`] on Pine — the server with the heaviest
/// per-restart environment replay (mail-file load plus index build),
/// i.e. exactly the §4.7 cost the checkpoint layer removes. "Cold" is
/// the uncached full boot (interned image, `pine_init`, standard
/// mailbox adds, index build); "restore" is what every farm restart now
/// executes: a snapshot restore from the per-spec checkpoint cache.
pub fn measure_restart_cost(reps: usize) -> RestartCost {
    use foc_servers::image::{standard_pine_mailbox, ServerKind};
    use foc_servers::BootSpec;

    let reps = reps.max(1);
    let spec = BootSpec::new(ServerKind::Pine, Mode::FailureOblivious);
    let image = ServerKind::Pine.image();
    // Warm both layers so the measurement sees the steady state.
    black_box(foc_servers::pine::Pine::boot_spec(
        &spec,
        standard_pine_mailbox().clone(),
    ));

    let mut cold = Vec::with_capacity(reps);
    let mut restore = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mailbox = standard_pine_mailbox().clone();
        let t = Instant::now();
        black_box(foc_servers::pine::Pine::boot_image_spec(
            &image, &spec, mailbox,
        ));
        cold.push(t.elapsed().as_nanos() as f64);

        let mailbox = standard_pine_mailbox().clone();
        let t = Instant::now();
        black_box(foc_servers::pine::Pine::boot_spec(&spec, mailbox));
        restore.push(t.elapsed().as_nanos() as f64);
    }
    let c = robust_summary(&cold);
    let r = robust_summary(&restore);
    RestartCost {
        cold_ns: c.mean,
        cold_ci95_ns: c.ci95,
        restore_ns: r.mean,
        restore_ci95_ns: r.ci95,
        reps,
    }
}

// ----------------------------------------------------------------------
// Violation throughput: the batched continuation path under a storm.
// ----------------------------------------------------------------------

/// Manufactured-loop interpretation rate: how many guest instructions
/// per host second a loop that violates on every iteration sustains.
/// The PR 4 sweep measured ~3M instr/s on the eager violation path
/// (each iteration paid an O(capacity) eviction memmove once the log
/// filled); this row tracks the batched path.
#[derive(Debug, Clone, Copy)]
pub struct ViolationThroughput {
    /// Robust mean million guest instructions per host second.
    pub minstr_per_s: f64,
    /// 95% CI half-width on `minstr_per_s`.
    pub minstr_ci95: f64,
    /// Guest instructions interpreted per measured run.
    pub instrs: u64,
    /// Repetitions measured.
    pub reps: usize,
}

/// The manufactured-value storm: every iteration reads past the end of
/// a 2-element array, paying the full violation path (table miss via an
/// out-of-bounds descriptor, log append, manufactured value).
const VIOLATION_LOOP_SOURCE: &str = "long spin(long n) {\n\
     int xs[2];\n\
     long i;\n\
     long acc = 0;\n\
     for (i = 0; i < n; i++) acc += xs[5];\n\
     return acc;\n\
 }";

/// Iterations per measured run (about a million guest instructions).
const VIOLATION_LOOP_ITERS: i64 = 100_000;

/// Measures [`ViolationThroughput`], `reps` runs on fresh machines, at
/// the baseline execution tier.
pub fn measure_violation_throughput(reps: usize) -> ViolationThroughput {
    measure_loop_throughput(
        VIOLATION_LOOP_SOURCE,
        VIOLATION_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Baseline,
    )
}

/// Measures a manufactured-value spin loop's interpretation rate at the
/// given execution tier. Same source, same guest instruction stream
/// semantics under both tiers; the superinstruction tier retires the
/// same instr count per run (fused ops account for their whole
/// pattern), so rates across tiers are directly comparable.
fn measure_loop_throughput(
    source: &str,
    iters: i64,
    reps: usize,
    tier: foc_compiler::ExecTier,
) -> ViolationThroughput {
    use foc_vm::{Machine, MachineConfig};

    let reps = reps.max(1);
    let image = foc_compiler::compile_image_tier(source, tier).expect("spin loop builds");
    let mut rates = Vec::with_capacity(reps);
    let mut instrs = 0;
    for _ in 0..reps {
        // A fresh machine per run keeps the error log in its steady
        // retention regime from a deterministic start.
        let config = MachineConfig::with_mode(Mode::FailureOblivious);
        let mut m = Machine::load(image.clone(), config).expect("load");
        let before = m.stats().instrs;
        let t = Instant::now();
        black_box(m.call("spin", &[iters]).expect("spin"));
        let secs = t.elapsed().as_secs_f64();
        instrs = m.stats().instrs - before;
        rates.push(instrs as f64 / secs / 1e6);
    }
    let r = robust_summary(&rates);
    ViolationThroughput {
        minstr_per_s: r.mean,
        minstr_ci95: r.ci95,
        instrs,
        reps,
    }
}

// ----------------------------------------------------------------------
// Dispatch cost: baseline vs superinstruction tier on the same loop.
// ----------------------------------------------------------------------

/// The dispatch-cost loop: seven direct-local increment statements,
/// one in-bounds accumulate, and one past-the-end accumulate per
/// iteration. Every iteration manufactures a value, but the loop's
/// wall time is owned by plain interpretation — local arithmetic and
/// loop control — the regime the superinstruction tier targets. (The
/// pure storm of [`VIOLATION_LOOP_SOURCE`] would not do here: the
/// violation machinery — interning, logging, sequence draw — and the
/// per-access memory checks are tier-invariant constant work that
/// swamps dispatch, which is the quantity this benchmark exists to
/// isolate; that loop's trajectory lives in `restart_cost_runs`.)
const DISPATCH_LOOP_SOURCE: &str = "long spin(long n) {\n\
     int xs[2];\n\
     long i;\n\
     long t = 0;\n\
     long acc = 0;\n\
     for (i = 0; i < n; i++) {\n\
         t = t + 3; t = t + 5; t = t + 7; t = t + 9;\n\
         t = t + 11; t = t + 13; t = t + 15;\n\
         acc += xs[1];\n\
         acc += xs[5];\n\
     }\n\
     return acc + t;\n\
 }";

/// Iterations per measured dispatch run (about two million guest
/// instructions, matching the violation loop's run length).
const DISPATCH_LOOP_ITERS: i64 = 29_000;

/// Interpretation-rate measurement of the dispatch loop under every
/// execution tier. All runs retire the same guest instruction count
/// (fused opcodes account for every component of the pattern they
/// replace, and a native region pre-charges its exact baseline count),
/// so the rate ratios isolate dispatch overhead: fewer
/// fetch/decode/match rounds per loop iteration, down to none inside a
/// lowered region.
#[derive(Debug, Clone, Copy)]
pub struct DispatchCost {
    /// Baseline (unfused) tier measurement.
    pub baseline: ViolationThroughput,
    /// Superinstruction tier measurement.
    pub fused: ViolationThroughput,
    /// Native (AOT region) tier measurement.
    pub native: ViolationThroughput,
    /// Repetitions per tier.
    pub reps: usize,
}

impl DispatchCost {
    /// Fused-over-baseline interpretation rate ratio.
    pub fn speedup(&self) -> f64 {
        self.fused.minstr_per_s / self.baseline.minstr_per_s
    }

    /// Native-over-baseline interpretation rate ratio. (On this loop —
    /// one manufactured value per iteration — the violation machinery
    /// is tier-invariant constant work, so the ratio understates the
    /// native tier's dispatch win; `native_cost` isolates that on a
    /// violation-free loop.)
    pub fn native_speedup(&self) -> f64 {
        self.native.minstr_per_s / self.baseline.minstr_per_s
    }
}

/// Measures [`DispatchCost`]: `reps` runs of the dispatch loop per
/// tier, interleaving is unnecessary because each run uses a fresh
/// machine and the robust summary rejects outliers.
pub fn measure_dispatch_cost(reps: usize) -> DispatchCost {
    let baseline = measure_loop_throughput(
        DISPATCH_LOOP_SOURCE,
        DISPATCH_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Baseline,
    );
    let fused = measure_loop_throughput(
        DISPATCH_LOOP_SOURCE,
        DISPATCH_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Super,
    );
    let native = measure_loop_throughput(
        DISPATCH_LOOP_SOURCE,
        DISPATCH_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Native,
    );
    DispatchCost {
        baseline,
        fused,
        native,
        reps: reps.max(1),
    }
}

// ----------------------------------------------------------------------
// Native cost: AOT region execution vs the superinstruction ceiling.
// ----------------------------------------------------------------------

/// The native-cost loop: a dispatch-bound body with *no* memory
/// violations and no guest heap traffic. The dispatch loop above
/// deliberately manufactures a value per iteration — tier-invariant
/// violation work that swamps the quantity this benchmark isolates:
/// what a dispatch round itself costs. The body is multi-operand local
/// expression arithmetic, the shape the superinstruction vocabulary
/// cannot compress (only constant-operand fragments fuse): the super
/// tier pays one fetch/decode/match round plus fuel, stats, and pc
/// bookkeeping for nearly every instruction, while a lowered region
/// pre-charges its whole straight-line run once, groups the body into
/// one pure-local block, and executes pre-resolved operands back to
/// back against a single borrow of the frame window. This loop is
/// where the interpreter's remaining ceiling lives, so it is the gate
/// for the native tier.
const NATIVE_LOOP_SOURCE: &str = "long spin(long n) {\n\
     long i;\n\
     long t = 0;\n\
     long u = 1;\n\
     for (i = 0; i < n; i++) {\n\
         t = t + u + i + 3;\n\
         u = u + t + i + 5;\n\
         t = t + u + u + 7;\n\
         u = u + t + t + 9;\n\
         t = t + u + i + 11;\n\
         u = u + t + i + 13;\n\
         t = t + u + u + 15;\n\
         u = u + t + t + 17;\n\
     }\n\
     return t + u;\n\
 }";

/// Iterations per measured native-cost run (about three million guest
/// instructions, matching the other loop benchmarks' run length).
const NATIVE_LOOP_ITERS: i64 = 30_000;

/// Interpretation-rate measurement of the violation-free native-cost
/// loop under every execution tier. As with [`DispatchCost`], all tiers
/// retire identical guest instruction counts, so the ratios compare
/// pure execution machinery.
#[derive(Debug, Clone, Copy)]
pub struct NativeCost {
    /// Baseline (unfused) tier measurement.
    pub baseline: ViolationThroughput,
    /// Superinstruction tier measurement.
    pub fused: ViolationThroughput,
    /// Native (AOT region) tier measurement.
    pub native: ViolationThroughput,
    /// Repetitions per tier.
    pub reps: usize,
}

impl NativeCost {
    /// Native-over-superinstruction rate ratio — the headline: how far
    /// past the fused dispatch ceiling region execution reaches.
    pub fn speedup_over_super(&self) -> f64 {
        self.native.minstr_per_s / self.fused.minstr_per_s
    }

    /// Native-over-baseline rate ratio.
    pub fn speedup_over_baseline(&self) -> f64 {
        self.native.minstr_per_s / self.baseline.minstr_per_s
    }
}

/// Measures [`NativeCost`]: `reps` runs of the violation-free loop per
/// tier on fresh machines.
pub fn measure_native_cost(reps: usize) -> NativeCost {
    let baseline = measure_loop_throughput(
        NATIVE_LOOP_SOURCE,
        NATIVE_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Baseline,
    );
    let fused = measure_loop_throughput(
        NATIVE_LOOP_SOURCE,
        NATIVE_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Super,
    );
    let native = measure_loop_throughput(
        NATIVE_LOOP_SOURCE,
        NATIVE_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Native,
    );
    NativeCost {
        baseline,
        fused,
        native,
        reps: reps.max(1),
    }
}

// ----------------------------------------------------------------------
// Memory-block cost: heap-spanning regions on the guest copy shape.
// ----------------------------------------------------------------------

/// The memory-block cost loop: the guest-level twin of the access-cost
/// copy traffic. The inner loop's `dst[i] = src[i]` lowers to a
/// pointer-arithmetic + checked-access pair per element, exactly the
/// shape the native tier now admits into `LocalsBlock`s and fuses into
/// per-site pre-resolved `GIdxLoad`/`GIdxStore` ops: every access
/// resolves in-block through the placement probe against the live
/// register file, no operand-stack round trip, no deopt (all accesses
/// are in bounds). The super tier interprets the same stream one
/// checked access at a time, so the ratio isolates what in-block
/// resolution saves on memory-bound code — the headline the tentpole
/// gate protects.
const MEM_LOOP_SOURCE: &str = "long spin(long n) {\n\
     long src[64];\n\
     long dst[64];\n\
     long i;\n\
     long j;\n\
     long t = 0;\n\
     for (i = 0; i < 64; i++) src[i] = i * 3;\n\
     for (j = 0; j < n; j++) {\n\
         for (i = 0; i < 64; i++) dst[i] = src[i];\n\
         t = t + dst[63];\n\
     }\n\
     return t;\n\
 }";

/// Outer iterations per measured memory-cost run (each copies the
/// 64-element buffer once; about three million guest instructions,
/// matching the other loop benchmarks' run length).
const MEM_LOOP_ITERS: i64 = 2_000;

/// Measures the guest copy loop under every execution tier, reusing
/// the [`NativeCost`] shape (same three-tier split, same invariant:
/// identical retired instruction counts across tiers).
pub fn measure_mem_cost(reps: usize) -> NativeCost {
    let baseline = measure_loop_throughput(
        MEM_LOOP_SOURCE,
        MEM_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Baseline,
    );
    let fused = measure_loop_throughput(
        MEM_LOOP_SOURCE,
        MEM_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Super,
    );
    let native = measure_loop_throughput(
        MEM_LOOP_SOURCE,
        MEM_LOOP_ITERS,
        reps,
        foc_compiler::ExecTier::Native,
    );
    NativeCost {
        baseline,
        fused,
        native,
        reps: reps.max(1),
    }
}

// ----------------------------------------------------------------------
// Access cost: the in-bounds fast path, page map vs object table.
// ----------------------------------------------------------------------

/// Depth of the object table behind the measured buffers: this many
/// small heap allocations precede them, so a table search pays a
/// realistic log₂(~400) probe while the page map still answers in one
/// shift+mask.
const ACCESS_DEPTH_ALLOCS: usize = 384;

/// Bytes per copied buffer: 12 pages each, so nearly every access lands
/// on an exclusively-covered page (the page map's `One` fast path).
const ACCESS_BUF_BYTES: u64 = 48 * 1024;

/// Full src→dst copy passes per measured run. Each pass alternates a
/// load from one multi-page buffer with a store to the other, which is
/// exactly the traffic that defeats the flat table's one-entry last-hit
/// memo and the splay tree's locality rotation: every single access
/// pays the structural search under [`LookupLayer::Table`].
const ACCESS_COPY_PASSES: usize = 6;

/// One lookup layer's in-bounds access rate.
#[derive(Debug, Clone, Copy)]
pub struct AccessRate {
    /// Robust mean million in-bounds accesses per host second.
    pub maccess_per_s: f64,
    /// 95% CI half-width on `maccess_per_s`.
    pub maccess_ci95: f64,
}

/// Paired in-bounds load/store rate measurement: the same memory-copy
/// traffic driven through [`LookupLayer::Table`] and
/// [`LookupLayer::Paged`] on otherwise identical spaces.
#[derive(Debug, Clone, Copy)]
pub struct AccessCost {
    /// Direct object-table search ([`TableKind::Flat`], memo defeated).
    pub table: AccessRate,
    /// Page-map shift+mask probe over the same flat table.
    pub paged: AccessRate,
    /// In-bounds accesses per measured run.
    pub accesses: u64,
    /// Repetitions per layer.
    pub reps: usize,
}

impl AccessCost {
    /// Paged-over-table access rate ratio.
    pub fn speedup(&self) -> f64 {
        self.paged.maccess_per_s / self.table.maccess_per_s
    }
}

/// Builds one measurement space: `ACCESS_DEPTH_ALLOCS` small heap
/// units for table depth, then the two multi-page copy buffers.
/// Returns the space and the `(src, dst)` buffer bases.
fn access_cost_space(lookup: LookupLayer) -> (MemorySpace, u64, u64) {
    let config = MemConfig::with_mode(Mode::FailureOblivious)
        .with_table(TableKind::Flat)
        .with_lookup(lookup);
    let mut space = MemorySpace::new(config);
    for _ in 0..ACCESS_DEPTH_ALLOCS {
        space.malloc(48).expect("depth alloc fits");
    }
    let src = space.malloc(ACCESS_BUF_BYTES).expect("src buffer fits");
    let dst = space.malloc(ACCESS_BUF_BYTES).expect("dst buffer fits");
    (space, src, dst)
}

/// One timed copy pass: word loads from `src` interleaved with word
/// stores to `dst`, every access in bounds. Returns a checksum so the
/// loop cannot be optimised away.
#[inline(never)]
fn access_cost_pass(space: &mut MemorySpace, src: u64, dst: u64) -> u64 {
    let ctx = AccessCtx::default();
    let mut sum = 0u64;
    let mut off = 0;
    while off < ACCESS_BUF_BYTES {
        let r = space
            .load(src + off, AccessSize::B8, ctx)
            .expect("in bounds");
        debug_assert!(!r.violation);
        let w = space
            .store(dst + off, AccessSize::B8, r.value, ctx)
            .expect("in bounds");
        debug_assert!(!w.violation);
        sum = sum.wrapping_add(r.value);
        off += 8;
    }
    sum
}

/// Measures [`AccessCost`]: `reps` timed runs of the copy traffic per
/// lookup layer, on spaces whose unit placement is identical by
/// construction. The two layers' [`foc_memory::SpaceStats`] are
/// asserted equal afterwards — the microbench doubles as a
/// host-side equivalence check on the exact traffic it times.
pub fn measure_access_cost(reps: usize) -> AccessCost {
    let reps = reps.max(1);
    let (mut table_space, t_src, t_dst) = access_cost_space(LookupLayer::Table);
    let (mut paged_space, p_src, p_dst) = access_cost_space(LookupLayer::Paged);
    assert_eq!(
        (t_src, t_dst),
        (p_src, p_dst),
        "the page map must not change placement"
    );
    let accesses = (ACCESS_BUF_BYTES / 8) * 2 * ACCESS_COPY_PASSES as u64;
    let measure = |space: &mut MemorySpace, src: u64, dst: u64| {
        let mut rates = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            let mut sum = 0u64;
            for _ in 0..ACCESS_COPY_PASSES {
                sum = sum.wrapping_add(access_cost_pass(space, src, dst));
            }
            let secs = t.elapsed().as_secs_f64();
            black_box(sum);
            rates.push(accesses as f64 / secs / 1e6);
        }
        let r = robust_summary(&rates);
        AccessRate {
            maccess_per_s: r.mean,
            maccess_ci95: r.ci95,
        }
    };
    let table = measure(&mut table_space, t_src, t_dst);
    let paged = measure(&mut paged_space, p_src, p_dst);
    assert_eq!(
        table_space.stats(),
        paged_space.stats(),
        "lookup layers must drive the substrate identically"
    );
    AccessCost {
        table,
        paged,
        accesses,
        reps,
    }
}

// ----------------------------------------------------------------------
// The farm_stress scale-out point: thousands of servers, per-backend.
// ----------------------------------------------------------------------

/// One object-table backend's measurement at the scale-out stress point.
#[derive(Debug, Clone)]
pub struct StressRow {
    /// Which backend ran.
    pub backend: TableKind,
    /// Which in-bounds lookup layer ran (page map vs direct table).
    pub lookup: LookupLayer,
    /// Robust mean host wall time per run, milliseconds.
    pub wall_ms: f64,
    /// Half-width of the 95% confidence interval on `wall_ms`.
    pub wall_ms_ci95: f64,
    /// Completed requests per host second at the mean wall time.
    pub host_rps: f64,
    /// Repetitions measured.
    pub reps: usize,
    /// The (backend-invariant) deterministic report of the run.
    pub report: FarmReport,
}

/// Shape of the scale-out stress farm: `servers` Apache processes under
/// the failure-oblivious policy, each serving a short stream with the
/// standard 1-in-8 attack mix.
pub fn stress_config(servers: usize, requests: usize) -> FarmConfig {
    let mut config = FarmConfig::new(ServerKind::Apache, Mode::FailureOblivious);
    config.servers = servers;
    config.requests_per_server = requests;
    config.threads = 4;
    config
}

/// Runs the stress farm once per requested object-table backend ×
/// lookup layer, `reps` times each, verifying the determinism contract
/// across the whole grid: every cell must produce the *same*
/// [`FarmReport`], so the wall-time spread between rows is attributable
/// to lookup cost alone. (The cross-*layer* half of that check is the
/// farm-scale equivalence proof of the page-map overlay.) A contract
/// violation is returned as a one-line diagnostic (the `--check` bins
/// exit nonzero with it instead of dumping a panic backtrace into CI
/// logs). Pass [`TableKind::ALL`] × [`LookupLayer::ALL`] for the
/// recorded sweep or a single cell for a CI matrix job.
pub fn stress_sweep(
    servers: usize,
    requests: usize,
    reps: usize,
    backends: &[TableKind],
    layers: &[LookupLayer],
) -> Result<Vec<StressRow>, String> {
    let reps = reps.max(1);
    let base = stress_config(servers, requests);
    let mut reference: Option<FarmReport> = None;
    let mut rows = Vec::new();
    for &backend in backends {
        for &lookup in layers {
            let config = base.clone().with_table(backend).with_lookup(lookup);
            let mut walls = Vec::with_capacity(reps);
            let mut last: Option<FarmReport> = None;
            for _ in 0..reps {
                let report = run_farm(&config);
                match &reference {
                    Some(r) if *r != report => {
                        return Err(format!(
                            "table backend {backend} under {lookup} lookup broke the \
                             determinism contract (completed {} vs {})",
                            report.stats.completed, r.stats.completed
                        ));
                    }
                    Some(_) => {}
                    None => reference = Some(report.clone()),
                }
                walls.push(report.host_wall_ms);
                last = Some(report);
            }
            let report = last.expect("reps >= 1");
            let s = robust_summary(&walls);
            let host_rps = if s.mean > 0.0 {
                report.stats.completed as f64 / (s.mean / 1e3)
            } else {
                0.0
            };
            rows.push(StressRow {
                backend,
                lookup,
                wall_ms: s.mean,
                wall_ms_ci95: s.ci95,
                host_rps,
                reps,
                report,
            });
        }
    }
    Ok(rows)
}

// ----------------------------------------------------------------------
// Unit-store churn: the arena against the seed's boxed representation.
// ----------------------------------------------------------------------

/// What one simulated machine does to its unit store over a boot plus a
/// short serving window, mirroring the stress farm's shape: labelled
/// globals and string literals at image load, then the heap alloc/free
/// pairs a short request stream drives through `guest_str`.
const CHURN_GLOBALS: usize = 24;
const CHURN_HEAP_PAIRS: usize = 32;

/// The seed tree's per-unit representation, kept here as the measured
/// baseline: units in a growable `Vec` beside a separate free-slot list,
/// with a heap-allocated `String` label per global — the per-machine
/// allocator overhead the arena store removes.
#[allow(dead_code)] // fields mirror the seed layout; only writes are timed
struct SeedUnit {
    base: u64,
    size: u64,
    live: bool,
    label: Option<String>,
}

#[derive(Default)]
struct SeedBoxedStore {
    units: Vec<SeedUnit>,
    free: Vec<u32>,
}

impl SeedBoxedStore {
    fn alloc(&mut self, base: u64, size: u64, label: Option<&str>) -> u32 {
        let unit = SeedUnit {
            base,
            size,
            live: true,
            label: label.map(|l| l.to_string()),
        };
        if let Some(slot) = self.free.pop() {
            self.units[slot as usize] = unit;
            slot
        } else {
            self.units.push(unit);
            (self.units.len() - 1) as u32
        }
    }

    fn kill(&mut self, slot: u32) {
        self.units[slot as usize].live = false;
        self.free.push(slot);
    }
}

/// Arena-vs-seed unit-store cost at farm scale.
#[derive(Debug, Clone, Copy)]
pub struct UnitChurn {
    /// Machines simulated per measured run.
    pub machines: usize,
    /// Robust mean nanoseconds per run for the arena [`UnitStore`].
    pub arena_ns: f64,
    /// 95% CI half-width on `arena_ns`.
    pub arena_ci95_ns: f64,
    /// Robust mean nanoseconds per run for the seed boxed baseline.
    pub boxed_ns: f64,
    /// 95% CI half-width on `boxed_ns`.
    pub boxed_ci95_ns: f64,
    /// Repetitions measured per flavour.
    pub reps: usize,
}

impl UnitChurn {
    /// How much faster the arena store is than the seed representation.
    pub fn speedup(&self) -> f64 {
        if self.arena_ns <= 0.0 {
            return 0.0;
        }
        self.boxed_ns / self.arena_ns
    }
}

/// Measures [`UnitChurn`]: `machines` fresh stores each performing the
/// standard boot-plus-serving unit traffic, arena versus the seed's
/// boxed representation, `reps` runs per flavour.
pub fn measure_unit_churn(machines: usize, reps: usize) -> UnitChurn {
    let reps = reps.max(1);
    let mut arena = Vec::with_capacity(reps);
    let mut boxed = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        for m in 0..machines {
            let mut store = UnitStore::new();
            for g in 0..CHURN_GLOBALS {
                store.alloc(
                    (g as u64) << 8,
                    64,
                    UnitKind::Global,
                    Some("server_global_symbol"),
                );
            }
            for h in 0..CHURN_HEAP_PAIRS {
                let id = store.alloc((h as u64) << 16, 128, UnitKind::Heap, None);
                store.kill(id);
            }
            black_box((m, &store));
        }
        arena.push(t.elapsed().as_nanos() as f64);

        let t = Instant::now();
        for m in 0..machines {
            let mut store = SeedBoxedStore::default();
            for g in 0..CHURN_GLOBALS {
                store.alloc((g as u64) << 8, 64, Some("server_global_symbol"));
            }
            for h in 0..CHURN_HEAP_PAIRS {
                let slot = store.alloc((h as u64) << 16, 128, None);
                store.kill(slot);
            }
            black_box((m, &store.units, &store.free));
        }
        boxed.push(t.elapsed().as_nanos() as f64);
    }
    let a = robust_summary(&arena);
    let b = robust_summary(&boxed);
    UnitChurn {
        machines,
        arena_ns: a.mean,
        arena_ci95_ns: a.ci95,
        boxed_ns: b.mean,
        boxed_ci95_ns: b.ci95,
        reps,
    }
}

// ----------------------------------------------------------------------
// The whole record, in one place.
// ----------------------------------------------------------------------

/// Shape of a full `BENCH_farm.json` regeneration. Both recording
/// binaries (`farm_scaling`, `farm_stress`) build the complete record
/// through this, so whichever one ran last leaves a consistent file.
#[derive(Debug, Clone)]
pub struct RecordShape {
    /// Requests per server in the kind × mode suite.
    pub requests: usize,
    /// Thread counts for the scaling sweep.
    pub scaling_threads: Vec<usize>,
    /// Repetitions per scaling row.
    pub scaling_reps: usize,
    /// Boot-cost repetitions.
    pub boot_reps: usize,
    /// Server processes at the scale-out stress point.
    pub stress_servers: usize,
    /// Requests per server at the stress point (short streams).
    pub stress_requests: usize,
    /// Repetitions per stress row.
    pub stress_reps: usize,
    /// Unit-churn repetitions (machine count follows `stress_servers`).
    pub churn_reps: usize,
    /// Restart-cost repetitions (violation throughput runs a capped
    /// share of them).
    pub restart_reps: usize,
}

impl Default for RecordShape {
    fn default() -> RecordShape {
        RecordShape {
            requests: 100,
            scaling_threads: vec![1, 2, 4, 8],
            scaling_reps: 3,
            boot_reps: 24,
            stress_servers: 4096,
            stress_requests: 4,
            stress_reps: 3,
            churn_reps: 5,
            restart_reps: 24,
        }
    }
}

/// The measured sections of one full record.
pub struct FarmRecord {
    /// Kind × mode suite reports.
    pub reports: Vec<FarmReport>,
    /// Thread-scaling rows.
    pub scaling: Vec<ScalingRow>,
    /// Cold-vs-cached boot cost.
    pub boot: BootCost,
    /// Per-backend stress rows.
    pub stress: Vec<StressRow>,
    /// Arena-vs-seed unit-store churn.
    pub churn: UnitChurn,
    /// Accumulated `restart_cost` rows (checkpoint-restore vs cold
    /// boot+replay, plus the manufactured-loop violation throughput).
    /// Regeneration carries the old rows forward and appends a fresh
    /// measurement, so the trajectory never loses history.
    pub restart_cost_runs: Vec<String>,
    /// Accumulated `dispatch_cost` rows (per-tier interpretation rate
    /// on the manufactured loop). Appended by the `dispatch_cost` bin;
    /// regeneration carries them forward.
    pub dispatch_cost_runs: Vec<String>,
    /// Accumulated `native_cost` rows (per-tier interpretation rate on
    /// the violation-free dispatch-bound loop; the native-over-super
    /// ratio is the AOT tier's headline). Appended by the `native_cost`
    /// bin; regeneration carries them forward.
    pub native_cost_runs: Vec<String>,
    /// Accumulated `access_cost` rows (in-bounds access rate, page map
    /// vs direct table search). Appended by the `access_cost` bin;
    /// regeneration carries them forward.
    pub access_cost_runs: Vec<String>,
    /// Accumulated `mem_cost` rows (per-tier interpretation rate on
    /// the guest copy loop; the native-over-super ratio gates the
    /// memory-spanning block executor). Appended by the `access_cost`
    /// bin under the native tier; regeneration carries them forward.
    pub mem_cost_runs: Vec<String>,
    /// Accumulated `conn_cost` rows (the socket edge's transport
    /// overhead per scenario plus the connection-level SLO). Appended
    /// by the `conn_cost` bin; regeneration carries them forward.
    pub conn_cost_runs: Vec<String>,
    /// Accumulated `mode_sweep` wall-time rows (pre-rendered JSON
    /// objects, one per recorded full-grid sweep). Regenerating bins
    /// carry these forward from the previous record so the sweep's own
    /// cost trajectory survives re-measurement.
    pub mode_sweep_runs: Vec<String>,
}

impl FarmRecord {
    /// Renders the record as the `BENCH_farm.json` document.
    pub fn render(&self) -> String {
        render_farm_json(
            &self.reports,
            &self.scaling,
            &self.boot,
            &self.stress,
            &self.churn,
            &self.restart_cost_runs,
            &self.dispatch_cost_runs,
            &self.native_cost_runs,
            &self.access_cost_runs,
            &self.mem_cost_runs,
            &self.conn_cost_runs,
            &self.mode_sweep_runs,
        )
    }
}

/// Runs every measurement of the record at the given shape, carrying
/// forward any `restart_cost` and `mode_sweep` rows from
/// `previous_json` (the old record's contents, when the caller has
/// one) so regeneration never drops trajectory history.
pub fn measure_record(
    shape: &RecordShape,
    previous_json: Option<&str>,
) -> Result<FarmRecord, String> {
    eprintln!(
        "running farm suite: 5 servers x 5 modes, {} requests/server ...",
        shape.requests
    );
    let reports = farm_suite(shape.requests);
    eprintln!("running thread-scaling sweep (Pine, failure-oblivious) ...");
    let scaling = thread_scaling(shape.requests, &shape.scaling_threads, shape.scaling_reps)?;
    eprintln!("measuring boot cost (cold compile vs cached image) ...");
    let boot = measure_boot_cost(shape.boot_reps);
    eprintln!("measuring restart cost (checkpoint restore vs cold boot+replay) ...");
    let restart = measure_restart_cost(shape.restart_reps);
    let violation = measure_violation_throughput(shape.restart_reps.clamp(3, 8));
    // The recorded sweep covers the three structural backends plus the
    // adaptive wrapper, each under both lookup layers.
    let stress_backends = [
        TableKind::Splay,
        TableKind::BTree,
        TableKind::Flat,
        TableKind::Auto,
    ];
    eprintln!(
        "running farm_stress: {} Apache servers x {} requests, {} backends x {} layers ...",
        shape.stress_servers,
        shape.stress_requests,
        stress_backends.len(),
        LookupLayer::ALL.len()
    );
    let stress = stress_sweep(
        shape.stress_servers,
        shape.stress_requests,
        shape.stress_reps,
        &stress_backends,
        &LookupLayer::ALL,
    )?;
    eprintln!("measuring unit-store churn (arena vs seed boxed baseline) ...");
    let churn = measure_unit_churn(shape.stress_servers, shape.churn_reps);
    let mut restart_cost_runs = previous_json
        .map(extract_restart_cost_rows)
        .unwrap_or_default();
    upsert_row(
        &mut restart_cost_runs,
        restart_cost_row_json(
            &restart,
            &violation,
            &restart_cost_fingerprint(shape.restart_reps),
        ),
    );
    Ok(FarmRecord {
        reports,
        scaling,
        boot,
        stress,
        churn,
        restart_cost_runs,
        dispatch_cost_runs: previous_json
            .map(extract_dispatch_cost_rows)
            .unwrap_or_default(),
        native_cost_runs: previous_json
            .map(extract_native_cost_rows)
            .unwrap_or_default(),
        access_cost_runs: previous_json
            .map(extract_access_cost_rows)
            .unwrap_or_default(),
        mem_cost_runs: previous_json.map(extract_mem_cost_rows).unwrap_or_default(),
        conn_cost_runs: previous_json
            .map(extract_conn_cost_rows)
            .unwrap_or_default(),
        mode_sweep_runs: previous_json
            .map(extract_mode_sweep_rows)
            .unwrap_or_default(),
    })
}

// ----------------------------------------------------------------------
// Trajectory-row fingerprints: idempotent BENCH_farm.json appends.
// ----------------------------------------------------------------------

/// Hashes an ordered list of identity parts into a 64-bit hex
/// fingerprint. A trajectory row's fingerprint captures *what was
/// measured* (bin schema version, compiled guest image identities,
/// execution tier, measurement shape) and deliberately excludes the
/// measured values themselves. Re-running an unchanged bin on an
/// unchanged tree therefore reproduces the fingerprint, and the append
/// helpers replace the matching row instead of growing the array —
/// trajectory history survives real changes and dedupes reruns.
fn fingerprint_of(parts: &[&str]) -> String {
    use std::hash::Hasher;
    let mut h = foc_compiler::Fnv1a::new();
    for p in parts {
        h.write(p.as_bytes());
        // Separator byte so ["ab","c"] and ["a","bc"] differ.
        h.write(&[0x1f]);
    }
    format!("{:016x}", h.finish())
}

/// Fingerprint for a `restart_cost` trajectory row: schema tag, the
/// five standard server image identities at the active execution tier
/// (any guest-source or lowering change reshapes them), the
/// manufactured violation loop's baseline image, and the rep count.
pub fn restart_cost_fingerprint(reps: usize) -> String {
    let tier = foc_compiler::ExecTier::from_env();
    let mut parts: Vec<String> = vec!["restart_cost/v2".to_string(), tier.label().to_string()];
    for kind in ServerKind::ALL {
        parts.push(kind.image_tier(tier).id().to_string());
    }
    let violation =
        foc_compiler::compile_image(VIOLATION_LOOP_SOURCE).expect("violation loop builds");
    parts.push(violation.id().to_string());
    parts.push(reps.to_string());
    let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
    fingerprint_of(&refs)
}

/// Fingerprint for a `mode_sweep` trajectory row: schema tag, sweep
/// shape, execution tier, and the five server image identities the
/// sweep interpreted.
pub fn mode_sweep_fingerprint(cells: usize, inputs: usize, threads: usize) -> String {
    let tier = foc_compiler::ExecTier::from_env();
    let mut parts: Vec<String> = vec![
        "mode_sweep/v2".to_string(),
        tier.label().to_string(),
        cells.to_string(),
        inputs.to_string(),
        threads.to_string(),
    ];
    for kind in ServerKind::ALL {
        parts.push(kind.image_tier(tier).id().to_string());
    }
    let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
    fingerprint_of(&refs)
}

/// Fingerprint for a `dispatch_cost` trajectory row: schema tag, the
/// dispatch loop's image identity under *every* tier (so a lowering
/// change that reshapes fusion or region extraction re-measures), loop
/// length, rep count.
pub fn dispatch_cost_fingerprint(reps: usize) -> String {
    let mut parts: Vec<String> = vec!["dispatch_cost/v2".to_string()];
    for tier in foc_compiler::ExecTier::ALL {
        let image = foc_compiler::compile_image_tier(DISPATCH_LOOP_SOURCE, tier)
            .expect("dispatch loop builds");
        parts.push(image.id().to_string());
    }
    parts.push(DISPATCH_LOOP_ITERS.to_string());
    parts.push(reps.to_string());
    let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
    fingerprint_of(&refs)
}

/// Fingerprint for a `native_cost` trajectory row: schema tag, the
/// violation-free loop's image identity under every tier, loop length,
/// rep count.
pub fn native_cost_fingerprint(reps: usize) -> String {
    let mut parts: Vec<String> = vec!["native_cost/v1".to_string()];
    for tier in foc_compiler::ExecTier::ALL {
        let image =
            foc_compiler::compile_image_tier(NATIVE_LOOP_SOURCE, tier).expect("native loop builds");
        parts.push(image.id().to_string());
    }
    parts.push(NATIVE_LOOP_ITERS.to_string());
    parts.push(reps.to_string());
    let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
    fingerprint_of(&refs)
}

/// Extracts the `"fingerprint"` value of a pre-rendered row, if it has
/// one. Rows recorded before fingerprinting existed have none and are
/// never matched (so they are always preserved).
fn row_fingerprint(row: &str) -> Option<&str> {
    let marker = "\"fingerprint\": \"";
    let at = row.find(marker)? + marker.len();
    let rest = &row[at..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Replaces the row sharing `row`'s fingerprint in place, or appends
/// when no row matches (including when `row` carries no fingerprint).
fn upsert_row(rows: &mut Vec<String>, row: String) {
    if let Some(fp) = row_fingerprint(&row) {
        if let Some(slot) = rows.iter().position(|r| row_fingerprint(r) == Some(fp)) {
            rows[slot] = row;
            return;
        }
    }
    rows.push(row);
}

// ----------------------------------------------------------------------
// The mode_sweep cost trajectory.
// ----------------------------------------------------------------------

/// Renders one `mode_sweep` wall-time row: how much the full-grid sweep
/// itself cost, so the sweep's price is tracked over time next to the
/// measurements it gates.
pub fn mode_sweep_row_json(
    cells: usize,
    resumed: usize,
    inputs: usize,
    threads: usize,
    wall_ms: f64,
    fingerprint: &str,
) -> String {
    format!(
        concat!(
            "{{\"cells\": {}, \"resumed_cells\": {}, \"inputs\": {}, ",
            "\"threads\": {}, \"wall_ms\": {:.1}, \"fingerprint\": \"{}\"}}"
        ),
        cells, resumed, inputs, threads, wall_ms, fingerprint
    )
}

/// Extracts the pre-rendered rows of the trajectory array named `key`
/// from an existing `BENCH_farm.json` document (empty when the file
/// predates the section or has none).
fn extract_rows_section(json: &str, key: &str) -> Vec<String> {
    let marker = format!("\"{key}\": [");
    let Some(start) = json.find(&marker) else {
        return Vec::new();
    };
    let body = &json[start + marker.len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    body[..end]
        .lines()
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .filter(|l| l.starts_with('{'))
        .collect()
}

/// Rewrites the trajectory array named `key` in place with `rows`.
/// Errors when the document has no such section.
fn replace_rows_section(json: &str, key: &str, rows: &[String]) -> Result<String, String> {
    let marker = format!("\"{key}\": [");
    let Some(start) = json.find(&marker) else {
        return Err(format!(
            "BENCH_farm.json has no {key} section; regenerate it with farm_scaling"
        ));
    };
    let body_at = start + marker.len();
    let Some(end) = json[body_at..].find(']') else {
        return Err(format!("BENCH_farm.json {key} section is unterminated"));
    };
    let mut section = String::from("\n");
    for (i, r) in rows.iter().enumerate() {
        section.push_str("    ");
        section.push_str(r);
        if i + 1 < rows.len() {
            section.push(',');
        }
        section.push('\n');
    }
    section.push_str("  ");
    Ok(format!(
        "{}{}{}",
        &json[..body_at],
        section,
        &json[body_at + end..]
    ))
}

/// Extracts the pre-rendered `mode_sweep_runs` rows from an existing
/// `BENCH_farm.json` document (empty when the file predates the
/// section or has none).
pub fn extract_mode_sweep_rows(json: &str) -> Vec<String> {
    extract_rows_section(json, "mode_sweep_runs")
}

/// Returns `json` with `row` upserted into its `mode_sweep_runs` array
/// (rewriting the section in place): a row carrying the same
/// fingerprint is replaced, otherwise `row` is appended, so re-running
/// the unchanged bin is idempotent. Errors when the document has no
/// such section — regenerate the record with `farm_scaling` first.
pub fn append_mode_sweep_row(json: &str, row: &str) -> Result<String, String> {
    let mut rows = extract_mode_sweep_rows(json);
    upsert_row(&mut rows, row.to_string());
    replace_rows_section(json, "mode_sweep_runs", &rows)
}

// ----------------------------------------------------------------------
// The restart_cost trajectory.
// ----------------------------------------------------------------------

/// Renders one `restart_cost` trajectory row: the checkpoint-restore
/// versus cold boot+replay split plus the manufactured-loop violation
/// throughput measured alongside it.
pub fn restart_cost_row_json(
    restart: &RestartCost,
    violation: &ViolationThroughput,
    fingerprint: &str,
) -> String {
    format!(
        concat!(
            "{{\"cold_boot_replay_ns\": {:.0}, \"cold_ci95_ns\": {:.0}, ",
            "\"checkpoint_restore_ns\": {:.0}, \"restore_ci95_ns\": {:.0}, ",
            "\"speedup\": {:.1}, \"reps\": {}, ",
            "\"violation_minstr_per_s\": {:.1}, \"violation_minstr_ci95\": {:.1}, ",
            "\"violation_instrs\": {}, \"fingerprint\": \"{}\"}}"
        ),
        restart.cold_ns,
        restart.cold_ci95_ns,
        restart.restore_ns,
        restart.restore_ci95_ns,
        restart.speedup(),
        restart.reps,
        violation.minstr_per_s,
        violation.minstr_ci95,
        violation.instrs,
        fingerprint,
    )
}

/// Extracts the `restart_cost_runs` rows from an existing record
/// (empty when the record predates the section).
pub fn extract_restart_cost_rows(json: &str) -> Vec<String> {
    extract_rows_section(json, "restart_cost_runs")
}

/// Returns `json` with `row` upserted into its `restart_cost_runs`
/// array (same-fingerprint rows are replaced in place, so an unchanged
/// bin rerun is idempotent). A record that predates the section
/// (rendered before the checkpoint layer existed) gains one, inserted
/// just before `mode_sweep_runs`, so the `restart_cost` bin can record
/// into an old file without a full regeneration.
pub fn append_restart_cost_row(json: &str, row: &str) -> Result<String, String> {
    if json.contains("\"restart_cost_runs\": [") {
        let mut rows = extract_restart_cost_rows(json);
        upsert_row(&mut rows, row.to_string());
        return replace_rows_section(json, "restart_cost_runs", &rows);
    }
    let Some(at) = json.find("  \"mode_sweep_runs\": [") else {
        return Err(
            "BENCH_farm.json has no mode_sweep_runs section to anchor restart_cost_runs; \
             regenerate it with farm_scaling"
                .to_string(),
        );
    };
    let section = format!("  \"restart_cost_runs\": [\n    {row}\n  ],\n");
    Ok(format!("{}{}{}", &json[..at], section, &json[at..]))
}

// ----------------------------------------------------------------------
// The dispatch_cost trajectory.
// ----------------------------------------------------------------------

/// Renders one `dispatch_cost` trajectory row: the manufactured loop's
/// interpretation rate under all three execution tiers and the
/// per-tier speedups over baseline.
pub fn dispatch_cost_row_json(cost: &DispatchCost, fingerprint: &str) -> String {
    format!(
        concat!(
            "{{\"baseline_minstr_per_s\": {:.1}, \"baseline_minstr_ci95\": {:.1}, ",
            "\"super_minstr_per_s\": {:.1}, \"super_minstr_ci95\": {:.1}, ",
            "\"native_minstr_per_s\": {:.1}, \"native_minstr_ci95\": {:.1}, ",
            "\"speedup\": {:.2}, \"native_speedup\": {:.2}, ",
            "\"instrs\": {}, \"reps\": {}, ",
            "\"fingerprint\": \"{}\"}}"
        ),
        cost.baseline.minstr_per_s,
        cost.baseline.minstr_ci95,
        cost.fused.minstr_per_s,
        cost.fused.minstr_ci95,
        cost.native.minstr_per_s,
        cost.native.minstr_ci95,
        cost.speedup(),
        cost.native_speedup(),
        cost.fused.instrs,
        cost.reps,
        fingerprint,
    )
}

/// Extracts the `dispatch_cost_runs` rows from an existing record
/// (empty when the record predates the section).
pub fn extract_dispatch_cost_rows(json: &str) -> Vec<String> {
    extract_rows_section(json, "dispatch_cost_runs")
}

/// Returns `json` with `row` upserted into its `dispatch_cost_runs`
/// array. A record that predates the section gains one, inserted just
/// before `mode_sweep_runs`.
pub fn append_dispatch_cost_row(json: &str, row: &str) -> Result<String, String> {
    if json.contains("\"dispatch_cost_runs\": [") {
        let mut rows = extract_dispatch_cost_rows(json);
        upsert_row(&mut rows, row.to_string());
        return replace_rows_section(json, "dispatch_cost_runs", &rows);
    }
    let Some(at) = json.find("  \"mode_sweep_runs\": [") else {
        return Err(
            "BENCH_farm.json has no mode_sweep_runs section to anchor dispatch_cost_runs; \
             regenerate it with farm_scaling"
                .to_string(),
        );
    };
    let section = format!("  \"dispatch_cost_runs\": [\n    {row}\n  ],\n");
    Ok(format!("{}{}{}", &json[..at], section, &json[at..]))
}

// ----------------------------------------------------------------------
// The native_cost trajectory.
// ----------------------------------------------------------------------

/// Renders one `native_cost` trajectory row: the violation-free loop's
/// interpretation rate under all three tiers, with the
/// native-over-super ratio as the headline speedup.
pub fn native_cost_row_json(cost: &NativeCost, fingerprint: &str) -> String {
    format!(
        concat!(
            "{{\"baseline_minstr_per_s\": {:.1}, \"baseline_minstr_ci95\": {:.1}, ",
            "\"super_minstr_per_s\": {:.1}, \"super_minstr_ci95\": {:.1}, ",
            "\"native_minstr_per_s\": {:.1}, \"native_minstr_ci95\": {:.1}, ",
            "\"speedup_over_super\": {:.2}, \"speedup_over_baseline\": {:.2}, ",
            "\"instrs\": {}, \"reps\": {}, ",
            "\"fingerprint\": \"{}\"}}"
        ),
        cost.baseline.minstr_per_s,
        cost.baseline.minstr_ci95,
        cost.fused.minstr_per_s,
        cost.fused.minstr_ci95,
        cost.native.minstr_per_s,
        cost.native.minstr_ci95,
        cost.speedup_over_super(),
        cost.speedup_over_baseline(),
        cost.native.instrs,
        cost.reps,
        fingerprint,
    )
}

/// Extracts the `native_cost_runs` rows from an existing record
/// (empty when the record predates the section).
pub fn extract_native_cost_rows(json: &str) -> Vec<String> {
    extract_rows_section(json, "native_cost_runs")
}

/// Returns `json` with `row` upserted into its `native_cost_runs`
/// array. A record that predates the section gains one, inserted just
/// before `mode_sweep_runs`.
pub fn append_native_cost_row(json: &str, row: &str) -> Result<String, String> {
    if json.contains("\"native_cost_runs\": [") {
        let mut rows = extract_native_cost_rows(json);
        upsert_row(&mut rows, row.to_string());
        return replace_rows_section(json, "native_cost_runs", &rows);
    }
    let Some(at) = json.find("  \"mode_sweep_runs\": [") else {
        return Err(
            "BENCH_farm.json has no mode_sweep_runs section to anchor native_cost_runs; \
             regenerate it with farm_scaling"
                .to_string(),
        );
    };
    let section = format!("  \"native_cost_runs\": [\n    {row}\n  ],\n");
    Ok(format!("{}{}{}", &json[..at], section, &json[at..]))
}

// ----------------------------------------------------------------------
// The access_cost trajectory.
// ----------------------------------------------------------------------

/// Fingerprint for an `access_cost` trajectory row: schema tag and the
/// measurement shape (table depth, buffer size, passes, rep count). No
/// guest images are involved — the bench drives the substrate directly
/// — so only a shape change re-measures.
pub fn access_cost_fingerprint(reps: usize) -> String {
    let parts: Vec<String> = vec![
        "access_cost/v1".to_string(),
        ACCESS_DEPTH_ALLOCS.to_string(),
        ACCESS_BUF_BYTES.to_string(),
        ACCESS_COPY_PASSES.to_string(),
        reps.to_string(),
    ];
    let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
    fingerprint_of(&refs)
}

/// Renders one `access_cost` trajectory row: the in-bounds access rate
/// under both lookup layers and their ratio.
pub fn access_cost_row_json(cost: &AccessCost, fingerprint: &str) -> String {
    format!(
        concat!(
            "{{\"table_maccess_per_s\": {:.1}, \"table_maccess_ci95\": {:.1}, ",
            "\"paged_maccess_per_s\": {:.1}, \"paged_maccess_ci95\": {:.1}, ",
            "\"speedup\": {:.2}, \"accesses\": {}, \"reps\": {}, ",
            "\"fingerprint\": \"{}\"}}"
        ),
        cost.table.maccess_per_s,
        cost.table.maccess_ci95,
        cost.paged.maccess_per_s,
        cost.paged.maccess_ci95,
        cost.speedup(),
        cost.accesses,
        cost.reps,
        fingerprint,
    )
}

/// Extracts the `access_cost_runs` rows from an existing record
/// (empty when the record predates the section).
pub fn extract_access_cost_rows(json: &str) -> Vec<String> {
    extract_rows_section(json, "access_cost_runs")
}

/// Returns `json` with `row` upserted into its `access_cost_runs`
/// array. A record that predates the section gains one, inserted just
/// before `mode_sweep_runs`.
pub fn append_access_cost_row(json: &str, row: &str) -> Result<String, String> {
    if json.contains("\"access_cost_runs\": [") {
        let mut rows = extract_access_cost_rows(json);
        upsert_row(&mut rows, row.to_string());
        return replace_rows_section(json, "access_cost_runs", &rows);
    }
    let Some(at) = json.find("  \"mode_sweep_runs\": [") else {
        return Err(
            "BENCH_farm.json has no mode_sweep_runs section to anchor access_cost_runs; \
             regenerate it with farm_scaling"
                .to_string(),
        );
    };
    let section = format!("  \"access_cost_runs\": [\n    {row}\n  ],\n");
    Ok(format!("{}{}{}", &json[..at], section, &json[at..]))
}

// ----------------------------------------------------------------------
// The mem_cost trajectory.
// ----------------------------------------------------------------------

/// Fingerprint for a `mem_cost` trajectory row: schema tag, the guest
/// copy loop's image identity under every tier (a lowering change that
/// reshapes block grouping or access fusion re-measures), loop length,
/// rep count.
pub fn mem_cost_fingerprint(reps: usize) -> String {
    let mut parts: Vec<String> = vec!["mem_cost/v1".to_string()];
    for tier in foc_compiler::ExecTier::ALL {
        let image =
            foc_compiler::compile_image_tier(MEM_LOOP_SOURCE, tier).expect("mem loop builds");
        parts.push(image.id().to_string());
    }
    parts.push(MEM_LOOP_ITERS.to_string());
    parts.push(reps.to_string());
    let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
    fingerprint_of(&refs)
}

/// Renders one `mem_cost` trajectory row: the guest copy loop's
/// interpretation rate under all three tiers, with the
/// native-over-super ratio as the headline speedup.
pub fn mem_cost_row_json(cost: &NativeCost, fingerprint: &str) -> String {
    format!(
        concat!(
            "{{\"baseline_minstr_per_s\": {:.1}, \"baseline_minstr_ci95\": {:.1}, ",
            "\"super_minstr_per_s\": {:.1}, \"super_minstr_ci95\": {:.1}, ",
            "\"native_minstr_per_s\": {:.1}, \"native_minstr_ci95\": {:.1}, ",
            "\"speedup_over_super\": {:.2}, \"speedup_over_baseline\": {:.2}, ",
            "\"instrs\": {}, \"reps\": {}, ",
            "\"fingerprint\": \"{}\"}}"
        ),
        cost.baseline.minstr_per_s,
        cost.baseline.minstr_ci95,
        cost.fused.minstr_per_s,
        cost.fused.minstr_ci95,
        cost.native.minstr_per_s,
        cost.native.minstr_ci95,
        cost.speedup_over_super(),
        cost.speedup_over_baseline(),
        cost.native.instrs,
        cost.reps,
        fingerprint,
    )
}

/// Extracts the `mem_cost_runs` rows from an existing record (empty
/// when the record predates the section).
pub fn extract_mem_cost_rows(json: &str) -> Vec<String> {
    extract_rows_section(json, "mem_cost_runs")
}

/// Returns `json` with `row` upserted into its `mem_cost_runs` array.
/// A record that predates the section gains one, inserted just before
/// `mode_sweep_runs`.
pub fn append_mem_cost_row(json: &str, row: &str) -> Result<String, String> {
    if json.contains("\"mem_cost_runs\": [") {
        let mut rows = extract_mem_cost_rows(json);
        upsert_row(&mut rows, row.to_string());
        return replace_rows_section(json, "mem_cost_runs", &rows);
    }
    let Some(at) = json.find("  \"mode_sweep_runs\": [") else {
        return Err(
            "BENCH_farm.json has no mode_sweep_runs section to anchor mem_cost_runs; \
             regenerate it with farm_scaling"
                .to_string(),
        );
    };
    let section = format!("  \"mem_cost_runs\": [\n    {row}\n  ],\n");
    Ok(format!("{}{}{}", &json[..at], section, &json[at..]))
}

// ----------------------------------------------------------------------
// Connection cost: the socket edge's transport overhead and SLO.
// ----------------------------------------------------------------------

/// Servers in the conn_cost measured farm.
const CONN_COST_SERVERS: usize = 32;

/// Requests per server in the conn_cost measured farm.
const CONN_COST_REQUESTS: usize = 50;

/// The SLO multiplier: a request is "within SLO" when its service
/// latency bucket tops out at ≤ this many times the median bucket.
pub const CONN_SLO_K: u64 = 4;

/// Shape of the `--check` connection smoke: pooled plus flood
/// connections per server sized so one farm run opens 100k+ simulated
/// connections (the flood overflow past the backlog is refused, which
/// the smoke also asserts).
pub const CONN_SMOKE_SERVERS: usize = 256;
/// Pooled connections per smoke server.
pub const CONN_SMOKE_POOL: usize = 392;
/// Flood connections per smoke server (past the backlog → refused).
pub const CONN_SMOKE_FLOOD: usize = 12;
/// Listener backlog per smoke server.
pub const CONN_SMOKE_BACKLOG: usize = 8;
/// Requests per smoke server (the smoke gates connection scale, not
/// request volume).
pub const CONN_SMOKE_REQUESTS: usize = 6;

/// One edge's wall-time measurement on the conn_cost farm.
#[derive(Debug, Clone, Copy)]
pub struct ConnEdgeRate {
    /// Robust mean host wall time per run, milliseconds.
    pub wall_ms: f64,
    /// Half-width of the 95% confidence interval on `wall_ms`.
    pub wall_ms_ci95: f64,
    /// Completed requests per host second at the mean wall time.
    pub host_rps: f64,
}

/// The connection edge's cost surface: the same farm timed over the
/// in-process path, the clean socket edge, and the two adversarial
/// transports, plus the run's connection-level SLO. All four runs are
/// asserted to produce the *same* [`FarmReport`], so the wall-time
/// spread is attributable to transport alone.
#[derive(Debug, Clone)]
pub struct ConnCost {
    /// The historical direct-application path.
    pub in_process: ConnEdgeRate,
    /// Clean whole-frame socket transport.
    pub socket: ConnEdgeRate,
    /// 3-byte slow-loris drip.
    pub slow_loris: ConnEdgeRate,
    /// Mid-frame disconnect + retransmit every 3rd request.
    pub disconnect: ConnEdgeRate,
    /// Basis points of completed requests within [`CONN_SLO_K`]× the
    /// median service latency (edge-invariant, like everything else in
    /// the report).
    pub slo_within_bp: u64,
    /// Servers in the measured farm.
    pub servers: usize,
    /// Requests per server.
    pub requests: usize,
    /// Repetitions per edge.
    pub reps: usize,
}

impl ConnCost {
    /// Clean-socket-over-in-process wall-time ratio: what framing,
    /// buffer state machines, and the readiness loop cost end to end.
    pub fn socket_overhead(&self) -> f64 {
        self.socket.wall_ms / self.in_process.wall_ms
    }
}

/// The conn_cost farm: Apache under the failure-oblivious policy with
/// the standard attack mix — the highest-request-rate server, so the
/// per-request transport overhead is the dominant term being measured.
fn conn_cost_config(edge: Edge) -> FarmConfig {
    let mut config = FarmConfig::new(ServerKind::Apache, Mode::FailureOblivious).with_edge(edge);
    config.servers = CONN_COST_SERVERS;
    config.requests_per_server = CONN_COST_REQUESTS;
    config
}

/// The four measured edges, label order fixed by the row schema.
fn conn_cost_edges() -> [Edge; 4] {
    [
        Edge::InProcess,
        Edge::Socket(SocketEdge::default()),
        Edge::Socket(SocketEdge {
            scenario: Scenario::SlowLoris { chunk: 3 },
            ..SocketEdge::default()
        }),
        Edge::Socket(SocketEdge {
            scenario: Scenario::Disconnect { every: 3 },
            ..SocketEdge::default()
        }),
    ]
}

/// Measures [`ConnCost`]: `reps` timed farm runs per edge, asserting
/// every edge's report equal to the in-process reference — the bench
/// doubles as an equivalence check on the exact traffic it times.
pub fn measure_conn_cost(reps: usize) -> ConnCost {
    let reps = reps.max(1);
    let requests_total = (CONN_COST_SERVERS * CONN_COST_REQUESTS) as f64;
    let mut reference: Option<FarmReport> = None;
    let mut rates = Vec::with_capacity(4);
    for edge in conn_cost_edges() {
        let config = conn_cost_config(edge.clone());
        let mut walls = Vec::with_capacity(reps);
        for _ in 0..reps {
            let report = run_farm(&config);
            walls.push(report.host_wall_ms);
            match &reference {
                None => reference = Some(report),
                Some(reference) => assert_eq!(
                    *reference,
                    report,
                    "{} must reproduce the in-process report",
                    edge.label()
                ),
            }
        }
        let r = robust_summary(&walls);
        rates.push(ConnEdgeRate {
            wall_ms: r.mean,
            wall_ms_ci95: r.ci95,
            host_rps: requests_total / (r.mean / 1e3),
        });
    }
    let reference = reference.expect("at least one run");
    ConnCost {
        in_process: rates[0],
        socket: rates[1],
        slow_loris: rates[2],
        disconnect: rates[3],
        slo_within_bp: slo_within_basis_points(&reference.stats.service_hist, CONN_SLO_K),
        servers: CONN_COST_SERVERS,
        requests: CONN_COST_REQUESTS,
        reps,
    }
}

/// Runs the 100k-connection smoke farm once over the flooded socket
/// edge and returns its report plus the number of simulated connection
/// attempts the run opened (pool + flood, per server).
pub fn conn_cost_smoke() -> (FarmReport, u64) {
    let edge = Edge::Socket(SocketEdge {
        connections: CONN_SMOKE_POOL,
        backlog: CONN_SMOKE_BACKLOG,
        flood: CONN_SMOKE_FLOOD,
        scenario: Scenario::Clean,
    });
    let mut config = FarmConfig::new(ServerKind::Apache, Mode::FailureOblivious).with_edge(edge);
    config.servers = CONN_SMOKE_SERVERS;
    config.requests_per_server = CONN_SMOKE_REQUESTS;
    let connections = (CONN_SMOKE_SERVERS * (CONN_SMOKE_POOL + CONN_SMOKE_FLOOD)) as u64;
    (run_farm(&config), connections)
}

/// Fingerprint for a `conn_cost` trajectory row: schema tag, execution
/// tier, the Apache image identity (the measured guest), the farm and
/// connection-pool shape, the SLO multiplier, and the rep count.
pub fn conn_cost_fingerprint(reps: usize) -> String {
    let tier = foc_compiler::ExecTier::from_env();
    let pool = SocketEdge::default();
    let parts: Vec<String> = vec![
        "conn_cost/v1".to_string(),
        tier.label().to_string(),
        ServerKind::Apache.image_tier(tier).id().to_string(),
        CONN_COST_SERVERS.to_string(),
        CONN_COST_REQUESTS.to_string(),
        pool.connections.to_string(),
        pool.backlog.to_string(),
        CONN_SLO_K.to_string(),
        reps.to_string(),
    ];
    let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
    fingerprint_of(&refs)
}

/// Renders one `conn_cost` trajectory row: wall time per edge, the
/// socket-over-in-process overhead ratio, and the connection-level SLO.
pub fn conn_cost_row_json(cost: &ConnCost, fingerprint: &str) -> String {
    format!(
        concat!(
            "{{\"in_process_wall_ms\": {:.2}, \"in_process_ci95\": {:.2}, ",
            "\"socket_wall_ms\": {:.2}, \"socket_ci95\": {:.2}, ",
            "\"slow_loris_wall_ms\": {:.2}, \"slow_loris_ci95\": {:.2}, ",
            "\"disconnect_wall_ms\": {:.2}, \"disconnect_ci95\": {:.2}, ",
            "\"socket_overhead\": {:.2}, \"slo_within_{}x_median_bp\": {}, ",
            "\"servers\": {}, \"requests_per_server\": {}, \"reps\": {}, ",
            "\"fingerprint\": \"{}\"}}"
        ),
        cost.in_process.wall_ms,
        cost.in_process.wall_ms_ci95,
        cost.socket.wall_ms,
        cost.socket.wall_ms_ci95,
        cost.slow_loris.wall_ms,
        cost.slow_loris.wall_ms_ci95,
        cost.disconnect.wall_ms,
        cost.disconnect.wall_ms_ci95,
        cost.socket_overhead(),
        CONN_SLO_K,
        cost.slo_within_bp,
        cost.servers,
        cost.requests,
        cost.reps,
        fingerprint,
    )
}

/// Extracts the `conn_cost_runs` rows from an existing record (empty
/// when the record predates the section).
pub fn extract_conn_cost_rows(json: &str) -> Vec<String> {
    extract_rows_section(json, "conn_cost_runs")
}

/// Returns `json` with `row` upserted into its `conn_cost_runs` array.
/// A record that predates the section gains one, inserted just before
/// `mode_sweep_runs`.
pub fn append_conn_cost_row(json: &str, row: &str) -> Result<String, String> {
    if json.contains("\"conn_cost_runs\": [") {
        let mut rows = extract_conn_cost_rows(json);
        upsert_row(&mut rows, row.to_string());
        return replace_rows_section(json, "conn_cost_runs", &rows);
    }
    let Some(at) = json.find("  \"mode_sweep_runs\": [") else {
        return Err(
            "BENCH_farm.json has no mode_sweep_runs section to anchor conn_cost_runs; \
             regenerate it with farm_scaling"
                .to_string(),
        );
    };
    let section = format!("  \"conn_cost_runs\": [\n    {row}\n  ],\n");
    Ok(format!("{}{}{}", &json[..at], section, &json[at..]))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn hist_json(h: &LatencyHist) -> String {
    let pairs: Vec<String> = h
        .nonzero_buckets()
        .iter()
        .map(|&(top, n)| format!("[{top}, {n}]"))
        .collect();
    format!("[{}]", pairs.join(", "))
}

fn report_json(r: &FarmReport) -> String {
    let s = &r.stats;
    format!(
        concat!(
            "    {{\"server\": \"{}\", \"mode\": \"{}\", \"servers\": {}, ",
            "\"requests\": {}, \"completed\": {}, \"dropped\": {}, \"attacks\": {}, ",
            "\"deaths\": {}, \"restarts\": {}, \"servers_down\": {}, ",
            "\"total_cycles\": {}, \"service_cycles\": {}, \"restart_cycles\": {}, ",
            "\"survival_rate\": {:.4}, ",
            "\"throughput_per_mcycle\": {:.4}, \"latency_p50\": {}, ",
            "\"latency_p90\": {}, \"latency_p99\": {}, \"latency_p999\": {}, ",
            "\"latency_max\": {}, ",
            "\"tail_service_cycles\": {}, \"tail_restart_cycles\": {}, ",
            "\"host_wall_ms\": {:.2}}}"
        ),
        json_escape(r.config.kind.name()),
        json_escape(r.config.mode.name()),
        r.config.servers,
        s.requests,
        s.completed,
        s.dropped,
        s.attacks,
        s.deaths,
        s.restarts,
        s.servers_down,
        s.total_cycles,
        s.service_cycles(),
        s.restart_cycles,
        s.survival_rate(),
        s.throughput_per_mcycle(),
        s.latency_p50,
        s.latency_p90,
        s.latency_p99,
        s.latency_p999,
        s.latency_max,
        s.tail_service_cycles,
        s.tail_restart_cycles,
        r.host_wall_ms,
    )
}

fn stress_row_json(row: &StressRow) -> String {
    let s = &row.report.stats;
    format!(
        concat!(
            "      {{\"backend\": \"{}\", \"lookup\": \"{}\", \"wall_ms\": {:.2}, ",
            "\"wall_ms_ci95\": {:.2}, \"host_rps\": {:.1}, \"reps\": {}, ",
            "\"completed\": {}, \"total_cycles\": {}, ",
            "\"latency_p50\": {}, \"latency_p99\": {}, \"latency_p999\": {}, ",
            "\"tail_service_cycles\": {}, \"tail_restart_cycles\": {}, ",
            "\"service_hist\": {}, \"restart_hist\": {}}}"
        ),
        row.backend.name(),
        row.lookup.name(),
        row.wall_ms,
        row.wall_ms_ci95,
        row.host_rps,
        row.reps,
        s.completed,
        s.total_cycles,
        s.latency_p50,
        s.latency_p99,
        s.latency_p999,
        s.tail_service_cycles,
        s.tail_restart_cycles,
        hist_json(&s.service_hist),
        hist_json(&s.restart_hist),
    )
}

/// Renders the whole benchmark record. (One positional argument per
/// top-level record section, in file order — a parameter struct would
/// just restate the same list.)
#[allow(clippy::too_many_arguments)]
pub fn render_farm_json(
    reports: &[FarmReport],
    scaling: &[ScalingRow],
    boot: &BootCost,
    stress: &[StressRow],
    churn: &UnitChurn,
    restart_cost_runs: &[String],
    dispatch_cost_runs: &[String],
    native_cost_runs: &[String],
    access_cost_runs: &[String],
    mem_cost_runs: &[String],
    conn_cost_runs: &[String],
    mode_sweep_runs: &[String],
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"farm\",\n  \"reports\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&report_json(r));
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"thread_scaling\": [\n");
    for (i, row) in scaling.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"threads\": {}, \"host_wall_ms\": {:.2}, ",
                "\"host_wall_ms_ci95\": {:.2}, \"host_rps\": {:.1}, \"reps\": {}}}"
            ),
            row.threads, row.wall_ms, row.wall_ms_ci95, row.host_rps, row.reps
        ));
        if i + 1 < scaling.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!(
        concat!(
            "  ],\n  \"boot_cost\": {{\"cold_compile_boot_ns\": {:.0}, ",
            "\"cold_ci95_ns\": {:.0}, \"cached_image_boot_ns\": {:.0}, ",
            "\"cached_ci95_ns\": {:.0}, \"speedup\": {:.1}, \"reps\": {}}},\n"
        ),
        boot.cold_ns,
        boot.cold_ci95_ns,
        boot.cached_ns,
        boot.cached_ci95_ns,
        boot.speedup(),
        boot.reps,
    ));
    // The restart-cost trajectory: checkpoint-restore vs cold
    // boot+replay plus the manufactured-loop violation throughput, one
    // row per recorded measurement (regeneration appends, never drops).
    if restart_cost_runs.is_empty() {
        out.push_str("  \"restart_cost_runs\": [],\n");
    } else {
        out.push_str("  \"restart_cost_runs\": [\n");
        for (i, row) in restart_cost_runs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            if i + 1 < restart_cost_runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    // The dispatch-cost trajectory: baseline vs superinstruction tier
    // interpretation rate on the manufactured loop, one row per
    // recorded measurement (the dispatch_cost bin upserts by
    // fingerprint).
    if dispatch_cost_runs.is_empty() {
        out.push_str("  \"dispatch_cost_runs\": [],\n");
    } else {
        out.push_str("  \"dispatch_cost_runs\": [\n");
        for (i, row) in dispatch_cost_runs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            if i + 1 < dispatch_cost_runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    // The native_cost trajectory: per-tier interpretation rate on the
    // violation-free dispatch-bound loop, one row per recorded
    // measurement (the native_cost bin upserts by fingerprint).
    if native_cost_runs.is_empty() {
        out.push_str("  \"native_cost_runs\": [],\n");
    } else {
        out.push_str("  \"native_cost_runs\": [\n");
        for (i, row) in native_cost_runs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            if i + 1 < native_cost_runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    // The access-cost trajectory: in-bounds access rate under the page
    // map versus the direct table search, one row per recorded
    // measurement (the access_cost bin upserts by fingerprint).
    if access_cost_runs.is_empty() {
        out.push_str("  \"access_cost_runs\": [],\n");
    } else {
        out.push_str("  \"access_cost_runs\": [\n");
        for (i, row) in access_cost_runs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            if i + 1 < access_cost_runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    // The mem_cost trajectory: per-tier interpretation rate on the
    // guest copy loop — the memory-spanning block executor's gate —
    // one row per recorded measurement (the access_cost bin upserts by
    // fingerprint under the native tier).
    if mem_cost_runs.is_empty() {
        out.push_str("  \"mem_cost_runs\": [],\n");
    } else {
        out.push_str("  \"mem_cost_runs\": [\n");
        for (i, row) in mem_cost_runs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            if i + 1 < mem_cost_runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    // The conn_cost trajectory: the socket edge's transport overhead
    // per scenario plus the connection-level SLO, one row per recorded
    // measurement (the conn_cost bin upserts by fingerprint).
    if conn_cost_runs.is_empty() {
        out.push_str("  \"conn_cost_runs\": [],\n");
    } else {
        out.push_str("  \"conn_cost_runs\": [\n");
        for (i, row) in conn_cost_runs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            if i + 1 < conn_cost_runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    // The mode_sweep cost trajectory: one row per recorded full-grid
    // sweep, appended by the mode_sweep bin and carried forward by the
    // regenerating bins.
    if mode_sweep_runs.is_empty() {
        out.push_str("  \"mode_sweep_runs\": [],\n");
    } else {
        out.push_str("  \"mode_sweep_runs\": [\n");
        for (i, row) in mode_sweep_runs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            if i + 1 < mode_sweep_runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    // The scale-out stress point: per-backend rows plus the arena-vs-seed
    // unit-store churn measurement.
    if let Some(first) = stress.first() {
        let c = &first.report.config;
        out.push_str(&format!(
            concat!(
                "  \"farm_stress\": {{\"server\": \"{}\", \"mode\": \"{}\", ",
                "\"servers\": {}, \"requests_per_server\": {},\n    \"rows\": [\n"
            ),
            json_escape(c.kind.name()),
            json_escape(c.mode.name()),
            c.servers,
            c.requests_per_server,
        ));
        for (i, row) in stress.iter().enumerate() {
            out.push_str(&stress_row_json(row));
            if i + 1 < stress.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("    ],\n");
    } else {
        out.push_str("  \"farm_stress\": {\n    \"rows\": [],\n");
    }
    out.push_str(&format!(
        concat!(
            "    \"unit_churn\": {{\"machines\": {}, \"arena_ns\": {:.0}, ",
            "\"arena_ci95_ns\": {:.0}, \"boxed_seed_ns\": {:.0}, ",
            "\"boxed_ci95_ns\": {:.0}, \"arena_speedup\": {:.2}, \"reps\": {}}}\n  }}\n"
        ),
        churn.machines,
        churn.arena_ns,
        churn.arena_ci95_ns,
        churn.boxed_ns,
        churn.boxed_ci95_ns,
        churn.speedup(),
        churn.reps,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_balances() {
        let mut config = suite_config(ServerKind::Apache, Mode::FailureOblivious, 5);
        config.servers = 2;
        config.threads = 2;
        let reports = vec![run_farm(&config)];
        let scaling = vec![
            ScalingRow {
                threads: 1,
                wall_ms: 10.0,
                wall_ms_ci95: 0.5,
                host_rps: 100.0,
                reps: 3,
            },
            ScalingRow {
                threads: 2,
                wall_ms: 5.0,
                wall_ms_ci95: 0.25,
                host_rps: 200.0,
                reps: 3,
            },
        ];
        let boot = BootCost {
            cold_ns: 1_000_000.0,
            cold_ci95_ns: 1000.0,
            cached_ns: 50_000.0,
            cached_ci95_ns: 500.0,
            reps: 10,
        };
        let stress = stress_sweep(3, 3, 1, &TableKind::ALL, &LookupLayer::ALL).expect("contract");
        let churn = measure_unit_churn(4, 2);
        let restart = RestartCost {
            cold_ns: 500_000.0,
            cold_ci95_ns: 2_000.0,
            restore_ns: 50_000.0,
            restore_ci95_ns: 500.0,
            reps: 8,
        };
        let violation = ViolationThroughput {
            minstr_per_s: 30.0,
            minstr_ci95: 1.0,
            instrs: 1_000_000,
            reps: 3,
        };
        let restart_rows = vec![restart_cost_row_json(&restart, &violation, "fp-restart-1")];
        let dispatch = DispatchCost {
            baseline: violation,
            fused: ViolationThroughput {
                minstr_per_s: 60.0,
                minstr_ci95: 2.0,
                instrs: 1_000_000,
                reps: 3,
            },
            native: ViolationThroughput {
                minstr_per_s: 90.0,
                minstr_ci95: 2.0,
                instrs: 1_000_000,
                reps: 3,
            },
            reps: 3,
        };
        let dispatch_rows = vec![dispatch_cost_row_json(&dispatch, "fp-dispatch-1")];
        let native_cost = NativeCost {
            baseline: dispatch.baseline,
            fused: dispatch.fused,
            native: ViolationThroughput {
                minstr_per_s: 150.0,
                minstr_ci95: 3.0,
                instrs: 1_000_000,
                reps: 3,
            },
            reps: 3,
        };
        let native_rows = vec![native_cost_row_json(&native_cost, "fp-native-1")];
        let access = AccessCost {
            table: AccessRate {
                maccess_per_s: 10.0,
                maccess_ci95: 0.5,
            },
            paged: AccessRate {
                maccess_per_s: 25.0,
                maccess_ci95: 0.5,
            },
            accesses: 73_728,
            reps: 3,
        };
        let access_rows = vec![access_cost_row_json(&access, "fp-access-1")];
        let mem_cost = NativeCost {
            baseline: dispatch.baseline,
            fused: dispatch.fused,
            native: ViolationThroughput {
                minstr_per_s: 120.0,
                minstr_ci95: 3.0,
                instrs: 1_000_000,
                reps: 3,
            },
            reps: 3,
        };
        let mem_rows = vec![mem_cost_row_json(&mem_cost, "fp-mem-1")];
        let edge_rate = ConnEdgeRate {
            wall_ms: 10.0,
            wall_ms_ci95: 0.5,
            host_rps: 160_000.0,
        };
        let conn = ConnCost {
            in_process: edge_rate,
            socket: ConnEdgeRate {
                wall_ms: 12.0,
                ..edge_rate
            },
            slow_loris: ConnEdgeRate {
                wall_ms: 15.0,
                ..edge_rate
            },
            disconnect: ConnEdgeRate {
                wall_ms: 14.0,
                ..edge_rate
            },
            slo_within_bp: 9_250,
            servers: 32,
            requests: 50,
            reps: 3,
        };
        let conn_rows = vec![conn_cost_row_json(&conn, "fp-conn-1")];
        let rows = vec![mode_sweep_row_json(150, 0, 17, 4, 1234.5, "fp-sweep-1")];
        let json = render_farm_json(
            &reports,
            &scaling,
            &boot,
            &stress,
            &churn,
            &restart_rows,
            &dispatch_rows,
            &native_rows,
            &access_rows,
            &mem_rows,
            &conn_rows,
            &rows,
        );
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(json.contains("\"server\": \"Apache\""));
        assert!(json.contains("\"mode\": \"Failure Oblivious\""));
        assert!(json.contains("\"service_cycles\""));
        assert!(json.contains("\"restart_cycles\""));
        assert!(json.contains("\"latency_p999\""));
        assert!(json.contains("\"tail_service_cycles\""));
        assert!(json.contains("\"tail_restart_cycles\""));
        assert!(json.contains("\"thread_scaling\""));
        assert!(json.contains("\"host_wall_ms_ci95\""));
        assert!(json.contains("\"boot_cost\""));
        assert!(json.contains("\"speedup\": 20.0"));
        assert!(json.contains("\"farm_stress\""));
        assert!(json.contains("\"mode_sweep_runs\""));
        assert!(json.contains("\"resumed_cells\": 0"));
        assert!(json.contains("\"restart_cost_runs\""));
        assert!(json.contains("\"checkpoint_restore_ns\""));
        assert!(json.contains("\"violation_minstr_per_s\""));
        assert!(json.contains("\"dispatch_cost_runs\""));
        assert!(json.contains("\"baseline_minstr_per_s\""));
        assert!(json.contains("\"native_cost_runs\""));
        assert!(json.contains("\"speedup_over_super\": 2.50"));
        assert!(json.contains("\"native_speedup\": 3.00"));
        assert!(json.contains("\"access_cost_runs\""));
        assert!(json.contains("\"paged_maccess_per_s\""));
        assert!(json.contains("\"mem_cost_runs\""));
        assert!(json.contains("\"speedup_over_super\": 2.00"));
        assert!(json.contains("\"conn_cost_runs\""));
        assert!(json.contains("\"socket_overhead\": 1.20"));
        assert!(json.contains("\"slo_within_4x_median_bp\": 9250"));
        assert!(json.contains("\"lookup\": \"table\""));
        assert!(json.contains("\"lookup\": \"paged\""));
        // Round trip: extract the rows back and append another (a new
        // fingerprint grows the array).
        assert_eq!(extract_restart_cost_rows(&json), restart_rows);
        let grown = append_restart_cost_row(
            &json,
            &restart_cost_row_json(&restart, &violation, "fp-restart-2"),
        )
        .expect("append restart row");
        assert_eq!(extract_restart_cost_rows(&grown).len(), 2);
        assert_eq!(
            extract_mode_sweep_rows(&grown),
            rows,
            "growing one trajectory must not disturb the other"
        );
        // Re-appending an existing fingerprint replaces in place: the
        // bins are idempotent over unchanged trees.
        let replaced = append_restart_cost_row(
            &grown,
            &restart_cost_row_json(&restart, &violation, "fp-restart-2"),
        )
        .expect("upsert restart row");
        assert_eq!(extract_restart_cost_rows(&replaced).len(), 2);
        assert_eq!(extract_mode_sweep_rows(&json), rows);
        let appended = append_mode_sweep_row(
            &json,
            &mode_sweep_row_json(150, 120, 17, 4, 99.0, "fp-sweep-2"),
        )
        .expect("append");
        assert_eq!(extract_mode_sweep_rows(&appended).len(), 2);
        let resweep = append_mode_sweep_row(
            &appended,
            &mode_sweep_row_json(150, 120, 17, 4, 101.0, "fp-sweep-2"),
        )
        .expect("upsert");
        let resweep_rows = extract_mode_sweep_rows(&resweep);
        assert_eq!(
            resweep_rows.len(),
            2,
            "same fingerprint must not grow the array"
        );
        assert!(
            resweep_rows[1].contains("\"wall_ms\": 101.0"),
            "upsert takes the fresh value"
        );
        let dgrown =
            append_dispatch_cost_row(&json, &dispatch_cost_row_json(&dispatch, "fp-dispatch-2"))
                .expect("append dispatch row");
        assert_eq!(extract_dispatch_cost_rows(&dgrown).len(), 2);
        assert_eq!(extract_native_cost_rows(&json), native_rows);
        let ngrown =
            append_native_cost_row(&json, &native_cost_row_json(&native_cost, "fp-native-2"))
                .expect("append native row");
        assert_eq!(extract_native_cost_rows(&ngrown).len(), 2);
        let nsame =
            append_native_cost_row(&ngrown, &native_cost_row_json(&native_cost, "fp-native-2"))
                .expect("upsert native row");
        assert_eq!(extract_native_cost_rows(&nsame).len(), 2);
        assert_eq!(extract_access_cost_rows(&json), access_rows);
        let agrown = append_access_cost_row(&json, &access_cost_row_json(&access, "fp-access-2"))
            .expect("append access row");
        assert_eq!(extract_access_cost_rows(&agrown).len(), 2);
        let asame = append_access_cost_row(&agrown, &access_cost_row_json(&access, "fp-access-2"))
            .expect("upsert access row");
        assert_eq!(extract_access_cost_rows(&asame).len(), 2);
        assert_eq!(extract_mem_cost_rows(&json), mem_rows);
        let mgrown = append_mem_cost_row(&json, &mem_cost_row_json(&mem_cost, "fp-mem-2"))
            .expect("append mem row");
        assert_eq!(extract_mem_cost_rows(&mgrown).len(), 2);
        let msame = append_mem_cost_row(&mgrown, &mem_cost_row_json(&mem_cost, "fp-mem-2"))
            .expect("upsert mem row");
        assert_eq!(extract_mem_cost_rows(&msame).len(), 2);
        assert_eq!(extract_conn_cost_rows(&json), conn_rows);
        let cgrown = append_conn_cost_row(&json, &conn_cost_row_json(&conn, "fp-conn-2"))
            .expect("append conn row");
        assert_eq!(extract_conn_cost_rows(&cgrown).len(), 2);
        let csame = append_conn_cost_row(&cgrown, &conn_cost_row_json(&conn, "fp-conn-2"))
            .expect("upsert conn row");
        assert_eq!(extract_conn_cost_rows(&csame).len(), 2);
        assert_eq!(
            extract_mode_sweep_rows(&cgrown),
            rows,
            "growing conn_cost_runs must not disturb the sweep trajectory"
        );
        assert_eq!(
            extract_mode_sweep_rows(&mgrown),
            rows,
            "growing mem_cost_runs must not disturb the sweep trajectory"
        );
        assert_eq!(
            appended.matches('{').count(),
            appended.matches('}').count(),
            "appended record must stay balanced"
        );
        for backend in foc_memory::TableKind::ALL {
            assert!(
                json.contains(&format!("\"backend\": \"{}\"", backend.name())),
                "missing stress row for {backend}"
            );
        }
        assert!(json.contains("\"service_hist\": [["));
        assert!(json.contains("\"unit_churn\""));
        assert!(json.contains("\"arena_speedup\""));
    }

    #[test]
    fn stress_sweep_rows_agree_across_backends_and_layers() {
        let rows = stress_sweep(4, 5, 2, &TableKind::ALL, &LookupLayer::ALL).expect("contract");
        assert_eq!(rows.len(), TableKind::ALL.len() * LookupLayer::ALL.len());
        for pair in rows.windows(2) {
            assert_eq!(
                pair[0].report, pair[1].report,
                "{}/{} and {}/{} must compute identical farms",
                pair[0].backend, pair[0].lookup, pair[1].backend, pair[1].lookup
            );
        }
        for row in &rows {
            assert_eq!(row.report.config.table, row.backend);
            assert_eq!(row.report.config.lookup, row.lookup);
            assert!(row.wall_ms > 0.0);
            assert!(row.host_rps > 0.0);
        }
    }

    #[test]
    fn paged_access_rate_beats_the_direct_table_search() {
        // The acceptance bar of the page-map layer, mirroring the
        // dispatch-cost gate: on memo-defeating in-bounds traffic the
        // shift+mask probe must beat the flat table's binary search by
        // 1.5x with room to spare even on noisy CI hosts. (The
        // measurement itself asserts both layers drove the substrate
        // identically.)
        let cost = measure_access_cost(3);
        assert!(
            cost.speedup() >= 1.5,
            "paged lookup must be ≥1.5× the table search: table {:.1} vs paged {:.1} Maccess/s ({:.2}×)",
            cost.table.maccess_per_s,
            cost.paged.maccess_per_s,
            cost.speedup()
        );
    }

    #[test]
    fn unit_churn_measures_both_flavours() {
        let churn = measure_unit_churn(32, 4);
        assert_eq!(churn.machines, 32);
        assert!(churn.arena_ns > 0.0);
        assert!(churn.boxed_ns > 0.0);
        assert!(churn.speedup() > 0.0);
    }

    #[test]
    fn cached_image_boot_is_at_least_5x_faster_than_cold_compile() {
        // The acceptance bar of the shared-image layer. The real margin
        // is far larger (compilation runs the whole front end + lowering
        // while a cached boot only loads globals), so 5× holds with room
        // even on noisy CI hosts.
        let boot = measure_boot_cost(12);
        assert!(
            boot.speedup() >= 5.0,
            "cached-image boot must be ≥5× faster: cold {:.0}ns vs cached {:.0}ns ({:.1}×)",
            boot.cold_ns,
            boot.cached_ns,
            boot.speedup()
        );
    }

    #[test]
    fn checkpoint_restore_is_at_least_5x_faster_than_cold_boot_replay() {
        // The acceptance bar of the boot-checkpoint layer, mirroring
        // the PR 2 boot-cost gate: restoring the frozen Pine snapshot
        // must beat re-running boot plus mailbox replay by 5x with
        // room to spare even on noisy CI hosts.
        let cost = measure_restart_cost(12);
        assert!(
            cost.speedup() >= 5.0,
            "checkpoint restore must be ≥5× faster: cold {:.0}ns vs restore {:.0}ns ({:.1}×)",
            cost.cold_ns,
            cost.restore_ns,
            cost.speedup()
        );
    }

    #[test]
    fn violation_throughput_measures_a_manufactured_storm() {
        let v = measure_violation_throughput(2);
        assert!(v.minstr_per_s > 0.0);
        // Every loop iteration must actually violate: the fuel-side
        // instruction count confirms the loop ran end to end.
        assert!(v.instrs > VIOLATION_LOOP_ITERS as u64);
    }

    #[test]
    fn restart_cost_section_is_created_in_old_records() {
        // A record rendered before the checkpoint layer (no
        // restart_cost_runs section) gains one on append.
        let old = concat!(
            "{\n  \"benchmark\": \"farm\",\n",
            "  \"mode_sweep_runs\": [\n",
            "    {\"cells\": 150}\n",
            "  ],\n}\n"
        );
        let restart = RestartCost {
            cold_ns: 10.0,
            cold_ci95_ns: 0.0,
            restore_ns: 1.0,
            restore_ci95_ns: 0.0,
            reps: 1,
        };
        let violation = ViolationThroughput {
            minstr_per_s: 1.0,
            minstr_ci95: 0.0,
            instrs: 1,
            reps: 1,
        };
        let row = restart_cost_row_json(&restart, &violation, "fp-old-1");
        let grown = append_restart_cost_row(old, &row).expect("create section");
        assert_eq!(extract_restart_cost_rows(&grown), vec![row.clone()]);
        assert_eq!(extract_mode_sweep_rows(&grown).len(), 1);
        // Re-appending the same fingerprint upserts in place; a fresh
        // fingerprint extends the now-existing section.
        let same = append_restart_cost_row(&grown, &row).expect("upsert");
        assert_eq!(extract_restart_cost_rows(&same).len(), 1);
        let row2 = restart_cost_row_json(&restart, &violation, "fp-old-2");
        let grown2 = append_restart_cost_row(&grown, &row2).expect("append");
        assert_eq!(extract_restart_cost_rows(&grown2).len(), 2);
        // dispatch_cost_runs gains a section in old records the same way.
        let drow = dispatch_cost_row_json(
            &DispatchCost {
                baseline: violation,
                fused: violation,
                native: violation,
                reps: 1,
            },
            "fp-old-d1",
        );
        let dgrown = append_dispatch_cost_row(&grown2, &drow).expect("create dispatch section");
        assert_eq!(extract_dispatch_cost_rows(&dgrown), vec![drow.clone()]);
        assert_eq!(extract_restart_cost_rows(&dgrown).len(), 2);
        assert_eq!(extract_mode_sweep_rows(&dgrown).len(), 1);
        let dsame = append_dispatch_cost_row(&dgrown, &drow).expect("upsert dispatch");
        assert_eq!(extract_dispatch_cost_rows(&dsame).len(), 1);
        // ... and native_cost_runs.
        let nrow = native_cost_row_json(
            &NativeCost {
                baseline: violation,
                fused: violation,
                native: violation,
                reps: 1,
            },
            "fp-old-n1",
        );
        let ngrown = append_native_cost_row(&dsame, &nrow).expect("create native section");
        assert_eq!(extract_native_cost_rows(&ngrown), vec![nrow.clone()]);
        assert_eq!(extract_dispatch_cost_rows(&ngrown).len(), 1);
        let nsame = append_native_cost_row(&ngrown, &nrow).expect("upsert native");
        assert_eq!(extract_native_cost_rows(&nsame).len(), 1);
        // ... and mem_cost_runs.
        let mrow = mem_cost_row_json(
            &NativeCost {
                baseline: violation,
                fused: violation,
                native: violation,
                reps: 1,
            },
            "fp-old-m1",
        );
        let mgrown = append_mem_cost_row(&nsame, &mrow).expect("create mem section");
        assert_eq!(extract_mem_cost_rows(&mgrown), vec![mrow.clone()]);
        assert_eq!(extract_native_cost_rows(&mgrown).len(), 1);
        assert_eq!(extract_mode_sweep_rows(&mgrown).len(), 1);
        let msame = append_mem_cost_row(&mgrown, &mrow).expect("upsert mem");
        assert_eq!(extract_mem_cost_rows(&msame).len(), 1);
    }

    #[test]
    fn fingerprints_are_stable_and_shape_sensitive() {
        // Identical inputs reproduce the fingerprint (idempotent
        // reruns); any shape change reshapes it (fresh trajectory row).
        assert_eq!(dispatch_cost_fingerprint(8), dispatch_cost_fingerprint(8));
        assert_ne!(dispatch_cost_fingerprint(8), dispatch_cost_fingerprint(24));
        assert_eq!(
            mode_sweep_fingerprint(150, 17, 4),
            mode_sweep_fingerprint(150, 17, 4)
        );
        assert_ne!(
            mode_sweep_fingerprint(150, 17, 4),
            mode_sweep_fingerprint(150, 17, 8)
        );
        assert_eq!(restart_cost_fingerprint(24), restart_cost_fingerprint(24));
        assert_ne!(restart_cost_fingerprint(24), restart_cost_fingerprint(8));
        assert_eq!(access_cost_fingerprint(8), access_cost_fingerprint(8));
        assert_ne!(access_cost_fingerprint(8), access_cost_fingerprint(24));
        assert_eq!(native_cost_fingerprint(8), native_cost_fingerprint(8));
        assert_ne!(native_cost_fingerprint(8), native_cost_fingerprint(24));
        assert_eq!(mem_cost_fingerprint(8), mem_cost_fingerprint(8));
        assert_ne!(mem_cost_fingerprint(8), mem_cost_fingerprint(24));
        assert_eq!(conn_cost_fingerprint(8), conn_cost_fingerprint(8));
        assert_ne!(conn_cost_fingerprint(8), conn_cost_fingerprint(24));
        assert_ne!(
            native_cost_fingerprint(8),
            dispatch_cost_fingerprint(8),
            "the two loop benches must never collide"
        );
        assert_ne!(
            mem_cost_fingerprint(8),
            native_cost_fingerprint(8),
            "the copy loop and the pure-local loop must never collide"
        );
        // Concatenation ambiguity is broken by the separator.
        assert_ne!(fingerprint_of(&["ab", "c"]), fingerprint_of(&["a", "bc"]));
    }

    #[test]
    fn thread_scaling_rows_carry_confidence_intervals() {
        let rows = thread_scaling(4, &[1, 2], 3).expect("determinism");
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert_eq!(row.reps, 3);
            assert!(row.wall_ms > 0.0);
            assert!(row.host_rps > 0.0);
            assert!(row.wall_ms_ci95 >= 0.0);
        }
    }
}
