//! Regenerates the qualitative security & resilience results of §4.
fn main() {
    println!("Security & resilience matrix (attack behaviour per compiler version):\n");
    print!("{}", foc_bench::render_security_matrix());
}
