//! Regenerates Figure 6: Mutt request processing times.
fn main() {
    let rows = foc_bench::fig6_mutt();
    print!(
        "{}",
        foc_bench::render_rpt_table(
            "Figure 6: Request Processing Times for Mutt (milliseconds)",
            &rows
        )
    );
}
