//! The connection-edge bench: what serving the farm over the simulated
//! socket layer costs, and whether the farm meets its connection-level
//! SLO. One Apache farm is timed over four transports — the in-process
//! fast path, clean whole-frame sockets, a 3-byte slow-loris drip, and
//! mid-frame disconnects with retransmission — with every run asserted
//! to produce the *same* `FarmReport` (the edge is a transport axis,
//! never a content axis), so the wall-time spread isolates framing,
//! buffer state machines, and readiness-loop overhead.
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin conn_cost [reps]` — full
//!   measurement (default 12 reps per edge); upserts one row into
//!   `BENCH_farm.json`'s `conn_cost_runs` trajectory (creating the
//!   section in records that predate it). Rows are keyed by a
//!   fingerprint of the measurement shape, so re-running the bin on an
//!   unchanged tree replaces its row instead of duplicating it.
//! * `cargo run --release -p foc-bench --bin conn_cost -- --check` —
//!   CI gate, three assertions:
//!   1. every socket scenario reproduces the in-process report
//!      byte-for-byte (asserted inside the measurement);
//!   2. a 100k-connection smoke farm — 256 servers × 404 connection
//!      attempts each, accept-queue floods included — serves every
//!      request;
//!   3. the connection-level SLO holds: ≥ `SLO_FLOOR_BP` basis points
//!      of completed requests land within 4× the median service
//!      latency.

use foc_bench::check::{check_fail, parse_reps, record_farm_row};
use foc_bench::farm_report::{
    append_conn_cost_row, conn_cost_fingerprint, conn_cost_row_json, conn_cost_smoke,
    measure_conn_cost, ConnCost, CONN_SLO_K, CONN_SMOKE_FLOOD, CONN_SMOKE_POOL,
    CONN_SMOKE_REQUESTS, CONN_SMOKE_SERVERS,
};

/// The CI bar on the socket edge's overhead: clean socket transport
/// must stay within this factor of the in-process wall time. The
/// measured overhead is well under 2× on the development host (the
/// framing layer moves a few hundred bytes per request through bounded
/// buffers); 4× holds with room on noisy CI hosts.
const OVERHEAD_CEILING: f64 = 4.0;

/// The CI floor on the connection-level SLO, in basis points: at least
/// 75% of completed requests within 4× the median service latency.
/// The Apache workload's measured value sits above 90% (the heavy tail
/// is the big-file GET plus attack recoveries); 7500 leaves room for
/// workload drift without letting a latency regression hide.
const SLO_FLOOR_BP: u64 = 7_500;

fn print_measurement(cost: &ConnCost) {
    eprintln!(
        "  in-process       {:>7.2} ms ± {:.2} ({:.0} req/s host, {} servers x {} reqs, {} reps)",
        cost.in_process.wall_ms,
        cost.in_process.wall_ms_ci95,
        cost.in_process.host_rps,
        cost.servers,
        cost.requests,
        cost.reps
    );
    eprintln!(
        "  socket           {:>7.2} ms ± {:.2} ({:.0} req/s host, {:.2}x in-process)",
        cost.socket.wall_ms,
        cost.socket.wall_ms_ci95,
        cost.socket.host_rps,
        cost.socket_overhead()
    );
    eprintln!(
        "  socket-slow-loris{:>7.2} ms ± {:.2} ({:.0} req/s host)",
        cost.slow_loris.wall_ms, cost.slow_loris.wall_ms_ci95, cost.slow_loris.host_rps
    );
    eprintln!(
        "  socket-disconnect{:>7.2} ms ± {:.2} ({:.0} req/s host)",
        cost.disconnect.wall_ms, cost.disconnect.wall_ms_ci95, cost.disconnect.host_rps
    );
    eprintln!(
        "  SLO: {} bp of completed requests within {}x median service latency",
        cost.slo_within_bp, CONN_SLO_K
    );
}

fn run_check() -> Result<(), String> {
    eprintln!("conn_cost --check: socket edge vs in-process, report equality enforced ...");
    let cost = measure_conn_cost(4);
    print_measurement(&cost);
    if cost.socket_overhead() > OVERHEAD_CEILING {
        return Err(format!(
            "socket transport overhead blew its ceiling: {:.2} vs {:.2} ms is {:.2}x \
             in-process, ceiling {OVERHEAD_CEILING}x",
            cost.socket.wall_ms,
            cost.in_process.wall_ms,
            cost.socket_overhead()
        ));
    }
    if cost.slo_within_bp < SLO_FLOOR_BP {
        return Err(format!(
            "connection-level SLO broke: {} bp of completed requests within {}x median \
             service latency, floor {} bp",
            cost.slo_within_bp, CONN_SLO_K, SLO_FLOOR_BP
        ));
    }
    let connections_per_server = CONN_SMOKE_POOL + CONN_SMOKE_FLOOD;
    eprintln!(
        "conn_cost --check: connection smoke, {} servers x {} connection attempts ...",
        CONN_SMOKE_SERVERS, connections_per_server
    );
    let (report, connections) = conn_cost_smoke();
    eprintln!(
        "  {} simulated connections, {}/{} requests completed, {:.1} ms",
        connections, report.stats.completed, report.stats.requests, report.host_wall_ms
    );
    if connections < 100_000 {
        return Err(format!(
            "connection smoke opened only {connections} connections; the gate requires 100k+"
        ));
    }
    let expected = (CONN_SMOKE_SERVERS * CONN_SMOKE_REQUESTS) as u64;
    if report.stats.requests != expected {
        return Err(format!(
            "connection smoke issued {} requests, want {expected}",
            report.stats.requests
        ));
    }
    if report.stats.completed + report.stats.dropped != report.stats.requests {
        return Err(format!(
            "connection smoke lost requests: {} completed + {} dropped != {} issued",
            report.stats.completed, report.stats.dropped, report.stats.requests
        ));
    }
    println!(
        "conn_cost --check OK ({:.2}x socket overhead, {} bp SLO, {} connections)",
        cost.socket_overhead(),
        cost.slo_within_bp,
        connections
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        if let Err(msg) = run_check() {
            check_fail("conn_cost --check", &msg);
        }
        return;
    }
    let reps = parse_reps("conn_cost", &args, 12);
    let cost = measure_conn_cost(reps);
    print_measurement(&cost);
    let row = conn_cost_row_json(&cost, &conn_cost_fingerprint(reps));
    record_farm_row("conn_cost", &row, append_conn_cost_row);
}
