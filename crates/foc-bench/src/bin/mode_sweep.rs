//! The mode search-space sweep driver: runs the full recovery-mode ×
//! value-sequence × fuel × table-backend grid over all five servers and
//! the benign + §4/§5.1 attack input library, classifies every run into
//! the stable outcome taxonomy, and maintains the committed matrix
//! record (`SWEEP_matrix.json` + rendered `SWEEP_matrix.md`).
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin mode_sweep` — full grid.
//!   Writes the matrix after every chunk of cells, so an interrupted
//!   run leaves a valid partial file; on completion renders the
//!   markdown matrix and appends a wall-time row to `BENCH_farm.json`'s
//!   `mode_sweep_runs` trajectory.
//! * `... -- --resume` — reuses every cell of the existing
//!   `SWEEP_matrix.json` whose fingerprint matches the current sweep
//!   contract (and whose file-level reference transcripts match a fresh
//!   computation), runs only the missing cells, and produces a file
//!   byte-identical to a from-scratch run.
//! * `... -- --check` — CI gate: runs the pinned sub-grid fresh and
//!   diffs outcome classes and transcripts against the committed
//!   matrix. Any semantic drift in the substrate exits nonzero with a
//!   one-line diagnostic.
//! * `... -- --threads N` — worker threads (default 4).

use std::time::Instant;

use foc_bench::check::check_fail;
use foc_bench::farm_report::{append_mode_sweep_row, mode_sweep_fingerprint, mode_sweep_row_json};
use foc_bench::sweep_report::{
    diff_against_committed, merge_cells, parse_matrix_json, render_matrix_json,
    render_matrix_markdown, split_resume, MATRIX_MD_PATH, MATRIX_PATH,
};
use foc_servers::sweep::{reference_transcripts, run_cells, SweepGrid, SweepMatrix, INPUT_LIBRARY};

/// Cells per incremental chunk: small enough that an interrupt loses
/// little work, large enough that the work-stealing pool stays busy.
const CHUNK_CELLS: usize = 12;

/// Inputs a sweep worker runs before yielding its cell back.
const SLICE_INPUTS: usize = 4;

fn run_check(threads: usize) -> Result<(), String> {
    let committed = std::fs::read_to_string(MATRIX_PATH)
        .map_err(|e| format!("cannot read committed {MATRIX_PATH}: {e}"))?;
    let committed = parse_matrix_json(&committed)?;
    let grid = SweepGrid::pinned();
    let mut cells = grid.cells();
    // Plus the pinned manufactured-loop fuel-out cell: a constant-1
    // sequence MC scan exercises the batched violation path at full
    // storm intensity, and its transcript must still match the
    // committed matrix byte for byte.
    cells.extend(SweepGrid::pinned_extra_cells());
    eprintln!(
        "mode_sweep --check: pinned sub-grid, {} cells x {} inputs ...",
        cells.len(),
        INPUT_LIBRARY.len()
    );
    let reference = reference_transcripts();
    let fresh = run_cells(&cells, &reference, threads, SLICE_INPUTS);
    let compared = diff_against_committed(&committed, &reference, &fresh)?;
    println!(
        "mode_sweep --check OK ({} cells, {compared} runs match the committed matrix)",
        cells.len()
    );
    Ok(())
}

fn run_full(threads: usize, resume: bool) {
    let grid = SweepGrid::full();
    let all = grid.cells();
    let started = Instant::now();
    let reference = reference_transcripts();

    let parsed = if resume {
        match std::fs::read_to_string(MATRIX_PATH) {
            Ok(text) => match parse_matrix_json(&text) {
                Ok(parsed) => Some(parsed),
                Err(e) => {
                    eprintln!("mode_sweep: ignoring unreadable {MATRIX_PATH}: {e}");
                    None
                }
            },
            Err(_) => None,
        }
    } else {
        None
    };
    let (reused, missing) = split_resume(&all, parsed.as_ref(), &reference);
    eprintln!(
        "mode_sweep: {} cells x {} inputs ({} reused, {} to run, {} threads)",
        all.len(),
        INPUT_LIBRARY.len(),
        reused.len(),
        missing.len(),
        threads
    );

    // Run the missing cells chunk by chunk, writing the partial matrix
    // after each chunk so an interrupted sweep can resume.
    let mut done = reused;
    for (i, chunk) in missing.chunks(CHUNK_CELLS).enumerate() {
        let fresh = run_cells(chunk, &reference, threads, SLICE_INPUTS);
        done.extend(fresh);
        // Partial file: completed cells only, canonical grid order.
        let completed: Vec<_> = all
            .iter()
            .filter(|spec| done.iter().any(|c| c.cell == **spec))
            .copied()
            .collect();
        let partial = SweepMatrix {
            grid: grid.clone(),
            reference: reference.clone(),
            cells: merge_cells(&completed, vec![done.clone()]),
        };
        std::fs::write(MATRIX_PATH, render_matrix_json(&partial)).expect("write matrix");
        eprintln!(
            "  chunk {}/{}: {} / {} cells done ({:.0?})",
            i + 1,
            missing.len().div_ceil(CHUNK_CELLS),
            partial.cells.len(),
            all.len(),
            started.elapsed()
        );
    }

    let resumed_cells = all.len() - missing.len();
    let matrix = SweepMatrix {
        grid,
        reference,
        cells: merge_cells(&all, vec![done]),
    };
    std::fs::write(MATRIX_PATH, render_matrix_json(&matrix)).expect("write matrix");
    std::fs::write(MATRIX_MD_PATH, render_matrix_markdown(&matrix)).expect("write markdown");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Class histogram, for the console.
    let mut counts = std::collections::BTreeMap::new();
    for cell in &matrix.cells {
        for run in &cell.runs {
            *counts.entry(run.class.name()).or_insert(0usize) += 1;
        }
    }
    for (class, n) in &counts {
        println!("  {class:<22} {n:>5}");
    }

    // Record the sweep's own cost in the farm trajectory. The
    // fingerprint keys the row to the sweep shape + compiled images, so
    // re-running on an unchanged tree upserts instead of duplicating.
    let row = mode_sweep_row_json(
        matrix.cells.len(),
        resumed_cells,
        INPUT_LIBRARY.len(),
        threads,
        wall_ms,
        &mode_sweep_fingerprint(matrix.cells.len(), INPUT_LIBRARY.len(), threads),
    );
    match std::fs::read_to_string("BENCH_farm.json") {
        Ok(bench) => match append_mode_sweep_row(&bench, &row) {
            Ok(updated) => {
                std::fs::write("BENCH_farm.json", updated).expect("write BENCH_farm.json");
                println!("appended mode_sweep row to BENCH_farm.json");
            }
            Err(e) => eprintln!("mode_sweep: {e}"),
        },
        Err(e) => eprintln!("mode_sweep: cannot read BENCH_farm.json: {e}"),
    }
    println!(
        "wrote {MATRIX_PATH} + {MATRIX_MD_PATH} ({} cells, {:.1}s)",
        matrix.cells.len(),
        wall_ms / 1e3
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 4usize;
    let mut check = false;
    let mut resume = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--resume" => resume = true,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => {
                    eprintln!("mode_sweep: --threads needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "mode_sweep: unknown argument {other:?} (--check, --resume, --threads N)"
                );
                std::process::exit(2);
            }
        }
    }
    if check {
        if let Err(msg) = run_check(threads) {
            check_fail("mode_sweep --check", &msg);
        }
        return;
    }
    run_full(threads, resume);
}
