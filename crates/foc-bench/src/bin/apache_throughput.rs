//! Regenerates the §4.3.2 throughput-under-attack experiment.
fn main() {
    let results = foc_bench::apache_throughput(400);
    println!("Apache throughput under attack (50% attack URLs, 50% legitimate):\n");
    print!("{}", foc_bench::render_throughput(&results));
}
