//! Regenerates the §4.7 discussion: restart-on-crash supervision versus
//! failure-oblivious execution when the error trigger persists in the
//! environment (poisoned mailbox, blank config line, wake-up error,
//! malicious startup folder).
use foc_memory::Mode;
use foc_servers::supervisor;

fn main() {
    println!("Restart supervision with persistent triggers (§4.7)");
    println!(
        "(supervisor budget: {} restarts)\n",
        supervisor::RESTART_BUDGET
    );
    println!(
        "{:<10} {:<18} {:>9} {:>10}",
        "server", "version", "restarts", "recovered"
    );
    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        for s in supervisor::study(mode) {
            println!(
                "{:<10} {:<18} {:>9} {:>10}",
                s.server,
                s.mode.name(),
                s.attempts,
                if s.recovered { "yes" } else { "NO" }
            );
        }
    }
    println!();
    println!("Bounds Check + restart never recovers: the trigger is waiting");
    println!("for every restarted process during initialization. The");
    println!("failure-oblivious versions never need the supervisor at all.");
}
