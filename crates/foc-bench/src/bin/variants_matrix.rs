//! Regenerates the §5.1 variants experiment: do boundless memory blocks
//! and redirection also keep the servers running acceptably?
fn main() {
    println!("§5.1 variants: server survives its attack and keeps serving\n");
    println!(
        "{:<20} {:>8} {:>8} {:>10} {:>6} {:>6}",
        "variant", "Pine", "Apache", "Sendmail", "MC", "Mutt"
    );
    for (mode, cells) in foc_bench::variants_matrix() {
        let mark = |ok: bool| if ok { "yes" } else { "NO" };
        println!(
            "{:<20} {:>8} {:>8} {:>10} {:>6} {:>6}",
            mode.name(),
            mark(cells[0].1),
            mark(cells[1].1),
            mark(cells[2].1),
            mark(cells[3].1),
            mark(cells[4].1)
        );
    }
}
