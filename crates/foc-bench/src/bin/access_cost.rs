//! The access-cost bench: in-bounds load/store rate of the memory
//! substrate under the page-map lookup layer versus the direct
//! object-table search. The traffic is a word-at-a-time copy between
//! two multi-page heap buffers behind a few hundred smaller
//! allocations — every access in bounds, alternating units on every
//! step, which defeats the flat table's last-hit memo so the table
//! side pays its structural search on each access while the paged
//! side answers with one shift+mask probe. Both spaces are asserted
//! to have driven the substrate identically, so the ratio isolates
//! lookup cost alone.
//!
//! Under `FOC_EXEC_TIER=native` the bin additionally measures the
//! *guest-level* twin of that copy traffic: a checked copy loop whose
//! accesses the native tier admits into memory-spanning `LocalsBlock`s
//! and resolves in-block through the placement probe
//! (`GIdxLoad`/`GIdxStore`), versus the superinstruction tier paying a
//! full dispatch round per access. The tier axis is read through the
//! unified strict env path ([`foc_compiler::ExecTier::from_env`], the
//! same parse `BootSpec::from_env` delegates to), so an unknown
//! `FOC_EXEC_TIER` spelling dies loudly instead of silently measuring
//! the default tier.
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin access_cost [reps]` —
//!   full measurement (default 24 reps per layer); upserts one row
//!   into `BENCH_farm.json`'s `access_cost_runs` trajectory (creating
//!   the section in records that predate it), plus one `mem_cost_runs`
//!   row under the native tier. Rows are keyed by a fingerprint of the
//!   measurement shape, so re-running the bin on an unchanged tree
//!   replaces its row instead of duplicating it.
//! * `cargo run --release -p foc-bench --bin access_cost -- --check`
//!   — CI gate: asserts the paged layer sustains ≥1.5× the table
//!   layer's access rate, and — under the native tier — that
//!   memory-spanning block execution sustains ≥1.5× the super tier's
//!   rate on the guest copy loop. Exits nonzero with a one-line
//!   diagnostic otherwise.

use foc_bench::check::{check_fail, check_gate, parse_reps, record_farm_row};
use foc_bench::farm_report::{
    access_cost_fingerprint, access_cost_row_json, append_access_cost_row, append_mem_cost_row,
    measure_access_cost, measure_mem_cost, mem_cost_fingerprint, mem_cost_row_json, AccessCost,
    NativeCost,
};

/// The CI bar: the page map must beat the direct table search by this
/// factor on memo-defeating in-bounds traffic. The paged probe is one
/// shift+mask and a bounds compare against a ~9-step binary search
/// (measured well above 2× on the development host), so 1.5× holds
/// with room on noisy CI hosts.
const GATE: f64 = 1.5;

/// The CI bar for the guest copy loop under the native tier: in-block
/// access resolution — no operand-stack round trip, no per-access
/// dispatch round — must beat the superinstruction tier by this
/// factor. The measured margin is well above this floor on the
/// development host; 1.5× holds with room on noisy CI hosts.
const MEM_GATE: f64 = 1.5;

fn print_measurement(cost: &AccessCost) {
    eprintln!(
        "  table lookup {:>8.1} Maccess/s ± {:.1} ({} accesses/run, {} reps)",
        cost.table.maccess_per_s, cost.table.maccess_ci95, cost.accesses, cost.reps
    );
    eprintln!(
        "  paged lookup {:>8.1} Maccess/s ± {:.1}  ({:.2}x table)",
        cost.paged.maccess_per_s,
        cost.paged.maccess_ci95,
        cost.speedup()
    );
}

fn print_mem_measurement(cost: &NativeCost) {
    eprintln!(
        "  copy loop, baseline tier {:>8.1} Minstr/s ± {:.1} ({} instrs/run, {} reps)",
        cost.baseline.minstr_per_s, cost.baseline.minstr_ci95, cost.baseline.instrs, cost.reps
    );
    eprintln!(
        "  copy loop, super tier    {:>8.1} Minstr/s ± {:.1}",
        cost.fused.minstr_per_s, cost.fused.minstr_ci95
    );
    eprintln!(
        "  copy loop, native tier   {:>8.1} Minstr/s ± {:.1}  ({:.2}x super, {:.2}x baseline)",
        cost.native.minstr_per_s,
        cost.native.minstr_ci95,
        cost.speedup_over_super(),
        cost.speedup_over_baseline()
    );
}

fn run_check(native: bool) -> Result<(), String> {
    eprintln!("access_cost --check: page map vs direct table search ...");
    let cost = measure_access_cost(8);
    print_measurement(&cost);
    check_gate(
        "paged lookup over the table search's in-bounds access rate",
        cost.speedup(),
        GATE,
        &format!(
            "{:.1} vs {:.1} Maccess/s",
            cost.paged.maccess_per_s, cost.table.maccess_per_s
        ),
    )?;
    if native {
        eprintln!("access_cost --check: memory-spanning blocks on the guest copy loop ...");
        let mem = measure_mem_cost(8);
        print_mem_measurement(&mem);
        if mem.native.instrs != mem.fused.instrs || mem.native.instrs != mem.baseline.instrs {
            return Err(format!(
                "tiers must retire identical instruction counts on the copy loop: \
                 baseline {} vs super {} vs native {}",
                mem.baseline.instrs, mem.fused.instrs, mem.native.instrs
            ));
        }
        check_gate(
            "memory-spanning block execution over the superinstruction tier",
            mem.speedup_over_super(),
            MEM_GATE,
            &format!(
                "{:.1} vs {:.1} Minstr/s",
                mem.native.minstr_per_s, mem.fused.minstr_per_s
            ),
        )?;
        println!(
            "access_cost --check OK ({:.2}x paged speedup, {:.2}x native copy-loop speedup)",
            cost.speedup(),
            mem.speedup_over_super()
        );
        return Ok(());
    }
    println!(
        "access_cost --check OK ({:.2}x paged speedup, {:.1} Maccess/s paged)",
        cost.speedup(),
        cost.paged.maccess_per_s
    );
    Ok(())
}

fn main() {
    // Read the tier axis once, up front, through the strict parse: a
    // typo'd FOC_EXEC_TIER exits 2 here rather than silently gating
    // (or recording) the wrong measurement.
    let native = foc_compiler::ExecTier::from_env() == foc_compiler::ExecTier::Native;
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        if let Err(msg) = run_check(native) {
            check_fail("access_cost --check", &msg);
        }
        return;
    }
    let reps = parse_reps("access_cost", &args, 24);
    let cost = measure_access_cost(reps);
    print_measurement(&cost);

    let row = access_cost_row_json(&cost, &access_cost_fingerprint(reps));
    record_farm_row("access_cost", &row, append_access_cost_row);

    if native {
        let mem = measure_mem_cost(reps);
        print_mem_measurement(&mem);
        let row = mem_cost_row_json(&mem, &mem_cost_fingerprint(reps));
        record_farm_row("access_cost", &row, append_mem_cost_row);
    }
}
