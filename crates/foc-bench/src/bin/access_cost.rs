//! The access-cost bench: in-bounds load/store rate of the memory
//! substrate under the page-map lookup layer versus the direct
//! object-table search. The traffic is a word-at-a-time copy between
//! two multi-page heap buffers behind a few hundred smaller
//! allocations — every access in bounds, alternating units on every
//! step, which defeats the flat table's last-hit memo so the table
//! side pays its structural search on each access while the paged
//! side answers with one shift+mask probe. Both spaces are asserted
//! to have driven the substrate identically, so the ratio isolates
//! lookup cost alone.
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin access_cost [reps]` —
//!   full measurement (default 24 reps per layer); upserts one row
//!   into `BENCH_farm.json`'s `access_cost_runs` trajectory (creating
//!   the section in records that predate it). Rows are keyed by a
//!   fingerprint of the measurement shape, so re-running the bin on an
//!   unchanged tree replaces its row instead of duplicating it.
//! * `cargo run --release -p foc-bench --bin access_cost -- --check`
//!   — CI gate: asserts the paged layer sustains ≥1.5× the table
//!   layer's access rate. Exits nonzero with a one-line diagnostic
//!   otherwise.

use foc_bench::check::{check_fail, check_gate, parse_reps, record_farm_row};
use foc_bench::farm_report::{
    access_cost_fingerprint, access_cost_row_json, append_access_cost_row, measure_access_cost,
    AccessCost,
};

/// The CI bar: the page map must beat the direct table search by this
/// factor on memo-defeating in-bounds traffic. The paged probe is one
/// shift+mask and a bounds compare against a ~9-step binary search
/// (measured well above 2× on the development host), so 1.5× holds
/// with room on noisy CI hosts.
const GATE: f64 = 1.5;

fn print_measurement(cost: &AccessCost) {
    eprintln!(
        "  table lookup {:>8.1} Maccess/s ± {:.1} ({} accesses/run, {} reps)",
        cost.table.maccess_per_s, cost.table.maccess_ci95, cost.accesses, cost.reps
    );
    eprintln!(
        "  paged lookup {:>8.1} Maccess/s ± {:.1}  ({:.2}x table)",
        cost.paged.maccess_per_s,
        cost.paged.maccess_ci95,
        cost.speedup()
    );
}

fn run_check() -> Result<(), String> {
    eprintln!("access_cost --check: page map vs direct table search ...");
    let cost = measure_access_cost(8);
    print_measurement(&cost);
    check_gate(
        "paged lookup over the table search's in-bounds access rate",
        cost.speedup(),
        GATE,
        &format!(
            "{:.1} vs {:.1} Maccess/s",
            cost.paged.maccess_per_s, cost.table.maccess_per_s
        ),
    )?;
    println!(
        "access_cost --check OK ({:.2}x paged speedup, {:.1} Maccess/s paged)",
        cost.speedup(),
        cost.paged.maccess_per_s
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        if let Err(msg) = run_check() {
            check_fail("access_cost --check", &msg);
        }
        return;
    }
    let reps = parse_reps("access_cost", &args, 24);
    let cost = measure_access_cost(reps);
    print_measurement(&cost);

    let row = access_cost_row_json(&cost, &access_cost_fingerprint(reps));
    record_farm_row("access_cost", &row, append_access_cost_row);
}
