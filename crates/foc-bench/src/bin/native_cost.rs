//! The native-cost bench: interpretation rate of a violation-free
//! dispatch-bound loop (fusible local arithmetic plus loop control,
//! nothing else) under the superinstruction tier versus the native
//! AOT-region tier. Every tier retires the same guest instruction count
//! — a lowered region pre-charges exactly the baseline accounting of
//! the run it replaces — so the ratio isolates what remains of the
//! dispatch ceiling after fusion: one fetch/decode/match round plus
//! fuel, stats, and pc bookkeeping per fused pattern, all of which
//! region execution folds into a single per-region entry.
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin native_cost [reps]` —
//!   full measurement (default 24 reps per tier); upserts one row into
//!   `BENCH_farm.json`'s `native_cost_runs` trajectory (creating the
//!   section in records that predate it). Rows are keyed by a
//!   fingerprint of the loop's compiled image under every tier + shape,
//!   so re-running the bin on an unchanged tree replaces its row
//!   instead of duplicating it.
//! * `cargo run --release -p foc-bench --bin native_cost -- --check` —
//!   CI gate: asserts region execution interprets the loop at ≥2× the
//!   superinstruction tier's rate. Exits nonzero with a one-line
//!   diagnostic otherwise.

use foc_bench::check::{check_fail, check_gate, parse_reps, record_farm_row};
use foc_bench::farm_report::{
    append_native_cost_row, measure_native_cost, native_cost_fingerprint, native_cost_row_json,
    NativeCost,
};

/// The CI bar: native region execution must beat the superinstruction
/// tier by this factor on the violation-free loop. A region entry
/// replaces every per-pattern dispatch round of its straight-line run,
/// so the measured margin is well above this floor on the development
/// host; 2× holds with room on noisy CI hosts.
const GATE: f64 = 2.0;

fn print_measurement(cost: &NativeCost) {
    eprintln!(
        "  baseline tier {:>8.1} Minstr/s ± {:.1} ({} instrs/run, {} reps)",
        cost.baseline.minstr_per_s, cost.baseline.minstr_ci95, cost.baseline.instrs, cost.reps
    );
    eprintln!(
        "  super tier    {:>8.1} Minstr/s ± {:.1}",
        cost.fused.minstr_per_s, cost.fused.minstr_ci95
    );
    eprintln!(
        "  native tier   {:>8.1} Minstr/s ± {:.1}  ({:.2}x super, {:.2}x baseline)",
        cost.native.minstr_per_s,
        cost.native.minstr_ci95,
        cost.speedup_over_super(),
        cost.speedup_over_baseline()
    );
}

fn run_check() -> Result<(), String> {
    eprintln!("native_cost --check: superinstruction tier vs native region execution ...");
    let cost = measure_native_cost(8);
    print_measurement(&cost);
    if cost.native.instrs != cost.fused.instrs || cost.native.instrs != cost.baseline.instrs {
        return Err(format!(
            "tiers must retire identical instruction counts: \
             baseline {} vs super {} vs native {}",
            cost.baseline.instrs, cost.fused.instrs, cost.native.instrs
        ));
    }
    check_gate(
        "native region execution over the superinstruction tier",
        cost.speedup_over_super(),
        GATE,
        &format!(
            "{:.1} vs {:.1} Minstr/s",
            cost.native.minstr_per_s, cost.fused.minstr_per_s
        ),
    )?;
    println!(
        "native_cost --check OK ({:.2}x native over super, {:.1} Minstr/s native loop)",
        cost.speedup_over_super(),
        cost.native.minstr_per_s
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        if let Err(msg) = run_check() {
            check_fail("native_cost --check", &msg);
        }
        return;
    }
    let reps = parse_reps("native_cost", &args, 24);
    let cost = measure_native_cost(reps);
    print_measurement(&cost);

    let row = native_cost_row_json(&cost, &native_cost_fingerprint(reps));
    record_farm_row("native_cost", &row, append_native_cost_row);
}
