//! Regenerates Figure 5: Midnight Commander request processing times.
fn main() {
    let rows = foc_bench::fig5_mc();
    print!(
        "{}",
        foc_bench::render_rpt_table(
            "Figure 5: Request Processing Times for Midnight Commander (milliseconds)",
            &rows
        )
    );
    println!(
        "(file sizes scaled 1:{}; slowdowns are scale-invariant)",
        foc_bench::MC_SIZE_SCALE
    );
}
