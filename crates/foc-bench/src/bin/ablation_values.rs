//! Regenerates the §3 manufactured-value-sequence ablation.
fn main() {
    println!("Manufactured-value ablation: MC '/' scan over a name with no slash\n");
    println!(
        "{:<20} {:>12} {:>18}",
        "strategy", "terminates", "manufactured reads"
    );
    for r in foc_bench::ablation_values() {
        println!(
            "{:<20} {:>12} {:>18}",
            r.strategy,
            if r.terminated { "yes" } else { "HANGS" },
            r.reads
        );
    }
}
