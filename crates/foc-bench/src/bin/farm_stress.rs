//! The scale-out stress point: a thousands-of-servers farm, run once per
//! object-table backend, plus the arena-vs-seed unit-store churn
//! measurement — the standing bench row the ROADMAP asks for.
//!
//! With cached boots at microseconds, a 4096-process Apache farm is an
//! interactive measurement; this bin finds the next hot path by
//! attributing the wall-time spread between backends to bounds-lookup
//! cost (the deterministic farm results are asserted identical across
//! backends, so nothing else can differ) and by comparing the arena
//! [`foc_memory::UnitStore`] against the seed tree's boxed per-unit
//! representation at the same machine count.
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin farm_stress [servers] [requests]`
//!   — full run (defaults: 4096 servers × 4 requests, 3 reps per
//!   backend); regenerates the complete `BENCH_farm.json` so the record
//!   stays consistent with the suite sections.
//! * `cargo run --release -p foc-bench --bin farm_stress -- --check` —
//!   CI smoke mode: a miniature stress sweep (every backend under both
//!   lookup layers, the cross-cell equality check, churn measurement,
//!   JSON rendering) without writing the record. A contract violation
//!   exits nonzero with a one-line diagnostic.
//! * `... --check --table <splay|btree|flat|auto>` — same smoke
//!   restricted to one backend (the CI `TableKind` job matrix runs one
//!   backend per job; both lookup layers still run, so every matrix job
//!   keeps a cross-cell equality check).

use foc_bench::check::check_fail;
use foc_bench::farm_report::{measure_record, measure_unit_churn, stress_sweep, RecordShape};
use foc_memory::{LookupLayer, TableKind};

fn run_check(backends: &[TableKind]) -> Result<(), String> {
    eprintln!(
        "farm_stress --check: miniature stress sweep ({} backend(s) x {} layers) ...",
        backends.len(),
        LookupLayer::ALL.len()
    );
    let rows = stress_sweep(96, 3, 2, backends, &LookupLayer::ALL)?;
    if rows.len() != backends.len() * LookupLayer::ALL.len() {
        return Err(format!(
            "{} rows for {} backends x {} layers",
            rows.len(),
            backends.len(),
            LookupLayer::ALL.len()
        ));
    }
    for row in &rows {
        if row.wall_ms <= 0.0 {
            return Err(format!("{}: no wall time measured", row.backend));
        }
        if row.report.stats.completed == 0 {
            return Err(format!("{}: stress farm served nothing", row.backend));
        }
        // The serialized histogram must bound the exact percentiles it
        // summarizes (bucket tops round up, never down).
        let stats = &row.report.stats;
        if stats.service_hist.quantile(999, 1000) < stats.latency_p999 {
            return Err(format!(
                "{}: histogram p99.9 fell below the exact value",
                row.backend
            ));
        }
        if stats.service_hist.quantile(1, 2) < stats.latency_p50 {
            return Err(format!(
                "{}: histogram p50 fell below the exact value",
                row.backend
            ));
        }
        eprintln!(
            "  {:<6}/{:<5} {:.1} ms ± {:.1} ({:.0} req/s host)",
            row.backend.name(),
            row.lookup.name(),
            row.wall_ms,
            row.wall_ms_ci95,
            row.host_rps
        );
    }
    let churn = measure_unit_churn(96, 3);
    if churn.arena_ns <= 0.0 || churn.boxed_ns <= 0.0 {
        return Err("unit churn measured nothing".to_string());
    }
    eprintln!(
        "  unit churn: arena {:.0} ns vs seed boxed {:.0} ns ({:.2}x)",
        churn.arena_ns,
        churn.boxed_ns,
        churn.speedup()
    );
    println!("farm_stress --check OK ({} rows)", rows.len());
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--table <kind>` restricts the check to one backend (CI matrix).
    let mut backends: Vec<TableKind> = TableKind::ALL.to_vec();
    if let Some(at) = args.iter().position(|a| a == "--table") {
        if at + 1 >= args.len() {
            eprintln!("farm_stress: --table needs a backend name (splay|btree|flat|auto)");
            std::process::exit(2);
        }
        match args[at + 1].parse() {
            Ok(kind) => backends = vec![kind],
            Err(e) => {
                eprintln!("farm_stress: {e}");
                std::process::exit(2);
            }
        }
        args.drain(at..at + 2);
    }
    if args.iter().any(|a| a == "--check") {
        if let Err(msg) = run_check(&backends) {
            check_fail("farm_stress --check", &msg);
        }
        return;
    }
    if backends.len() != TableKind::ALL.len() {
        // The full measurement always records every backend; a lone
        // --table must not be silently ignored.
        eprintln!(
            "farm_stress: --table only applies to --check (the full run records all backends)"
        );
        std::process::exit(2);
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        // An unrecognized flag must not silently fall through to the
        // full (file-writing) measurement — `--chek` meant `--check`.
        eprintln!("farm_stress: unknown flag {flag:?} (only --check/--table are supported)");
        std::process::exit(2);
    }
    let mut shape = RecordShape::default();
    let positional: Vec<&String> = args.iter().collect();
    if let Some(arg) = positional.first() {
        match arg.parse() {
            Ok(n) if n > 0 => shape.stress_servers = n,
            _ => {
                eprintln!("farm_stress: invalid server count {arg:?} (want a positive integer)");
                std::process::exit(2);
            }
        }
    }
    if let Some(arg) = positional.get(1) {
        match arg.parse() {
            Ok(n) if n > 0 => shape.stress_requests = n,
            _ => {
                eprintln!("farm_stress: invalid request count {arg:?} (want a positive integer)");
                std::process::exit(2);
            }
        }
    }

    let path = "BENCH_farm.json";
    let previous = std::fs::read_to_string(path).ok();
    let record = match measure_record(&shape, previous.as_deref()) {
        Ok(record) => record,
        Err(msg) => check_fail("farm_stress", &msg),
    };
    for row in &record.stress {
        let s = &row.report.stats;
        println!(
            "{:<6}/{:<5} {} servers x {} requests: {:.1} ms ± {:.1}  ({:.0} req/s host, \
             hist p50/p99/p99.9 ≤ {}/{}/{} cycles)",
            row.backend.name(),
            row.lookup.name(),
            row.report.config.servers,
            row.report.config.requests_per_server,
            row.wall_ms,
            row.wall_ms_ci95,
            row.host_rps,
            s.service_hist.quantile(1, 2),
            s.service_hist.quantile(99, 100),
            s.service_hist.quantile(999, 1000),
        );
    }
    println!(
        "unit churn ({} machines): arena {:.0} ns vs seed boxed {:.0} ns ({:.2}x)",
        record.churn.machines,
        record.churn.arena_ns,
        record.churn.boxed_ns,
        record.churn.speedup()
    );

    std::fs::write(path, record.render()).expect("write BENCH_farm.json");
    println!("wrote {path}");
}
