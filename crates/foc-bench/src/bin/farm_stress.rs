//! The scale-out stress point: a thousands-of-servers farm, run once per
//! object-table backend, plus the arena-vs-seed unit-store churn
//! measurement — the standing bench row the ROADMAP asks for.
//!
//! With cached boots at microseconds, a 4096-process Apache farm is an
//! interactive measurement; this bin finds the next hot path by
//! attributing the wall-time spread between backends to bounds-lookup
//! cost (the deterministic farm results are asserted identical across
//! backends, so nothing else can differ) and by comparing the arena
//! [`foc_memory::UnitStore`] against the seed tree's boxed per-unit
//! representation at the same machine count.
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin farm_stress [servers] [requests]`
//!   — full run (defaults: 4096 servers × 4 requests, 3 reps per
//!   backend); regenerates the complete `BENCH_farm.json` so the record
//!   stays consistent with the suite sections.
//! * `cargo run --release -p foc-bench --bin farm_stress -- --check` —
//!   CI smoke mode: a miniature stress sweep (every backend, the
//!   cross-backend equality assertion, churn measurement, JSON
//!   rendering) without writing the record.

use foc_bench::farm_report::{measure_record, measure_unit_churn, stress_sweep, RecordShape};
use foc_memory::TableKind;

fn run_check() {
    eprintln!("farm_stress --check: miniature stress sweep ...");
    let rows = stress_sweep(96, 3, 2);
    assert_eq!(rows.len(), TableKind::ALL.len(), "one row per backend");
    for pair in rows.windows(2) {
        assert_eq!(
            pair[0].report, pair[1].report,
            "backends must agree on the deterministic farm results"
        );
    }
    for row in &rows {
        assert!(row.wall_ms > 0.0, "{}: no wall time measured", row.backend);
        assert!(
            row.report.stats.completed > 0,
            "{}: stress farm served nothing",
            row.backend
        );
        // The serialized histogram must bound the exact percentiles it
        // summarizes (bucket tops round up, never down).
        let stats = &row.report.stats;
        assert!(
            stats.service_hist.quantile(999, 1000) >= stats.latency_p999,
            "{}: histogram p99.9 fell below the exact value",
            row.backend
        );
        assert!(
            stats.service_hist.quantile(1, 2) >= stats.latency_p50,
            "{}: histogram p50 fell below the exact value",
            row.backend
        );
        eprintln!(
            "  {:<6} {:.1} ms ± {:.1} ({:.0} req/s host)",
            row.backend.name(),
            row.wall_ms,
            row.wall_ms_ci95,
            row.host_rps
        );
    }
    let churn = measure_unit_churn(96, 3);
    assert!(churn.arena_ns > 0.0 && churn.boxed_ns > 0.0);
    eprintln!(
        "  unit churn: arena {:.0} ns vs seed boxed {:.0} ns ({:.2}x)",
        churn.arena_ns,
        churn.boxed_ns,
        churn.speedup()
    );
    println!("farm_stress --check OK ({} backends)", rows.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        run_check();
        return;
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        // An unrecognized flag must not silently fall through to the
        // full (file-writing) measurement — `--chek` meant `--check`.
        eprintln!("farm_stress: unknown flag {flag:?} (only --check is supported)");
        std::process::exit(2);
    }
    let mut shape = RecordShape::default();
    let positional: Vec<&String> = args.iter().collect();
    if let Some(arg) = positional.first() {
        match arg.parse() {
            Ok(n) if n > 0 => shape.stress_servers = n,
            _ => {
                eprintln!("farm_stress: invalid server count {arg:?} (want a positive integer)");
                std::process::exit(2);
            }
        }
    }
    if let Some(arg) = positional.get(1) {
        match arg.parse() {
            Ok(n) if n > 0 => shape.stress_requests = n,
            _ => {
                eprintln!("farm_stress: invalid request count {arg:?} (want a positive integer)");
                std::process::exit(2);
            }
        }
    }

    let record = measure_record(&shape);
    for row in &record.stress {
        let s = &row.report.stats;
        println!(
            "{:<6} {} servers x {} requests: {:.1} ms ± {:.1}  ({:.0} req/s host, \
             hist p50/p99/p99.9 ≤ {}/{}/{} cycles)",
            row.backend.name(),
            row.report.config.servers,
            row.report.config.requests_per_server,
            row.wall_ms,
            row.wall_ms_ci95,
            row.host_rps,
            s.service_hist.quantile(1, 2),
            s.service_hist.quantile(99, 100),
            s.service_hist.quantile(999, 1000),
        );
    }
    println!(
        "unit churn ({} machines): arena {:.0} ns vs seed boxed {:.0} ns ({:.2}x)",
        record.churn.machines,
        record.churn.arena_ns,
        record.churn.boxed_ns,
        record.churn.speedup()
    );

    let path = "BENCH_farm.json";
    std::fs::write(path, record.render()).expect("write BENCH_farm.json");
    println!("wrote {path}");
}
