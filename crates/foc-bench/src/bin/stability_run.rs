//! Compressed stability study (§4.x.4): long failure-oblivious runs with
//! attacks interleaved, ending with the administrator's error-log digest
//! the paper's §3 describes.
use foc_memory::{summarize, Mode};
use foc_servers::{sendmail, workload};

fn main() {
    let mut sm = sendmail::Sendmail::boot_spec(&foc_servers::BootSpec::new(
        foc_servers::ServerKind::Sendmail,
        Mode::FailureOblivious,
    ));
    assert!(sm.usable());
    let mut delivered = 0u64;
    let mut rejected = 0u64;
    for i in 0..500u64 {
        sm.wakeup();
        if i % 7 == 0 {
            if sm.mail_from(&sendmail::attack_address(150)).outcome.ret() == Some(501) {
                rejected += 1;
            }
        } else {
            let r = sm.receive(
                &workload::sendmail_address(i),
                &workload::sendmail_address(7000 + i),
                &workload::lorem(100 + (i as usize % 16) * 250, i),
            );
            assert_eq!(r.outcome.ret(), Some(250), "message {i}");
            delivered += 1;
        }
    }
    println!("sendmail stability run: 500 cycles");
    println!("  delivered: {delivered}   attacks rejected: {rejected}");
    println!(
        "  live data units: {}",
        sm.process().machine().space().live_units()
    );
    println!();
    println!("administrator's error-log digest:");
    let report = summarize(sm.process().machine().space().error_log());
    print!("{}", report.render());
    println!();
    println!("The top site is the daemon wake-up loop — the 'steady stream of");
    println!("memory errors during its normal execution' of §4.4.4, identified");
    println!("exactly the way the paper's log analysis identified it.");
}
