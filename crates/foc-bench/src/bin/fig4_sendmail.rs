//! Regenerates Figure 4: Sendmail request processing times.
fn main() {
    let rows = foc_bench::fig4_sendmail();
    print!(
        "{}",
        foc_bench::render_rpt_table(
            "Figure 4: Request Processing Times for Sendmail (milliseconds)",
            &rows
        )
    );
}
