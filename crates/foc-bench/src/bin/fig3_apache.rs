//! Regenerates Figure 3: Apache request processing times.
fn main() {
    let rows = foc_bench::fig3_apache();
    print!(
        "{}",
        foc_bench::render_rpt_table(
            "Figure 3: Request Processing Times for Apache (milliseconds)",
            &rows
        )
    );
}
