//! The restart-cost bench: checkpoint restore versus cold boot +
//! environment replay, plus the manufactured-loop violation throughput
//! the batched fast path governs.
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin restart_cost [reps]` —
//!   full measurement (default 24 reps per flavour); upserts one row
//!   into `BENCH_farm.json`'s `restart_cost_runs` trajectory (creating
//!   the section in records that predate it). Rows are keyed by a
//!   fingerprint of the measured images + shape, so re-running the bin
//!   on an unchanged tree replaces its row instead of duplicating it.
//! * `cargo run --release -p foc-bench --bin restart_cost -- --check` —
//!   CI smoke gate (mirroring the PR 2 boot-cost gate): asserts that a
//!   checkpoint restore beats a cold boot + replay by at least 5×, and
//!   that the manufactured-loop measurement runs at all. Exits nonzero
//!   with a one-line diagnostic otherwise.

use foc_bench::check::{check_fail, check_gate, parse_reps, record_farm_row};
use foc_bench::farm_report::{
    append_restart_cost_row, measure_restart_cost, measure_violation_throughput,
    restart_cost_fingerprint, restart_cost_row_json, RestartCost, ViolationThroughput,
};

fn print_measurement(cost: &RestartCost, violation: &ViolationThroughput) {
    eprintln!(
        "  cold boot+replay   {:>10.0} ns ± {:.0} ({} reps)",
        cost.cold_ns, cost.cold_ci95_ns, cost.reps
    );
    eprintln!(
        "  checkpoint restore {:>10.0} ns ± {:.0}  ({:.1}x faster)",
        cost.restore_ns,
        cost.restore_ci95_ns,
        cost.speedup()
    );
    eprintln!(
        "  manufactured loop  {:>10.1} Minstr/s ± {:.1} ({} instrs/run)",
        violation.minstr_per_s, violation.minstr_ci95, violation.instrs
    );
}

fn run_check() -> Result<(), String> {
    eprintln!("restart_cost --check: checkpoint restore vs cold boot+replay ...");
    let cost = measure_restart_cost(8);
    let violation = measure_violation_throughput(2);
    print_measurement(&cost, &violation);
    check_gate(
        "checkpoint restore over cold boot+replay",
        cost.speedup(),
        5.0,
        &format!(
            "cold {:.0}ns vs restore {:.0}ns",
            cost.cold_ns, cost.restore_ns
        ),
    )?;
    if violation.minstr_per_s <= 0.0 {
        return Err("violation-throughput measurement produced no rate".to_string());
    }
    println!(
        "restart_cost --check OK ({:.1}x restore speedup, {:.1} Minstr/s manufactured loop)",
        cost.speedup(),
        violation.minstr_per_s
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        if let Err(msg) = run_check() {
            check_fail("restart_cost --check", &msg);
        }
        return;
    }
    let reps = parse_reps("restart_cost", &args, 24);
    let cost = measure_restart_cost(reps);
    let violation = measure_violation_throughput(reps.clamp(3, 8));
    print_measurement(&cost, &violation);

    let row = restart_cost_row_json(&cost, &violation, &restart_cost_fingerprint(reps));
    record_farm_row("restart_cost", &row, append_restart_cost_row);
}
