//! Regenerates Figure 2: Pine request processing times.
fn main() {
    let rows = foc_bench::fig2_pine();
    print!(
        "{}",
        foc_bench::render_rpt_table(
            "Figure 2: Request Processing Times for Pine (milliseconds)",
            &rows
        )
    );
}
