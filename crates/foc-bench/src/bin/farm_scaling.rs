//! Runs the server-farm benchmark suite — every server kind under every
//! mode, a Pine failure-oblivious thread-scaling sweep, the
//! cold-vs-cached boot-cost split, and the per-backend `farm_stress`
//! scale-out point — and writes the result to `BENCH_farm.json` (the
//! repository's farm perf trajectory record).
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin farm_scaling [requests]` —
//!   full run; `requests` is the per-server request count (default 100).
//! * `cargo run --release -p foc-bench --bin farm_scaling -- --check` —
//!   CI smoke mode: a miniature suite that exercises every code path
//!   (suite, scaling sweep with its determinism assertion, boot-cost
//!   measurement, JSON rendering) without writing the record, so bench
//!   bitrot fails CI instead of being discovered at measurement time.
//!   (The stress point has its own smoke bin: `farm_stress --check`.)

use foc_bench::check::check_fail;
use foc_bench::farm_report::{
    farm_suite, measure_boot_cost, measure_record, measure_restart_cost, measure_unit_churn,
    measure_violation_throughput, render_farm_json, restart_cost_row_json, stress_sweep,
    thread_scaling, BootCost, FarmRecord, RecordShape, RestartCost, ScalingRow, StressRow,
    UnitChurn, ViolationThroughput,
};

fn print_summary(record: &FarmRecord) {
    print_reports(&record.reports);
    print_scaling(&record.scaling);
    print_boot(&record.boot);
    if let Some(row) = record.restart_cost_runs.last() {
        eprintln!("  restart cost (latest row): {row}");
    }
    print_stress(&record.stress, &record.churn);
}

fn print_restart(cost: &RestartCost, violation: &ViolationThroughput) {
    eprintln!(
        "  restart cost: cold boot+replay {:.0} ns, checkpoint restore {:.0} ns ({:.1}x);          manufactured loop {:.1} Minstr/s",
        cost.cold_ns,
        cost.restore_ns,
        cost.speedup(),
        violation.minstr_per_s,
    );
}

fn print_reports(reports: &[foc_servers::farm::FarmReport]) {
    for r in reports {
        eprintln!(
            "  {:<9} {:<18} completed {:>5}/{:<5}  deaths {:>4}  restarts {:>4}  {:>8.1} req/Mcycle  {:>8.1} ms",
            r.config.kind.name(),
            r.config.mode.name(),
            r.stats.completed,
            r.stats.requests,
            r.stats.deaths,
            r.stats.restarts,
            r.stats.throughput_per_mcycle(),
            r.host_wall_ms,
        );
    }
}

fn print_scaling(scaling: &[ScalingRow]) {
    for row in scaling {
        eprintln!(
            "  threads {}: {:.1} ms ± {:.1} (95% CI, {} reps)  ({:.0} req/s host)",
            row.threads, row.wall_ms, row.wall_ms_ci95, row.reps, row.host_rps
        );
    }
}

fn print_boot(boot: &BootCost) {
    eprintln!(
        "  boot cost: cold compile+boot {:.0} ns, cached-image boot {:.0} ns ({:.1}x)",
        boot.cold_ns,
        boot.cached_ns,
        boot.speedup()
    );
}

fn print_stress(stress: &[StressRow], churn: &UnitChurn) {
    for row in stress {
        eprintln!(
            "  stress {:<6}/{:<5} {} servers: {:.1} ms ± {:.1}  ({:.0} req/s host, p99.9 {} cycles)",
            row.backend.name(),
            row.lookup.name(),
            row.report.config.servers,
            row.wall_ms,
            row.wall_ms_ci95,
            row.host_rps,
            row.report.stats.latency_p999,
        );
    }
    eprintln!(
        "  unit churn ({} machines): arena {:.0} ns vs seed boxed {:.0} ns ({:.2}x)",
        churn.machines,
        churn.arena_ns,
        churn.boxed_ns,
        churn.speedup()
    );
}

fn run_check() -> Result<(), String> {
    eprintln!("farm_scaling --check: miniature suite ...");
    let reports = farm_suite(4);
    if reports.len() != 5 * foc_memory::Mode::ALL.len() {
        return Err(format!(
            "suite covered {} cells, want every server x mode",
            reports.len()
        ));
    }
    // The sweep verifies report determinism across threads internally.
    let scaling = thread_scaling(4, &[1, 2], 2)?;
    let boot = measure_boot_cost(4);
    if boot.speedup() < 2.0 {
        return Err(format!(
            "interned images must beat cold compiles even on noisy hosts: {:.1}x",
            boot.speedup()
        ));
    }
    let restart = measure_restart_cost(6);
    if restart.speedup() < 2.0 {
        return Err(format!(
            "checkpoint restores must beat cold boot+replay even on noisy hosts: {:.1}x",
            restart.speedup()
        ));
    }
    let violation = measure_violation_throughput(2);
    let stress = stress_sweep(
        4,
        3,
        1,
        &foc_memory::TableKind::ALL,
        &foc_memory::LookupLayer::ALL,
    )?;
    let churn = measure_unit_churn(16, 2);
    let restart_rows = vec![restart_cost_row_json(&restart, &violation, "check")];
    let json = render_farm_json(
        &reports,
        &scaling,
        &boot,
        &stress,
        &churn,
        &restart_rows,
        &[],
        &[],
        &[],
        &[],
        &[],
        &[],
    );
    if json.matches('{').count() != json.matches('}').count() {
        return Err("rendered record does not balance".to_string());
    }
    print_reports(&reports);
    print_scaling(&scaling);
    print_boot(&boot);
    print_restart(&restart, &violation);
    print_stress(&stress, &churn);
    println!("farm_scaling --check OK ({} reports)", reports.len());
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        if let Err(msg) = run_check() {
            check_fail("farm_scaling --check", &msg);
        }
        return;
    }
    let mut shape = RecordShape::default();
    if let Some(arg) = args.first() {
        match arg.parse() {
            Ok(n) if n > 0 => shape.requests = n,
            _ => {
                eprintln!("farm_scaling: invalid request count {arg:?} (want a positive integer)");
                std::process::exit(2);
            }
        }
    }

    let path = "BENCH_farm.json";
    let previous = std::fs::read_to_string(path).ok();
    let record = match measure_record(&shape, previous.as_deref()) {
        Ok(record) => record,
        Err(msg) => check_fail("farm_scaling", &msg),
    };
    print_summary(&record);

    std::fs::write(path, record.render()).expect("write BENCH_farm.json");
    println!("wrote {path} ({} reports)", record.reports.len());
}
