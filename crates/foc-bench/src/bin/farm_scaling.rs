//! Runs the server-farm benchmark suite — every server kind under every
//! mode, plus a Pine failure-oblivious thread-scaling sweep — and writes
//! the result to `BENCH_farm.json` (the repository's farm perf
//! trajectory record).
//!
//! Usage: `cargo run --release -p foc-bench --bin farm_scaling [requests]`
//! where `requests` is the per-server request count (default 100).

use foc_bench::farm_report::{farm_suite, render_farm_json, thread_scaling};

fn main() {
    let requests: usize = match std::env::args().nth(1) {
        None => 100,
        Some(arg) => match arg.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("farm_scaling: invalid request count {arg:?} (want a positive integer)");
                std::process::exit(2);
            }
        },
    };

    eprintln!("running farm suite: 5 servers x 5 modes, {requests} requests/server ...");
    let reports = farm_suite(requests);
    for r in &reports {
        eprintln!(
            "  {:<9} {:<18} completed {:>5}/{:<5}  deaths {:>4}  restarts {:>4}  {:>8.1} req/Mcycle  {:>8.1} ms",
            r.config.kind.name(),
            r.config.mode.name(),
            r.stats.completed,
            r.stats.requests,
            r.stats.deaths,
            r.stats.restarts,
            r.stats.throughput_per_mcycle(),
            r.host_wall_ms,
        );
    }

    eprintln!("running thread-scaling sweep (Pine, failure-oblivious) ...");
    let scaling = thread_scaling(requests, &[1, 2, 4, 8]);
    for (threads, wall_ms, rps) in &scaling {
        eprintln!("  threads {threads}: {wall_ms:.1} ms  ({rps:.0} req/s host)");
    }

    let json = render_farm_json(&reports, &scaling);
    let path = "BENCH_farm.json";
    std::fs::write(path, &json).expect("write BENCH_farm.json");
    println!("wrote {path} ({} reports)", reports.len());
}
