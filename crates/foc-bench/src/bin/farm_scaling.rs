//! Runs the server-farm benchmark suite — every server kind under every
//! mode, a Pine failure-oblivious thread-scaling sweep, and the
//! cold-vs-cached boot-cost split — and writes the result to
//! `BENCH_farm.json` (the repository's farm perf trajectory record).
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin farm_scaling [requests]` —
//!   full run; `requests` is the per-server request count (default 100).
//! * `cargo run --release -p foc-bench --bin farm_scaling -- --check` —
//!   CI smoke mode: a miniature suite that exercises every code path
//!   (suite, scaling sweep with its determinism assertion, boot-cost
//!   measurement, JSON rendering) without writing the record, so bench
//!   bitrot fails CI instead of being discovered at measurement time.

use foc_bench::farm_report::{
    farm_suite, measure_boot_cost, render_farm_json, thread_scaling, BootCost, ScalingRow,
};

fn print_summary(
    reports: &[foc_servers::farm::FarmReport],
    scaling: &[ScalingRow],
    boot: &BootCost,
) {
    for r in reports {
        eprintln!(
            "  {:<9} {:<18} completed {:>5}/{:<5}  deaths {:>4}  restarts {:>4}  {:>8.1} req/Mcycle  {:>8.1} ms",
            r.config.kind.name(),
            r.config.mode.name(),
            r.stats.completed,
            r.stats.requests,
            r.stats.deaths,
            r.stats.restarts,
            r.stats.throughput_per_mcycle(),
            r.host_wall_ms,
        );
    }
    for row in scaling {
        eprintln!(
            "  threads {}: {:.1} ms ± {:.1} (95% CI, {} reps)  ({:.0} req/s host)",
            row.threads, row.wall_ms, row.wall_ms_ci95, row.reps, row.host_rps
        );
    }
    eprintln!(
        "  boot cost: cold compile+boot {:.0} ns, cached-image boot {:.0} ns ({:.1}x)",
        boot.cold_ns,
        boot.cached_ns,
        boot.speedup()
    );
}

fn run_check() {
    eprintln!("farm_scaling --check: miniature suite ...");
    let reports = farm_suite(4);
    assert_eq!(
        reports.len(),
        5 * foc_memory::Mode::ALL.len(),
        "suite must cover every server x mode cell"
    );
    // The sweep asserts report determinism across threads internally.
    let scaling = thread_scaling(4, &[1, 2], 2);
    let boot = measure_boot_cost(4);
    assert!(
        boot.speedup() >= 2.0,
        "interned images must beat cold compiles even on noisy hosts: {:.1}x",
        boot.speedup()
    );
    let json = render_farm_json(&reports, &scaling, &boot);
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "rendered record must balance"
    );
    print_summary(&reports, &scaling, &boot);
    println!("farm_scaling --check OK ({} reports)", reports.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        run_check();
        return;
    }
    let requests: usize = match args.first() {
        None => 100,
        Some(arg) => match arg.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("farm_scaling: invalid request count {arg:?} (want a positive integer)");
                std::process::exit(2);
            }
        },
    };

    eprintln!("running farm suite: 5 servers x 5 modes, {requests} requests/server ...");
    let reports = farm_suite(requests);
    eprintln!("running thread-scaling sweep (Pine, failure-oblivious) ...");
    let scaling = thread_scaling(requests, &[1, 2, 4, 8], 3);
    eprintln!("measuring boot cost (cold compile vs cached image) ...");
    let boot = measure_boot_cost(24);
    print_summary(&reports, &scaling, &boot);

    let json = render_farm_json(&reports, &scaling, &boot);
    let path = "BENCH_farm.json";
    std::fs::write(path, &json).expect("write BENCH_farm.json");
    println!("wrote {path} ({} reports)", reports.len());
}
