//! The dispatch-cost bench: interpretation rate of a manufactured-value
//! loop (one past-the-end accumulate per iteration amid fusible local
//! arithmetic) under the baseline tier versus the superinstruction
//! tier. Both tiers retire the same guest instruction count (fused
//! opcodes account for every component of the pattern they replace), so
//! the ratio isolates dispatch overhead — fetch/decode/match rounds per
//! loop iteration — which is exactly what superinstruction lowering
//! exists to cut.
//!
//! Usage:
//!
//! * `cargo run --release -p foc-bench --bin dispatch_cost [reps]` —
//!   full measurement (default 24 reps per tier); upserts one row into
//!   `BENCH_farm.json`'s `dispatch_cost_runs` trajectory (creating the
//!   section in records that predate it). Rows are keyed by a
//!   fingerprint of both tiers' compiled loop images + shape, so
//!   re-running the bin on an unchanged tree replaces its row instead
//!   of duplicating it.
//! * `cargo run --release -p foc-bench --bin dispatch_cost -- --check`
//!   — CI gate: asserts the fused tier interprets the manufactured loop
//!   at ≥1.5× the baseline rate. Exits nonzero with a one-line
//!   diagnostic otherwise.

use foc_bench::check::{check_fail, check_gate, parse_reps, record_farm_row};
use foc_bench::farm_report::{
    append_dispatch_cost_row, dispatch_cost_fingerprint, dispatch_cost_row_json,
    measure_dispatch_cost, DispatchCost,
};

/// The CI bar: fused must beat baseline by this factor on the
/// manufactured-value loop. The fused loop body dispatches 11 opcodes
/// per iteration against 72 unfused (measured ~1.7× on the development
/// host), so 1.5× holds with room on noisy CI hosts. (The native tier
/// is recorded in the same row for the trajectory but gated separately,
/// on the violation-free loop, by `native_cost`.)
const GATE: f64 = 1.5;

fn print_measurement(cost: &DispatchCost) {
    eprintln!(
        "  baseline tier {:>8.1} Minstr/s ± {:.1} ({} instrs/run, {} reps)",
        cost.baseline.minstr_per_s, cost.baseline.minstr_ci95, cost.baseline.instrs, cost.reps
    );
    eprintln!(
        "  super tier    {:>8.1} Minstr/s ± {:.1}  ({:.2}x baseline)",
        cost.fused.minstr_per_s,
        cost.fused.minstr_ci95,
        cost.speedup()
    );
    eprintln!(
        "  native tier   {:>8.1} Minstr/s ± {:.1}  ({:.2}x baseline)",
        cost.native.minstr_per_s,
        cost.native.minstr_ci95,
        cost.native_speedup()
    );
}

fn run_check() -> Result<(), String> {
    eprintln!("dispatch_cost --check: baseline vs superinstruction tier ...");
    let cost = measure_dispatch_cost(8);
    print_measurement(&cost);
    if cost.fused.instrs != cost.baseline.instrs || cost.native.instrs != cost.baseline.instrs {
        return Err(format!(
            "tiers must retire identical instruction counts: \
             baseline {} vs super {} vs native {}",
            cost.baseline.instrs, cost.fused.instrs, cost.native.instrs
        ));
    }
    check_gate(
        "superinstruction tier over baseline interpretation rate",
        cost.speedup(),
        GATE,
        &format!(
            "{:.1} vs {:.1} Minstr/s",
            cost.fused.minstr_per_s, cost.baseline.minstr_per_s
        ),
    )?;
    println!(
        "dispatch_cost --check OK ({:.2}x fused speedup, {:.1} Minstr/s fused loop)",
        cost.speedup(),
        cost.fused.minstr_per_s
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        if let Err(msg) = run_check() {
            check_fail("dispatch_cost --check", &msg);
        }
        return;
    }
    let reps = parse_reps("dispatch_cost", &args, 24);
    let cost = measure_dispatch_cost(reps);
    print_measurement(&cost);

    let row = dispatch_cost_row_json(&cost, &dispatch_cost_fingerprint(reps));
    record_farm_row("dispatch_cost", &row, append_dispatch_cost_row);
}
