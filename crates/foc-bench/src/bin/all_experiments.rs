//! Runs every experiment and prints the complete paper-vs-measured
//! report (the source of EXPERIMENTS.md).
fn main() {
    println!("# Failure-Oblivious Computing: full experiment sweep\n");
    for (title, rows) in [
        ("Figure 2: Pine (ms)", foc_bench::fig2_pine()),
        ("Figure 3: Apache (ms)", foc_bench::fig3_apache()),
        ("Figure 4: Sendmail (ms)", foc_bench::fig4_sendmail()),
        (
            "Figure 5: Midnight Commander (ms, sizes 1:64)",
            foc_bench::fig5_mc(),
        ),
        ("Figure 6: Mutt (ms)", foc_bench::fig6_mutt()),
    ] {
        println!("{}", foc_bench::render_rpt_table(title, &rows));
    }
    println!("Apache throughput under attack (§4.3.2):");
    println!(
        "{}",
        foc_bench::render_throughput(&foc_bench::apache_throughput(400))
    );
    println!("Security & resilience matrix (§4.x.2):");
    println!("{}", foc_bench::render_security_matrix());
    println!("Manufactured-value ablation (§3):");
    for r in foc_bench::ablation_values() {
        println!(
            "  {:<20} {:>10} {:>8} manufactured reads",
            r.strategy,
            if r.terminated { "exits" } else { "HANGS" },
            r.reads
        );
    }
    println!("\n§5.1 variants (server survives attack and keeps serving):");
    for (mode, cells) in foc_bench::variants_matrix() {
        let all: Vec<String> = cells
            .iter()
            .map(|(s, ok)| format!("{s}={}", if *ok { "yes" } else { "NO" }))
            .collect();
        println!("  {:<20} {}", mode.name(), all.join("  "));
    }
}
