//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§4).
//!
//! Each `figN_*` function reproduces the corresponding figure's request
//! set, running at least twenty repetitions per request per compiler
//! version and reporting mean ± standard deviation of the *virtual*
//! request processing time (see `foc_vm::cost` for why virtual time).
//! The binaries in `src/bin` print one table each; `all_experiments`
//! prints the complete paper-versus-measured report used to fill
//! EXPERIMENTS.md.
//!
//! Scaling note: MC's Copy/Move/Delete sizes are divided by
//! [`MC_SIZE_SCALE`] so a full experiment sweep stays interactive; the
//! slowdown columns are invariant under this scaling because both
//! versions scale identically (verified by `scaling_invariance` below).

pub mod check;
pub mod farm_report;
pub mod sweep_report;

use foc_memory::Mode;
use foc_servers::{apache, mc, mutt, pine, sendmail, workload, BootSpec, Measured, ServerKind};
use foc_vm::cost::cycles_to_ms;

/// Number of repetitions per request (the paper: "at least twenty").
pub const REPS: usize = 20;

/// Size divisor for the Midnight Commander file operations.
pub const MC_SIZE_SCALE: i64 = 64;

/// One row of a request-processing-time figure.
#[derive(Debug, Clone)]
pub struct RptRow {
    /// Request name as printed in the paper.
    pub request: String,
    /// Standard version: (mean ms, stddev ms).
    pub standard: (f64, f64),
    /// Failure-oblivious version: (mean ms, stddev ms).
    pub failure_oblivious: (f64, f64),
    /// Slowdown the paper reports for this request.
    pub paper_slowdown: f64,
}

impl RptRow {
    /// Measured slowdown (FO mean / Standard mean).
    pub fn slowdown(&self) -> f64 {
        if self.standard.0 == 0.0 {
            return f64::NAN;
        }
        self.failure_oblivious.0 / self.standard.0
    }
}

/// Formats one figure as the paper lays it out.
pub fn render_rpt_table(title: &str, rows: &[RptRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>20} {:>10} {:>8}",
        "Request", "Standard (ms)", "Failure Obl. (ms)", "Slowdown", "Paper"
    );
    for r in rows {
        let pct = |m: f64, s: f64| if m > 0.0 { s / m * 100.0 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<12} {:>10.3} ±{:>4.1}% {:>13.3} ±{:>4.1}% {:>9.2}x {:>7.2}x",
            r.request,
            r.standard.0,
            pct(r.standard.0, r.standard.1),
            r.failure_oblivious.0,
            pct(r.failure_oblivious.0, r.failure_oblivious.1),
            r.slowdown(),
            r.paper_slowdown,
        );
    }
    out
}

/// Mean/stddev of a cycle series, in milliseconds.
fn stats_ms(cycles: &[u64]) -> (f64, f64) {
    let ms: Vec<f64> = cycles.iter().map(|&c| cycles_to_ms(c)).collect();
    foc_servers::mean_stddev(&ms)
}

fn expect_ok(m: &Measured, what: &str) -> u64 {
    assert!(
        m.outcome.survived(),
        "{what} unexpectedly failed: {:?}",
        m.outcome
    );
    m.cycles
}

// ----------------------------------------------------------------------
// Figure 2: Pine request processing times.
// ----------------------------------------------------------------------

/// Reproduces Figure 2 (Pine: Read / Compose / Move).
pub fn fig2_pine() -> Vec<RptRow> {
    let mut rows = Vec::new();
    let run = |mode: Mode| -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let mut p = pine::Pine::boot_spec(
            &BootSpec::new(ServerKind::Pine, mode),
            pine::Pine::standard_mailbox(REPS + 10),
        );
        assert!(p.usable());
        let mut read = Vec::new();
        let mut compose = Vec::new();
        let mut mv = Vec::new();
        for i in 0..REPS {
            read.push(expect_ok(&p.read(3), "pine read"));
            compose.push(expect_ok(&p.compose(), "pine compose"));
            mv.push(expect_ok(&p.move_message(8 + i as i64), "pine move"));
        }
        (read, compose, mv)
    };
    let std = run(Mode::Standard);
    let fo = run(Mode::FailureOblivious);
    for (name, s, f, paper) in [
        ("Read", &std.0, &fo.0, 6.9),
        ("Compose", &std.1, &fo.1, 8.1),
        ("Move", &std.2, &fo.2, 1.34),
    ] {
        rows.push(RptRow {
            request: name.into(),
            standard: stats_ms(s),
            failure_oblivious: stats_ms(f),
            paper_slowdown: paper,
        });
    }
    rows
}

// ----------------------------------------------------------------------
// Figure 3: Apache request processing times.
// ----------------------------------------------------------------------

/// Reproduces Figure 3 (Apache: Small / Large page serves).
pub fn fig3_apache() -> Vec<RptRow> {
    let run = |mode: Mode| -> (Vec<u64>, Vec<u64>) {
        let mut w = apache::ApacheWorker::boot_spec(&BootSpec::new(ServerKind::Apache, mode));
        let mut small = Vec::new();
        let mut large = Vec::new();
        for _ in 0..REPS {
            small.push(expect_ok(&w.get(b"/index.html"), "apache small"));
            large.push(expect_ok(&w.get(b"/big.bin"), "apache large"));
        }
        (small, large)
    };
    let std = run(Mode::Standard);
    let fo = run(Mode::FailureOblivious);
    vec![
        RptRow {
            request: "Small".into(),
            standard: stats_ms(&std.0),
            failure_oblivious: stats_ms(&fo.0),
            paper_slowdown: 1.06,
        },
        RptRow {
            request: "Large".into(),
            standard: stats_ms(&std.1),
            failure_oblivious: stats_ms(&fo.1),
            paper_slowdown: 1.03,
        },
    ]
}

// ----------------------------------------------------------------------
// Figure 4: Sendmail request processing times.
// ----------------------------------------------------------------------

/// Reproduces Figure 4 (Sendmail: Recv/Send × Small/Large).
pub fn fig4_sendmail() -> Vec<RptRow> {
    let run = |mode: Mode| -> [Vec<u64>; 4] {
        let mut sm = sendmail::Sendmail::boot_spec(&BootSpec::new(ServerKind::Sendmail, mode));
        assert!(sm.usable(), "sendmail must boot in {mode:?}");
        let mut out: [Vec<u64>; 4] = Default::default();
        for i in 0..REPS as u64 {
            let from = workload::sendmail_address(i);
            let to = workload::sendmail_address(1000 + i);
            let small = workload::lorem(4, i);
            let large = workload::lorem(4096, i);
            out[0].push(expect_ok(&sm.receive(&from, &to, &small), "recv small"));
            out[1].push(expect_ok(&sm.receive(&from, &to, &large), "recv large"));
            out[2].push(expect_ok(&sm.send(&to, &small), "send small"));
            out[3].push(expect_ok(&sm.send(&to, &large), "send large"));
        }
        out
    };
    let std = run(Mode::Standard);
    let fo = run(Mode::FailureOblivious);
    let names = ["Recv Small", "Recv Large", "Send Small", "Send Large"];
    let paper = [3.9, 3.9, 3.7, 3.6];
    (0..4)
        .map(|i| RptRow {
            request: names[i].into(),
            standard: stats_ms(&std[i]),
            failure_oblivious: stats_ms(&fo[i]),
            paper_slowdown: paper[i],
        })
        .collect()
}

// ----------------------------------------------------------------------
// Figure 5: Midnight Commander request processing times.
// ----------------------------------------------------------------------

/// Reproduces Figure 5 (MC: Copy / Move / MkDir / Delete). Sizes are the
/// paper's (31 MB copy/move tree, 3.2 MB delete) divided by
/// [`MC_SIZE_SCALE`].
pub fn fig5_mc() -> Vec<RptRow> {
    let copy_size = 31 * 1024 * 1024 / MC_SIZE_SCALE;
    let del_size = 3_276_800 / MC_SIZE_SCALE;
    let run = |mode: Mode| -> [Vec<u64>; 4] {
        let mut m = mc::Mc::boot_spec(&BootSpec::new(ServerKind::Mc, mode), &mc::clean_config());
        assert!(m.usable());
        let mut out: [Vec<u64>; 4] = Default::default();
        for i in 0..REPS {
            let src = format!("/bench/src{i}");
            m.create(src.as_bytes(), copy_size, false);
            out[0].push(expect_ok(
                &m.copy(src.as_bytes(), format!("/bench/copy{i}").as_bytes()),
                "mc copy",
            ));
            out[1].push(expect_ok(
                &m.move_file(src.as_bytes(), format!("/bench/moved{i}").as_bytes()),
                "mc move",
            ));
            out[2].push(expect_ok(
                &m.mkdir(format!("/bench/dir{i}").as_bytes()),
                "mc mkdir",
            ));
            let victim = format!("/bench/del{i}");
            m.create(victim.as_bytes(), del_size, false);
            out[3].push(expect_ok(&m.delete(victim.as_bytes()), "mc delete"));
            // Keep the fs table bounded.
            m.delete(format!("/bench/copy{i}").as_bytes());
            m.delete(format!("/bench/moved{i}").as_bytes());
            m.delete(format!("/bench/dir{i}").as_bytes());
        }
        out
    };
    let std = run(Mode::Standard);
    let fo = run(Mode::FailureOblivious);
    let names = ["Copy", "Move", "MkDir", "Delete"];
    let paper = [1.4, 1.4, 1.8, 1.1];
    (0..4)
        .map(|i| RptRow {
            request: names[i].into(),
            standard: stats_ms(&std[i]),
            failure_oblivious: stats_ms(&fo[i]),
            paper_slowdown: paper[i],
        })
        .collect()
}

// ----------------------------------------------------------------------
// Figure 6: Mutt request processing times.
// ----------------------------------------------------------------------

/// Reproduces Figure 6 (Mutt: Read / Move).
pub fn fig6_mutt() -> Vec<RptRow> {
    let run = |mode: Mode| -> (Vec<u64>, Vec<u64>) {
        let mut mt = mutt::Mutt::boot_spec(&BootSpec::new(ServerKind::Mutt, mode), REPS + 5);
        assert_eq!(mt.open_folder(b"INBOX").outcome.ret(), Some(0));
        let mut read = Vec::new();
        let mut mv = Vec::new();
        for i in 0..REPS {
            read.push(expect_ok(&mt.read_message(0), "mutt read"));
            mv.push(expect_ok(
                &mt.move_message(1 + i as i64, b"work"),
                "mutt move",
            ));
        }
        (read, mv)
    };
    let std = run(Mode::Standard);
    let fo = run(Mode::FailureOblivious);
    vec![
        RptRow {
            request: "Read".into(),
            standard: stats_ms(&std.0),
            failure_oblivious: stats_ms(&fo.0),
            paper_slowdown: 3.6,
        },
        RptRow {
            request: "Move".into(),
            standard: stats_ms(&std.1),
            failure_oblivious: stats_ms(&fo.1),
            paper_slowdown: 1.4,
        },
    ]
}

// ----------------------------------------------------------------------
// §4.3.2: Apache throughput under attack.
// ----------------------------------------------------------------------

/// Result of the throughput experiment for one version.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Compiler version.
    pub mode: Mode,
    /// Requests that received responses.
    pub completed: u64,
    /// Child process deaths.
    pub child_deaths: u64,
    /// Completed requests per virtual megacycle.
    pub throughput: f64,
}

/// Reproduces the §4.3.2 experiment: attack stream + legitimate fetches
/// against the regenerating pool, per version.
pub fn apache_throughput(requests: usize) -> Vec<ThroughputResult> {
    [Mode::FailureOblivious, Mode::BoundsCheck, Mode::Standard]
        .into_iter()
        .map(|mode| {
            let mut pool = apache::ApachePool::new(mode, 4);
            for i in 0..requests {
                if i % 2 == 0 {
                    pool.get(&apache::attack_url());
                } else {
                    pool.get(b"/index.html");
                }
            }
            ThroughputResult {
                mode,
                completed: pool.completed,
                child_deaths: pool.child_deaths,
                throughput: pool.completed as f64 / (pool.total_cycles as f64 / 1e6),
            }
        })
        .collect()
}

/// Renders the throughput table with the paper's ratios.
pub fn render_throughput(results: &[ThroughputResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>13} {:>16}",
        "version", "served", "child deaths", "req/megacycle"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>13} {:>16.2}",
            r.mode.name(),
            r.completed,
            r.child_deaths,
            r.throughput
        );
    }
    let fo = results[0].throughput;
    for r in &results[1..] {
        let paper = if r.mode == Mode::BoundsCheck {
            5.7
        } else {
            4.8
        };
        let _ = writeln!(
            out,
            "FO / {:<17} = {:>5.1}x   (paper: {paper}x)",
            r.mode.name(),
            fo / r.throughput
        );
    }
    out
}

// ----------------------------------------------------------------------
// Security & resilience matrix (§4.2.2 / §4.3.2 / §4.4.2 / §4.5.2 / §4.6.2).
// ----------------------------------------------------------------------

/// One cell of the security matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Server name.
    pub server: &'static str,
    /// Compiler version.
    pub mode: Mode,
    /// Did the server initialise with the hostile environment present?
    pub init_ok: bool,
    /// What the attack request did ("crash: ...", "rejected", ...).
    pub attack: String,
    /// Could legitimate requests be served after the attack?
    pub serves_after: bool,
}

fn describe(outcome: &foc_servers::Outcome) -> String {
    match outcome {
        foc_servers::Outcome::Done { ret, .. } => format!("handled (rc {ret})"),
        foc_servers::Outcome::Crashed(f) if f.is_memory_error() => "memory-error exit".into(),
        foc_servers::Outcome::Crashed(f) if f.is_segfault_like() => format!("crash ({f})"),
        foc_servers::Outcome::Crashed(f) => format!("died ({f})"),
    }
}

/// Runs the attack/recovery scenario for every server under `mode`.
pub fn security_matrix(mode: Mode) -> Vec<MatrixCell> {
    let mut cells = Vec::new();

    // Pine: poisoned mailbox present at startup.
    {
        let mut mailbox = pine::Pine::standard_mailbox(4);
        mailbox.insert(2, (pine::attack_from(40), b"pwn".to_vec(), b"x".to_vec()));
        let mut p = pine::Pine::boot_spec(&BootSpec::new(ServerKind::Pine, mode), mailbox);
        let init_ok = p.usable();
        let attack = describe(p.init_outcome());
        let serves_after = init_ok && p.read(0).outcome.ret() == Some(0);
        cells.push(MatrixCell {
            server: "Pine",
            mode,
            init_ok,
            attack,
            serves_after,
        });
    }

    // Apache: attack URL against a single child.
    {
        let mut w = apache::ApacheWorker::boot_spec(&BootSpec::new(ServerKind::Apache, mode));
        let r = w.get(&apache::attack_url());
        let attack = describe(&r.outcome);
        let serves_after = w.get(b"/index.html").outcome.ret() == Some(200);
        cells.push(MatrixCell {
            server: "Apache",
            mode,
            init_ok: true,
            attack,
            serves_after,
        });
    }

    // Sendmail: daemon wake-up at boot, then the attack address.
    {
        let mut sm = sendmail::Sendmail::boot_spec(&BootSpec::new(ServerKind::Sendmail, mode));
        let init_ok = sm.usable();
        let attack = if init_ok {
            describe(&sm.mail_from(&sendmail::attack_address(400)).outcome)
        } else {
            format!("unusable: {}", describe(sm.init_outcome()))
        };
        let serves_after = init_ok
            && sm
                .receive(
                    &workload::sendmail_address(1),
                    &workload::sendmail_address(2),
                    b"post-attack",
                )
                .outcome
                .ret()
                == Some(250);
        cells.push(MatrixCell {
            server: "Sendmail",
            mode,
            init_ok,
            attack,
            serves_after,
        });
    }

    // MC: blank config line at startup, then the archive attack.
    {
        let mut m = mc::Mc::boot_spec(
            &BootSpec::new(ServerKind::Mc, mode),
            &mc::config_with_blank_line(),
        );
        let init_ok = m.usable();
        let attack = if init_ok {
            describe(&m.open_archive(&mc::attack_links()).outcome)
        } else {
            format!("unusable: {}", describe(m.init_outcome()))
        };
        let serves_after = init_ok && {
            m.create(b"/x", 1024, false);
            m.copy(b"/x", b"/y").outcome.ret() == Some(1024)
        };
        cells.push(MatrixCell {
            server: "MC",
            mode,
            init_ok,
            attack,
            serves_after,
        });
    }

    // Mutt: malicious folder name.
    {
        let mut mt = mutt::Mutt::boot_spec(&BootSpec::new(ServerKind::Mutt, mode), 2);
        let r = mt.open_folder(&mutt::attack_folder_name(40));
        let attack = describe(&r.outcome);
        let serves_after = mt.open_folder(b"INBOX").outcome.ret() == Some(0)
            && mt.read_message(0).outcome.ret() == Some(0);
        cells.push(MatrixCell {
            server: "Mutt",
            mode,
            init_ok: true,
            attack,
            serves_after,
        });
    }

    cells
}

/// Renders the full matrix across the three main modes.
pub fn render_security_matrix() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<18} {:<6} {:<34} {:<6}",
        "server", "version", "init", "attack request", "serves after"
    );
    for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
        for cell in security_matrix(mode) {
            let _ = writeln!(
                out,
                "{:<10} {:<18} {:<6} {:<34} {:<6}",
                cell.server,
                cell.mode.name(),
                if cell.init_ok { "up" } else { "DEAD" },
                cell.attack,
                if cell.serves_after { "yes" } else { "NO" }
            );
        }
    }
    out
}

// ----------------------------------------------------------------------
// §5.1 variants and the §3 manufactured-value ablation.
// ----------------------------------------------------------------------

/// Variant matrix: do the failure-oblivious variants keep all five
/// servers alive through their attacks?
pub fn variants_matrix() -> Vec<(Mode, Vec<(&'static str, bool)>)> {
    [Mode::FailureOblivious, Mode::Boundless, Mode::Redirect]
        .into_iter()
        .map(|mode| {
            let survived: Vec<(&'static str, bool)> = security_matrix(mode)
                .into_iter()
                .map(|c| {
                    let ok = c.init_ok && c.serves_after && !c.attack.contains("crash");
                    (c.server, ok)
                })
                .collect();
            (mode, survived)
        })
        .collect()
}

/// Outcome of the manufactured-value ablation for one strategy.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Strategy description.
    pub strategy: String,
    /// Whether the MC `'/'` scan terminated.
    pub terminated: bool,
    /// Manufactured reads consumed before exit (when terminated).
    pub reads: u64,
}

/// Reproduces the §3 discussion: the MC scan loop under different
/// manufactured-value strategies.
pub fn ablation_values() -> Vec<AblationResult> {
    use foc_memory::ValueSequence;
    use foc_vm::{Machine, MachineConfig};
    let strategies: Vec<(String, ValueSequence)> = vec![
        ("cycling (paper)".into(), ValueSequence::default()),
        ("zero".into(), ValueSequence::Zero),
        ("constant 1".into(), ValueSequence::Constant(1)),
        ("constant '/'".into(), ValueSequence::Constant(47)),
    ];
    strategies
        .into_iter()
        .map(|(strategy, seq)| {
            let mut cfg = MachineConfig::with_mode(Mode::FailureOblivious);
            cfg.mem.sequence = seq;
            cfg.fuel_per_call = 2_000_000;
            let mut m = Machine::from_source(mc::MC_SOURCE, cfg).expect("compile");
            let p = m.alloc_cstring(b"noslashhere").expect("alloc");
            match m.call("mc_component_end", &[p as i64]) {
                Ok(_) => AblationResult {
                    strategy,
                    terminated: true,
                    reads: m.space().error_log().total_reads(),
                },
                Err(_) => AblationResult {
                    strategy,
                    terminated: false,
                    reads: m.space().error_log().total_reads(),
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_holds() {
        let rows = fig2_pine();
        let read = rows[0].slowdown();
        let compose = rows[1].slowdown();
        let mv = rows[2].slowdown();
        assert!(read > 2.0, "Pine Read slowdown {read}");
        assert!(compose > 2.0, "Pine Compose slowdown {compose}");
        assert!(mv < 2.0, "Pine Move slowdown {mv}");
        assert!(mv < read && mv < compose, "Move is the cheapest");
    }

    #[test]
    fn fig3_shape_holds() {
        let rows = fig3_apache();
        assert!(
            rows[0].slowdown() < 1.3,
            "Apache Small {}",
            rows[0].slowdown()
        );
        assert!(
            rows[1].slowdown() < 1.1,
            "Apache Large {}",
            rows[1].slowdown()
        );
        assert!(
            rows[1].slowdown() < rows[0].slowdown() + 0.25,
            "larger transfers amortise better"
        );
    }

    #[test]
    fn fig4_shape_holds() {
        let rows = fig4_sendmail();
        for r in &rows {
            let s = r.slowdown();
            assert!(s > 1.5 && s < 8.0, "{}: slowdown {s}", r.request);
        }
        // Flat across sizes, as in the paper.
        let ratio = rows[0].slowdown() / rows[1].slowdown();
        assert!(ratio > 0.45 && ratio < 2.2, "flatness ratio {ratio}");
    }

    #[test]
    fn fig5_shape_holds() {
        let rows = fig5_mc();
        let copy = rows[0].slowdown();
        assert!(copy > 1.02 && copy < 2.5, "MC Copy slowdown {copy}");
        let delete = rows[3].slowdown();
        assert!(delete < copy + 1.0, "Delete stays modest: {delete}");
    }

    #[test]
    fn fig6_shape_holds() {
        let rows = fig6_mutt();
        let read = rows[0].slowdown();
        let mv = rows[1].slowdown();
        assert!(read > 1.8, "Mutt Read slowdown {read}");
        assert!(mv < read, "Move ({mv}) below Read ({read})");
    }

    #[test]
    fn throughput_ordering_matches_paper() {
        let r = apache_throughput(120);
        assert_eq!(r[0].mode, Mode::FailureOblivious);
        assert_eq!(r[0].child_deaths, 0);
        assert!(
            r[0].throughput > 2.0 * r[1].throughput,
            "FO >> Bounds Check"
        );
        assert!(r[0].throughput > 2.0 * r[2].throughput, "FO >> Standard");
        // Standard children process faster than checked ones, so Standard
        // edges out Bounds Check — the paper's 4.8x vs 5.7x ordering.
        assert!(r[2].throughput >= r[1].throughput * 0.95);
    }

    #[test]
    fn security_matrix_matches_paper_qualitative_results() {
        // Failure-oblivious: everything up, everything served.
        for cell in security_matrix(Mode::FailureOblivious) {
            assert!(cell.init_ok, "{}: FO init", cell.server);
            assert!(cell.serves_after, "{}: FO post-attack", cell.server);
        }
        // Bounds Check: Pine/Sendmail/MC die at init; Apache/Mutt die at
        // the attack.
        let bc = security_matrix(Mode::BoundsCheck);
        let by_name = |n: &str| bc.iter().find(|c| c.server == n).unwrap().clone();
        assert!(!by_name("Pine").init_ok);
        assert!(!by_name("Sendmail").init_ok);
        assert!(!by_name("MC").init_ok);
        assert!(by_name("Apache").attack.contains("memory-error"));
        assert!(!by_name("Mutt").serves_after);
        // Standard: Apache and Mutt crash on the attack.
        let std = security_matrix(Mode::Standard);
        let by_name = |n: &str| std.iter().find(|c| c.server == n).unwrap().clone();
        assert!(by_name("Apache").attack.contains("crash"));
        assert!(by_name("Mutt").attack.contains("crash"));
        assert!(by_name("Sendmail").attack.contains("crash"));
    }

    #[test]
    fn variants_all_survive() {
        for (mode, cells) in variants_matrix() {
            for (server, ok) in cells {
                assert!(ok, "{server} under {mode:?}");
            }
        }
    }

    #[test]
    fn ablation_only_slash_capable_sequences_terminate() {
        let results = ablation_values();
        assert!(results[0].terminated, "cycling must terminate");
        assert!(!results[1].terminated, "zero must hang");
        assert!(!results[2].terminated, "constant 1 must hang");
        assert!(results[3].terminated, "constant '/' must terminate");
        assert!(results[0].reads > results[3].reads);
    }
}
