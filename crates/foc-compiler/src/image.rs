//! Shared compiled images: a content-addressed, cheaply-cloneable
//! wrapper around [`CompiledProgram`].
//!
//! A farm of thousands of server processes runs the *same* five compiled
//! programs. Before this layer existed every [`foc_vm::Machine`] owned its
//! `CompiledProgram` by value, so every boot (and every supervisor
//! restart) recompiled the MiniC source and then carried a private copy
//! of the bytecode. [`ProgramImage`] holds the program behind an `Arc`,
//! so loading a machine is a pointer clone, images can be interned in
//! per-server caches, and concurrent farm threads share one allocation.
//!
//! Every image carries a [`ProgramId`]: a stable 64-bit FNV-1a content
//! hash over the complete compiled artifact (functions, frame layouts,
//! bytecode, global images, relocations, string table). Two compilations
//! of the same source — on any host, in any process — produce the same
//! id, which is what lets caches, tests, and reports talk about "the
//! Apache image" without comparing whole programs structurally.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

use crate::bytecode::CompiledProgram;
use crate::native::NativeProgram;

/// Stable identity of a compiled program: a 64-bit FNV-1a hash of its
/// full content. Equal ids mean byte-identical images.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(u64);

impl ProgramId {
    /// Computes the id of a program by hashing its entire content.
    pub fn of(program: &CompiledProgram) -> ProgramId {
        let mut h = Fnv1a::new();
        program.hash(&mut h);
        ProgramId(h.finish())
    }

    /// Content id of a program plus an artifact tag. The native tier
    /// runs the *same* fused bytecode as the super tier with an extra
    /// lowered artifact attached; mixing the tag into the hash keeps the
    /// two images from aliasing in id-keyed caches.
    pub fn of_tagged(program: &CompiledProgram, tag: &str) -> ProgramId {
        let mut h = Fnv1a::new();
        program.hash(&mut h);
        tag.hash(&mut h);
        ProgramId(h.finish())
    }

    /// The raw 64-bit hash value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A shared, immutable compiled program plus its content id.
///
/// Cloning is an `Arc` bump — the whole point. `Deref`s to
/// [`CompiledProgram`], so existing read paths (`image.funcs`,
/// `image.func_index(..)`) work unchanged.
#[derive(Debug, Clone)]
pub struct ProgramImage {
    id: ProgramId,
    program: Arc<CompiledProgram>,
    native: Option<Arc<NativeProgram>>,
}

impl ProgramImage {
    /// Wraps a freshly compiled program, computing its content id once.
    pub fn new(program: CompiledProgram) -> ProgramImage {
        let id = ProgramId::of(&program);
        ProgramImage {
            id,
            program: Arc::new(program),
            native: None,
        }
    }

    /// Wraps a fused program together with its native-tier artifact.
    /// The bytecode is byte-identical to the super tier's, so the id
    /// carries a tag to keep the two from aliasing in any id-keyed
    /// cache; the artifact itself rides the `Arc` through machine
    /// clones and checkpoint restores.
    pub fn with_native(program: CompiledProgram, native: NativeProgram) -> ProgramImage {
        let id = ProgramId::of_tagged(&program, "native");
        ProgramImage {
            id,
            program: Arc::new(program),
            native: Some(Arc::new(native)),
        }
    }

    /// The stable content id.
    pub fn id(&self) -> ProgramId {
        self.id
    }

    /// The underlying program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The native-tier artifact, when this image was lowered for
    /// `ExecTier::Native`.
    pub fn native(&self) -> Option<&NativeProgram> {
        self.native.as_deref()
    }

    /// How many machines/caches currently share this image (diagnostic).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.program)
    }
}

impl Deref for ProgramImage {
    type Target = CompiledProgram;

    fn deref(&self) -> &CompiledProgram {
        &self.program
    }
}

impl PartialEq for ProgramImage {
    fn eq(&self, other: &ProgramImage) -> bool {
        self.id == other.id
    }
}

impl Eq for ProgramImage {}

/// 64-bit FNV-1a. `std::hash::DefaultHasher` makes no cross-version
/// stability promise, and the derived `Hash` impls feed lengths through
/// `write_usize`/`write_length_prefix` (platform-width). This hasher
/// folds every write into the FNV state as little-endian `u64`s, so the
/// resulting [`ProgramId`] is identical on every platform and toolchain.
///
/// Public because it is the workspace's one stable content-hash
/// primitive: the sweep engine keys transcripts and cell fingerprints
/// with it too.
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    const SRC_A: &str = "int f(int x) { return x + 1; }";
    const SRC_B: &str = "int f(int x) { return x + 2; }";

    #[test]
    fn same_source_same_id() {
        let a = ProgramImage::new(compile_source(SRC_A).unwrap());
        let b = ProgramImage::new(compile_source(SRC_A).unwrap());
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
    }

    #[test]
    fn different_source_different_id() {
        let a = ProgramImage::new(compile_source(SRC_A).unwrap());
        let b = ProgramImage::new(compile_source(SRC_B).unwrap());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clone_shares_the_allocation() {
        let a = ProgramImage::new(compile_source(SRC_A).unwrap());
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        assert!(std::ptr::eq(a.program(), b.program()));
        assert!(a.ref_count() >= 2);
    }

    #[test]
    fn deref_exposes_the_program() {
        let a = ProgramImage::new(compile_source(SRC_A).unwrap());
        assert!(a.func_index("f").is_some());
        assert!(a.instr_count() > 0);
    }

    #[test]
    fn id_renders_as_hex() {
        let a = ProgramImage::new(compile_source(SRC_A).unwrap());
        let s = a.id().to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
