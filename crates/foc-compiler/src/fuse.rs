//! Superinstruction fusion — the `ExecTier::Super` lowering post-pass.
//!
//! The pass rewrites each function's bytecode in place, fusing hot
//! instruction shapes (compare-and-branch loop heads, constant-index
//! array accesses, direct-local increments, constant ALU operands,
//! assignment tails, pointer dereferences) into single fused opcodes the
//! VM dispatches once instead of `k` times.
//!
//! ## Layout preservation
//!
//! Fusion never changes code length and never rewrites a jump target.
//! The fused opcode replaces only the *first* instruction of its
//! pattern; the remaining `k - 1` component instructions stay in their
//! slots. Consequences:
//!
//! * a jump into the middle of a fused region lands on original,
//!   unfused instructions and executes the pattern's tail exactly as
//!   the baseline tier would;
//! * the VM can *deopt* out of a fused opcode (when remaining fuel
//!   cannot cover the whole pattern) by executing just the first
//!   component and resuming the interpreter at `pc + 1` — mid-pattern
//!   fuel exhaustion then lands on the same architectural state,
//!   instruction counts, and fault pc as the baseline tier.
//!
//! ## Accounting contract
//!
//! A fused opcode charges exactly `k` fuel units, `k` instruction
//! counts, and `k * cost::BASE` cycles (plus the same `PTR_CHECK` /
//! `MEM_CHECK` extras its components charge), and presents memory
//! accesses with the same `AccessCtx { func, pc }` the unfused pattern
//! would — error-log contents are byte-identical across tiers. Patterns
//! are chosen so only their *last* component can fault (loads/stores);
//! division stays unfused because its divide-by-zero fault point must
//! remain a separate architectural instruction.

use std::sync::OnceLock;

use foc_memory::AccessSize;

use crate::bytecode::{pack_scalar, AluOp, CmpOp, CompiledProgram, Instr};

/// Execution tier of a compiled image.
///
/// The tier is part of every boot spec: fused and unfused images hash to
/// different [`crate::ProgramId`]s (the bytecode differs), so they never
/// alias in the image or checkpoint caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecTier {
    /// The unfused baseline instruction stream straight out of `lower`.
    #[default]
    Baseline,
    /// The superinstruction stream produced by [`fuse_program`].
    Super,
    /// The fused stream plus an AOT-lowered region artifact
    /// ([`crate::native::lower_native`]): straight-line runs execute as
    /// pre-decoded micro-op arrays with no per-instruction dispatch,
    /// deopting to the interpreter at the same seams the fused opcodes
    /// use.
    Native,
}

/// Environment variable selecting the session-default tier
/// (`baseline`, `super`, or `native`; unset means baseline).
pub const EXEC_TIER_ENV: &str = "FOC_EXEC_TIER";

impl ExecTier {
    /// Every tier, in cache-slot order.
    pub const ALL: [ExecTier; 3] = [ExecTier::Baseline, ExecTier::Super, ExecTier::Native];

    /// Dense index (cache slot).
    pub fn index(self) -> usize {
        match self {
            ExecTier::Baseline => 0,
            ExecTier::Super => 1,
            ExecTier::Native => 2,
        }
    }

    /// Stable label used in reports and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Baseline => "baseline",
            ExecTier::Super => "super",
            ExecTier::Native => "native",
        }
    }

    /// The session default from `FOC_EXEC_TIER`; unset means baseline.
    /// An unknown value is a configuration error: the process exits with
    /// a one-line diagnostic listing the valid tiers rather than
    /// silently running a different tier than the operator asked for.
    /// Read once per process.
    pub fn from_env() -> ExecTier {
        static TIER: OnceLock<ExecTier> = OnceLock::new();
        *TIER.get_or_init(|| match std::env::var(EXEC_TIER_ENV) {
            Ok(v) => v.parse().unwrap_or_else(|e| {
                eprintln!("{EXEC_TIER_ENV}: {e}");
                std::process::exit(2);
            }),
            Err(_) => ExecTier::Baseline,
        })
    }
}

impl std::str::FromStr for ExecTier {
    type Err = String;

    /// Case-insensitive tier name; the error message lists the valid
    /// spellings so a typo in `FOC_EXEC_TIER` is self-diagnosing.
    fn from_str(s: &str) -> Result<ExecTier, String> {
        for tier in ExecTier::ALL {
            if s.eq_ignore_ascii_case(tier.label()) {
                return Ok(tier);
            }
        }
        Err(format!(
            "unknown execution tier {s:?} (valid tiers: baseline, super, native)"
        ))
    }
}

/// Runs the fusion pass over every function of a program, returning the
/// fused copy. The input program is left untouched (the baseline image
/// may already be shared).
pub fn fuse_program(program: &CompiledProgram) -> CompiledProgram {
    let mut fused = program.clone();
    for func in &mut fused.funcs {
        fuse_code(&mut func.code);
    }
    fused
}

/// Fuses one function's code in place. Scanning is greedy left-to-right,
/// longest pattern first; after a fusion the scan resumes past the whole
/// pattern so fused regions never overlap (their tail slots must keep
/// the original instructions).
fn fuse_code(code: &mut [Instr]) {
    let mut i = 0;
    while i < code.len() {
        if let Some((fused, k)) = match_at(code, i) {
            code[i] = fused;
            i += k;
        } else {
            i += 1;
        }
    }
}

/// Tries every fusion pattern at index `i`, longest first. Returns the
/// fused opcode and the component count `k` on a match.
fn match_at(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    match_load_idx_accum(code, i)
        .or_else(|| match_inc_jump(code, i))
        .or_else(|| match_inc_local(code, i))
        .or_else(|| match_cmp_jump(code, i))
        .or_else(|| match_local_idx(code, i))
        .or_else(|| match_store_local_pop(code, i))
        .or_else(|| match_load_load(code, i))
        .or_else(|| match_const_alu(code, i))
}

fn cmp_op_of(instr: Instr) -> Option<CmpOp> {
    Some(match instr {
        Instr::Eq => CmpOp::Eq,
        Instr::Ne => CmpOp::Ne,
        Instr::LtS => CmpOp::LtS,
        Instr::LtU => CmpOp::LtU,
        Instr::LeS => CmpOp::LeS,
        Instr::LeU => CmpOp::LeU,
        Instr::GtS => CmpOp::GtS,
        Instr::GtU => CmpOp::GtU,
        Instr::GeS => CmpOp::GeS,
        Instr::GeU => CmpOp::GeU,
        _ => return None,
    })
}

fn alu_op_of(instr: Instr) -> Option<AluOp> {
    Some(match instr {
        Instr::Add => AluOp::Add,
        Instr::Sub => AluOp::Sub,
        Instr::Mul => AluOp::Mul,
        Instr::And => AluOp::And,
        Instr::Or => AluOp::Or,
        Instr::Xor => AluOp::Xor,
        Instr::Shl => AluOp::Shl,
        Instr::ShrS => AluOp::ShrS,
        Instr::ShrU => AluOp::ShrU,
        _ => return None,
    })
}

/// `LoadLocal a; LoadLocal b; <cmp>; Normalize; JumpIf(Not)Zero t` →
/// `FusedCmpJump` (k = 5), the canonical loop head: comparisons produce
/// an `int`, so lowering re-normalizes the flag before the branch. The
/// `Normalize` is an identity on the comparison's 0/1 result, and the
/// branch sense is folded into the stored comparison (jump-when-true).
fn match_cmp_jump(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    let [Instr::LoadLocal(a, asz, asg), Instr::LoadLocal(b, bsz, bsg), cmp, Instr::Normalize(..), branch] =
        *code.get(i..i + 5)?
    else {
        return None;
    };
    let op = cmp_op_of(cmp)?;
    let (op, target) = match branch {
        Instr::JumpIfNotZero(t) => (op, t),
        Instr::JumpIfZero(t) => (op.negate(), t),
        _ => return None,
    };
    Some((
        Instr::FusedCmpJump {
            a,
            b,
            a_repr: pack_scalar(asz, asg),
            b_repr: pack_scalar(bsz, bsg),
            op,
            target,
        },
        5,
    ))
}

/// `LoadLocal acc; LocalAddr; Const idx; PtrAdd esz; Load; Add; Dup;
/// StoreLocal acc; Drop` → `FusedLoadIdxAccum` (k = 9) — the whole
/// `acc += xs[IDX]` statement, the inner-loop body of every scan/sum
/// kernel. The index is folded into a byte delta at fusion time
/// (`ptr_add` only consumes the product), which is also why fusion
/// requires the product to fit `i32` without overflow: when it does,
/// the folded arithmetic matches the runtime `wrapping_mul` exactly.
fn match_load_idx_accum(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    let [Instr::LoadLocal(acc, asz, asg), Instr::LocalAddr(addr), Instr::Const(c), Instr::PtrAdd(esz), Instr::Load(lsz, lsg), Instr::Add, Instr::Dup, Instr::StoreLocal(dst, ssz), Instr::Drop] =
        *code.get(i..i + 9)?
    else {
        return None;
    };
    // The accumulate idiom: store back into the local that was loaded.
    if dst != acc {
        return None;
    }
    let delta = i32::try_from(c.checked_mul(esz as i64)?).ok()?;
    Some((
        Instr::FusedLoadIdxAccum {
            acc,
            addr,
            delta,
            load_repr: pack_scalar(lsz, lsg),
            acc_repr: pack_scalar(asz, asg),
            size: ssz,
        },
        9,
    ))
}

/// `LocalAddr; Const idx; PtrAdd esz; Load|Store` →
/// `FusedLocalIdxLoad|Store` (k = 4) — the constant-index array access,
/// in or out of bounds (the fused path still routes through `ptr_add`
/// and the checked access, so OOB interning, logging, and manufactured
/// values are identical).
fn match_local_idx(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    let [Instr::LocalAddr(off), Instr::Const(c), Instr::PtrAdd(esz), access] =
        *code.get(i..i + 4)?
    else {
        return None;
    };
    let idx = i32::try_from(c).ok()?;
    let esz = u16::try_from(esz).ok()?;
    let fused = match access {
        Instr::Load(size, signed) => Instr::FusedLocalIdxLoad {
            off,
            idx,
            esz,
            repr: pack_scalar(size, signed),
        },
        Instr::Store(size) => Instr::FusedLocalIdxStore {
            off,
            idx,
            esz,
            size,
        },
        _ => return None,
    };
    Some((fused, 4))
}

/// Direct-local increment statements (k = 6 without `Normalize`, 7 with):
///
/// * postfix `i++;` — `LoadLocal; Dup; Const d; Add; [Normalize;]
///   StoreLocal; Drop`
/// * prefix `++i;` — `LoadLocal; Const d; Add; [Normalize;] Dup;
///   StoreLocal; Drop`
///
/// Both shapes leave the stack untouched and store
/// `normalize(local + d)`; the fused opcode only needs the first
/// component (`LoadLocal`) for the deopt path, so one opcode covers all
/// four shapes.
fn match_inc_local(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    let Instr::LoadLocal(off, size, signed) = *code.get(i)? else {
        return None;
    };
    let rest = code.get(i + 1..)?;
    // Split the two shapes on the position of `Dup`.
    let (delta, after_add) = match *rest {
        [Instr::Dup, Instr::Const(d), Instr::Add, ..] => (d, &rest[3..]),
        [Instr::Const(d), Instr::Add, ..] => (d, &rest[2..]),
        _ => return None,
    };
    let postfix = matches!(rest[0], Instr::Dup);
    let delta = i32::try_from(delta).ok()?;
    // Narrow locals re-normalize after the add; B8 locals never do.
    let after_norm = match *after_add.first()? {
        Instr::Normalize(nsz, nsg) if nsz == size && nsg == signed && size != AccessSize::B8 => {
            &after_add[1..]
        }
        _ if size == AccessSize::B8 => after_add,
        _ => return None,
    };
    let has_norm = !std::ptr::eq(after_norm.as_ptr(), after_add.as_ptr());
    let tail_ok = if postfix {
        matches!(*after_norm, [Instr::StoreLocal(o, s), Instr::Drop, ..] if o == off && s == size)
    } else {
        matches!(
            *after_norm,
            [Instr::Dup, Instr::StoreLocal(o, s), Instr::Drop, ..] if o == off && s == size
        )
    };
    if !tail_ok {
        return None;
    }
    let len = 6 + has_norm as u8;
    Some((
        Instr::FusedIncLocal {
            off,
            delta,
            repr: pack_scalar(size, signed),
            len,
        },
        len as usize,
    ))
}

/// An increment statement followed by an unconditional `Jump` — the
/// loop latch every counted loop executes per iteration — fuses into
/// one dispatch (k = 7 or 8, jump included).
fn match_inc_jump(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    let (
        Instr::FusedIncLocal {
            off,
            delta,
            repr,
            len,
        },
        k,
    ) = match_inc_local(code, i)?
    else {
        return None;
    };
    let Instr::Jump(target) = *code.get(i + k)? else {
        return None;
    };
    Some((
        Instr::FusedIncJump {
            off,
            delta,
            repr,
            len: len + 1,
            target,
        },
        k + 1,
    ))
}

/// `Dup; StoreLocal; Drop` → `FusedStoreLocalPop` (k = 3) — the
/// direct-local assignment statement tail.
fn match_store_local_pop(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    let [Instr::Dup, Instr::StoreLocal(off, size), Instr::Drop] = *code.get(i..i + 3)? else {
        return None;
    };
    Some((Instr::FusedStoreLocalPop { off, size }, 3))
}

/// `LoadLocal (B8); Load` → `FusedLoadLoad` (k = 2) — dereference of a
/// pointer held in a scalar local. Only pointer-width locals qualify
/// (narrow locals cannot hold a guest address).
fn match_load_load(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    let [Instr::LoadLocal(off, AccessSize::B8, _), Instr::Load(size, signed)] =
        *code.get(i..i + 2)?
    else {
        return None;
    };
    Some((
        Instr::FusedLoadLoad {
            off,
            repr: pack_scalar(size, signed),
        },
        2,
    ))
}

/// `Const c; <alu>` → `FusedConstAlu` (k = 2). Comparisons are excluded
/// (they would defeat the VM's runtime compare+branch peephole) and so
/// are division/remainder (fault-point preservation).
fn match_const_alu(code: &[Instr], i: usize) -> Option<(Instr, usize)> {
    let [Instr::Const(c), alu] = *code.get(i..i + 2)? else {
        return None;
    };
    let op = alu_op_of(alu)?;
    let c = i32::try_from(c).ok()?;
    Some((Instr::FusedConstAlu { c, op }, 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    fn fused_main(source: &str) -> Vec<Instr> {
        let program = compile_source(source).expect("compiles");
        let fused = fuse_program(&program);
        let idx = fused.func_index("main").unwrap() as usize;
        fused.funcs[idx].code.clone()
    }

    fn count_fused(code: &[Instr]) -> usize {
        code.iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::FusedCmpJump { .. }
                        | Instr::FusedLoadIdxAccum { .. }
                        | Instr::FusedLocalIdxLoad { .. }
                        | Instr::FusedLocalIdxStore { .. }
                        | Instr::FusedIncLocal { .. }
                        | Instr::FusedIncJump { .. }
                        | Instr::FusedConstAlu { .. }
                        | Instr::FusedStoreLocalPop { .. }
                        | Instr::FusedLoadLoad { .. }
                )
            })
            .count()
    }

    #[test]
    fn instr_stays_within_16_bytes() {
        // `Const(i64)` sets the floor; the fused payloads must not grow
        // the enum past it (interpreter code-cache footprint).
        assert_eq!(std::mem::size_of::<Instr>(), 16);
    }

    #[test]
    fn fusion_preserves_code_length_and_tails() {
        let program = compile_source(
            "long spin(long n) { int xs[2]; long i; long acc = 0; \
             for (i = 0; i < n; i++) acc += xs[5]; return acc; }
             int main() { return 0; }",
        )
        .unwrap();
        let fused = fuse_program(&program);
        for (f, g) in program.funcs.iter().zip(&fused.funcs) {
            assert_eq!(f.code.len(), g.code.len(), "{}: length changed", f.name);
            for (i, (a, b)) in f.code.iter().zip(&g.code).enumerate() {
                if a != b {
                    // Only pattern heads are rewritten, and always to a
                    // fused opcode.
                    assert_eq!(count_fused(&[*b]), 1, "{}@{i}: {a} -> {b}", f.name);
                }
            }
        }
    }

    #[test]
    fn spin_loop_fuses_head_body_and_step() {
        let code = fused_main(
            "int main() { int xs[2]; long i; long acc = 0; long n = 4; \
             for (i = 0; i < n; i++) acc += xs[1]; return 0; }",
        );
        assert!(
            code.iter().any(|i| matches!(i, Instr::FusedCmpJump { .. })),
            "loop head fuses: {code:?}"
        );
        assert!(
            code.iter()
                .any(|i| matches!(i, Instr::FusedLoadIdxAccum { .. })),
            "accumulate body fuses whole: {code:?}"
        );
        assert!(
            code.iter().any(|i| matches!(i, Instr::FusedIncJump { .. })),
            "loop latch (step + back-jump) fuses: {code:?}"
        );
    }

    #[test]
    fn accum_mega_op_folds_index_and_keeps_smaller_fusions_elsewhere() {
        // `acc += xs[5]` with int elements folds to a byte delta of 20;
        // a non-accumulate read of the same array still takes the
        // smaller `FusedLocalIdxLoad`.
        let code = fused_main(
            "int main() { int xs[2]; long acc = 0; \
             acc += xs[5]; return (int) (acc + xs[1]); }",
        );
        let delta = code.iter().find_map(|i| match i {
            Instr::FusedLoadIdxAccum { delta, .. } => Some(*delta),
            _ => None,
        });
        assert_eq!(delta, Some(20), "{code:?}");
        assert!(
            code.iter()
                .any(|i| matches!(i, Instr::FusedLocalIdxLoad { .. })),
            "{code:?}"
        );
    }

    #[test]
    fn const_index_store_fuses() {
        let code = fused_main("int main() { int xs[2]; xs[5] = 7; return 0; }");
        assert!(
            code.iter()
                .any(|i| matches!(i, Instr::FusedLocalIdxStore { .. })),
            "{code:?}"
        );
    }

    #[test]
    fn pointer_deref_fuses() {
        let code = fused_main("int main() { int x; int *p; p = &x; *p = 3; return *p; }");
        assert!(
            code.iter()
                .any(|i| matches!(i, Instr::FusedLoadLoad { .. })),
            "{code:?}"
        );
    }

    #[test]
    fn division_never_fuses() {
        // Div/Rem keep their own dispatch slot so the divide-by-zero
        // fault pc stays architectural.
        let code = fused_main("int main() { int a; a = 9; return a / 3 + a % 2; }");
        assert!(code.contains(&Instr::DivS), "{code:?}");
        assert!(code.contains(&Instr::RemS), "{code:?}");
    }

    #[test]
    fn cmp_jump_folds_branch_sense() {
        // `while (i < n)` compiles to LtS + JumpIfZero(end): the fused
        // opcode must jump on the *negated* comparison.
        let code = fused_main(
            "int main() { long i; long n = 3; i = 0; while (i < n) { i++; } return 0; }",
        );
        let fused = code.iter().find_map(|i| match i {
            Instr::FusedCmpJump { op, .. } => Some(*op),
            _ => None,
        });
        assert_eq!(fused, Some(CmpOp::GeS), "{code:?}");
    }

    #[test]
    fn tier_labels_and_slots_are_stable() {
        assert_eq!(ExecTier::Baseline.label(), "baseline");
        assert_eq!(ExecTier::Super.label(), "super");
        assert_eq!(ExecTier::Native.label(), "native");
        assert_eq!(ExecTier::Baseline.index(), 0);
        assert_eq!(ExecTier::Super.index(), 1);
        assert_eq!(ExecTier::Native.index(), 2);
    }

    #[test]
    fn tier_parsing_round_trips_and_rejects_unknown_values() {
        for tier in ExecTier::ALL {
            assert_eq!(tier.label().parse::<ExecTier>(), Ok(tier));
            assert_eq!(tier.label().to_uppercase().parse::<ExecTier>(), Ok(tier));
        }
        let err = "jit".parse::<ExecTier>().unwrap_err();
        assert!(err.contains("\"jit\""), "error names the bad value: {err}");
        for valid in ["baseline", "super", "native"] {
            assert!(err.contains(valid), "error lists {valid}: {err}");
        }
        assert!("".parse::<ExecTier>().is_err());
    }
}
