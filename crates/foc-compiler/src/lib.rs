//! MiniC bytecode compiler.
//!
//! Lowers the typed HIR from `foc-lang` into a stack-machine bytecode whose
//! memory instructions are exactly the operations the `foc-memory`
//! substrate checks:
//!
//! * [`bytecode::Instr::Load`] / [`bytecode::Instr::Store`] — every scalar
//!   access the program performs, subject to the mode's checking and
//!   continuation code at run time;
//! * [`bytecode::Instr::PtrAdd`] — instrumented pointer arithmetic (the
//!   Jones & Kelly / CRED hook that classifies derived pointers as in- or
//!   out-of-bounds);
//! * [`bytecode::Instr::EffAddr`] — pointer-to-integer bridging so that
//!   comparisons and casts involving out-of-bounds pointers behave as CRED
//!   specifies.
//!
//! There is deliberately no "unsafe" variant of the instruction set: the
//! *same* compiled program runs under every policy; the execution mode of
//! the memory space decides whether checks happen. This mirrors the
//! paper's methodology of compiling one source three ways, while keeping
//! compiled images byte-identical across modes (stronger than the paper:
//! any behavioural difference is attributable to the policy alone).

pub mod bytecode;
pub mod fuse;
pub mod image;
pub mod lower;
pub mod native;

pub use bytecode::{AluOp, CmpOp, CompiledFunc, CompiledProgram, FrameLayout, GlobalImage, Instr};
pub use fuse::{fuse_program, ExecTier, EXEC_TIER_ENV};
pub use image::{Fnv1a, ProgramId, ProgramImage};
pub use lower::{compile, CompileError};
pub use native::{lower_native, NativeProgram};

/// Convenience: front end plus lowering in one call.
pub fn compile_source(source: &str) -> Result<CompiledProgram, String> {
    let program = foc_lang::frontend(source).map_err(|e| e.to_string())?;
    compile(&program).map_err(|e| e.to_string())
}

/// Compiles source straight into a shareable [`ProgramImage`] — the
/// entry point machines and image caches use. Always the baseline tier;
/// see [`compile_image_tier`] for the fused stream.
pub fn compile_image(source: &str) -> Result<ProgramImage, String> {
    compile_image_tier(source, ExecTier::Baseline)
}

/// Compiles source into a [`ProgramImage`] for the given execution
/// tier. Every tier's image has a distinct [`ProgramId`] — the fused
/// bytecode differs from the baseline, and the native image (same fused
/// bytecode plus the AOT region artifact) carries a tag in its id — so
/// tiered images never alias in downstream caches.
pub fn compile_image_tier(source: &str, tier: ExecTier) -> Result<ProgramImage, String> {
    let program = compile_source(source)?;
    Ok(match tier {
        ExecTier::Baseline => ProgramImage::new(program),
        ExecTier::Super => ProgramImage::new(fuse_program(&program)),
        ExecTier::Native => {
            let fused = fuse_program(&program);
            let native = lower_native(&fused.funcs);
            ProgramImage::with_native(fused, native)
        }
    })
}
