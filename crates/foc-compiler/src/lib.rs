//! MiniC bytecode compiler.
//!
//! Lowers the typed HIR from `foc-lang` into a stack-machine bytecode whose
//! memory instructions are exactly the operations the `foc-memory`
//! substrate checks:
//!
//! * [`bytecode::Instr::Load`] / [`bytecode::Instr::Store`] — every scalar
//!   access the program performs, subject to the mode's checking and
//!   continuation code at run time;
//! * [`bytecode::Instr::PtrAdd`] — instrumented pointer arithmetic (the
//!   Jones & Kelly / CRED hook that classifies derived pointers as in- or
//!   out-of-bounds);
//! * [`bytecode::Instr::EffAddr`] — pointer-to-integer bridging so that
//!   comparisons and casts involving out-of-bounds pointers behave as CRED
//!   specifies.
//!
//! There is deliberately no "unsafe" variant of the instruction set: the
//! *same* compiled program runs under every policy; the execution mode of
//! the memory space decides whether checks happen. This mirrors the
//! paper's methodology of compiling one source three ways, while keeping
//! compiled images byte-identical across modes (stronger than the paper:
//! any behavioural difference is attributable to the policy alone).

pub mod bytecode;
pub mod image;
pub mod lower;

pub use bytecode::{CompiledFunc, CompiledProgram, FrameLayout, GlobalImage, Instr};
pub use image::{Fnv1a, ProgramId, ProgramImage};
pub use lower::{compile, CompileError};

/// Convenience: front end plus lowering in one call.
pub fn compile_source(source: &str) -> Result<CompiledProgram, String> {
    let program = foc_lang::frontend(source).map_err(|e| e.to_string())?;
    compile(&program).map_err(|e| e.to_string())
}

/// Compiles source straight into a shareable [`ProgramImage`] — the
/// entry point machines and image caches use.
pub fn compile_image(source: &str) -> Result<ProgramImage, String> {
    compile_source(source).map(ProgramImage::new)
}
