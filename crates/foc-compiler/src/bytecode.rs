//! The stack-machine instruction set and compiled program image.

use std::fmt;

use foc_lang::hir::Builtin;
use foc_memory::AccessSize;

/// One bytecode instruction.
///
/// The evaluation stack holds `i64` values. Pointers are guest addresses
/// (possibly out-of-bounds descriptor addresses). All arithmetic operates
/// on the canonical representation: values of narrow C types are kept
/// sign- or zero-extended according to their static type, re-established
/// by [`Instr::Normalize`] after operations that may overflow the type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Push a constant.
    Const(i64),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Swap the top two values.
    Swap,
    /// Rotate the top three values: `[a, b, c] → [b, c, a]` (top is `c`).
    Rot3,

    /// Push the address of a local slot (frame base + offset).
    LocalAddr(u32),
    /// Push the address of a global (loader-assigned).
    GlobalAddr(u32),
    /// Push the address of an interned string literal.
    StrAddr(u32),

    /// Pop an address; load `size` bytes; sign-extend when `signed`.
    Load(AccessSize, bool),
    /// Pop an address, pop a value; store the low `size` bytes.
    Store(AccessSize),
    /// Direct scalar load from the local slot at the given frame offset.
    ///
    /// Scalar locals are direct stack slots the safe-C compilers never
    /// instrument (a native compiler would keep them in registers), so
    /// these execute unchecked in every mode. Accesses to a local through
    /// a *pointer* still compile to [`Instr::Load`]/[`Instr::Store`] and
    /// are checked.
    LoadLocal(u32, AccessSize, bool),
    /// Direct scalar store to the local slot at the given frame offset
    /// (pops the value).
    StoreLocal(u32, AccessSize),

    /// Binary arithmetic: pop rhs, pop lhs, push result.
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Eq,
    Ne,
    LtS,
    LtU,
    LeS,
    LeU,
    GtS,
    GtU,
    GeS,
    GeU,

    /// Unary: pop, push.
    Neg,
    BitNot,
    /// Logical not: push 1 if zero else 0.
    Not,

    /// Re-normalize the top value to the given width/signedness.
    Normalize(AccessSize, bool),
    /// Replace a pointer with its effective (intended) address.
    EffAddr,
    /// Pop element count, pop pointer; push `ptr + count * elem_size`
    /// through the checked pointer-arithmetic path.
    PtrAdd(u64),
    /// Pop rhs pointer, pop lhs pointer; push `(lhs - rhs) / elem_size`.
    PtrDiff(u64),

    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfZero(u32),
    /// Pop; jump when non-zero.
    JumpIfNotZero(u32),

    /// Call a user function: pops its arguments (last on top).
    Call(u32),
    /// Call a runtime builtin: pops its arguments, pushes its result
    /// (void builtins push 0).
    CallBuiltin(Builtin),
    /// Pop the return value and return to the caller.
    Ret,

    // ------------------------------------------------------------------
    // Superinstructions (the `ExecTier::Super` fusion pass, `fuse.rs`).
    //
    // Every fused opcode is *layout-preserving*: the fusion pass writes
    // the fused opcode over the first instruction of the matched pattern
    // and leaves the remaining component instructions in place. Jumps
    // into the middle of a fused region therefore execute the original
    // unfused tail, and no jump target is ever rewritten. A fused opcode
    // charges exactly the fuel/instrs/cycles its components would have
    // charged; when fewer than `k - 1` fuel units remain (the main loop
    // already charged one for the fused opcode itself), the VM *deopts*:
    // it executes only the first component and falls back to the original
    // instructions at `pc + 1`, reproducing mid-pattern fuel exhaustion
    // byte-for-byte. Operand `repr` bytes pack an `(AccessSize, signed)`
    // pair via [`pack_scalar`].
    // ------------------------------------------------------------------
    /// `LoadLocal a; LoadLocal b; <cmp>; Normalize; JumpIf(Not)Zero`
    /// (k = 5) — the loop head. The `Normalize` is an identity on the
    /// comparison's 0/1 flag; `op` is normalized to jump-when-true: a
    /// `JumpIfZero` branch stores the negated comparison.
    FusedCmpJump {
        /// Frame offset of the lhs local.
        a: u32,
        /// Frame offset of the rhs local.
        b: u32,
        /// Packed `(AccessSize, signed)` of the lhs local.
        a_repr: u8,
        /// Packed `(AccessSize, signed)` of the rhs local.
        b_repr: u8,
        /// Comparison; jump taken when it evaluates true.
        op: CmpOp,
        /// Branch target (instruction index).
        target: u32,
    },
    /// `LocalAddr; Const idx; PtrAdd esz; Load` (k = 4) — constant-index
    /// read of a local array, e.g. the paper's `xs[5]` overflow read.
    FusedLocalIdxLoad {
        /// Frame offset of the aggregate local.
        off: u32,
        /// Constant element index.
        idx: i32,
        /// Element size (fusion requires it fit `u16`).
        esz: u16,
        /// Packed `(AccessSize, signed)` of the loaded scalar.
        repr: u8,
    },
    /// `LoadLocal acc; LocalAddr; Const idx; PtrAdd esz; Load; Add;
    /// Dup; StoreLocal acc; Drop` (k = 9) — the whole
    /// `acc += xs[IDX]` accumulate statement, the inner-loop body of
    /// every scan/sum kernel. The load is component 4, so a memory
    /// fault must surface with only components 0..4 charged: the
    /// handler pre-charges the full pattern and *refunds* the four pure
    /// stack ops behind the load on the cold fault seam.
    FusedLoadIdxAccum {
        /// Frame offset of the accumulator local (load and store).
        acc: u32,
        /// Frame offset of the aggregate local.
        addr: u32,
        /// Folded byte offset (`idx * esz`; fusion requires it fit
        /// `i32` without overflow).
        delta: i32,
        /// Packed `(AccessSize, signed)` of the loaded element.
        load_repr: u8,
        /// Packed `(AccessSize, signed)` of the accumulator load.
        acc_repr: u8,
        /// Accumulator store width.
        size: AccessSize,
    },
    /// `LocalAddr; Const idx; PtrAdd esz; Store` (k = 4) — constant-index
    /// write to a local array (pops the value).
    FusedLocalIdxStore {
        /// Frame offset of the aggregate local.
        off: u32,
        /// Constant element index.
        idx: i32,
        /// Element size (fusion requires it fit `u16`).
        esz: u16,
        /// Stored width.
        size: AccessSize,
    },
    /// Direct-local increment statement (k = 6, or 7 with a trailing
    /// `Normalize`): `LoadLocal; [Dup;] Const d; Add; [Normalize;] [Dup;]
    /// StoreLocal; Drop` — both prefix and postfix shapes.
    FusedIncLocal {
        /// Frame offset of the scalar local.
        off: u32,
        /// Increment (the pattern's constant).
        delta: i32,
        /// Packed `(AccessSize, signed)` of the local.
        repr: u8,
        /// Total fused component count (6 or 7).
        len: u8,
    },
    /// The loop latch (k = 7, or 8 with a `Normalize`): a
    /// [`Instr::FusedIncLocal`]-shaped increment statement followed by
    /// an unconditional `Jump` back to the loop head.
    FusedIncJump {
        /// Frame offset of the scalar local.
        off: u32,
        /// Increment (the pattern's constant).
        delta: i32,
        /// Packed `(AccessSize, signed)` of the local.
        repr: u8,
        /// Total fused component count (7 or 8), jump included.
        len: u8,
        /// Jump target (instruction index).
        target: u32,
    },
    /// `Const c; <alu>` (k = 2) for non-trapping ALU ops.
    FusedConstAlu {
        /// The constant rhs (fusion requires it fit `i32`).
        c: i32,
        /// The fused operation.
        op: AluOp,
    },
    /// `Dup; StoreLocal; Drop` (k = 3) — the direct-local assignment
    /// statement tail (pops the value).
    FusedStoreLocalPop {
        /// Frame offset of the scalar local.
        off: u32,
        /// Stored width.
        size: AccessSize,
    },
    /// `LoadLocal (B8); Load` (k = 2) — pointer-in-local dereference.
    FusedLoadLoad {
        /// Frame offset of the pointer local.
        off: u32,
        /// Packed `(AccessSize, signed)` of the loaded scalar.
        repr: u8,
    },
}

/// Comparison operator of a [`Instr::FusedCmpJump`], mirroring the
/// comparison instructions' semantics exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// signed `<`
    LtS,
    /// unsigned `<`
    LtU,
    /// signed `<=`
    LeS,
    /// unsigned `<=`
    LeU,
    /// signed `>`
    GtS,
    /// unsigned `>`
    GtU,
    /// signed `>=`
    GeS,
    /// unsigned `>=`
    GeU,
}

impl CmpOp {
    /// Evaluates the comparison on canonical `i64` operands.
    #[inline(always)]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::LtS => a < b,
            CmpOp::LtU => (a as u64) < (b as u64),
            CmpOp::LeS => a <= b,
            CmpOp::LeU => (a as u64) <= (b as u64),
            CmpOp::GtS => a > b,
            CmpOp::GtU => (a as u64) > (b as u64),
            CmpOp::GeS => a >= b,
            CmpOp::GeU => (a as u64) >= (b as u64),
        }
    }

    /// The logical negation (`!(a op b)` as another `CmpOp`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::LtS => CmpOp::GeS,
            CmpOp::LtU => CmpOp::GeU,
            CmpOp::LeS => CmpOp::GtS,
            CmpOp::LeU => CmpOp::GtU,
            CmpOp::GtS => CmpOp::LeS,
            CmpOp::GtU => CmpOp::LeU,
            CmpOp::GeS => CmpOp::LtS,
            CmpOp::GeU => CmpOp::LtU,
        }
    }
}

/// ALU operator of a [`Instr::FusedConstAlu`] — the non-trapping binary
/// ops (division and remainder are excluded: their divide-by-zero fault
/// point must stay a separate architectural instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping `+`
    Add,
    /// Wrapping `-`
    Sub,
    /// Wrapping `*`
    Mul,
    /// Bitwise `&`
    And,
    /// Bitwise `|`
    Or,
    /// Bitwise `^`
    Xor,
    /// `<<` (shift count masked to 63)
    Shl,
    /// Arithmetic `>>`
    ShrS,
    /// Logical `>>`
    ShrU,
}

impl AluOp {
    /// Evaluates the operation exactly as the unfused instruction would.
    #[inline(always)]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32 & 63),
            AluOp::ShrS => a.wrapping_shr(b as u32 & 63),
            AluOp::ShrU => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        }
    }
}

/// Packs an `(AccessSize, signed)` scalar representation into one byte
/// so fused opcodes stay within the 16-byte [`Instr`] footprint.
#[inline(always)]
pub fn pack_scalar(size: AccessSize, signed: bool) -> u8 {
    let log2 = match size {
        AccessSize::B1 => 0u8,
        AccessSize::B2 => 1,
        AccessSize::B4 => 2,
        AccessSize::B8 => 3,
    };
    log2 | ((signed as u8) << 2)
}

/// Inverse of [`pack_scalar`].
#[inline(always)]
pub fn unpack_scalar(repr: u8) -> (AccessSize, bool) {
    let size = match repr & 0b11 {
        0 => AccessSize::B1,
        1 => AccessSize::B2,
        2 => AccessSize::B4,
        _ => AccessSize::B8,
    };
    (size, repr & 0b100 != 0)
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Stack frame layout for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FrameLayout {
    /// Per-slot `(offset from frame base, size in bytes)`.
    pub slots: Vec<(u64, u64)>,
    /// Total locals footprint (excluding the canary guard the memory
    /// space appends).
    pub total: u64,
}

/// A compiled function.
#[derive(Debug, Clone, Hash)]
pub struct CompiledFunc {
    /// Source name.
    pub name: String,
    /// Leading slots that receive arguments.
    pub param_count: usize,
    /// Frame layout (every local is a data unit).
    pub frame: FrameLayout,
    /// Bytecode.
    pub code: Vec<Instr>,
}

/// A global's load image.
#[derive(Debug, Clone, Hash)]
pub struct GlobalImage {
    /// Source name (data-unit label).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents (length == `size`).
    pub init: Vec<u8>,
    /// `(offset, string index)` relocations patched by the loader.
    pub relocs: Vec<(u64, u32)>,
}

/// A complete compiled program.
#[derive(Debug, Clone, Default, Hash)]
pub struct CompiledProgram {
    /// Functions; indices match [`Instr::Call`] operands.
    pub funcs: Vec<CompiledFunc>,
    /// Globals; indices match [`Instr::GlobalAddr`] operands.
    pub globals: Vec<GlobalImage>,
    /// Interned strings (NUL included); indices match [`Instr::StrAddr`].
    pub strings: Vec<Vec<u8>>,
}

impl CompiledProgram {
    /// Finds a function index by name.
    pub fn func_index(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Total instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Renders a human-readable disassembly (tests and debugging).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.funcs {
            let _ = writeln!(
                out,
                "fn {} (params: {}, frame: {} bytes)",
                f.name, f.param_count, f.frame.total
            );
            for (i, ins) in f.code.iter().enumerate() {
                let _ = writeln!(out, "  {i:4}: {ins}");
            }
        }
        out
    }
}
