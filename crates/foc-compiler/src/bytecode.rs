//! The stack-machine instruction set and compiled program image.

use std::fmt;

use foc_lang::hir::Builtin;
use foc_memory::AccessSize;

/// One bytecode instruction.
///
/// The evaluation stack holds `i64` values. Pointers are guest addresses
/// (possibly out-of-bounds descriptor addresses). All arithmetic operates
/// on the canonical representation: values of narrow C types are kept
/// sign- or zero-extended according to their static type, re-established
/// by [`Instr::Normalize`] after operations that may overflow the type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Push a constant.
    Const(i64),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Swap the top two values.
    Swap,
    /// Rotate the top three values: `[a, b, c] → [b, c, a]` (top is `c`).
    Rot3,

    /// Push the address of a local slot (frame base + offset).
    LocalAddr(u32),
    /// Push the address of a global (loader-assigned).
    GlobalAddr(u32),
    /// Push the address of an interned string literal.
    StrAddr(u32),

    /// Pop an address; load `size` bytes; sign-extend when `signed`.
    Load(AccessSize, bool),
    /// Pop an address, pop a value; store the low `size` bytes.
    Store(AccessSize),
    /// Direct scalar load from the local slot at the given frame offset.
    ///
    /// Scalar locals are direct stack slots the safe-C compilers never
    /// instrument (a native compiler would keep them in registers), so
    /// these execute unchecked in every mode. Accesses to a local through
    /// a *pointer* still compile to [`Instr::Load`]/[`Instr::Store`] and
    /// are checked.
    LoadLocal(u32, AccessSize, bool),
    /// Direct scalar store to the local slot at the given frame offset
    /// (pops the value).
    StoreLocal(u32, AccessSize),

    /// Binary arithmetic: pop rhs, pop lhs, push result.
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Eq,
    Ne,
    LtS,
    LtU,
    LeS,
    LeU,
    GtS,
    GtU,
    GeS,
    GeU,

    /// Unary: pop, push.
    Neg,
    BitNot,
    /// Logical not: push 1 if zero else 0.
    Not,

    /// Re-normalize the top value to the given width/signedness.
    Normalize(AccessSize, bool),
    /// Replace a pointer with its effective (intended) address.
    EffAddr,
    /// Pop element count, pop pointer; push `ptr + count * elem_size`
    /// through the checked pointer-arithmetic path.
    PtrAdd(u64),
    /// Pop rhs pointer, pop lhs pointer; push `(lhs - rhs) / elem_size`.
    PtrDiff(u64),

    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfZero(u32),
    /// Pop; jump when non-zero.
    JumpIfNotZero(u32),

    /// Call a user function: pops its arguments (last on top).
    Call(u32),
    /// Call a runtime builtin: pops its arguments, pushes its result
    /// (void builtins push 0).
    CallBuiltin(Builtin),
    /// Pop the return value and return to the caller.
    Ret,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Stack frame layout for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FrameLayout {
    /// Per-slot `(offset from frame base, size in bytes)`.
    pub slots: Vec<(u64, u64)>,
    /// Total locals footprint (excluding the canary guard the memory
    /// space appends).
    pub total: u64,
}

/// A compiled function.
#[derive(Debug, Clone, Hash)]
pub struct CompiledFunc {
    /// Source name.
    pub name: String,
    /// Leading slots that receive arguments.
    pub param_count: usize,
    /// Frame layout (every local is a data unit).
    pub frame: FrameLayout,
    /// Bytecode.
    pub code: Vec<Instr>,
}

/// A global's load image.
#[derive(Debug, Clone, Hash)]
pub struct GlobalImage {
    /// Source name (data-unit label).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents (length == `size`).
    pub init: Vec<u8>,
    /// `(offset, string index)` relocations patched by the loader.
    pub relocs: Vec<(u64, u32)>,
}

/// A complete compiled program.
#[derive(Debug, Clone, Default, Hash)]
pub struct CompiledProgram {
    /// Functions; indices match [`Instr::Call`] operands.
    pub funcs: Vec<CompiledFunc>,
    /// Globals; indices match [`Instr::GlobalAddr`] operands.
    pub globals: Vec<GlobalImage>,
    /// Interned strings (NUL included); indices match [`Instr::StrAddr`].
    pub strings: Vec<Vec<u8>>,
}

impl CompiledProgram {
    /// Finds a function index by name.
    pub fn func_index(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Total instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Renders a human-readable disassembly (tests and debugging).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.funcs {
            let _ = writeln!(
                out,
                "fn {} (params: {}, frame: {} bytes)",
                f.name, f.param_count, f.frame.total
            );
            for (i, ins) in f.code.iter().enumerate() {
                let _ = writeln!(out, "  {i:4}: {ins}");
            }
        }
        out
    }
}
