//! Native-tier lowering — the `ExecTier::Native` AOT pass.
//!
//! The superinstruction tier still pays one fetch/decode/dispatch per
//! (fused) opcode plus per-dispatch fuel and counter bookkeeping. This
//! pass compiles each function *past* fetch/decode ahead of time: it
//! partitions the fused instruction stream into **regions** — maximal
//! straight-line runs entered only at known leaders — and lowers every
//! region to a dense array of pre-decoded micro-ops ([`NOp`]) with all
//! operands resolved (scalar reprs unpacked, index deltas folded, branch
//! targets and fault pcs baked in). The VM executes a region with no
//! per-instruction dispatch: accounting for the whole region is charged
//! once at entry, and the micro-ops run back to back.
//!
//! ## Deopt contract
//!
//! The artifact adds no observable state of its own; every observable
//! surface must stay byte-identical to the baseline tier:
//!
//! * **Entry gate.** A region is entered only when the remaining fuel
//!   covers its whole pre-computed [`NativeRegion::charge`]. Otherwise
//!   the VM falls back to the interpreter, whose existing per-opcode
//!   deopt seams reproduce mid-pattern fuel exhaustion exactly.
//! * **Fault seams.** Micro-ops that can fault (guest loads/stores,
//!   division) carry a [`FaultAt`]: the architectural pc the fault must
//!   surface at and the components the unfused stream would have charged
//!   by that point. On a fault the VM refunds `charge - spent` and
//!   unwinds with the baseline tier's exact counters, stack, and log.
//! * **Boundaries.** Calls, builtins, returns, and any pc without a
//!   region (e.g. a jump target inside a fused pattern's preserved tail)
//!   drop to the interpreter, which runs the very same fused bytecode —
//!   the native artifact rides alongside the super tier's program, it
//!   never replaces it.
//!
//! Region selection is conservative: every slot of every instruction is
//! scanned for branch targets (fused tails keep their original jump
//! instructions, and a mid-pattern entry executes them), so the leader
//! set is a superset of the reachable entry points and the entry table
//! can never mis-align with the interpreter's view of the stream.

use foc_memory::AccessSize;

use crate::bytecode::{unpack_scalar, AluOp, CmpOp, CompiledFunc, Instr};

/// Entry-table sentinel: no region starts at this pc.
pub const NO_REGION: u32 = u32::MAX;

/// The per-program native artifact (one entry per function, indices
/// matching `CompiledProgram::funcs`). Immutable and `Sync`: one `Arc`
/// serves every machine booted from the image, checkpoints included.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeProgram {
    /// Per-function lowered regions.
    pub funcs: Vec<NativeFunc>,
}

/// One function's lowered regions plus the pc → region map.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeFunc {
    /// `entry[pc]` is the region starting at `pc`, or [`NO_REGION`].
    pub entry: Vec<u32>,
    /// The regions, in discovery order.
    pub regions: Vec<NativeRegion>,
}

/// A maximal straight-line run: pre-decoded micro-ops plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeRegion {
    /// Total components (fuel units / instruction counts) the region
    /// charges — the exact sum its instructions would charge when
    /// interpreted, terminator included.
    pub charge: u64,
    /// The straight-line micro-ops.
    pub ops: Vec<NOp>,
    /// How the region ends.
    pub term: Term,
}

/// Where a faulting micro-op surfaces architecturally: the pc the fault
/// is reported at, and the components the unfused stream would have
/// charged when it faulted there (the VM refunds `charge - spent`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultAt {
    /// Architectural fault pc (same pc the interpreter's seam uses).
    pub pc: u32,
    /// Components legitimately charged at the fault point.
    pub spent: u64,
}

/// A pre-decoded micro-op. Operand reprs are unpacked and constant
/// folds (index deltas, branch senses) are done at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub enum NOp {
    /// Push a constant.
    Const(i64),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Swap the top two values.
    Swap,
    /// Rotate the top three values.
    Rot3,
    /// Push a local slot's address.
    LocalAddr(u32),
    /// Push a global's address (resolved through the machine's table).
    GlobalAddr(u32),
    /// Push an interned string's address.
    StrAddr(u32),
    /// Direct scalar load from a local slot.
    LoadLocal {
        /// Frame offset.
        off: u32,
        /// Scalar width.
        size: AccessSize,
        /// Sign-extend when set.
        signed: bool,
    },
    /// Direct scalar store to a local slot (pops the value).
    StoreLocal {
        /// Frame offset.
        off: u32,
        /// Stored width.
        size: AccessSize,
    },
    /// Non-trapping binary ALU op.
    Alu(AluOp),
    /// Division/remainder (traps on a zero divisor).
    Div {
        /// Signed variant.
        signed: bool,
        /// Remainder instead of quotient.
        rem: bool,
        /// Divide-by-zero seam.
        at: FaultAt,
    },
    /// Comparison, pushing the 0/1 flag (unfolded form).
    Cmp(CmpOp),
    /// Arithmetic negation.
    Neg,
    /// Bitwise not.
    BitNot,
    /// Logical not.
    Not,
    /// Re-normalize the top value.
    Normalize {
        /// Width.
        size: AccessSize,
        /// Signedness.
        signed: bool,
    },
    /// Replace a pointer with its effective address.
    EffAddr,
    /// Checked pointer arithmetic (pops count, pointer).
    PtrAdd {
        /// Element size.
        esz: u64,
    },
    /// Pointer difference (pops rhs, lhs).
    PtrDiff {
        /// Element size.
        esz: u64,
    },
    /// Checked guest load (pops the address).
    Load {
        /// Access width.
        size: AccessSize,
        /// Sign-extend when set.
        signed: bool,
        /// Fault seam.
        at: FaultAt,
    },
    /// Checked guest store (pops address, then value).
    Store {
        /// Access width.
        size: AccessSize,
        /// Fault seam.
        at: FaultAt,
    },
    /// `FusedLocalIdxLoad`: constant-index read of a local array.
    IdxLoad {
        /// Frame offset of the aggregate.
        off: u32,
        /// Folded byte delta (`idx * esz`).
        delta: i64,
        /// Loaded width.
        size: AccessSize,
        /// Sign-extend when set.
        signed: bool,
        /// Fault seam.
        at: FaultAt,
    },
    /// `FusedLocalIdxStore`: constant-index write (pops the value).
    IdxStore {
        /// Frame offset of the aggregate.
        off: u32,
        /// Folded byte delta.
        delta: i64,
        /// Stored width.
        size: AccessSize,
        /// Fault seam.
        at: FaultAt,
    },
    /// `FusedLoadIdxAccum`: the whole `acc += xs[C]` statement.
    IdxAccum {
        /// Accumulator frame offset.
        acc: u32,
        /// Accumulator load width.
        acc_size: AccessSize,
        /// Accumulator load signedness.
        acc_signed: bool,
        /// Accumulator store width.
        store_size: AccessSize,
        /// Aggregate frame offset.
        addr: u32,
        /// Folded byte delta.
        delta: i64,
        /// Element load width.
        load_size: AccessSize,
        /// Element load signedness.
        load_signed: bool,
        /// Fault seam (the load is component 4; `spent` covers 5).
        at: FaultAt,
    },
    /// `FusedIncLocal`: direct-local increment statement.
    IncLocal {
        /// Frame offset.
        off: u32,
        /// Increment.
        delta: i64,
        /// Scalar width.
        size: AccessSize,
        /// Signedness.
        signed: bool,
    },
    /// `FusedConstAlu`: constant-rhs ALU op.
    ConstAlu {
        /// Constant rhs.
        c: i64,
        /// Operation.
        op: AluOp,
    },
    /// `FusedStoreLocalPop`: store top-of-stack to a local and pop.
    StoreLocalPop {
        /// Frame offset.
        off: u32,
        /// Stored width.
        size: AccessSize,
    },
    /// `FusedLoadLoad`: dereference a pointer held in a local.
    LoadLoad {
        /// Pointer local's frame offset.
        off: u32,
        /// Loaded width.
        size: AccessSize,
        /// Sign-extend when set.
        signed: bool,
        /// Fault seam.
        at: FaultAt,
    },
    /// A maximal run (length ≥ 2) of register-lowerable micro-ops: the
    /// operand stack is statically known at every point, so each
    /// push/pop is resolved to a fixed scratch-register index ahead of
    /// time and the ops run back to back with no operand-stack
    /// traffic. Pure frame-local ops service their accesses off a
    /// borrowed frame window (no region bounds/commit round-trips);
    /// checked guest accesses ([`ROp::GLoad`]/[`ROp::GStore`] and the
    /// pointer ops) stay inside the block too, probing the space's
    /// placement fast path inline against the live register file and
    /// deopting to the full access path — seam, spill, refund — only
    /// on a probe miss. This is the "pre-resolved operands" half of
    /// the native tier's dispatch win, extended across the memory
    /// boundary.
    Locals(LocalsBlock),
}

/// Scratch registers available to a [`LocalsBlock`]. Runs whose stack
/// shape exceeds this stay in individual-op form (none observed in
/// practice: the cap comfortably exceeds any expression depth the
/// front end emits).
pub const LOCALS_REGS: usize = 64;

/// A pure frame-local run in register form. `consumes` operand-stack
/// values enter as registers `0..consumes` (`consumes - 1` is the old
/// top of stack); after the ops run, registers `0..produces` are the
/// block's operand-stack contribution, pushed back in index order. A
/// self-contained block (every statement's expression stack starts and
/// ends empty) has `consumes == produces == 0` and touches the operand
/// stack not at all.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalsBlock {
    /// Operand-stack values consumed at entry.
    pub consumes: u8,
    /// Operand-stack values produced at exit.
    pub produces: u8,
    /// Whether the block contains guest-memory register ops (the
    /// `G`-prefixed [`ROp`] variants). A pure block (`mem == false`)
    /// runs on the executor's single-borrow fast path; a memory block
    /// runs segmented, releasing the frame borrow at each guest access
    /// so the space's placement machinery is reachable in between.
    pub mem: bool,
    /// The straight-line register ops.
    pub ops: Box<[ROp]>,
}

/// A register-form micro-op inside a [`LocalsBlock`]. All register
/// indices are below [`LOCALS_REGS`]; frame offsets were validated
/// against the frame layout by the front end, so the executor indexes
/// its borrowed frame window directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ROp {
    /// `r[dst] = c`.
    Const {
        /// Destination register.
        dst: u8,
        /// The constant.
        c: i64,
    },
    /// `r[dst] = r[src]` (a `Dup` with its stack slots resolved).
    Copy {
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
    },
    /// Exchange two registers (a resolved `Swap`).
    Swap {
        /// One register.
        a: u8,
        /// The other.
        b: u8,
    },
    /// Rotate three registers (a resolved `Rot3`): `a←b, b←c, c←a`.
    Rot3 {
        /// Deepest slot.
        a: u8,
        /// Middle slot.
        b: u8,
        /// Top slot.
        c: u8,
    },
    /// `r[dst] = base + off` (a resolved `LocalAddr`).
    Addr {
        /// Destination register.
        dst: u8,
        /// Frame offset.
        off: u32,
    },
    /// Scalar load straight off the frame window.
    Load {
        /// Destination register.
        dst: u8,
        /// Frame offset.
        off: u32,
        /// Width.
        size: AccessSize,
        /// Sign-extend when set.
        signed: bool,
    },
    /// Scalar store straight into the frame window.
    Store {
        /// Source register.
        src: u8,
        /// Frame offset.
        off: u32,
        /// Width.
        size: AccessSize,
    },
    /// `r[dst] = op(r[a], r[b])` (`dst == a` in stack-lowered code).
    Alu {
        /// Destination register.
        dst: u8,
        /// Left operand.
        a: u8,
        /// Right operand.
        b: u8,
        /// Operation.
        op: AluOp,
    },
    /// `r[at] = op(r[at], c)` (a resolved `FusedConstAlu`).
    ConstAlu {
        /// In-place operand register.
        at: u8,
        /// Constant rhs.
        c: i64,
        /// Operation.
        op: AluOp,
    },
    /// `r[dst] = op(r[a], r[b])` as a 0/1 flag.
    Cmp {
        /// Destination register.
        dst: u8,
        /// Left operand.
        a: u8,
        /// Right operand.
        b: u8,
        /// Comparison.
        op: CmpOp,
    },
    /// In-place arithmetic negation.
    Neg {
        /// Operand register.
        at: u8,
    },
    /// In-place bitwise not.
    BitNot {
        /// Operand register.
        at: u8,
    },
    /// In-place logical not.
    Not {
        /// Operand register.
        at: u8,
    },
    /// In-place re-normalization.
    Normalize {
        /// Operand register.
        at: u8,
        /// Width.
        size: AccessSize,
        /// Signedness.
        signed: bool,
    },
    /// Direct-local increment against the frame window (a resolved
    /// `FusedIncLocal`; touches no registers).
    Inc {
        /// Frame offset.
        off: u32,
        /// Increment.
        delta: i64,
        /// Scalar width.
        size: AccessSize,
        /// Signedness.
        signed: bool,
    },
    /// Checked guest load against the live register file: the address
    /// comes from register `at` and the loaded value replaces it. The
    /// executor probes the space's pre-resolved placement fast path
    /// inline; a probe miss deopts to the full access path (violation
    /// continuation included), and a fault spills registers
    /// `0..spill` back to the operand stack — reproducing the
    /// interpreted stack image after the address pop — before
    /// unwinding at the pre-baked seam.
    GLoad {
        /// Address register, also the destination.
        at: u8,
        /// Access width.
        size: AccessSize,
        /// Sign-extend when set.
        signed: bool,
        /// Fault seam.
        seam: FaultAt,
        /// Live registers to spill to the operand stack on a fault.
        spill: u8,
    },
    /// Checked guest store against the live register file (consumes
    /// the address and value registers). Probe/deopt/spill contract as
    /// [`ROp::GLoad`].
    GStore {
        /// Address register.
        addr: u8,
        /// Value register.
        val: u8,
        /// Access width.
        size: AccessSize,
        /// Fault seam.
        seam: FaultAt,
        /// Live registers to spill to the operand stack on a fault.
        spill: u8,
    },
    /// Checked pointer arithmetic in register form: `r[dst] =
    /// ptr_add(r[ptr], r[count] * esz)`. Runs the interpreter's exact
    /// routine (out-of-bounds interning included) — it cannot fault,
    /// so it needs no seam.
    GPtrAdd {
        /// Destination register.
        dst: u8,
        /// Base-pointer register.
        ptr: u8,
        /// Element-count register.
        count: u8,
        /// Element size.
        esz: u64,
    },
    /// Pointer difference in register form (effective addresses of
    /// both operands; cannot fault).
    GPtrDiff {
        /// Destination register.
        dst: u8,
        /// Lhs register.
        a: u8,
        /// Rhs register.
        b: u8,
        /// Element size.
        esz: u64,
    },
    /// Effective-address fold in register form (cannot fault).
    GEffAddr {
        /// In-place operand register.
        at: u8,
    },
    /// A [`ROp::GPtrAdd`] whose derived pointer immediately feeds a
    /// [`ROp::GLoad`] — the variable-index access shape. One placement
    /// lookup answers both the derivation and the access on the hit
    /// path (units never overlap, so in-unit containment of the target
    /// proves both), exactly as the fused constant-index fast path
    /// does; a miss runs the exact two-step sequence.
    GIdxLoad {
        /// Destination register (the pair's net stack slot).
        dst: u8,
        /// Base-pointer register.
        ptr: u8,
        /// Element-count register.
        count: u8,
        /// Element size.
        esz: u64,
        /// Loaded width.
        size: AccessSize,
        /// Sign-extend when set.
        signed: bool,
        /// The load's fault seam (`spent` covers the pointer add).
        seam: FaultAt,
        /// Live registers to spill to the operand stack on a fault.
        spill: u8,
    },
    /// Store twin of [`ROp::GIdxLoad`].
    GIdxStore {
        /// Base-pointer register.
        ptr: u8,
        /// Element-count register.
        count: u8,
        /// Value register.
        val: u8,
        /// Element size.
        esz: u64,
        /// Stored width.
        size: AccessSize,
        /// The store's fault seam (`spent` covers the pointer add).
        seam: FaultAt,
        /// Live registers to spill to the operand stack on a fault.
        spill: u8,
    },
}

/// How a region ends. Conditional terminators carry both successors so
/// the executor can chain into the next region without touching the
/// interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfZero {
        /// Branch target.
        target: u32,
        /// Fall-through pc.
        fall: u32,
    },
    /// Pop; jump when non-zero.
    JumpIfNotZero {
        /// Branch target.
        target: u32,
        /// Fall-through pc.
        fall: u32,
    },
    /// A comparison folded with its branch (the interpreter's runtime
    /// `cmp_arm` peephole, resolved at lowering time): pops rhs then
    /// lhs, jumps when `op` holds.
    FlagJump {
        /// Comparison, normalized to jump-when-true.
        op: CmpOp,
        /// Branch target.
        target: u32,
        /// Fall-through pc.
        fall: u32,
    },
    /// `FusedCmpJump`: the two-local loop head.
    CmpJump {
        /// Lhs frame offset.
        a: u32,
        /// Lhs width.
        a_size: AccessSize,
        /// Lhs signedness.
        a_signed: bool,
        /// Rhs frame offset.
        b: u32,
        /// Rhs width.
        b_size: AccessSize,
        /// Rhs signedness.
        b_signed: bool,
        /// Comparison, jump taken when true.
        op: CmpOp,
        /// Branch target.
        target: u32,
        /// Fall-through pc.
        fall: u32,
    },
    /// `FusedIncJump`: the loop latch (increment + back-jump).
    IncJump {
        /// Frame offset.
        off: u32,
        /// Increment.
        delta: i64,
        /// Scalar width.
        size: AccessSize,
        /// Signedness.
        signed: bool,
        /// Jump target.
        target: u32,
    },
    /// Straight-line fall to a pc the interpreter (or the next region)
    /// must handle: a call/builtin/return boundary or a region split at
    /// a leader. Charges nothing.
    Fall(u32),
}

/// Lowers a fused program's functions to their native artifacts. The
/// input must be the `ExecTier::Super` stream (the artifact executes
/// fused opcodes as single micro-ops and relies on their layout
/// preservation for mid-pattern entries).
pub fn lower_native(funcs: &[CompiledFunc]) -> NativeProgram {
    NativeProgram {
        funcs: funcs.iter().map(|f| lower_func(&f.code)).collect(),
    }
}

/// The instruction span a fused opcode covers (1 for plain instrs).
fn span(instr: Instr) -> usize {
    match instr {
        Instr::FusedCmpJump { .. } => 5,
        Instr::FusedLocalIdxLoad { .. } | Instr::FusedLocalIdxStore { .. } => 4,
        Instr::FusedLoadIdxAccum { .. } => 9,
        Instr::FusedIncLocal { len, .. } => len as usize,
        Instr::FusedIncJump { len, .. } => len as usize,
        Instr::FusedConstAlu { .. } => 2,
        Instr::FusedStoreLocalPop { .. } => 3,
        Instr::FusedLoadLoad { .. } => 2,
        _ => 1,
    }
}

fn cmp_op_of(instr: Instr) -> Option<CmpOp> {
    Some(match instr {
        Instr::Eq => CmpOp::Eq,
        Instr::Ne => CmpOp::Ne,
        Instr::LtS => CmpOp::LtS,
        Instr::LtU => CmpOp::LtU,
        Instr::LeS => CmpOp::LeS,
        Instr::LeU => CmpOp::LeU,
        Instr::GtS => CmpOp::GtS,
        Instr::GtU => CmpOp::GtU,
        Instr::GeS => CmpOp::GeS,
        Instr::GeU => CmpOp::GeU,
        _ => return None,
    })
}

fn alu_op_of(instr: Instr) -> Option<AluOp> {
    Some(match instr {
        Instr::Add => AluOp::Add,
        Instr::Sub => AluOp::Sub,
        Instr::Mul => AluOp::Mul,
        Instr::And => AluOp::And,
        Instr::Or => AluOp::Or,
        Instr::Xor => AluOp::Xor,
        Instr::Shl => AluOp::Shl,
        Instr::ShrS => AluOp::ShrS,
        Instr::ShrU => AluOp::ShrU,
        _ => return None,
    })
}

/// Whether the instruction forces a drop to the interpreter (frame and
/// builtin machinery the region executor does not replicate).
fn is_breaker(instr: Instr) -> bool {
    matches!(instr, Instr::Call(_) | Instr::CallBuiltin(_) | Instr::Ret)
}

/// Marks `pc` as a leader and queues it for region construction.
fn note_leader(code_len: usize, leader: &mut [bool], work: &mut Vec<u32>, pc: u32) {
    if (pc as usize) < code_len && !leader[pc as usize] {
        leader[pc as usize] = true;
        work.push(pc);
    }
}

fn lower_func(code: &[Instr]) -> NativeFunc {
    // Pass 1 — leaders: function entry plus every branch target named
    // anywhere in the stream. Tail slots of fused patterns keep their
    // original jump instructions and are reachable through mid-pattern
    // entries, so every slot is scanned; the result is a conservative
    // superset of the live entry points, which only ever adds regions.
    let mut leader = vec![false; code.len()];
    let mut work: Vec<u32> = Vec::new();
    if !code.is_empty() {
        leader[0] = true;
        work.push(0);
    }
    for &instr in code {
        match instr {
            Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) => {
                note_leader(code.len(), &mut leader, &mut work, t)
            }
            Instr::FusedCmpJump { target, .. } | Instr::FusedIncJump { target, .. } => {
                note_leader(code.len(), &mut leader, &mut work, target)
            }
            _ => {}
        }
    }

    // Pass 2 — build one region per leader. Fall-through successors of
    // conditional terminators and post-call resume points become new
    // leaders as they are discovered; no region ever crosses them (both
    // always follow a terminator/breaker, and no fused span contains
    // one), so late discovery cannot invalidate an earlier region.
    let mut entry = vec![NO_REGION; code.len()];
    let mut regions: Vec<NativeRegion> = Vec::new();
    while let Some(start) = work.pop() {
        if entry[start as usize] != NO_REGION {
            continue;
        }
        let region = build_region(code, start, &mut leader, &mut work);
        if region.ops.is_empty() && region.term == Term::Fall(start) {
            // A leader that is immediately a call/ret lowers to a no-op
            // region falling to itself. Leave the slot unmapped so the
            // executor hands the pc straight to the interpreter instead
            // of spinning on a zero-charge region.
            continue;
        }
        entry[start as usize] = regions.len() as u32;
        regions.push(region);
    }
    NativeFunc { entry, regions }
}

/// Walks the stream from `start` to the region's end, lowering as it
/// goes; newly discovered fall-through leaders go onto `work`.
fn build_region(
    code: &[Instr],
    start: u32,
    leader: &mut [bool],
    work: &mut Vec<u32>,
) -> NativeRegion {
    let mut ops = Vec::new();
    let mut done: u64 = 0;
    let mut pc = start as usize;
    let term = loop {
        if pc >= code.len() {
            // Defensive: the lowering never runs off a well-formed
            // function (every path ends in `Ret`), but a malformed one
            // must fail in the interpreter, not here.
            break Term::Fall(pc as u32);
        }
        if pc as u32 != start && leader[pc] {
            // Split at a known entry point; the executor chains into
            // the next region without leaving the fast path.
            break Term::Fall(pc as u32);
        }
        let instr = code[pc];
        if is_breaker(instr) {
            if !matches!(instr, Instr::Ret) {
                note_leader(code.len(), leader, work, pc as u32 + 1);
            }
            break Term::Fall(pc as u32);
        }
        match instr {
            Instr::Jump(t) => {
                done += 1;
                break Term::Jump(t);
            }
            Instr::JumpIfZero(t) => {
                done += 1;
                note_leader(code.len(), leader, work, pc as u32 + 1);
                break Term::JumpIfZero {
                    target: t,
                    fall: pc as u32 + 1,
                };
            }
            Instr::JumpIfNotZero(t) => {
                done += 1;
                note_leader(code.len(), leader, work, pc as u32 + 1);
                break Term::JumpIfNotZero {
                    target: t,
                    fall: pc as u32 + 1,
                };
            }
            Instr::FusedCmpJump {
                a,
                b,
                a_repr,
                b_repr,
                op,
                target,
            } => {
                done += 5;
                let (a_size, a_signed) = unpack_scalar(a_repr);
                let (b_size, b_signed) = unpack_scalar(b_repr);
                note_leader(code.len(), leader, work, pc as u32 + 5);
                break Term::CmpJump {
                    a,
                    a_size,
                    a_signed,
                    b,
                    b_size,
                    b_signed,
                    op,
                    target,
                    fall: pc as u32 + 5,
                };
            }
            Instr::FusedIncJump {
                off,
                delta,
                repr,
                len,
                target,
            } => {
                done += len as u64;
                let (size, signed) = unpack_scalar(repr);
                break Term::IncJump {
                    off,
                    delta: delta as i64,
                    size,
                    signed,
                    target,
                };
            }
            _ => {}
        }
        // Fold a comparison with a directly following branch — the
        // runtime `cmp_arm` peephole, resolved ahead of time. Skipped
        // when the branch is itself a leader (the split wins; the flag
        // is pushed and the next region's terminator pops it, which is
        // observationally the same thing).
        if let Some(op) = cmp_op_of(instr) {
            if pc + 1 < code.len() && !leader[pc + 1] {
                match code[pc + 1] {
                    Instr::JumpIfZero(t) => {
                        done += 2;
                        note_leader(code.len(), leader, work, pc as u32 + 2);
                        break Term::FlagJump {
                            op: op.negate(),
                            target: t,
                            fall: pc as u32 + 2,
                        };
                    }
                    Instr::JumpIfNotZero(t) => {
                        done += 2;
                        note_leader(code.len(), leader, work, pc as u32 + 2);
                        break Term::FlagJump {
                            op,
                            target: t,
                            fall: pc as u32 + 2,
                        };
                    }
                    _ => {}
                }
            }
            ops.push(NOp::Cmp(op));
            done += 1;
            pc += 1;
            continue;
        }
        let k = span(instr) as u64;
        ops.push(lower_op(instr, pc as u32, done));
        done += k;
        pc += span(instr);
    };
    // Every terminator folded its own components into `done` at its
    // break (a `Fall` charges nothing), so the region charge is final.
    // Charges were computed per original op, and grouping neither adds
    // nor removes components, so the charge is unaffected by it.
    NativeRegion {
        charge: done,
        ops: group_locals(ops),
        term,
    }
}

/// Whether `op` is a pure frame-local micro-op: it touches only the
/// operand stack and the frame's byte window, cannot fault, and adds no
/// per-access stat extras. Pure ops run on the block executor's
/// single-borrow fast path; [`is_block_heap`] ops join blocks too but
/// force the segmented executor. Division stays top-level (its seam is
/// cheap to keep there and it never clusters with access traffic), as
/// do the frame-anchored fused access shapes, whose top-level handlers
/// already carry their own fast paths.
fn is_local_pure(op: &NOp) -> bool {
    matches!(
        op,
        NOp::Const(_)
            | NOp::Dup
            | NOp::Drop
            | NOp::Swap
            | NOp::Rot3
            | NOp::LocalAddr(_)
            | NOp::LoadLocal { .. }
            | NOp::StoreLocal { .. }
            | NOp::Alu(_)
            | NOp::Cmp(_)
            | NOp::Neg
            | NOp::BitNot
            | NOp::Not
            | NOp::Normalize { .. }
            | NOp::IncLocal { .. }
            | NOp::ConstAlu { .. }
            | NOp::StoreLocalPop { .. }
    )
}

/// Whether `op` is a guest-memory micro-op a [`LocalsBlock`] can span:
/// checked loads/stores (probe inline, deopt on miss) and the pointer
/// ops (which run the interpreter's exact space routines and cannot
/// fault). These force the block onto the segmented executor — see
/// [`LocalsBlock::mem`].
fn is_block_heap(op: &NOp) -> bool {
    matches!(
        op,
        NOp::Load { .. }
            | NOp::Store { .. }
            | NOp::PtrAdd { .. }
            | NOp::PtrDiff { .. }
            | NOp::EffAddr
    )
}

/// Block-membership predicate for [`group_locals`].
fn is_block_member(op: &NOp) -> bool {
    is_local_pure(op) || is_block_heap(op)
}

/// Groups maximal runs (length ≥ 2) of register-lowerable ops — pure
/// frame-local ops plus the guest-memory ops of [`is_block_heap`] —
/// into register-form [`NOp::Locals`] blocks. Singleton runs stay
/// as-is: the block only pays for its stack-to-register traffic when
/// at least two ops amortize it. Runs whose stack shape exceeds
/// [`LOCALS_REGS`] also stay in individual-op form (the executor's
/// slow path is observationally identical). Blocks are built from a
/// flat op vector, so they never nest.
fn group_locals(ops: Vec<NOp>) -> Vec<NOp> {
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        if !is_block_member(&ops[i]) {
            out.push(ops[i].clone());
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < ops.len() && is_block_member(&ops[j]) {
            j += 1;
        }
        match (j - i >= 2).then(|| lower_locals(&ops[i..j])).flatten() {
            Some(block) => out.push(NOp::Locals(block)),
            None => out.extend(ops[i..j].iter().cloned()),
        }
        i = j;
    }
    out
}

/// How a pure-local op shapes the operand stack: `(consumed, effect)`
/// — how many values below the current top it reads or removes, and
/// its net depth change.
fn stack_shape(op: &NOp) -> (i32, i32) {
    match op {
        NOp::Const(_) | NOp::LocalAddr(_) | NOp::LoadLocal { .. } => (0, 1),
        NOp::Dup => (1, 1),
        NOp::Drop | NOp::StoreLocal { .. } | NOp::StoreLocalPop { .. } => (1, -1),
        NOp::Swap => (2, 0),
        NOp::Rot3 => (3, 0),
        NOp::Alu(_) | NOp::Cmp(_) => (2, -1),
        NOp::Neg | NOp::BitNot | NOp::Not | NOp::Normalize { .. } | NOp::ConstAlu { .. } => (1, 0),
        NOp::IncLocal { .. } => (0, 0),
        NOp::Load { .. } | NOp::EffAddr => (1, 0),
        NOp::Store { .. } => (2, -2),
        NOp::PtrAdd { .. } | NOp::PtrDiff { .. } => (2, -1),
        other => unreachable!("non-member op in a locals run: {other:?}"),
    }
}

/// Lowers a block-member run to register form. The run is
/// straight-line, so the operand-stack depth at every op is static:
/// stack slot `d` (relative to the block's deepest excursion below its
/// entry depth) becomes scratch register `d`, and every push/pop turns
/// into a fixed register index. A `Drop` vanishes entirely — the dead
/// value simply never makes it back to the operand stack. Guest
/// accesses bake their fault seam and static spill count per site, so
/// a mid-block fault can reproduce the interpreted operand-stack image
/// exactly; a `GPtrAdd` feeding the immediately following access fuses
/// into the combined `GIdx*` form (one placement lookup for the pair,
/// the same peephole the fused constant-index shapes get). Returns
/// `None` when the run's stack shape exceeds [`LOCALS_REGS`].
fn lower_locals(run: &[NOp]) -> Option<LocalsBlock> {
    // Pass 1: the run's depth envelope relative to its entry depth.
    let mut depth: i32 = 0;
    let mut lowest: i32 = 0;
    let mut highest: i32 = 0;
    for op in run {
        let (consumed, effect) = stack_shape(op);
        lowest = lowest.min(depth - consumed);
        depth += effect;
        highest = highest.max(depth);
    }
    let bias = -lowest;
    if highest + bias > LOCALS_REGS as i32 {
        return None;
    }
    // Pass 2: emit, mapping relative depth `d` to register `d + bias`.
    let r = |d: i32| (d + bias) as u8;
    let mut ops = Vec::with_capacity(run.len());
    let mut d: i32 = 0;
    for op in run {
        match *op {
            NOp::Const(c) => {
                ops.push(ROp::Const { dst: r(d), c });
                d += 1;
            }
            NOp::Dup => {
                ops.push(ROp::Copy {
                    dst: r(d),
                    src: r(d - 1),
                });
                d += 1;
            }
            NOp::Drop => d -= 1,
            NOp::Swap => ops.push(ROp::Swap {
                a: r(d - 1),
                b: r(d - 2),
            }),
            NOp::Rot3 => ops.push(ROp::Rot3 {
                a: r(d - 3),
                b: r(d - 2),
                c: r(d - 1),
            }),
            NOp::LocalAddr(off) => {
                ops.push(ROp::Addr { dst: r(d), off });
                d += 1;
            }
            NOp::LoadLocal { off, size, signed } => {
                ops.push(ROp::Load {
                    dst: r(d),
                    off,
                    size,
                    signed,
                });
                d += 1;
            }
            NOp::StoreLocal { off, size } | NOp::StoreLocalPop { off, size } => {
                ops.push(ROp::Store {
                    src: r(d - 1),
                    off,
                    size,
                });
                d -= 1;
            }
            NOp::Alu(op) => {
                ops.push(ROp::Alu {
                    dst: r(d - 2),
                    a: r(d - 2),
                    b: r(d - 1),
                    op,
                });
                d -= 1;
            }
            NOp::Cmp(op) => {
                ops.push(ROp::Cmp {
                    dst: r(d - 2),
                    a: r(d - 2),
                    b: r(d - 1),
                    op,
                });
                d -= 1;
            }
            NOp::Neg => ops.push(ROp::Neg { at: r(d - 1) }),
            NOp::BitNot => ops.push(ROp::BitNot { at: r(d - 1) }),
            NOp::Not => ops.push(ROp::Not { at: r(d - 1) }),
            NOp::Normalize { size, signed } => ops.push(ROp::Normalize {
                at: r(d - 1),
                size,
                signed,
            }),
            NOp::ConstAlu { c, op } => ops.push(ROp::ConstAlu {
                at: r(d - 1),
                c,
                op,
            }),
            NOp::IncLocal {
                off,
                delta,
                size,
                signed,
            } => ops.push(ROp::Inc {
                off,
                delta,
                size,
                signed,
            }),
            NOp::Load { size, signed, at } => {
                // Pops the address, pushes the value: same slot. The
                // spill image on a fault is everything below the
                // popped address.
                ops.push(ROp::GLoad {
                    at: r(d - 1),
                    size,
                    signed,
                    seam: at,
                    spill: r(d - 1),
                });
            }
            NOp::Store { size, at } => {
                ops.push(ROp::GStore {
                    addr: r(d - 1),
                    val: r(d - 2),
                    size,
                    seam: at,
                    spill: r(d - 2),
                });
                d -= 2;
            }
            NOp::PtrAdd { esz } => {
                ops.push(ROp::GPtrAdd {
                    dst: r(d - 2),
                    ptr: r(d - 2),
                    count: r(d - 1),
                    esz,
                });
                d -= 1;
            }
            NOp::PtrDiff { esz } => {
                ops.push(ROp::GPtrDiff {
                    dst: r(d - 2),
                    a: r(d - 2),
                    b: r(d - 1),
                    esz,
                });
                d -= 1;
            }
            NOp::EffAddr => ops.push(ROp::GEffAddr { at: r(d - 1) }),
            ref other => unreachable!("non-member op in a locals run: {other:?}"),
        }
    }
    let ops = fuse_idx_pairs(ops);
    let mem = ops.iter().any(is_heap_rop);
    Some(LocalsBlock {
        consumes: bias as u8,
        produces: (d + bias) as u8,
        mem,
        ops: ops.into_boxed_slice(),
    })
}

/// Whether a register op touches guest memory (decides
/// [`LocalsBlock::mem`], and where the segmented executor must release
/// its frame borrow).
pub fn is_heap_rop(op: &ROp) -> bool {
    matches!(
        op,
        ROp::GLoad { .. }
            | ROp::GStore { .. }
            | ROp::GPtrAdd { .. }
            | ROp::GPtrDiff { .. }
            | ROp::GEffAddr { .. }
            | ROp::GIdxLoad { .. }
            | ROp::GIdxStore { .. }
    )
}

/// Fuses each `GPtrAdd` whose derived pointer feeds the immediately
/// following `GLoad`/`GStore` into the combined one-lookup form. The
/// pointer register the pair threads through is dead afterwards (the
/// access pops it), so the rewrite is invisible: on the hit path one
/// in-unit containment check proves both steps, and on the miss path
/// the executor runs the exact two-step sequence.
fn fuse_idx_pairs(ops: Vec<ROp>) -> Vec<ROp> {
    let mut out: Vec<ROp> = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        if let ROp::GPtrAdd {
            dst,
            ptr,
            count,
            esz,
        } = ops[i]
        {
            match ops.get(i + 1) {
                Some(&ROp::GLoad {
                    at,
                    size,
                    signed,
                    seam,
                    spill,
                }) if at == dst => {
                    out.push(ROp::GIdxLoad {
                        dst,
                        ptr,
                        count,
                        esz,
                        size,
                        signed,
                        seam,
                        spill,
                    });
                    i += 2;
                    continue;
                }
                Some(&ROp::GStore {
                    addr,
                    val,
                    size,
                    seam,
                    spill,
                }) if addr == dst => {
                    out.push(ROp::GIdxStore {
                        ptr,
                        count,
                        val,
                        esz,
                        size,
                        seam,
                        spill,
                    });
                    i += 2;
                    continue;
                }
                _ => {}
            }
        }
        out.push(ops[i]);
        i += 1;
    }
    out
}

/// Lowers one non-terminator, non-breaker instruction. `pc` is the
/// instruction's own index; `done` the components charged before it.
fn lower_op(instr: Instr, pc: u32, done: u64) -> NOp {
    match instr {
        Instr::Const(v) => NOp::Const(v),
        Instr::Dup => NOp::Dup,
        Instr::Drop => NOp::Drop,
        Instr::Swap => NOp::Swap,
        Instr::Rot3 => NOp::Rot3,
        Instr::LocalAddr(off) => NOp::LocalAddr(off),
        Instr::GlobalAddr(i) => NOp::GlobalAddr(i),
        Instr::StrAddr(i) => NOp::StrAddr(i),
        Instr::Load(size, signed) => NOp::Load {
            size,
            signed,
            at: FaultAt {
                pc: pc + 1,
                spent: done + 1,
            },
        },
        Instr::Store(size) => NOp::Store {
            size,
            at: FaultAt {
                pc: pc + 1,
                spent: done + 1,
            },
        },
        Instr::LoadLocal(off, size, signed) => NOp::LoadLocal { off, size, signed },
        Instr::StoreLocal(off, size) => NOp::StoreLocal { off, size },
        Instr::DivS => NOp::Div {
            signed: true,
            rem: false,
            at: FaultAt {
                pc: pc + 1,
                spent: done + 1,
            },
        },
        Instr::DivU => NOp::Div {
            signed: false,
            rem: false,
            at: FaultAt {
                pc: pc + 1,
                spent: done + 1,
            },
        },
        Instr::RemS => NOp::Div {
            signed: true,
            rem: true,
            at: FaultAt {
                pc: pc + 1,
                spent: done + 1,
            },
        },
        Instr::RemU => NOp::Div {
            signed: false,
            rem: true,
            at: FaultAt {
                pc: pc + 1,
                spent: done + 1,
            },
        },
        Instr::Neg => NOp::Neg,
        Instr::BitNot => NOp::BitNot,
        Instr::Not => NOp::Not,
        Instr::Normalize(size, signed) => NOp::Normalize { size, signed },
        Instr::EffAddr => NOp::EffAddr,
        Instr::PtrAdd(esz) => NOp::PtrAdd { esz },
        Instr::PtrDiff(esz) => NOp::PtrDiff { esz },
        Instr::FusedLocalIdxLoad {
            off,
            idx,
            esz,
            repr,
        } => {
            let (size, signed) = unpack_scalar(repr);
            NOp::IdxLoad {
                off,
                delta: (idx as i64).wrapping_mul(esz as i64),
                size,
                signed,
                at: FaultAt {
                    pc: pc + 4,
                    spent: done + 4,
                },
            }
        }
        Instr::FusedLocalIdxStore {
            off,
            idx,
            esz,
            size,
        } => NOp::IdxStore {
            off,
            delta: (idx as i64).wrapping_mul(esz as i64),
            size,
            at: FaultAt {
                pc: pc + 4,
                spent: done + 4,
            },
        },
        Instr::FusedLoadIdxAccum {
            acc,
            addr,
            delta,
            load_repr,
            acc_repr,
            size,
        } => {
            let (acc_size, acc_signed) = unpack_scalar(acc_repr);
            let (load_size, load_signed) = unpack_scalar(load_repr);
            NOp::IdxAccum {
                acc,
                acc_size,
                acc_signed,
                store_size: size,
                addr,
                delta: delta as i64,
                load_size,
                load_signed,
                // The load is component 4 of 9: a memory fault surfaces
                // with exactly components 0..=4 charged (the interpreter
                // refunds the four pure stack ops behind the load).
                at: FaultAt {
                    pc: pc + 5,
                    spent: done + 5,
                },
            }
        }
        Instr::FusedIncLocal {
            off, delta, repr, ..
        } => {
            let (size, signed) = unpack_scalar(repr);
            NOp::IncLocal {
                off,
                delta: delta as i64,
                size,
                signed,
            }
        }
        Instr::FusedConstAlu { c, op } => NOp::ConstAlu { c: c as i64, op },
        Instr::FusedStoreLocalPop { off, size } => NOp::StoreLocalPop { off, size },
        Instr::FusedLoadLoad { off, repr } => {
            let (size, signed) = unpack_scalar(repr);
            NOp::LoadLoad {
                off,
                size,
                signed,
                at: FaultAt {
                    pc: pc + 2,
                    spent: done + 2,
                },
            }
        }
        other => {
            if let Some(op) = alu_op_of(other) {
                NOp::Alu(op)
            } else if let Some(op) = cmp_op_of(other) {
                NOp::Cmp(op)
            } else {
                unreachable!("terminator/breaker reached lower_op: {other:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_source, fuse_program};

    fn lower(src: &str) -> NativeProgram {
        let fused = fuse_program(&compile_source(src).unwrap());
        lower_native(&fused.funcs)
    }

    const LOOP_SRC: &str = "long spin(long n) { long i; long acc = 0; \
                            for (i = 0; i < n; i++) acc = acc + i; return acc; }";

    #[test]
    fn lowering_is_deterministic() {
        assert_eq!(lower(LOOP_SRC), lower(LOOP_SRC));
    }

    #[test]
    fn entry_table_is_aligned_and_indices_are_valid() {
        let fused = fuse_program(&compile_source(LOOP_SRC).unwrap());
        let native = lower_native(&fused.funcs);
        for (f, nf) in fused.funcs.iter().zip(&native.funcs) {
            assert_eq!(nf.entry.len(), f.code.len());
            for &r in &nf.entry {
                assert!(r == NO_REGION || (r as usize) < nf.regions.len());
            }
            // Every region is reachable through the entry table.
            for idx in 0..nf.regions.len() as u32 {
                assert!(nf.entry.contains(&idx), "orphan region {idx}");
            }
        }
    }

    #[test]
    fn loop_lowers_to_chained_regions_with_fused_terminators() {
        let native = lower(LOOP_SRC);
        let nf = &native.funcs[0];
        let has_cmp_head = nf
            .regions
            .iter()
            .any(|r| matches!(r.term, Term::CmpJump { .. }));
        let has_latch = nf
            .regions
            .iter()
            .any(|r| matches!(r.term, Term::IncJump { .. }));
        assert!(has_cmp_head, "loop head should lower to Term::CmpJump");
        assert!(has_latch, "loop latch should lower to Term::IncJump");
        // The head's fall-through (the loop body) must itself start a
        // region, so a full iteration never leaves the native path.
        for r in &nf.regions {
            if let Term::CmpJump { target, fall, .. } = r.term {
                assert_ne!(nf.entry[fall as usize], NO_REGION, "body has a region");
                assert_ne!(nf.entry[target as usize], NO_REGION, "exit has a region");
            }
        }
    }

    #[test]
    fn charges_match_component_sums() {
        // A straight-line function: one region covering everything up to
        // the Ret breaker, charging exactly the unfused component count.
        let src = "int f() { int x = 3; int y = 4; return x + y; }";
        let fused = fuse_program(&compile_source(src).unwrap());
        let native = lower_native(&fused.funcs);
        let nf = &native.funcs[0];
        let entry_region = &nf.regions[nf.entry[0] as usize];
        // The region ends at the Ret; its charge equals the instruction
        // slots it covers (every slot is one component).
        let covered = match entry_region.term {
            Term::Fall(at) => at as u64,
            ref t => panic!("straight-line function should fall to Ret, got {t:?}"),
        };
        assert_eq!(entry_region.charge, covered);
    }

    #[test]
    fn pure_local_runs_group_into_register_blocks() {
        // A dispatch-bound body of local expression arithmetic: the
        // whole thing must collapse into register-form Locals blocks
        // with no ungrouped pure-local runs left at top level.
        let src = "long f(long n) { long t = 0; long u = 1; \
                   t = t + u + 3; t = t + 5; u = u + t; return t + u; }";
        let native = lower(src);
        let mut blocks = 0usize;
        for region in &native.funcs[0].regions {
            let mut run = 0usize;
            for op in &region.ops {
                match op {
                    NOp::Locals(block) => {
                        blocks += 1;
                        assert!(!block.ops.is_empty(), "empty block");
                        // Statement-shaped code is self-contained: a
                        // block never digs below its entry stack, and
                        // leaves at most the `return` expression's one
                        // value behind for the Ret breaker.
                        assert_eq!(block.consumes, 0, "statement block consumes");
                        assert!(block.produces <= 1, "statement block produces");
                        for r in block.ops.iter() {
                            if let ROp::Alu { dst, a, b, .. } = r {
                                assert!(
                                    (*dst as usize) < LOCALS_REGS
                                        && (*a as usize) < LOCALS_REGS
                                        && (*b as usize) < LOCALS_REGS,
                                    "register index out of range"
                                );
                            }
                        }
                        run = 0;
                    }
                    op if is_local_pure(op) => {
                        run += 1;
                        assert!(run < 2, "ungrouped run of pure local ops");
                    }
                    _ => run = 0,
                }
            }
        }
        assert!(blocks > 0, "local-only body should form a block");
    }

    #[test]
    fn register_lowering_resolves_stack_slots() {
        // `t + u` is LoadLocal t, LoadLocal u, Alu(Add): registers 0
        // and 1, the add landing in 0, the store reading 0.
        let run = [
            NOp::LoadLocal {
                off: 0,
                size: AccessSize::B8,
                signed: true,
            },
            NOp::LoadLocal {
                off: 8,
                size: AccessSize::B8,
                signed: true,
            },
            NOp::Alu(AluOp::Add),
            NOp::StoreLocal {
                off: 0,
                size: AccessSize::B8,
            },
        ];
        let block = lower_locals(&run).expect("shallow run lowers");
        assert_eq!(block.consumes, 0);
        assert_eq!(block.produces, 0);
        assert_eq!(
            &*block.ops,
            &[
                ROp::Load {
                    dst: 0,
                    off: 0,
                    size: AccessSize::B8,
                    signed: true
                },
                ROp::Load {
                    dst: 1,
                    off: 8,
                    size: AccessSize::B8,
                    signed: true
                },
                ROp::Alu {
                    dst: 0,
                    a: 0,
                    b: 1,
                    op: AluOp::Add
                },
                ROp::Store {
                    src: 0,
                    off: 0,
                    size: AccessSize::B8
                },
            ]
        );
    }

    #[test]
    fn register_lowering_biases_entry_stack_consumption() {
        // A run that digs below its entry depth: the consumed values
        // become the low registers and the balance is reported so the
        // executor can move them in and out of the operand stack.
        let run = [
            NOp::StoreLocal {
                off: 0,
                size: AccessSize::B8,
            },
            NOp::Const(7),
        ];
        let block = lower_locals(&run).expect("shallow run lowers");
        assert_eq!(block.consumes, 1, "the store pops an entry value");
        assert_eq!(block.produces, 1, "the const pushes one back");
        assert_eq!(
            &*block.ops,
            &[
                ROp::Store {
                    src: 0,
                    off: 0,
                    size: AccessSize::B8
                },
                ROp::Const { dst: 0, c: 7 },
            ]
        );
    }

    #[test]
    fn impure_ops_split_locals_blocks() {
        // The division can trap, so it must stay top-level with its
        // seam; the pure prefix and suffix group around it.
        let src = "long f(long a, long b) { long x = a + 1; \
                   long q = x / b; long y = q + 2; return y + x; }";
        let native = lower(src);
        let ops: Vec<&NOp> = native.funcs[0]
            .regions
            .iter()
            .flat_map(|r| &r.ops)
            .collect();
        assert!(
            ops.iter().any(|op| matches!(op, NOp::Div { .. })),
            "division must stay a top-level op"
        );
        assert!(
            ops.iter().any(|op| matches!(op, NOp::Locals(_))),
            "pure neighbours should still group"
        );
    }

    #[test]
    fn heap_accesses_group_into_memory_blocks() {
        // The access_cost copy shape: the loop body's `dst[i] = src[i]`
        // is address arithmetic plus two checked accesses — all block
        // members now, so it must collapse into a single memory block
        // whose address+access pairs fuse into the combined index ops.
        let src = "long f(long n) { long src[4]; long dst[4]; long i; \
                   for (i = 0; i < n; i++) dst[i] = src[i]; return dst[0]; }";
        let native = lower(src);
        let blocks: Vec<&LocalsBlock> = native.funcs[0]
            .regions
            .iter()
            .flat_map(|r| &r.ops)
            .filter_map(|op| match op {
                NOp::Locals(b) => Some(b),
                _ => None,
            })
            .collect();
        assert!(
            blocks.iter().any(|b| b.mem),
            "the copy body must form a memory-spanning block"
        );
        let fused_idx = blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .filter(|r| matches!(r, ROp::GIdxLoad { .. } | ROp::GIdxStore { .. }))
            .count();
        assert!(
            fused_idx >= 2,
            "variable-index load and store must fuse into GIdx forms"
        );
        for b in &blocks {
            if !b.mem {
                assert!(
                    !b.ops.iter().any(is_heap_rop),
                    "a pure block must not carry heap ops"
                );
            }
        }
    }

    #[test]
    fn heap_lowering_pins_seam_and_spill() {
        // LocalAddr pushes the address (depth 0 → 1); the load pops it
        // and pushes the value back into the same register. A fault at
        // the load must surface the baked seam with an empty spill
        // image (nothing sat below the popped address).
        let seam = FaultAt { pc: 7, spent: 3 };
        let run = [
            NOp::LocalAddr(16),
            NOp::Load {
                size: AccessSize::B8,
                signed: true,
                at: seam,
            },
        ];
        let block = lower_locals(&run).expect("heap run lowers");
        assert!(block.mem);
        assert_eq!(block.consumes, 0);
        assert_eq!(block.produces, 1);
        assert_eq!(
            &*block.ops,
            &[
                ROp::Addr { dst: 0, off: 16 },
                ROp::GLoad {
                    at: 0,
                    size: AccessSize::B8,
                    signed: true,
                    seam,
                    spill: 0
                },
            ]
        );
    }

    #[test]
    fn ptr_add_access_pairs_fuse_into_idx_ops() {
        // value, base, index, PtrAdd, Store — the classic indexed-store
        // pattern. The PtrAdd's derived pointer feeds the store
        // directly, so the pair must fuse into one GIdxStore carrying
        // the access's seam and the store's spill image (just the
        // not-yet-consumed value... nothing: the store pops both).
        let seam = FaultAt { pc: 11, spent: 4 };
        let run = [
            NOp::Const(5),
            NOp::LocalAddr(0),
            NOp::LoadLocal {
                off: 32,
                size: AccessSize::B8,
                signed: true,
            },
            NOp::PtrAdd { esz: 8 },
            NOp::Store {
                size: AccessSize::B8,
                at: seam,
            },
        ];
        let block = lower_locals(&run).expect("heap run lowers");
        assert!(block.mem);
        assert_eq!(block.consumes, 0);
        assert_eq!(block.produces, 0);
        assert_eq!(
            &*block.ops,
            &[
                ROp::Const { dst: 0, c: 5 },
                ROp::Addr { dst: 1, off: 0 },
                ROp::Load {
                    dst: 2,
                    off: 32,
                    size: AccessSize::B8,
                    signed: true
                },
                ROp::GIdxStore {
                    ptr: 1,
                    count: 2,
                    val: 0,
                    esz: 8,
                    size: AccessSize::B8,
                    seam,
                    spill: 0
                },
            ]
        );
    }

    #[test]
    fn accum_fault_seam_covers_five_components() {
        let src = "long f() { long acc = 0; long xs[2]; acc += xs[5]; return acc; }";
        let native = lower(src);
        let accum = native.funcs[0]
            .regions
            .iter()
            .flat_map(|r| &r.ops)
            .find_map(|op| match op {
                NOp::IdxAccum { at, .. } => Some(*at),
                _ => None,
            })
            .expect("accumulate statement should lower to IdxAccum");
        // The load is component 4 of the 9-wide pattern: the seam must
        // surface with exactly `prefix + 5` components charged and the
        // load's own architectural pc.
        let fused = fuse_program(&compile_source(src).unwrap());
        let head = fused.funcs[0]
            .code
            .iter()
            .position(|i| matches!(i, Instr::FusedLoadIdxAccum { .. }))
            .unwrap() as u32;
        assert_eq!(accum.pc, head + 5);
        assert!(accum.spent >= 5);
    }
}
