//! HIR → bytecode lowering.

use std::fmt;

use foc_lang::hir::{self, Callee};
use foc_lang::types::{CType, Layouts};
use foc_memory::AccessSize;

use crate::bytecode::{CompiledFunc, CompiledProgram, FrameLayout, GlobalImage, Instr};

/// Gap inserted between local data units so adjacent locals never blur
/// together in address-based object-table lookups (Jones & Kelly padding).
const LOCAL_GAP: u64 = 16;

/// Lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

/// Compiles a type-checked program to bytecode.
pub fn compile(program: &hir::Program) -> Result<CompiledProgram, CompileError> {
    let mut out = CompiledProgram {
        funcs: Vec::new(),
        globals: Vec::new(),
        strings: program.strings.clone(),
    };
    for g in &program.globals {
        let size = program.layouts.size_of(&g.ty);
        out.globals.push(GlobalImage {
            name: g.name.clone(),
            size,
            init: g.init.clone(),
            relocs: g.relocs.iter().map(|&(o, s)| (o, s.0)).collect(),
        });
    }
    for f in &program.funcs {
        out.funcs.push(compile_func(f, &program.layouts)?);
    }
    Ok(out)
}

fn frame_layout(f: &hir::Function, layouts: &Layouts) -> FrameLayout {
    let mut slots = Vec::with_capacity(f.locals.len());
    let mut offset = 0u64;
    for slot in &f.locals {
        let size = layouts.size_of(&slot.ty).max(1);
        let align = layouts.align_of(&slot.ty).max(1);
        offset = offset.div_ceil(align) * align;
        slots.push((offset, size));
        offset += size + LOCAL_GAP;
    }
    FrameLayout {
        slots,
        total: offset,
    }
}

fn compile_func(f: &hir::Function, layouts: &Layouts) -> Result<CompiledFunc, CompileError> {
    let frame = frame_layout(f, layouts);
    let mut cg = Codegen {
        layouts,
        frame: &frame,
        code: Vec::new(),
        labels: vec![None; f.label_count as usize],
        label_fixups: Vec::new(),
        loops: Vec::new(),
    };
    for stmt in &f.body {
        cg.emit_stmt(stmt)?;
    }
    // Implicit return for functions that fall off the end.
    cg.code.push(Instr::Const(0));
    cg.code.push(Instr::Ret);
    cg.patch_labels()?;
    let code = std::mem::take(&mut cg.code);
    drop(cg);
    Ok(CompiledFunc {
        name: f.name.clone(),
        param_count: f.param_count,
        frame,
        code,
    })
}

/// Break/continue fixups for one enclosing loop.
struct LoopCtx {
    break_fixups: Vec<usize>,
    continue_fixups: Vec<usize>,
}

struct Codegen<'a> {
    layouts: &'a Layouts,
    frame: &'a FrameLayout,
    code: Vec<Instr>,
    /// Placement of each HIR label.
    labels: Vec<Option<u32>>,
    /// `(instruction index, label)` pairs to patch.
    label_fixups: Vec<(usize, hir::LabelId)>,
    loops: Vec<LoopCtx>,
}

impl<'a> Codegen<'a> {
    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a jump-family instruction whose target is patched later.
    fn emit_jump_to_label(&mut self, make: fn(u32) -> Instr, label: hir::LabelId) {
        self.label_fixups.push((self.code.len(), label));
        self.code.push(make(u32::MAX));
    }

    fn patch_target(&mut self, at: usize, target: u32) {
        let ins = match self.code[at] {
            Instr::Jump(_) => Instr::Jump(target),
            Instr::JumpIfZero(_) => Instr::JumpIfZero(target),
            Instr::JumpIfNotZero(_) => Instr::JumpIfNotZero(target),
            other => panic!("patching non-jump {other:?}"),
        };
        self.code[at] = ins;
    }

    fn patch_labels(&mut self) -> Result<(), CompileError> {
        let fixups = std::mem::take(&mut self.label_fixups);
        for (at, label) in fixups {
            let Some(target) = self.labels[label.0 as usize] else {
                return Err(CompileError {
                    message: format!("label {} never placed", label.0),
                });
            };
            self.patch_target(at, target);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Statements.
    // ------------------------------------------------------------------

    fn emit_stmt(&mut self, stmt: &hir::Stmt) -> Result<(), CompileError> {
        match stmt {
            hir::Stmt::Expr(e) => {
                self.emit_expr(e)?;
                self.code.push(Instr::Drop);
            }
            hir::Stmt::If { cond, then, els } => {
                self.emit_expr(cond)?;
                let jelse = self.code.len();
                self.code.push(Instr::JumpIfZero(u32::MAX));
                for s in then {
                    self.emit_stmt(s)?;
                }
                if els.is_empty() {
                    let end = self.here();
                    self.patch_target(jelse, end);
                } else {
                    let jend = self.code.len();
                    self.code.push(Instr::Jump(u32::MAX));
                    let else_at = self.here();
                    self.patch_target(jelse, else_at);
                    for s in els {
                        self.emit_stmt(s)?;
                    }
                    let end = self.here();
                    self.patch_target(jend, end);
                }
            }
            hir::Stmt::While { cond, body, step } => {
                let cond_at = self.here();
                self.emit_expr(cond)?;
                let jend = self.code.len();
                self.code.push(Instr::JumpIfZero(u32::MAX));
                self.loops.push(LoopCtx {
                    break_fixups: Vec::new(),
                    continue_fixups: Vec::new(),
                });
                for s in body {
                    self.emit_stmt(s)?;
                }
                let cont_at = self.here();
                if let Some(step) = step {
                    self.emit_expr(step)?;
                    self.code.push(Instr::Drop);
                }
                self.code.push(Instr::Jump(cond_at));
                let end = self.here();
                self.patch_target(jend, end);
                let ctx = self.loops.pop().expect("loop ctx");
                for at in ctx.break_fixups {
                    self.patch_target(at, end);
                }
                for at in ctx.continue_fixups {
                    self.patch_target(at, cont_at);
                }
            }
            hir::Stmt::DoWhile { body, cond } => {
                let body_at = self.here();
                self.loops.push(LoopCtx {
                    break_fixups: Vec::new(),
                    continue_fixups: Vec::new(),
                });
                for s in body {
                    self.emit_stmt(s)?;
                }
                let cont_at = self.here();
                self.emit_expr(cond)?;
                self.code.push(Instr::JumpIfNotZero(body_at));
                let end = self.here();
                let ctx = self.loops.pop().expect("loop ctx");
                for at in ctx.break_fixups {
                    self.patch_target(at, end);
                }
                for at in ctx.continue_fixups {
                    self.patch_target(at, cont_at);
                }
            }
            hir::Stmt::Break => {
                let Some(ctx) = self.loops.last_mut() else {
                    return Err(CompileError {
                        message: "break outside loop".into(),
                    });
                };
                ctx.break_fixups.push(self.code.len());
                self.code.push(Instr::Jump(u32::MAX));
                let at = self.code.len() - 1;
                // Move the recorded index into the (re-borrowed) context;
                // the push above may have invalidated nothing, but keep the
                // bookkeeping straight.
                let ctx = self.loops.last_mut().expect("loop ctx");
                *ctx.break_fixups.last_mut().expect("just pushed") = at;
            }
            hir::Stmt::Continue => {
                let Some(ctx) = self.loops.last_mut() else {
                    return Err(CompileError {
                        message: "continue outside loop".into(),
                    });
                };
                ctx.continue_fixups.push(self.code.len());
                self.code.push(Instr::Jump(u32::MAX));
            }
            hir::Stmt::Return(e) => {
                match e {
                    Some(e) => {
                        self.emit_expr(e)?;
                    }
                    None => self.code.push(Instr::Const(0)),
                }
                self.code.push(Instr::Ret);
            }
            hir::Stmt::Label(id) => {
                self.labels[id.0 as usize] = Some(self.here());
            }
            hir::Stmt::Goto(id) => {
                self.emit_jump_to_label(Instr::Jump, *id);
            }
            hir::Stmt::GotoIf { cond, target } => {
                self.emit_expr(cond)?;
                self.emit_jump_to_label(Instr::JumpIfNotZero, *target);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expressions: each emission leaves exactly one value on the stack.
    // ------------------------------------------------------------------

    fn emit_expr(&mut self, e: &hir::Expr) -> Result<(), CompileError> {
        match e {
            hir::Expr::Const(v, ty) => {
                self.code.push(Instr::Const(canonical(*v, ty)));
            }
            hir::Expr::Str(id) => self.code.push(Instr::StrAddr(id.0)),
            hir::Expr::LocalAddr(id, _) => {
                let (offset, _) = self.frame.slots[id.0 as usize];
                self.code.push(Instr::LocalAddr(offset as u32));
            }
            hir::Expr::GlobalAddr(id, _) => self.code.push(Instr::GlobalAddr(id.0)),
            hir::Expr::Load { addr, ty } => {
                let (size, signed) = scalar_repr(ty, self.layouts);
                if let Some(off) = self.direct_local(addr) {
                    self.code.push(Instr::LoadLocal(off, size, signed));
                } else {
                    self.emit_expr(addr)?;
                    self.code.push(Instr::Load(size, signed));
                }
            }
            hir::Expr::Store { addr, value, ty } => {
                let (size, _) = scalar_repr(ty, self.layouts);
                self.emit_expr(value)?;
                self.code.push(Instr::Dup);
                if let Some(off) = self.direct_local(addr) {
                    self.code.push(Instr::StoreLocal(off, size));
                } else {
                    self.emit_expr(addr)?;
                    self.code.push(Instr::Store(size));
                }
            }
            hir::Expr::Binary { op, lhs, rhs, ty } => {
                self.emit_expr(lhs)?;
                if lhs.ty().is_pointer() {
                    self.code.push(Instr::EffAddr);
                }
                self.emit_expr(rhs)?;
                if rhs.ty().is_pointer() {
                    self.code.push(Instr::EffAddr);
                }
                self.code.push(binop_instr(*op));
                self.emit_normalize(ty);
            }
            hir::Expr::Unary { op, operand, ty } => {
                self.emit_expr(operand)?;
                self.code.push(match op {
                    hir::UnOp::Neg => Instr::Neg,
                    hir::UnOp::BitNot => Instr::BitNot,
                    hir::UnOp::Not => Instr::Not,
                });
                if !matches!(op, hir::UnOp::Not) {
                    self.emit_normalize(ty);
                }
            }
            hir::Expr::Cast { expr, from, to } => {
                self.emit_expr(expr)?;
                match (from.is_pointer(), to.is_pointer()) {
                    (true, true) | (false, true) => {
                        // Pointer↔pointer and int→pointer keep the bits.
                    }
                    (true, false) => {
                        // Pointer→integer resolves the intended address
                        // (CRED semantics for out-of-bounds pointers).
                        self.code.push(Instr::EffAddr);
                        self.emit_normalize(to);
                    }
                    (false, false) => self.emit_normalize(to),
                }
            }
            hir::Expr::PtrAdd {
                ptr,
                count,
                elem_size,
                ..
            } => {
                self.emit_expr(ptr)?;
                self.emit_expr(count)?;
                self.code.push(Instr::PtrAdd(*elem_size));
            }
            hir::Expr::PtrDiff {
                lhs,
                rhs,
                elem_size,
            } => {
                self.emit_expr(lhs)?;
                self.emit_expr(rhs)?;
                self.code.push(Instr::PtrDiff(*elem_size));
            }
            hir::Expr::Call { callee, args, .. } => {
                for a in args {
                    self.emit_expr(a)?;
                }
                match callee {
                    Callee::Func(fid) => self.code.push(Instr::Call(fid.0)),
                    Callee::Builtin(b) => self.code.push(Instr::CallBuiltin(*b)),
                }
            }
            hir::Expr::ShortCircuit { and, lhs, rhs } => {
                self.emit_expr(lhs)?;
                let jshort = self.code.len();
                if *and {
                    self.code.push(Instr::JumpIfZero(u32::MAX));
                } else {
                    self.code.push(Instr::JumpIfNotZero(u32::MAX));
                }
                self.emit_expr(rhs)?;
                // Normalise the right side to 0/1.
                self.code.push(Instr::Const(0));
                self.code.push(Instr::Ne);
                let jend = self.code.len();
                self.code.push(Instr::Jump(u32::MAX));
                let short_at = self.here();
                self.code.push(Instr::Const(if *and { 0 } else { 1 }));
                let end = self.here();
                self.patch_target(jshort, short_at);
                self.patch_target(jend, end);
            }
            hir::Expr::Conditional {
                cond, then, els, ..
            } => {
                self.emit_expr(cond)?;
                let jelse = self.code.len();
                self.code.push(Instr::JumpIfZero(u32::MAX));
                self.emit_expr(then)?;
                let jend = self.code.len();
                self.code.push(Instr::Jump(u32::MAX));
                let else_at = self.here();
                self.patch_target(jelse, else_at);
                self.emit_expr(els)?;
                let end = self.here();
                self.patch_target(jend, end);
            }
            hir::Expr::Comma { effects, result } => {
                self.emit_expr(effects)?;
                self.code.push(Instr::Drop);
                self.emit_expr(result)?;
            }
            hir::Expr::IncDec {
                addr,
                ty,
                delta,
                prefix,
                ptr,
            } => {
                let (size, signed) = scalar_repr(ty, self.layouts);
                if let Some(off) = self.direct_local(addr) {
                    // Direct scalar local: the hot i++ path.
                    self.code.push(Instr::LoadLocal(off, size, signed));
                    if !*prefix {
                        self.code.push(Instr::Dup); // [old, old]
                    }
                    if *ptr {
                        self.code.push(Instr::Const(*delta));
                        self.code.push(Instr::PtrAdd(1));
                    } else {
                        self.code.push(Instr::Const(*delta));
                        self.code.push(Instr::Add);
                        self.emit_normalize(ty);
                    }
                    if *prefix {
                        self.code.push(Instr::Dup); // [new, new]
                        self.code.push(Instr::StoreLocal(off, size)); // [new]
                    } else {
                        // [old, new] → store new, keep old.
                        self.code.push(Instr::StoreLocal(off, size)); // [old]
                    }
                    return Ok(());
                }
                self.emit_expr(addr)?;
                self.code.push(Instr::Dup);
                self.code.push(Instr::Load(size, signed));
                // Stack: [addr, old].
                if !*prefix {
                    self.code.push(Instr::Dup); // [addr, old, old]
                }
                // Compute new value from the top copy.
                if *ptr {
                    self.code.push(Instr::Const(*delta));
                    self.code.push(Instr::PtrAdd(1));
                } else {
                    self.code.push(Instr::Const(*delta));
                    self.code.push(Instr::Add);
                    self.emit_normalize(ty);
                }
                if *prefix {
                    // [addr, new] → keep new as result.
                    self.code.push(Instr::Dup); // [addr, new, new]
                    self.code.push(Instr::Rot3); // [new, new, addr]
                    self.code.push(Instr::Store(size)); // [new]
                } else {
                    // [addr, old, new] → keep old as result.
                    self.code.push(Instr::Rot3); // [old, new, addr]
                    self.code.push(Instr::Store(size)); // [old]
                }
            }
        }
        Ok(())
    }

    /// Frame offset when `addr` is statically the address of a scalar
    /// local (direct slot access — never instrumented).
    fn direct_local(&self, addr: &hir::Expr) -> Option<u32> {
        if let hir::Expr::LocalAddr(id, ty) = addr {
            if ty.is_scalar() {
                let (offset, _) = self.frame.slots[id.0 as usize];
                return Some(offset as u32);
            }
        }
        None
    }

    fn emit_normalize(&mut self, ty: &CType) {
        let (size, signed) = scalar_repr(ty, self.layouts);
        if size != AccessSize::B8 {
            self.code.push(Instr::Normalize(size, signed));
        }
    }
}

/// Width and signedness of a scalar type's memory representation.
fn scalar_repr(ty: &CType, _layouts: &Layouts) -> (AccessSize, bool) {
    match ty {
        CType::Int { width, signed } => (AccessSize::from_bytes(width.bytes()), *signed),
        CType::Ptr(_) => (AccessSize::B8, false),
        other => panic!("non-scalar in value position: {other}"),
    }
}

/// Canonical `i64` representation of a constant for its type.
fn canonical(v: i64, ty: &CType) -> i64 {
    match ty {
        CType::Int { width, signed } => {
            let bits = width.bytes() * 8;
            if bits == 64 {
                return v;
            }
            let mask = (1u64 << bits) - 1;
            let low = (v as u64) & mask;
            if *signed {
                let sign_bit = 1u64 << (bits - 1);
                if low & sign_bit != 0 {
                    (low | !mask) as i64
                } else {
                    low as i64
                }
            } else {
                low as i64
            }
        }
        _ => v,
    }
}

fn binop_instr(op: hir::BinOp) -> Instr {
    use hir::BinOp as B;
    match op {
        B::Add => Instr::Add,
        B::Sub => Instr::Sub,
        B::Mul => Instr::Mul,
        B::DivS => Instr::DivS,
        B::DivU => Instr::DivU,
        B::RemS => Instr::RemS,
        B::RemU => Instr::RemU,
        B::And => Instr::And,
        B::Or => Instr::Or,
        B::Xor => Instr::Xor,
        B::Shl => Instr::Shl,
        B::ShrS => Instr::ShrS,
        B::ShrU => Instr::ShrU,
        B::Eq => Instr::Eq,
        B::Ne => Instr::Ne,
        B::LtS => Instr::LtS,
        B::LtU => Instr::LtU,
        B::LeS => Instr::LeS,
        B::LeU => Instr::LeU,
        B::GtS => Instr::GtS,
        B::GtU => Instr::GtU,
        B::GeS => Instr::GeS,
        B::GeU => Instr::GeU,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    #[test]
    fn compiles_minimal_program() {
        let p = compile_source("int main() { return 42; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        let code = &p.funcs[0].code;
        assert!(code.contains(&Instr::Const(42)));
        assert!(code.contains(&Instr::Ret));
    }

    #[test]
    fn frame_layout_separates_locals() {
        let p = compile_source("int f() { char a[16]; char b[16]; return 0; }").unwrap();
        let frame = &p.funcs[0].frame;
        assert_eq!(frame.slots.len(), 2);
        let (o1, s1) = frame.slots[0];
        let (o2, _) = frame.slots[1];
        assert!(
            o2 >= o1 + s1 + LOCAL_GAP,
            "locals must be separated by a gap"
        );
    }

    #[test]
    fn loads_carry_width_and_sign() {
        let p = compile_source("int f(char *p, unsigned char *q) { return *p + *q; }").unwrap();
        let code = &p.funcs[0].code;
        assert!(code.contains(&Instr::Load(AccessSize::B1, true)));
        assert!(code.contains(&Instr::Load(AccessSize::B1, false)));
    }

    #[test]
    fn pointer_indexing_emits_ptr_add() {
        let p = compile_source("int f(int *xs, int i) { return xs[i]; }").unwrap();
        assert!(p.funcs[0].code.contains(&Instr::PtrAdd(4)));
    }

    #[test]
    fn pointer_comparison_uses_effective_addresses() {
        let p = compile_source("int f(char *a, char *b) { return a < b; }").unwrap();
        let effs = p.funcs[0]
            .code
            .iter()
            .filter(|i| **i == Instr::EffAddr)
            .count();
        assert_eq!(effs, 2);
        assert!(p.funcs[0].code.contains(&Instr::LtU));
    }

    #[test]
    fn short_circuit_does_not_always_evaluate_rhs() {
        let p = compile_source("int f(int a, int b) { return a && b; }").unwrap();
        let code = &p.funcs[0].code;
        assert!(code.iter().any(|i| matches!(i, Instr::JumpIfZero(_))));
    }

    #[test]
    fn labels_are_patched() {
        let p =
            compile_source("int f() { int x = 0; again: x++; if (x < 3) goto again; return x; }")
                .unwrap();
        for ins in &p.funcs[0].code {
            match ins {
                Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNotZero(t) => {
                    assert_ne!(*t, u32::MAX, "unpatched jump");
                    assert!((*t as usize) <= p.funcs[0].code.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn globals_and_strings_are_imaged() {
        let p = compile_source(
            "char tab[4] = \"ab\"; char *msg = \"hello\";\n\
             char *f() { return msg; }",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].init[..3], *b"ab\0");
        assert_eq!(p.globals[1].relocs.len(), 1);
        assert!(!p.strings.is_empty());
    }

    #[test]
    fn canonical_constant_representation() {
        assert_eq!(canonical(0xFF, &CType::CHAR), -1);
        assert_eq!(canonical(0xFF, &CType::UCHAR), 0xFF);
        assert_eq!(canonical(-1, &CType::UINT), 0xFFFF_FFFF);
        assert_eq!(canonical(0x1_0000_0001, &CType::INT), 1);
        assert_eq!(canonical(-5, &CType::LONG), -5);
    }

    #[test]
    fn disassembly_renders() {
        let p = compile_source("int main() { return 1; }").unwrap();
        let dis = p.disassemble();
        assert!(dis.contains("fn main"));
        assert!(dis.contains("Ret"));
    }

    #[test]
    fn break_and_continue_patch_into_loop() {
        let p = compile_source(
            "int f() {\n\
               int i; int n = 0;\n\
               for (i = 0; i < 10; i++) {\n\
                 if (i == 3) continue;\n\
                 if (i == 7) break;\n\
                 n++;\n\
               }\n\
               return n;\n\
             }",
        )
        .unwrap();
        for ins in &p.funcs[0].code {
            if let Instr::Jump(t) = ins {
                assert_ne!(*t, u32::MAX);
            }
        }
    }
}
