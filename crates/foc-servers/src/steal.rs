//! A generic work-stealing slice executor — the scheduling core shared
//! by the server farm ([`crate::farm`]) and the mode search-space sweep
//! ([`crate::sweep`]).
//!
//! The model: `n` tasks, each producing exactly one result, executed
//! over `threads` worker threads. A task runs in *slices* — the step
//! function either yields the task back (to be requeued and resumed,
//! possibly on a different thread) or finishes it with a result for its
//! slot. Every worker owns a deque; it drains its own deque from the
//! front and steals from the back of other workers' deques when it runs
//! dry. Idle workers park on a condvar instead of spinning; a worker
//! panic aborts the whole run (the scope re-throws the panic rather
//! than hanging the siblings).
//!
//! The executor guarantees nothing about *which thread* runs a slice —
//! callers that need determinism must make each task's computation a
//! pure function of the task itself, as both the farm (per-server
//! seeded streams) and the sweep (per-cell fresh processes) do.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

/// What one executed slice did with its task.
pub enum Slice<T, R> {
    /// The task is unfinished: requeue it.
    Yield(T),
    /// The task completed, publishing `R` into result slot `usize`.
    Done(usize, R),
}

/// Shared scheduler state for one run.
struct Scheduler<T, R> {
    /// One deque per worker thread.
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Tasks whose results have not been published yet.
    unfinished: AtomicUsize,
    /// Per-task results, filled in as tasks finish.
    slots: Mutex<Vec<Option<R>>>,
    /// Set when a worker unwinds mid-task: its task will never finish,
    /// so idle siblings must stop waiting for the count to drain and let
    /// the scope re-throw the panic instead of hanging the run.
    aborted: AtomicBool,
    /// Idle workers park here instead of burning CPU; signalled when a
    /// task is requeued and when the run drains or aborts.
    idle_lock: Mutex<()>,
    idle: Condvar,
}

impl<T, R> Scheduler<T, R> {
    fn new(tasks: usize, threads: usize) -> Scheduler<T, R> {
        Scheduler {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            unfinished: AtomicUsize::new(tasks),
            slots: Mutex::new((0..tasks).map(|_| None).collect()),
            aborted: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle: Condvar::new(),
        }
    }
}

/// Pops the next task for worker `me`: own deque first (front — the
/// worker round-robins its tasks), then steal from the back of the
/// other workers' deques.
fn pop_task<T>(me: usize, deques: &[Mutex<VecDeque<T>>]) -> Option<T> {
    if let Some(task) = deques[me].lock().expect("steal deque lock").pop_front() {
        return Some(task);
    }
    let n = deques.len();
    for d in 1..n {
        let victim = (me + d) % n;
        if let Some(task) = deques[victim].lock().expect("steal deque lock").pop_back() {
            return Some(task);
        }
    }
    None
}

/// Flags the scheduler as aborted when dropped armed (i.e. when the
/// owning worker unwinds instead of exiting its loop normally).
struct AbortSentinel<'a, T, R> {
    sched: &'a Scheduler<T, R>,
    armed: bool,
}

impl<T, R> Drop for AbortSentinel<'_, T, R> {
    fn drop(&mut self) {
        if self.armed {
            self.sched.aborted.store(true, Ordering::Release);
            self.sched.idle.notify_all();
        }
    }
}

/// How long an idle worker parks before re-checking for stealable work
/// (bounds the window where a wakeup raced its last pop attempt).
const IDLE_PARK: std::time::Duration = std::time::Duration::from_micros(200);

/// One worker thread's scheduling loop.
fn worker_loop<T, R>(
    me: usize,
    sched: &Scheduler<T, R>,
    step: &(impl Fn(T) -> Slice<T, R> + Sync),
) {
    let mut sentinel = AbortSentinel { sched, armed: true };
    loop {
        if sched.aborted.load(Ordering::Acquire) {
            break;
        }
        let Some(task) = pop_task(me, &sched.deques) else {
            if sched.unfinished.load(Ordering::Acquire) == 0 {
                break;
            }
            // Every remaining task is live on some other worker; park
            // until one yields or finishes rather than spinning.
            let guard = sched.idle_lock.lock().expect("steal idle lock");
            let _ = sched
                .idle
                .wait_timeout(guard, IDLE_PARK)
                .expect("steal idle lock");
            continue;
        };
        match step(task) {
            Slice::Yield(task) => {
                sched.deques[me]
                    .lock()
                    .expect("steal deque lock")
                    .push_back(task);
                sched.idle.notify_one();
            }
            Slice::Done(index, result) => {
                sched.slots.lock().expect("steal result lock")[index] = Some(result);
                if sched.unfinished.fetch_sub(1, Ordering::AcqRel) == 1 {
                    sched.idle.notify_all();
                }
            }
        }
    }
    sentinel.armed = false;
}

/// Runs `tasks` to completion over `threads` worker threads, returning
/// the results in slot order. Tasks are seeded round-robin across the
/// worker deques in their given order.
///
/// Each task must finish with a distinct slot index in
/// `0..tasks.len()`; the slot a task publishes to is the caller's
/// contract (both current callers use the task's seeding position).
///
/// # Panics
///
/// Panics when `tasks` is empty, when a worker thread panics (the
/// panic is propagated), or when a task finishes into a slot some other
/// task already filled (leaving another slot empty).
pub fn run_stealing<T, R, F>(threads: usize, tasks: Vec<T>, step: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Slice<T, R> + Sync,
{
    assert!(
        !tasks.is_empty(),
        "work-stealing run needs at least one task"
    );
    let threads = threads.clamp(1, tasks.len());
    let sched = Scheduler::new(tasks.len(), threads);
    for (i, task) in tasks.into_iter().enumerate() {
        sched.deques[i % threads]
            .lock()
            .expect("steal deque lock")
            .push_back(task);
    }

    thread::scope(|scope| {
        for me in 0..threads {
            let sched = &sched;
            let step = &step;
            scope.spawn(move || worker_loop(me, sched, step));
        }
    });

    sched
        .slots
        .into_inner()
        .expect("steal result lock")
        .into_iter()
        .map(|s| s.expect("every task slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slice_tasks_complete_in_slot_order() {
        let tasks: Vec<usize> = (0..32).collect();
        let results = run_stealing(4, tasks, |i| Slice::Done(i, i * 10));
        assert_eq!(results, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn yielding_tasks_resume_until_done() {
        // Each task counts to its own index by yielding once per step.
        struct Count {
            slot: usize,
            left: usize,
            done: usize,
        }
        let tasks: Vec<Count> = (0..16)
            .map(|slot| Count {
                slot,
                left: slot,
                done: 0,
            })
            .collect();
        let results = run_stealing(3, tasks, |mut t: Count| {
            if t.left == 0 {
                return Slice::Done(t.slot, t.done);
            }
            t.left -= 1;
            t.done += 1;
            Slice::Yield(t)
        });
        assert_eq!(results, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads| {
            run_stealing(threads, (0..40usize).collect(), |i| {
                Slice::Done(i, (i as u64).wrapping_mul(0x9E37_79B9))
            })
        };
        assert_eq!(run(1), run(7));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_run_is_a_bug() {
        let _ = run_stealing(2, Vec::<usize>::new(), |i| Slice::Done::<usize, ()>(i, ()));
    }
}
