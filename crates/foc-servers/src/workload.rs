//! Workload generation: deterministic, seeded request content.
//!
//! All generators are deterministic in their seed so experiment runs are
//! reproducible; the bench harness varies seeds per repetition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Words used to synthesise message bodies and file contents.
const WORDS: &[&str] = &[
    "lorem",
    "ipsum",
    "dolor",
    "sit",
    "amet",
    "consectetur",
    "adipiscing",
    "elit",
    "sed",
    "do",
    "eiusmod",
    "tempor",
    "incididunt",
    "labore",
    "dolore",
    "magna",
    "aliqua",
    "enim",
    "minim",
    "veniam",
    "quis",
    "nostrud",
    "exercitation",
    "ullamco",
    "laboris",
    "nisi",
    "aliquip",
];

/// Generates roughly `len` bytes of word-like text (always at least one
/// byte, never longer than `len`), with occasional URLs and newlines so
/// pager-style scanning loops have realistic work.
pub fn lorem(len: usize, seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    lorem_into(&mut out, len, seed);
    out
}

/// [`lorem`] into a caller-provided buffer — the farm's per-request path,
/// which reuses one scratch buffer per server instead of allocating a
/// fresh `Vec` per request.
pub fn lorem_into(out: &mut Vec<u8>, len: usize, seed: u64) {
    out.clear();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut col = 0usize;
    while out.len() < len.saturating_sub(12) {
        if rng.gen_ratio(1, 40) {
            out.extend_from_slice(b"http://x.org");
            col += 12;
        } else {
            let w = WORDS[rng.gen_range(0..WORDS.len())];
            out.extend_from_slice(w.as_bytes());
            col += w.len();
        }
        if col > 68 {
            out.push(b'\n');
            col = 0;
        } else {
            out.push(b' ');
            col += 1;
        }
    }
    if out.is_empty() {
        out.push(b'x');
    }
    out.truncate(len.max(1));
    // Trim trailing whitespace so lengths stay predictable-ish.
    while out.len() > 1 && (out.last() == Some(&b' ') || out.last() == Some(&b'\n')) {
        out.pop();
    }
}

/// A plausible e-mail From field (display name + address).
pub fn from_field(seed: u64) -> Vec<u8> {
    let mut out = Vec::new();
    from_field_into(&mut out, seed);
    out
}

/// [`from_field`] into a caller-provided buffer.
pub fn from_field_into(out: &mut Vec<u8>, seed: u64) {
    use std::io::Write as _;
    out.clear();
    let mut rng = StdRng::seed_from_u64(seed);
    let first = WORDS[rng.gen_range(0..WORDS.len())];
    let last = WORDS[rng.gen_range(0..WORDS.len())];
    let _ = write!(out, "{first} {last} <{first}.{last}@example.org>");
}

/// A From field dense with characters Pine must quote — the §4.2 attack
/// ("From fields contain many quoted characters").
pub fn pine_attack_from(quoted: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(quoted * 2 + 16);
    v.extend_from_slice(b"\"");
    for _ in 0..quoted {
        v.extend_from_slice(b"\\\"");
    }
    v.extend_from_slice(b"\" <attacker@evil.example>");
    v
}

/// An RFC-2821-ish address whose `\`/`0xFF` alternation drives Sendmail's
/// prescan past its buffer (§4.4).
pub fn sendmail_attack_address(pairs: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(pairs * 2 + 16);
    for _ in 0..pairs {
        v.push(b'\\');
        v.push(0xFF);
    }
    v.extend_from_slice(b"@evil.example");
    v
}

/// A legitimate SMTP address.
pub fn sendmail_address(seed: u64) -> Vec<u8> {
    let mut out = Vec::new();
    sendmail_address_into(&mut out, seed);
    out
}

/// [`sendmail_address`] into a caller-provided buffer.
pub fn sendmail_address_into(out: &mut Vec<u8>, seed: u64) {
    use std::io::Write as _;
    out.clear();
    let mut rng = StdRng::seed_from_u64(seed);
    let user = WORDS[rng.gen_range(0..WORDS.len())];
    let _ = write!(out, "{user}{}@example.org", rng.gen_range(0..100));
}

/// A rewrite-rule URL with the given number of capturable segments — more
/// than ten triggers the Apache offsets-buffer overflow (§4.3).
pub fn apache_url(segments: usize) -> Vec<u8> {
    let mut v = b"/rw".to_vec();
    for i in 0..segments {
        v.extend_from_slice(format!("/s{i}").as_bytes());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorem_is_deterministic_and_sized() {
        let a = lorem(1000, 7);
        let b = lorem(1000, 7);
        assert_eq!(a, b);
        assert!(a.len() <= 1000 && a.len() > 800);
        assert!(!a.contains(&0), "no NUL bytes in text");
        let c = lorem(1000, 8);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn lorem_handles_tiny_sizes() {
        assert_eq!(lorem(1, 2).len(), 1);
        assert!(!lorem(5, 3).is_empty());
    }

    #[test]
    fn attack_generators_shape() {
        let p = pine_attack_from(10);
        assert_eq!(p.iter().filter(|&&b| b == b'"').count(), 12);
        let s = sendmail_attack_address(5);
        assert_eq!(s.iter().filter(|&&b| b == 0xFF).count(), 5);
        assert_eq!(s.iter().filter(|&&b| b == b'\\').count(), 5);
        let u = apache_url(12);
        assert_eq!(u.iter().filter(|&&b| b == b'/').count(), 13);
    }
}
