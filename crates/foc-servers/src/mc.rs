//! Midnight Commander 4.5.55 (§4.5): the tgz symlink `strcat` overflow.
//!
//! When MC opens a tgz archive it converts absolute symbolic links into
//! links relative to the archive root, building each name with `strcat`
//! in a stack buffer that is *never initialised*: component names simply
//! accumulate across links, and once their combined length exceeds the
//! buffer, `strcat` writes past its end.
//!
//! Two more documented errors live here:
//!
//! * the configuration loader commits a memory error on every *blank
//!   line* (`line[strlen(line) - 1]` underflows) — harmless under the
//!   Standard compiler, fatal at startup under Bounds Check (§4.5.4),
//!   logged-and-ignored under failure-oblivious;
//! * a path-component scan loops "searching past the end of a buffer
//!   looking for the `/` character" (§3) — the paper's motivation for the
//!   manufactured-value sequence: a constant sequence would hang it; the
//!   cycling sequence eventually produces `'/'` and the loop exits.

use foc_compiler::ProgramImage;
use foc_memory::{Mode, TableKind};
use foc_vm::VmFault;

use crate::image::{self, ServerKind};
use crate::{BootSpec, Measured, Outcome, Process, ProcessCheckpoint};

/// MiniC source of the Midnight Commander model.
pub const MC_SOURCE: &str = r#"
/* ---- Virtual file system ---------------------------------------------- */

struct fentry {
    int used;
    char name[64];
    long size;
    int is_dir;
};

struct fentry fs[128];
int nfs = 0;

long fs_lookup(char *name) {
    int i;
    for (i = 0; i < nfs; i++) {
        if (fs[i].used && strcmp(fs[i].name, name) == 0) return i;
    }
    return -1;
}

int fs_create(char *name, long size, int is_dir) {
    if (nfs >= 128) return -1;
    fs[nfs].used = 1;
    strncpy(fs[nfs].name, name, 63);
    fs[nfs].name[63] = '\0';
    fs[nfs].size = size;
    fs[nfs].is_dir = is_dir;
    nfs++;
    return nfs - 1;
}

/* ---- Configuration loading (the blank-line error) --------------------- */

int config_lines = 0;

int mc_load_config(char *cfg) {
    char line[128];
    int pos = 0;
    int n = 0;
    while (1) {
        int j = 0;
        while (cfg[pos] && cfg[pos] != '\n') {
            if (j < 127) line[j++] = cfg[pos];
            pos++;
        }
        line[j] = '\0';
        /* Strip a trailing CR. BUG: on a blank line strlen() is 0 and the
           index underflows the buffer. */
        if (line[strlen(line) - 1] == '\r') line[strlen(line) - 1] = '\0';
        n++;
        if (!cfg[pos]) break;
        pos++;
    }
    config_lines = n;
    return n;
}

/* ---- tgz symlink conversion (the strcat overflow) ---------------------- */

char links[24][80];
int link_status[24];
int nlinks = 0;

int mc_add_link(char *target) {
    if (nlinks >= 24) return -1;
    strncpy(links[nlinks], target, 79);
    links[nlinks][79] = '\0';
    nlinks++;
    return nlinks - 1;
}

int mc_clear_links() {
    nlinks = 0;
    return 0;
}

/* Opens the archive: converts each absolute link to a relative one. The
   buffer is never initialised and never reset, so component names
   accumulate across iterations (§4.5.1). */
int mc_open_tgz() {
    int i;
    int dangling;
    char buf[64];            /* BUG: uninitialised accumulator */
    dangling = 0;
    io_wait(128);
    for (i = 0; i < nlinks; i++) {
        strcat(buf, "../");
        strcat(buf, links[i]);
        if (fs_lookup(buf) < 0) {
            link_status[i] = 0;   /* shown to the user as dangling */
            dangling++;
        } else {
            link_status[i] = 1;
        }
    }
    return dangling;
}

/* Path-component scan: the loop of §3 that searches for '/' with no
   bounds check. For inputs without a '/' it runs off the end. */
int mc_component_end(char *name) {
    int i;
    char tmp[32];
    strncpy(tmp, name, 31);
    tmp[31] = '\0';
    i = 0;
    while (tmp[i] != '/') i++;
    return i;
}

/* ---- File operations (Figure 5 requests) ------------------------------ */

char rdbuf[4096];
char wrbuf[4096];

/* Copy through userspace buffers, as mc does: read, copy, write. */
long mc_copy_file(char *src, char *dst) {
    long idx = fs_lookup(src);
    if (idx < 0) return -1;
    long size = fs[idx].size;
    if (fs_create(dst, size, fs[idx].is_dir) < 0) return -2;
    long done = 0;
    while (done < size) {
        long chunk = size - done;
        if (chunk > 4096) chunk = 4096;
        io_wait(chunk / 2);
        long k;
        long words = (chunk + 7) / 8;
        long *s = (long *) rdbuf;
        long *d = (long *) wrbuf;
        for (k = 0; k < words; k++) d[k] = s[k];
        io_wait(chunk / 2);
        done += chunk;
    }
    return done;
}

long mc_move_file(char *src, char *dst) {
    long idx = fs_lookup(src);
    if (idx < 0) return -1;
    if (fs_lookup(dst) >= 0) return -2;
    strncpy(fs[idx].name, dst, 63);
    fs[idx].name[63] = '\0';
    io_wait(2048); /* journalled rename: several metadata writes */
    return fs[idx].size;
}

int mc_mkdir(char *name) {
    if (fs_lookup(name) >= 0) return -1;
    int r = fs_create(name, 0, 1);
    io_wait(96);
    return r;
}

int mc_delete(char *name) {
    long idx = fs_lookup(name);
    if (idx < 0) return -1;
    long size = fs[idx].size;
    fs[idx].used = 0;
    io_wait(size / 16 + 32); /* truncate + block-group bitmap updates */
    return 0;
}

int mc_file_count() {
    int i; int n = 0;
    for (i = 0; i < nfs; i++) if (fs[i].used) n++;
    return n;
}
"#;

/// A Midnight Commander process.
pub struct Mc {
    proc: Process,
    init_outcome: Outcome,
}

/// A frozen standard (clean-config) boot of MC (see
/// [`crate::image::boot_checkpoint`]).
pub struct McCheckpoint {
    proc: ProcessCheckpoint,
    init_outcome: Outcome,
}

/// A config with only well-formed lines.
pub fn clean_config() -> Vec<u8> {
    b"use_internal_edit=1\nshow_backups=0\npause_after_run=1".to_vec()
}

/// A config containing a blank line — the §4.5.4 error trigger.
pub fn config_with_blank_line() -> Vec<u8> {
    b"use_internal_edit=1\n\nshow_backups=0".to_vec()
}

/// Symlink targets whose combined length overruns the 64-byte buffer.
pub fn attack_links() -> Vec<Vec<u8>> {
    (0..8)
        .map(|i| format!("usr/share/component{i}/lib").into_bytes())
        .collect()
}

impl Mc {
    /// Legacy convenience over [`Mc::boot_spec`] with a default spec
    /// for `mode`; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot(mode: Mode, config: &[u8]) -> Mc {
        Mc::boot_spec(&BootSpec::new(ServerKind::Mc, mode), config)
    }

    /// Legacy convenience over [`Mc::boot_spec`] for the mode × table
    /// subset; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot_table(mode: Mode, table: TableKind, config: &[u8]) -> Mc {
        Mc::boot_spec(
            &BootSpec::new(ServerKind::Mc, mode).with_table(table),
            config,
        )
    }

    /// Legacy convenience over [`Mc::boot_image_spec`]; prefer
    /// constructing a [`BootSpec`] at the call site.
    pub fn boot_image(image: &ProgramImage, mode: Mode, config: &[u8]) -> Mc {
        Mc::boot_image_spec(image, &BootSpec::new(ServerKind::Mc, mode), config)
    }

    /// Legacy convenience over [`Mc::boot_image_spec`] for the mode ×
    /// table subset; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot_image_table(
        image: &ProgramImage,
        mode: Mode,
        table: TableKind,
        config: &[u8],
    ) -> Mc {
        Mc::boot_image_spec(
            image,
            &BootSpec::new(ServerKind::Mc, mode).with_table(table),
            config,
        )
    }

    /// Boots MC from a full [`BootSpec`] (interned image). The clean
    /// standard configuration restores from the per-spec boot
    /// checkpoint; hostile configurations (the §4.5.4 blank line) boot
    /// fresh — their replay *is* the persistent trigger under study.
    pub fn boot_spec(spec: &BootSpec, config: &[u8]) -> Mc {
        if config == image::standard_mc_config().as_slice() {
            let ckpt = image::boot_checkpoint(ServerKind::Mc, spec);
            let image::ServerCheckpoint::Mc(mc) = ckpt.as_ref() else {
                unreachable!("MC cache slot holds an MC checkpoint");
            };
            return Mc::restore(mc);
        }
        Mc::boot_image_spec(&ServerKind::Mc.image_tier(spec.tier), spec, config)
    }

    /// Freezes this process's state.
    pub fn checkpoint(&self) -> McCheckpoint {
        McCheckpoint {
            proc: self.proc.checkpoint(),
            init_outcome: self.init_outcome.clone(),
        }
    }

    /// Materialises an MC in exactly the captured state.
    pub fn restore(ckpt: &McCheckpoint) -> Mc {
        Mc {
            proc: Process::restore(&ckpt.proc),
            init_outcome: ckpt.init_outcome.clone(),
        }
    }

    /// Boots MC from an explicit image and a full [`BootSpec`].
    pub fn boot_image_spec(image: &ProgramImage, spec: &BootSpec, config: &[u8]) -> Mc {
        let mut proc = Process::boot_spec(image, spec);
        let cfg = proc.guest_str(config);
        let init_outcome = proc.request("mc_load_config", &[cfg.arg()]).outcome;
        if init_outcome.survived() {
            proc.free_guest_str(cfg);
        }
        let mut mc = Mc { proc, init_outcome };
        if mc.usable() {
            // Seed the working directory.
            for (name, size) in [
                ("/home/user/docs", 0),
                ("/home/user/data.bin", 3_276_800i64),
                ("/home/user/tree", 0),
            ] {
                mc.create(name.as_bytes(), size, size == 0);
            }
        }
        mc
    }

    /// How configuration loading went.
    pub fn init_outcome(&self) -> &Outcome {
        &self.init_outcome
    }

    /// Whether MC started at all.
    pub fn usable(&self) -> bool {
        self.init_outcome.survived() && !self.proc.is_dead()
    }

    /// The underlying process.
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable process access.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }

    fn call1(&mut self, func: &str, arg: &[u8]) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let p = self.proc.guest_str(arg);
        let r = self.proc.request(func, &[p.arg()]);
        if r.outcome.survived() {
            self.proc.free_guest_str(p);
        }
        r
    }

    /// Creates a file/directory entry (driver-side seeding).
    pub fn create(&mut self, name: &[u8], size: i64, is_dir: bool) -> Option<i64> {
        if self.proc.is_dead() {
            return None;
        }
        let p = self.proc.guest_str(name);
        let r = self
            .proc
            .request("fs_create", &[p.arg(), size, is_dir as i64]);
        if r.outcome.survived() {
            self.proc.free_guest_str(p);
        }
        r.outcome.ret()
    }

    /// Queues the symlinks of an archive, then opens it (the attack path).
    pub fn open_archive(&mut self, links: &[Vec<u8>]) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let r = self.proc.request("mc_clear_links", &[]);
        if !r.outcome.survived() {
            return r;
        }
        for l in links {
            let p = self.proc.guest_str(l);
            let r = self.proc.request("mc_add_link", &[p.arg()]);
            if !r.outcome.survived() {
                return r;
            }
            self.proc.free_guest_str(p);
        }
        self.proc.request("mc_open_tgz", &[])
    }

    /// Figure 5 "Copy".
    pub fn copy(&mut self, src: &[u8], dst: &[u8]) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let s = self.proc.guest_str(src);
        let d = self.proc.guest_str(dst);
        let r = self.proc.request("mc_copy_file", &[s.arg(), d.arg()]);
        if r.outcome.survived() {
            self.proc.free_guest_str(s);
            self.proc.free_guest_str(d);
        }
        r
    }

    /// Figure 5 "Move".
    pub fn move_file(&mut self, src: &[u8], dst: &[u8]) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let s = self.proc.guest_str(src);
        let d = self.proc.guest_str(dst);
        let r = self.proc.request("mc_move_file", &[s.arg(), d.arg()]);
        if r.outcome.survived() {
            self.proc.free_guest_str(s);
            self.proc.free_guest_str(d);
        }
        r
    }

    /// Figure 5 "MkDir".
    pub fn mkdir(&mut self, name: &[u8]) -> Measured {
        self.call1("mc_mkdir", name)
    }

    /// Figure 5 "Delete".
    pub fn delete(&mut self, name: &[u8]) -> Measured {
        self.call1("mc_delete", name)
    }

    /// The §3 `'/'`-scan (ablation experiment entry point).
    pub fn component_end(&mut self, name: &[u8]) -> Measured {
        self.call1("mc_component_end", name)
    }
}

fn dead(proc: &Process) -> Measured {
    Measured {
        outcome: Outcome::Crashed(
            proc.machine()
                .dead_reason()
                .cloned()
                .unwrap_or(VmFault::MachineDead),
        ),
        cycles: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_memory::ValueSequence;
    use foc_vm::{Machine, MachineConfig};

    #[test]
    fn file_operations_work_in_every_mode() {
        for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut mc = Mc::boot(mode, &clean_config());
            assert!(mc.usable(), "mode {mode:?}");
            mc.create(b"/tmp/a.txt", 8192, false);
            let r = mc.copy(b"/tmp/a.txt", b"/tmp/b.txt");
            assert_eq!(r.outcome.ret(), Some(8192), "mode {mode:?}");
            let r = mc.move_file(b"/tmp/b.txt", b"/tmp/c.txt");
            assert_eq!(r.outcome.ret(), Some(8192));
            let r = mc.mkdir(b"/tmp/newdir");
            assert!(r.outcome.ret().unwrap_or(-1) >= 0);
            let r = mc.delete(b"/tmp/c.txt");
            assert_eq!(r.outcome.ret(), Some(0));
        }
    }

    #[test]
    fn blank_config_line_disables_bounds_check_only() {
        // Standard: harmless stray read.
        let mc = Mc::boot(Mode::Standard, &config_with_blank_line());
        assert!(mc.usable(), "Standard must tolerate the blank line");
        // Bounds Check: dies during initialization (§4.5.4) — and restarts
        // die again while the blank line persists in the environment.
        let mc = Mc::boot(Mode::BoundsCheck, &config_with_blank_line());
        assert!(!mc.usable());
        let Outcome::Crashed(f) = mc.init_outcome() else {
            panic!("expected init death");
        };
        assert!(f.is_memory_error(), "got {f}");
        // Failure-oblivious: logged, ignored, fully usable.
        let mc = Mc::boot(Mode::FailureOblivious, &config_with_blank_line());
        assert!(mc.usable());
        assert!(mc.process().machine().space().error_log().total() > 0);
    }

    #[test]
    fn archive_attack_per_mode() {
        // Standard: the scan/writes escape the frame → segfault-like death.
        let mut mc = Mc::boot(Mode::Standard, &clean_config());
        let r = mc.open_archive(&attack_links());
        let Outcome::Crashed(f) = &r.outcome else {
            panic!("Standard MC must crash, got {:?}", r.outcome);
        };
        assert!(f.is_segfault_like(), "got {f}");

        // Bounds Check: memory error ends the process.
        let mut mc = Mc::boot(Mode::BoundsCheck, &clean_config());
        let r = mc.open_archive(&attack_links());
        let Outcome::Crashed(f) = &r.outcome else {
            panic!("Bounds-Check MC must terminate, got {:?}", r.outcome);
        };
        assert!(f.is_memory_error(), "got {f}");

        // Failure-oblivious: every link shows as dangling; MC continues.
        let mut mc = Mc::boot(Mode::FailureOblivious, &clean_config());
        let r = mc.open_archive(&attack_links());
        assert_eq!(
            r.outcome.ret(),
            Some(attack_links().len() as i64),
            "all links dangle"
        );
        // Subsequent commands work fine (§4.5.2).
        mc.create(b"/tmp/x", 4096, false);
        assert_eq!(mc.copy(b"/tmp/x", b"/tmp/y").outcome.ret(), Some(4096));
        assert_eq!(mc.delete(b"/tmp/y").outcome.ret(), Some(0));
    }

    #[test]
    fn fo_survives_repeated_archive_openings() {
        let mut mc = Mc::boot(Mode::FailureOblivious, &clean_config());
        for round in 0..5 {
            let r = mc.open_archive(&attack_links());
            assert!(r.outcome.survived(), "round {round}");
            assert_eq!(
                mc.mkdir(format!("/tmp/d{round}").as_bytes())
                    .outcome
                    .ret()
                    .map(|v| v >= 0),
                Some(true)
            );
        }
    }

    #[test]
    fn slash_scan_terminates_under_cycling_sequence_only() {
        // Directly exercise the §3 loop with a name containing no '/'.
        let boot = |seq: ValueSequence| {
            let mut cfg = MachineConfig::with_mode(Mode::FailureOblivious);
            cfg.mem.sequence = seq;
            cfg.fuel_per_call = 2_000_000;
            let mut m = Machine::from_source(MC_SOURCE, cfg).unwrap();
            let p = m.alloc_cstring(b"plainname").unwrap();
            (m, p)
        };
        // The paper's sequence: the scan eventually sees '/' and exits.
        let (mut m, p) = boot(ValueSequence::default());
        let r = m.call("mc_component_end", &[p as i64]);
        assert!(r.is_ok(), "cycling sequence must terminate the loop: {r:?}");
        assert!(r.unwrap() > 31, "the slash was found past the buffer end");
        // A constant-zero sequence never produces '/': the loop hangs.
        let (mut m, p) = boot(ValueSequence::Zero);
        let r = m.call("mc_component_end", &[p as i64]);
        assert_eq!(r, Err(VmFault::FuelExhausted), "zero sequence must hang");
        // Names with a slash never touch the bug.
        let (mut m, _p) = boot(ValueSequence::Zero);
        let q = m.alloc_cstring(b"usr/lib").unwrap();
        assert_eq!(m.call("mc_component_end", &[q as i64]), Ok(3));
    }

    #[test]
    fn copy_slowdown_is_modest() {
        // Figure 5: Copy ≈ 1.4×, dominated by I/O with per-word copying.
        let mut std = Mc::boot(Mode::Standard, &clean_config());
        let mut fo = Mc::boot(Mode::FailureOblivious, &clean_config());
        std.create(b"/tmp/big", 485_000, false);
        fo.create(b"/tmp/big", 485_000, false);
        let c_std = std.copy(b"/tmp/big", b"/tmp/big2").cycles as f64;
        let c_fo = fo.copy(b"/tmp/big", b"/tmp/big2").cycles as f64;
        let slow = c_fo / c_std;
        assert!(slow > 1.05 && slow < 2.5, "copy slowdown {slow}");
    }
}
