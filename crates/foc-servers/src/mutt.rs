//! Mutt 1.4 (§2, §4.6): the UTF-8 → UTF-7 conversion overflow.
//!
//! `utf8_to_utf7` below is a transliteration of the paper's Figure 1,
//! `goto bail` and all. The bug is the allocation on the marked line:
//! the conversion can expand the name by up to 7/3, but only `u8len*2+1`
//! bytes are allocated. A folder name alternating control characters with
//! printable ones expands 3×: each control character opens (or continues
//! re-opening) a Base64 run — `&`, two or three Base64 chars, `-` — six
//! output bytes for every two input bytes.
//!
//! Per-mode behaviour (§4.6.2, asserted by the tests):
//!
//! * **Standard** — the overflow tramples the adjacent free block's
//!   header; the shrink-to-fit `realloc` walks the free list and the
//!   process dies of heap corruption ("corrupts its heap, and terminates
//!   with a segmentation violation").
//! * **Bounds Check** — memory error at the first out-of-bounds store;
//!   when the bad folder name is in the configuration, the process dies
//!   before the UI comes up.
//! * **Failure Oblivious** — out-of-bounds writes are discarded
//!   (truncating the converted name), the IMAP select fails with
//!   "folder does not exist", Mutt's error handling rejects it, and the
//!   user continues working with legitimate folders.

use foc_compiler::ProgramImage;
use foc_memory::{Mode, TableKind};
use foc_vm::VmFault;

use crate::image::{self, ServerKind};
use crate::{BootSpec, Measured, Outcome, Process, ProcessCheckpoint};

/// MiniC source of the Mutt model.
pub const MUTT_SOURCE: &str = r#"
/* ---- Figure 1 (Rinard et al., OSDI 2004) ---------------------------- */

char B64Chars[64] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+,";

char *utf8_to_utf7(char *u8, size_t u8len) {
    char *buf; char *p;
    int ch; int n; int i; int b = 0; int k = 0; int base64 = 0;
    /* The following line allocates the return string. The allocated
       string is too small; instead of u8len*2+1, a safe length would be
       u8len*4+1. */
    p = buf = (char *) malloc(u8len * 2 + 1);
    while (u8len) {
        unsigned char c = *u8;
        if (c < 0x80) ch = c, n = 0;
        else if (c < 0xc2) goto bail;
        else if (c < 0xe0) ch = c & 0x1f, n = 1;
        else if (c < 0xf0) ch = c & 0x0f, n = 2;
        else if (c < 0xf8) ch = c & 0x07, n = 3;
        else if (c < 0xfc) ch = c & 0x03, n = 4;
        else if (c < 0xfe) ch = c & 0x01, n = 5;
        else goto bail;
        u8++; u8len--;
        if (n > u8len) goto bail;
        for (i = 0; i < n; i++) {
            if ((u8[i] & 0xc0) != 0x80) goto bail;
            ch = (ch << 6) | (u8[i] & 0x3f);
        }
        if (n > 1 && !(ch >> (n * 5 + 1))) goto bail;
        u8 += n; u8len -= n;
        if (ch < 0x20 || ch >= 0x7f) {
            if (!base64) {
                *p++ = '&';
                base64 = 1;
                b = 0;
                k = 10;
            }
            if (ch & ~0xffff) ch = 0xfffe;
            *p++ = B64Chars[b | ch >> k];
            k -= 6;
            for (; k >= 0; k -= 6)
                *p++ = B64Chars[(ch >> k) & 0x3f];
            b = (ch << (-k)) & 0x3f;
            k += 16;
        } else {
            if (base64) {
                if (k > 10) *p++ = B64Chars[b];
                *p++ = '-';
                base64 = 0;
            }
            *p++ = ch;
            if (ch == '&') *p++ = '-';
        }
    }
    if (base64) {
        if (k > 10) *p++ = B64Chars[b];
        *p++ = '-';
    }
    *p++ = '\0';
    buf = (char *) realloc(buf, p - buf);
    return buf;
bail:
    free(buf);
    return 0;
}

/* ---- Minimal IMAP server the client talks to ------------------------ */

char folders[4][24];
int nfolders = 0;

int imap_select(char *name) {
    int i;
    io_wait(32); /* network round trip to the IMAP server */
    for (i = 0; i < nfolders; i++) {
        if (strcmp(folders[i], name) == 0) return 0;
    }
    return -1; /* NO [NONEXISTENT] */
}

/* ---- Mailbox state --------------------------------------------------- */

struct message {
    int used;
    char from[64];
    char subject[64];
    char body[2048];
};

struct message msgs[64];
int nmsgs = 0;
int folder_open = 0;

int mutt_init() {
    strcpy(folders[0], "INBOX");
    strcpy(folders[1], "work");
    strcpy(folders[2], "archive");
    nfolders = 3;
    /* Scratch allocations made during startup (header cache etc.); the
       freed block seeds the free list so later conversions allocate in
       the middle of the heap, with allocator metadata after them. */
    char *scratch = (char *) malloc(512);
    scratch[0] = 'x';
    free(scratch);
    return 0;
}

int mutt_add_message(char *from, char *subject, char *body) {
    if (nmsgs >= 64) return -1;
    msgs[nmsgs].used = 1;
    strncpy(msgs[nmsgs].from, from, 63);
    msgs[nmsgs].from[63] = '\0';
    strncpy(msgs[nmsgs].subject, subject, 63);
    msgs[nmsgs].subject[63] = '\0';
    strncpy(msgs[nmsgs].body, body, 2047);
    msgs[nmsgs].body[2047] = '\0';
    nmsgs++;
    return nmsgs - 1;
}

/* Open a mailbox by its UTF-8 folder name: the vulnerable path. */
int mutt_open_folder(char *name_u8) {
    size_t len = strlen(name_u8);
    char *u7 = utf8_to_utf7(name_u8, len);
    if (!u7) return -2;          /* malformed UTF-8: anticipated error */
    int rc = imap_select(u7);
    free(u7);
    if (rc != 0) return -1;      /* folder does not exist: anticipated */
    folder_open = 1;
    return 0;
}

/* Read (display) a message: the pager re-renders it, which is parse
   work, not network work (the message is already in core). */
int mutt_read_message(int idx) {
    if (!folder_open) return -3;
    if (idx < 0 || idx >= nmsgs) return -1;
    if (!msgs[idx].used) return -1;
    io_wait(16); /* tty writes */
    char line[4200];
    char *p;
    char *s;
    int pass;
    int urls = 0;
    /* Pass 1-2: quote-escape and display-transform header then body. */
    for (pass = 0; pass < 2; pass++) {
        s = pass == 0 ? msgs[idx].from : msgs[idx].body;
        p = line;
        while (*s) {
            char c = *s;
            if (c == '\\' || c == '"') *p++ = '\\';
            if (c >= 'a' && c <= 'z') c = c - 32; /* display transform */
            *p++ = c;
            s++;
        }
        *p = '\0';
        print_str(line);
        print_str("\n");
    }
    /* Pass 3: pager link scan (mutt's <url> detection). */
    s = msgs[idx].body;
    while (*s) {
        if (s[0] == 'h' && s[1] == 't' && s[2] == 't' && s[3] == 'p') urls++;
        s++;
    }
    /* Pass 4: line wrapping — count display columns. */
    s = msgs[idx].body;
    int col = 0;
    int wraps = 0;
    while (*s) {
        col++;
        if (col >= 80 || *s == '\n') { wraps++; col = 0; }
        s++;
    }
    return urls + wraps >= 0 ? 0 : -1;
}

/* Move a message to another folder: dominated by IMAP round trips. */
int mutt_move_message(int idx, char *dest) {
    if (!folder_open) return -3;
    if (idx < 0 || idx >= nmsgs) return -1;
    if (!msgs[idx].used) return -1;
    if (imap_select(dest) != 0) return -1;
    /* Serialise the envelope + headers into the APPEND buffer... */
    char append[300];
    strncpy(append, msgs[idx].body, 256);
    append[256] = '\0';
    /* ...then APPEND + STORE +FLAGS \Deleted + EXPUNGE round trips. */
    io_wait(2048);
    io_wait(256);
    msgs[idx].used = 0;
    return 0;
}

int mutt_message_count() {
    int i; int n = 0;
    for (i = 0; i < nmsgs; i++) if (msgs[i].used) n++;
    return n;
}
"#;

/// A Mutt process under a given policy.
pub struct Mutt {
    proc: Process,
}

/// A frozen standard boot of Mutt (see
/// [`crate::image::boot_checkpoint`]).
pub struct MuttCheckpoint {
    proc: ProcessCheckpoint,
}

/// A folder name that triggers the Figure 1 overflow: `pairs` repetitions
/// of a control character followed by a printable one (3× expansion; the
/// buffer only allows 2×).
pub fn attack_folder_name(pairs: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(pairs * 2);
    for _ in 0..pairs {
        v.push(0x01);
        v.push(b'a');
    }
    v
}

impl Mutt {
    /// Legacy convenience over [`Mutt::boot_spec`] with a default spec
    /// for `mode`; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot(mode: Mode, seed_messages: usize) -> Mutt {
        Mutt::boot_spec(&BootSpec::new(ServerKind::Mutt, mode), seed_messages)
    }

    /// Legacy convenience over [`Mutt::boot_spec`] for the mode × table
    /// subset; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot_table(mode: Mode, table: TableKind, seed_messages: usize) -> Mutt {
        Mutt::boot_spec(
            &BootSpec::new(ServerKind::Mutt, mode).with_table(table),
            seed_messages,
        )
    }

    /// Legacy convenience over [`Mutt::boot_image_spec`]; prefer
    /// constructing a [`BootSpec`] at the call site.
    pub fn boot_image(image: &ProgramImage, mode: Mode, seed_messages: usize) -> Mutt {
        Mutt::boot_image_spec(image, &BootSpec::new(ServerKind::Mutt, mode), seed_messages)
    }

    /// Legacy convenience over [`Mutt::boot_image_spec`] for the mode ×
    /// table subset; prefer constructing a [`BootSpec`] at the call site.
    pub fn boot_image_table(
        image: &ProgramImage,
        mode: Mode,
        table: TableKind,
        seed_messages: usize,
    ) -> Mutt {
        Mutt::boot_image_spec(
            image,
            &BootSpec::new(ServerKind::Mutt, mode).with_table(table),
            seed_messages,
        )
    }

    /// Boots Mutt from a full [`BootSpec`] (interned image). The
    /// standard seed count restores from the per-spec boot checkpoint.
    pub fn boot_spec(spec: &BootSpec, seed_messages: usize) -> Mutt {
        if seed_messages == image::MUTT_SEED_MESSAGES {
            let ckpt = image::boot_checkpoint(ServerKind::Mutt, spec);
            let image::ServerCheckpoint::Mutt(mutt) = ckpt.as_ref() else {
                unreachable!("Mutt cache slot holds a Mutt checkpoint");
            };
            return Mutt::restore(mutt);
        }
        Mutt::boot_image_spec(&ServerKind::Mutt.image_tier(spec.tier), spec, seed_messages)
    }

    /// Freezes this reader's state.
    pub fn checkpoint(&self) -> MuttCheckpoint {
        MuttCheckpoint {
            proc: self.proc.checkpoint(),
        }
    }

    /// Materialises a reader in exactly the captured state.
    pub fn restore(ckpt: &MuttCheckpoint) -> Mutt {
        Mutt {
            proc: Process::restore(&ckpt.proc),
        }
    }

    /// Boots Mutt from an explicit image and a full [`BootSpec`].
    pub fn boot_image_spec(image: &ProgramImage, spec: &BootSpec, seed_messages: usize) -> Mutt {
        let mut proc = Process::boot_spec(image, spec);
        let r = proc.request("mutt_init", &[]);
        assert!(
            r.outcome.survived(),
            "mutt_init cannot fail: {:?}",
            r.outcome
        );
        let mut mutt = Mutt { proc };
        let body = crate::workload::lorem(1400, 7);
        for i in 0..seed_messages {
            mutt.add_message(
                format!("user{i}@example.org").as_bytes(),
                format!("subject {i}").as_bytes(),
                &body,
            );
        }
        mutt
    }

    /// The underlying process.
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable access to the process (error log inspection).
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }

    /// Adds a message to the open mailbox (driver-side seeding).
    pub fn add_message(&mut self, from: &[u8], subject: &[u8], body: &[u8]) -> Option<i64> {
        let f = self.proc.guest_str(from);
        let s = self.proc.guest_str(subject);
        let b = self.proc.guest_str(body);
        let r = self
            .proc
            .request("mutt_add_message", &[f.arg(), s.arg(), b.arg()]);
        for p in [f, s, b] {
            self.proc.free_guest_str(p);
        }
        r.outcome.ret()
    }

    /// Opens a folder by UTF-8 name (the vulnerable request).
    pub fn open_folder(&mut self, name: &[u8]) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let p = self.proc.guest_str(name);
        let r = self.proc.request("mutt_open_folder", &[p.arg()]);
        if r.outcome.survived() {
            self.proc.free_guest_str(p);
        }
        r
    }

    /// Reads message `idx` (Figure 6 "Read" request).
    pub fn read_message(&mut self, idx: i64) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        self.proc.request("mutt_read_message", &[idx])
    }

    /// Moves message `idx` to `dest` (Figure 6 "Move" request).
    pub fn move_message(&mut self, idx: i64, dest: &[u8]) -> Measured {
        if self.proc.is_dead() {
            return dead(&self.proc);
        }
        let p = self.proc.guest_str(dest);
        let r = self.proc.request("mutt_move_message", &[idx, p.arg()]);
        if r.outcome.survived() {
            self.proc.free_guest_str(p);
        }
        r
    }

    /// Live message count (consistency checks in stability runs).
    pub fn message_count(&mut self) -> Option<i64> {
        if self.proc.is_dead() {
            return None;
        }
        self.proc.request("mutt_message_count", &[]).outcome.ret()
    }
}

fn dead(proc: &Process) -> Measured {
    Measured {
        outcome: Outcome::Crashed(
            proc.machine()
                .dead_reason()
                .cloned()
                .unwrap_or(VmFault::MachineDead),
        ),
        cycles: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legitimate_folders_work_in_every_mode() {
        for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut mutt = Mutt::boot(mode, 2);
            let r = mutt.open_folder(b"INBOX");
            assert_eq!(r.outcome.ret(), Some(0), "mode {mode:?}");
            let r = mutt.read_message(0);
            assert_eq!(r.outcome.ret(), Some(0), "mode {mode:?}");
            let out = String::from_utf8_lossy(r.outcome.output()).to_string();
            assert!(out.contains("USER0@EXAMPLE.ORG"), "display output: {out}");
            let r = mutt.move_message(1, b"archive");
            assert_eq!(r.outcome.ret(), Some(0), "mode {mode:?}");
        }
    }

    #[test]
    fn conversion_is_correct_for_plain_ascii() {
        let mut mutt = Mutt::boot(Mode::BoundsCheck, 0);
        // ASCII-only names convert to themselves: selecting "work" works.
        assert_eq!(mutt.open_folder(b"work").outcome.ret(), Some(0));
    }

    #[test]
    fn malformed_utf8_is_an_anticipated_error() {
        // 0xC0 is in the `goto bail` range of Figure 1.
        for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut mutt = Mutt::boot(mode, 0);
            let r = mutt.open_folder(&[0xC0, 0x80]);
            assert_eq!(r.outcome.ret(), Some(-2), "mode {mode:?}");
        }
    }

    #[test]
    fn standard_version_dies_of_heap_corruption() {
        let mut mutt = Mutt::boot(Mode::Standard, 2);
        let r = mutt.open_folder(&attack_folder_name(40));
        let Outcome::Crashed(f) = &r.outcome else {
            panic!("Standard Mutt must crash, got {:?}", r.outcome);
        };
        assert!(f.is_segfault_like(), "expected heap corruption, got {f}");
        // The process is gone: further requests fail.
        assert!(!mutt.read_message(0).outcome.survived());
    }

    #[test]
    fn bounds_check_version_terminates_with_memory_error() {
        let mut mutt = Mutt::boot(Mode::BoundsCheck, 2);
        let r = mutt.open_folder(&attack_folder_name(40));
        let Outcome::Crashed(f) = &r.outcome else {
            panic!("Bounds-Check Mutt must terminate, got {:?}", r.outcome);
        };
        assert!(f.is_memory_error(), "expected memory error, got {f}");
    }

    #[test]
    fn failure_oblivious_version_continues_serving() {
        let mut mutt = Mutt::boot(Mode::FailureOblivious, 3);
        // The attack folder is rejected as "does not exist" — the paper's
        // conversion of an unanticipated attack into an anticipated error.
        let r = mutt.open_folder(&attack_folder_name(40));
        assert_eq!(r.outcome.ret(), Some(-1), "attack must be rejected");
        // Memory errors were logged (discarded writes).
        assert!(mutt.process().machine().space().error_log().total_writes() > 0);
        // The user continues processing mail from legitimate folders.
        assert_eq!(mutt.open_folder(b"INBOX").outcome.ret(), Some(0));
        assert_eq!(mutt.read_message(0).outcome.ret(), Some(0));
        assert_eq!(mutt.move_message(1, b"work").outcome.ret(), Some(0));
        assert_eq!(mutt.message_count(), Some(2));
    }

    #[test]
    fn failure_oblivious_survives_repeated_attacks() {
        let mut mutt = Mutt::boot(Mode::FailureOblivious, 2);
        for pairs in [10, 20, 40, 80, 120] {
            let r = mutt.open_folder(&attack_folder_name(pairs));
            assert_eq!(r.outcome.ret(), Some(-1), "attack {pairs} must be rejected");
        }
        assert_eq!(mutt.open_folder(b"archive").outcome.ret(), Some(0));
        assert_eq!(mutt.read_message(0).outcome.ret(), Some(0));
    }

    #[test]
    fn boundless_and_redirect_variants_also_survive() {
        for mode in [Mode::Boundless, Mode::Redirect] {
            let mut mutt = Mutt::boot(mode, 1);
            let r = mutt.open_folder(&attack_folder_name(40));
            assert!(r.outcome.survived(), "mode {mode:?}: {:?}", r.outcome);
            assert_eq!(
                mutt.open_folder(b"INBOX").outcome.ret(),
                Some(0),
                "mode {mode:?}"
            );
            assert_eq!(mutt.read_message(0).outcome.ret(), Some(0), "mode {mode:?}");
        }
    }

    #[test]
    fn fo_read_is_slower_than_standard_but_move_is_closer() {
        // The Figure 6 shape: Read is parse-bound (large slowdown), Move is
        // I/O-bound (small slowdown).
        let mut std = Mutt::boot(Mode::Standard, 2);
        let mut fo = Mutt::boot(Mode::FailureOblivious, 2);
        std.open_folder(b"INBOX");
        fo.open_folder(b"INBOX");
        let read_std = std.read_message(0).cycles as f64;
        let read_fo = fo.read_message(0).cycles as f64;
        let move_std = std.move_message(1, b"work").cycles as f64;
        let move_fo = fo.move_message(1, b"work").cycles as f64;
        let read_slowdown = read_fo / read_std;
        let move_slowdown = move_fo / move_std;
        assert!(read_slowdown > 1.5, "read slowdown {read_slowdown}");
        assert!(
            move_slowdown < read_slowdown,
            "move {move_slowdown} < read {read_slowdown}"
        );
    }
}
