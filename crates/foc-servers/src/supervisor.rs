//! Restart supervision (§4.7, §5.6): the obvious alternative to
//! failure-oblivious computing — "a monitor that detects memory errors and
//! reboots the server" — evaluated against the same scenarios.
//!
//! The paper's point is that restarting only helps when the triggering
//! input is *transient*. Apache's pool works because each attack request
//! ends with the connection; the respawned child never sees it again.
//! But when the trigger *persists in the environment* — the poisoned
//! message in Pine's mailbox, the blank line in MC's configuration, the
//! malicious folder in Mutt's startup config, Sendmail's wake-up error —
//! "restarting is of no use because the restarted computations would,
//! once again, simply exit during initialization."
//!
//! [`restart_until_usable`] is the one definition of that supervision
//! loop in the tree: the study functions below use it with
//! [`RESTART_BUDGET`], and the farm's supervisor
//! (`farm::FarmConfig::restart_budget`, seeded from the same constant)
//! routes through it too.

use foc_memory::Mode;

use crate::image::ServerKind;
use crate::{mc, mutt, pine, sendmail, BootSpec};

/// Outcome of supervising one server under a persistent hostile
/// environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartStudy {
    /// Server name.
    pub server: &'static str,
    /// Compiler version supervised.
    pub mode: Mode,
    /// Restart attempts made (the supervisor gives up after its budget).
    pub attempts: u32,
    /// Whether the server ever became able to serve legitimate requests.
    pub recovered: bool,
}

/// Maximum restart attempts before a supervisor declares the service
/// down (real init systems back off similarly). The single default
/// budget: the §4.7 study uses it directly and `FarmConfig::new` seeds
/// its per-server budget from it.
pub const RESTART_BUDGET: u32 = 5;

/// The supervision loop itself: restarts `subject` until `usable`
/// reports true or `budget` attempts have been spent, returning the
/// number of attempts made. Zero attempts means the subject was already
/// serving.
pub fn restart_until_usable<T>(
    subject: &mut T,
    budget: u32,
    usable: impl Fn(&T) -> bool,
    mut restart: impl FnMut(&mut T),
) -> u32 {
    let mut attempts = 0;
    while !usable(subject) && attempts < budget {
        attempts += 1;
        restart(subject);
    }
    attempts
}

/// Supervises Pine over a mailbox containing a poisoned message.
pub fn supervise_pine(mode: Mode) -> RestartStudy {
    let mut mailbox = pine::Pine::standard_mailbox(4);
    mailbox.insert(2, (pine::attack_from(40), b"pwn".to_vec(), b"x".to_vec()));
    let mut p = pine::Pine::boot_spec(&BootSpec::new(ServerKind::Pine, mode), mailbox);
    let attempts = restart_until_usable(&mut p, RESTART_BUDGET, |p| p.usable(), |p| p.restart());
    let recovered = p.usable() && p.read(0).outcome.ret() == Some(0);
    RestartStudy {
        server: "Pine",
        mode,
        attempts,
        recovered,
    }
}

/// Supervises Mutt configured to open the malicious folder at startup.
pub fn supervise_mutt(mode: Mode) -> RestartStudy {
    let boot = |mode| {
        let mut m = mutt::Mutt::boot_spec(&BootSpec::new(ServerKind::Mutt, mode), 3);
        // The configured startup folder triggers the conversion.
        let startup = m.open_folder(&mutt::attack_folder_name(40));
        (m, startup.outcome.survived())
    };
    let mut state = boot(mode);
    let attempts = restart_until_usable(&mut state, RESTART_BUDGET, |s| s.1, |s| *s = boot(mode));
    let (mut m, up) = state;
    let recovered = up
        && m.open_folder(b"INBOX").outcome.ret() == Some(0)
        && m.read_message(0).outcome.ret() == Some(0);
    RestartStudy {
        server: "Mutt",
        mode,
        attempts,
        recovered,
    }
}

/// Supervises MC with the blank configuration line on disk.
pub fn supervise_mc(mode: Mode) -> RestartStudy {
    let spec = BootSpec::new(ServerKind::Mc, mode);
    let mut m = mc::Mc::boot_spec(&spec, &mc::config_with_blank_line());
    let attempts = restart_until_usable(
        &mut m,
        RESTART_BUDGET,
        |m| m.usable(),
        |m| *m = mc::Mc::boot_spec(&spec, &mc::config_with_blank_line()),
    );
    let recovered = m.usable() && {
        m.create(b"/t", 512, false);
        m.copy(b"/t", b"/t2").outcome.ret() == Some(512)
    };
    RestartStudy {
        server: "MC",
        mode,
        attempts,
        recovered,
    }
}

/// Supervises the Sendmail daemon (whose wake-up itself errs).
pub fn supervise_sendmail(mode: Mode) -> RestartStudy {
    let spec = BootSpec::new(ServerKind::Sendmail, mode);
    let mut sm = sendmail::Sendmail::boot_spec(&spec);
    let attempts = restart_until_usable(
        &mut sm,
        RESTART_BUDGET,
        |sm| sm.usable(),
        |sm| *sm = sendmail::Sendmail::boot_spec(&spec),
    );
    let recovered = sm.usable()
        && sm
            .receive(b"a@example.org", b"b@example.org", b"probe")
            .outcome
            .ret()
            == Some(250);
    RestartStudy {
        server: "Sendmail",
        mode,
        attempts,
        recovered,
    }
}

/// Runs the whole study for one mode.
pub fn study(mode: Mode) -> Vec<RestartStudy> {
    vec![
        supervise_pine(mode),
        supervise_mutt(mode),
        supervise_mc(mode),
        supervise_sendmail(mode),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_helper_counts_attempts_and_stops_at_budget() {
        // A subject that becomes usable after 3 restarts.
        let mut health = 0u32;
        let attempts = restart_until_usable(&mut health, 10, |h| *h >= 3, |h| *h += 1);
        assert_eq!(attempts, 3);
        // Already usable: zero attempts.
        let attempts = restart_until_usable(&mut health, 10, |h| *h >= 3, |h| *h += 1);
        assert_eq!(attempts, 0);
        // Never usable: the budget bounds the attempts.
        let mut hopeless = 0u32;
        let attempts = restart_until_usable(&mut hopeless, 4, |_| false, |h| *h += 1);
        assert_eq!(attempts, 4);
        assert_eq!(hopeless, 4);
    }

    #[test]
    fn restarting_bounds_check_is_futile_for_persistent_triggers() {
        for s in study(Mode::BoundsCheck) {
            assert_eq!(
                s.attempts, RESTART_BUDGET,
                "{}: supervisor must exhaust its budget",
                s.server
            );
            assert!(!s.recovered, "{}: restart cannot recover", s.server);
        }
    }

    #[test]
    fn failure_oblivious_needs_no_restarts() {
        for s in study(Mode::FailureOblivious) {
            assert_eq!(s.attempts, 0, "{}: no restart needed", s.server);
            assert!(s.recovered, "{}: serving", s.server);
        }
    }

    #[test]
    fn standard_mode_mixed_results() {
        // Standard Pine dies at init like Bounds Check (heap corruption);
        // Standard Sendmail and MC start fine (their init errors are
        // silent in unchecked mode) — the §4.7 asymmetry.
        let results = study(Mode::Standard);
        let by = |n: &str| results.iter().find(|s| s.server == n).unwrap().clone();
        assert!(!by("Pine").recovered);
        assert!(!by("Mutt").recovered, "startup folder kills every restart");
        assert!(by("MC").recovered, "blank line is harmless unchecked");
        assert!(
            by("Sendmail").recovered,
            "wake-up error is harmless unchecked"
        );
    }
}
