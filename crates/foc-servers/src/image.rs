//! Per-server compiled-image interning.
//!
//! The five server sources are fixed constants, so there are exactly five
//! compiled programs in the whole system — yet before this module every
//! boot and every supervisor restart recompiled its source from scratch
//! (only Apache's regenerating pool reused an image, and even the pool
//! recompiled once per pool). This module holds one lazily-compiled
//! [`ProgramImage`] per [`ServerKind`] in a process-wide cache:
//! [`ServerKind::image`] compiles on first use and afterwards hands out
//! `Arc` clones, so farm boots, restarts, and pool respawns never invoke
//! the compiler again. The `boot_cost` bench quantifies the difference.
//!
//! [`ServerKind::fresh_image`] bypasses the cache; the image-sharing
//! property tests use it to prove cached boots behave byte-identically
//! to from-source boots.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use foc_compiler::{ExecTier, ProgramImage};

use crate::{apache, mc, mutt, pine, sendmail, BootSpec};

/// Which of the paper's five servers is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Apache httpd worker (mod_rewrite offsets overflow, §4.3).
    Apache,
    /// Sendmail daemon (prescan overflow, §4.4).
    Sendmail,
    /// Pine mail reader (From-quoting overflow, §4.2).
    Pine,
    /// Mutt mail reader (UTF-8→UTF-7 overflow, §4.6 / Figure 1).
    Mutt,
    /// Midnight Commander (symlink-path overflow, §4.5).
    Mc,
}

/// One cache slot per `(ServerKind, ExecTier)` pair, indexed by
/// `kind.index() * TIERS + tier.index()`. The tiers of one server have
/// distinct [`foc_compiler::ProgramId`]s (the fused bytecode differs
/// from the baseline, and the native image's id is tagged), so the
/// slots never alias.
const TIERS: usize = ExecTier::ALL.len();
static IMAGES: [OnceLock<ProgramImage>; 5 * TIERS] = [const { OnceLock::new() }; 5 * TIERS];

impl ServerKind {
    /// All five servers, in the paper's presentation order.
    pub const ALL: [ServerKind; 5] = [
        ServerKind::Pine,
        ServerKind::Apache,
        ServerKind::Sendmail,
        ServerKind::Mc,
        ServerKind::Mutt,
    ];

    /// Human-readable server name.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Apache => "Apache",
            ServerKind::Sendmail => "Sendmail",
            ServerKind::Pine => "Pine",
            ServerKind::Mutt => "Mutt",
            ServerKind::Mc => "MC",
        }
    }

    /// The MiniC source of this server.
    pub fn source(self) -> &'static str {
        match self {
            ServerKind::Apache => apache::APACHE_SOURCE,
            ServerKind::Sendmail => sendmail::SENDMAIL_SOURCE,
            ServerKind::Pine => pine::PINE_SOURCE,
            ServerKind::Mutt => mutt::MUTT_SOURCE,
            ServerKind::Mc => mc::MC_SOURCE,
        }
    }

    /// Fuel budget per guest call for this server's drivers.
    pub fn fuel(self) -> u64 {
        match self {
            // MC's archive walk visits more guest code per request.
            ServerKind::Mc => 120_000_000,
            _ => 80_000_000,
        }
    }

    /// Dense index (cache slots, report tables).
    pub fn index(self) -> usize {
        match self {
            ServerKind::Pine => 0,
            ServerKind::Apache => 1,
            ServerKind::Sendmail => 2,
            ServerKind::Mc => 3,
            ServerKind::Mutt => 4,
        }
    }

    /// The interned compiled image on the session-default execution
    /// tier (`FOC_EXEC_TIER`): compiled at most once per process, then
    /// shared by every machine of this kind. Concurrent first callers
    /// race benignly — `OnceLock` publishes exactly one image, so all
    /// threads observe the same [`foc_compiler::ProgramId`].
    ///
    /// # Panics
    ///
    /// Panics when the server source fails to compile — the sources are
    /// fixed constants, so that is a bug in this crate, not input error.
    pub fn image(self) -> ProgramImage {
        self.image_tier(ExecTier::from_env())
    }

    /// The interned compiled image for an explicit execution tier (one
    /// cache slot per `(kind, tier)` pair).
    ///
    /// # Panics
    ///
    /// Panics when the server source fails to compile, as
    /// [`ServerKind::image`] does.
    pub fn image_tier(self, tier: ExecTier) -> ProgramImage {
        IMAGES[self.index() * TIERS + tier.index()]
            .get_or_init(|| self.fresh_image_tier(tier))
            .clone()
    }

    /// Compiles a fresh, uncached image from source on the
    /// session-default tier (cold-boot path; tests and the `boot_cost`
    /// bench compare it against the cache).
    ///
    /// # Panics
    ///
    /// Panics when the server source fails to compile, as
    /// [`ServerKind::image`] does.
    pub fn fresh_image(self) -> ProgramImage {
        self.fresh_image_tier(ExecTier::from_env())
    }

    /// Compiles a fresh, uncached image for an explicit execution tier.
    ///
    /// # Panics
    ///
    /// Panics when the server source fails to compile, as
    /// [`ServerKind::image`] does.
    pub fn fresh_image_tier(self, tier: ExecTier) -> ProgramImage {
        match foc_compiler::compile_image_tier(self.source(), tier) {
            Ok(image) => image,
            Err(e) => panic!("{} source failed to build: {e}", self.name()),
        }
    }
}

// ---------------------------------------------------------------------
// Boot checkpoints: the restart layer above the image cache.
// ---------------------------------------------------------------------

/// Messages every standard Pine boot seeds its mailbox with (the farm's
/// and the sweep's benign Pine environment).
pub const PINE_SEED_MESSAGES: usize = 3;

/// Messages every standard Mutt boot seeds its mailbox with.
pub const MUTT_SEED_MESSAGES: usize = 2;

/// A mail file: `(from, subject, body)` triples.
pub type Mailbox = Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>;

/// The standard Pine seed mailbox, interned so cache-eligibility checks
/// compare against it without regenerating the workload text per boot.
pub fn standard_pine_mailbox() -> &'static Mailbox {
    static MAILBOX: OnceLock<Mailbox> = OnceLock::new();
    MAILBOX.get_or_init(|| pine::Pine::standard_mailbox(PINE_SEED_MESSAGES))
}

/// The standard MC configuration, interned like the Pine mailbox.
pub fn standard_mc_config() -> &'static Vec<u8> {
    static CONFIG: OnceLock<Vec<u8>> = OnceLock::new();
    CONFIG.get_or_init(mc::clean_config)
}

/// A frozen *standard boot* of one server kind under one [`BootSpec`]:
/// the fully initialised driver state (machine image, init outcome,
/// driver bookkeeping) captured immediately after boot plus standard
/// environment replay. Restoring one is byte-identical to re-running
/// the boot — boots are pure functions of `(image, spec, environment)`
/// — so the farm, the sweep, and the supervisor restart by restoring
/// instead of re-interpreting initialization.
///
/// A checkpoint of a boot that *dies* (Bounds Check Sendmail's wake-up,
/// §4.4.4) is cached and restored just the same: the restored process
/// is dead in exactly the way a fresh boot would be, which is what the
/// persistent-trigger semantics require.
pub enum ServerCheckpoint {
    /// A booted Apache worker.
    Apache(apache::ApacheCheckpoint),
    /// A booted (or dead-at-init) Sendmail daemon.
    Sendmail(sendmail::SendmailCheckpoint),
    /// A booted Pine reader over the standard mailbox.
    Pine(pine::PineCheckpoint),
    /// A booted Mutt reader with the standard seed messages.
    Mutt(mutt::MuttCheckpoint),
    /// A booted MC over the clean configuration.
    Mc(mc::McCheckpoint),
}

/// Cap on cached checkpoints. A full mode sweep visits hundreds of
/// distinct specs and each entry holds a whole machine image, so the
/// cache evicts (rather than grows without bound) when it fills.
/// Eviction is per-entry least-recently-used: a churn of one-shot
/// sweep cells displaces only the coldest cells, never the hot
/// standard boots the farm and the supervisor restore from on every
/// restart. (The previous clear-on-fill policy dumped *all* 64 hot
/// boots — including the five standard cells — whenever a 65th
/// distinct spec appeared.)
const CHECKPOINT_CACHE_CAP: usize = 64;

/// One cached boot plus its last-touched stamp (monotone per cache).
struct CheckpointEntry {
    ckpt: Arc<ServerCheckpoint>,
    last_used: u64,
}

/// The checkpoint cache: one frozen boot per `(kind, spec)` with LRU
/// bookkeeping.
#[derive(Default)]
struct CheckpointCache {
    map: HashMap<(ServerKind, BootSpec), CheckpointEntry>,
    tick: u64,
}

impl CheckpointCache {
    /// Looks up a cell, refreshing its recency on a hit.
    fn get(&mut self, key: &(ServerKind, BootSpec)) -> Option<Arc<ServerCheckpoint>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.ckpt))
    }

    /// Inserts a freshly built cell (or returns the racing winner),
    /// evicting the least-recently-used entry when the cache is full.
    fn insert(
        &mut self,
        key: (ServerKind, BootSpec),
        built: Arc<ServerCheckpoint>,
    ) -> Arc<ServerCheckpoint> {
        if let Some(hit) = self.get(&key) {
            return hit;
        }
        if self.map.len() >= CHECKPOINT_CACHE_CAP {
            // O(n) argmin scan; n is the small fixed cap and fills are
            // already amortized behind a full standard boot.
            if let Some(coldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&coldest);
            }
        }
        self.tick += 1;
        self.map.insert(
            key,
            CheckpointEntry {
                ckpt: Arc::clone(&built),
                last_used: self.tick,
            },
        );
        built
    }
}

fn checkpoint_cache() -> &'static Mutex<CheckpointCache> {
    static CACHE: OnceLock<Mutex<CheckpointCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(CheckpointCache::default()))
}

/// Number of currently cached boot checkpoints (diagnostics; the LRU
/// regression test asserts the cap holds).
pub fn checkpoint_cache_len() -> usize {
    checkpoint_cache().lock().unwrap().map.len()
}

/// The interned standard-boot checkpoint for `(kind, spec)`: performed
/// at most once per residency, then restored by every farm boot, pool
/// respawn, and supervised restart of that configuration. Sits
/// directly above [`ServerKind::image`] in the boot stack:
/// compile → image → **checkpoint** → machine.
pub fn boot_checkpoint(kind: ServerKind, spec: &BootSpec) -> Arc<ServerCheckpoint> {
    let key = (kind, *spec);
    if let Some(hit) = checkpoint_cache().lock().unwrap().get(&key) {
        return hit;
    }
    // Boot outside the lock: first boots interpret guest code, and
    // concurrent first callers of *different* cells must not serialize.
    // Racing first callers of the same cell build identical snapshots;
    // `insert` publishes one winner.
    let built = Arc::new(standard_boot(kind, spec));
    checkpoint_cache().lock().unwrap().insert(key, built)
}

/// Runs the uncached standard boot for `kind` and freezes it. The
/// environments here define "standard": they must match what the
/// drivers' cached `boot_spec` constructors compare against.
fn standard_boot(kind: ServerKind, spec: &BootSpec) -> ServerCheckpoint {
    let image = kind.image_tier(spec.tier);
    match kind {
        ServerKind::Apache => ServerCheckpoint::Apache(
            apache::ApacheWorker::from_image_spec(&image, spec).checkpoint(),
        ),
        ServerKind::Sendmail => ServerCheckpoint::Sendmail(
            sendmail::Sendmail::boot_image_spec(&image, spec).checkpoint(),
        ),
        ServerKind::Pine => ServerCheckpoint::Pine(
            pine::Pine::boot_image_spec(&image, spec, standard_pine_mailbox().clone()).checkpoint(),
        ),
        ServerKind::Mutt => ServerCheckpoint::Mutt(
            mutt::Mutt::boot_image_spec(&image, spec, MUTT_SEED_MESSAGES).checkpoint(),
        ),
        ServerKind::Mc => ServerCheckpoint::Mc(
            mc::Mc::boot_image_spec(&image, spec, standard_mc_config()).checkpoint(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hands_out_one_shared_image_per_kind() {
        for kind in ServerKind::ALL {
            let a = kind.image();
            let b = kind.image();
            assert_eq!(a.id(), b.id(), "{}", kind.name());
            assert!(
                std::ptr::eq(a.program(), b.program()),
                "{}: cache must share one allocation",
                kind.name()
            );
        }
    }

    #[test]
    fn cached_and_fresh_images_have_equal_ids() {
        for kind in ServerKind::ALL {
            assert_eq!(
                kind.image().id(),
                kind.fresh_image().id(),
                "{}: cache must serve the same content as a cold compile",
                kind.name()
            );
        }
    }

    #[test]
    fn the_five_images_are_distinct_programs() {
        let ids: Vec<_> = ServerKind::ALL.iter().map(|k| k.image().id()).collect();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j], "two servers share a ProgramId");
            }
        }
    }

    #[test]
    fn tier_images_of_one_server_never_alias() {
        // The native tier runs the same fused bytecode as the super
        // tier; its tagged id must still claim a distinct cache slot.
        for kind in ServerKind::ALL {
            let ids: Vec<_> = ExecTier::ALL
                .iter()
                .map(|&t| kind.image_tier(t).id())
                .collect();
            for i in 0..ids.len() {
                for j in i + 1..ids.len() {
                    assert_ne!(ids[i], ids[j], "{}: two tiers share an id", kind.name());
                }
            }
        }
    }

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (pos, kind) in ServerKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), pos);
        }
    }

    #[test]
    fn checkpoint_cache_hands_out_one_snapshot_per_cell() {
        let spec = BootSpec::new(ServerKind::Apache, foc_memory::Mode::FailureOblivious);
        let a = boot_checkpoint(ServerKind::Apache, &spec);
        let b = boot_checkpoint(ServerKind::Apache, &spec);
        assert!(Arc::ptr_eq(&a, &b), "same cell must share one snapshot");
        // A different axis is a different cell.
        let c = boot_checkpoint(
            ServerKind::Apache,
            &spec.with_table(foc_memory::TableKind::Flat),
        );
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn dead_standard_boots_are_cached_dead() {
        // §4.4.4: the Bounds Check Sendmail daemon dies during init;
        // its checkpoint must capture (and every restore reproduce)
        // exactly that dead state.
        let spec = BootSpec::new(ServerKind::Sendmail, foc_memory::Mode::BoundsCheck);
        let first = sendmail::Sendmail::boot_spec(&spec);
        let second = sendmail::Sendmail::boot_spec(&spec);
        assert!(!first.usable() && !second.usable());
        assert_eq!(
            first.process().machine().dead_reason(),
            second.process().machine().dead_reason()
        );
    }
}
