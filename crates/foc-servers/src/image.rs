//! Per-server compiled-image interning.
//!
//! The five server sources are fixed constants, so there are exactly five
//! compiled programs in the whole system — yet before this module every
//! boot and every supervisor restart recompiled its source from scratch
//! (only Apache's regenerating pool reused an image, and even the pool
//! recompiled once per pool). This module holds one lazily-compiled
//! [`ProgramImage`] per [`ServerKind`] in a process-wide cache:
//! [`ServerKind::image`] compiles on first use and afterwards hands out
//! `Arc` clones, so farm boots, restarts, and pool respawns never invoke
//! the compiler again. The `boot_cost` bench quantifies the difference.
//!
//! [`ServerKind::fresh_image`] bypasses the cache; the image-sharing
//! property tests use it to prove cached boots behave byte-identically
//! to from-source boots.

use std::sync::OnceLock;

use foc_compiler::ProgramImage;

use crate::{apache, mc, mutt, pine, sendmail};

/// Which of the paper's five servers is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Apache httpd worker (mod_rewrite offsets overflow, §4.3).
    Apache,
    /// Sendmail daemon (prescan overflow, §4.4).
    Sendmail,
    /// Pine mail reader (From-quoting overflow, §4.2).
    Pine,
    /// Mutt mail reader (UTF-8→UTF-7 overflow, §4.6 / Figure 1).
    Mutt,
    /// Midnight Commander (symlink-path overflow, §4.5).
    Mc,
}

/// One cache slot per [`ServerKind`], indexed by [`ServerKind::index`].
static IMAGES: [OnceLock<ProgramImage>; 5] = [
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
    OnceLock::new(),
];

impl ServerKind {
    /// All five servers, in the paper's presentation order.
    pub const ALL: [ServerKind; 5] = [
        ServerKind::Pine,
        ServerKind::Apache,
        ServerKind::Sendmail,
        ServerKind::Mc,
        ServerKind::Mutt,
    ];

    /// Human-readable server name.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Apache => "Apache",
            ServerKind::Sendmail => "Sendmail",
            ServerKind::Pine => "Pine",
            ServerKind::Mutt => "Mutt",
            ServerKind::Mc => "MC",
        }
    }

    /// The MiniC source of this server.
    pub fn source(self) -> &'static str {
        match self {
            ServerKind::Apache => apache::APACHE_SOURCE,
            ServerKind::Sendmail => sendmail::SENDMAIL_SOURCE,
            ServerKind::Pine => pine::PINE_SOURCE,
            ServerKind::Mutt => mutt::MUTT_SOURCE,
            ServerKind::Mc => mc::MC_SOURCE,
        }
    }

    /// Fuel budget per guest call for this server's drivers.
    pub fn fuel(self) -> u64 {
        match self {
            // MC's archive walk visits more guest code per request.
            ServerKind::Mc => 120_000_000,
            _ => 80_000_000,
        }
    }

    /// Dense index (cache slots, report tables).
    pub fn index(self) -> usize {
        match self {
            ServerKind::Pine => 0,
            ServerKind::Apache => 1,
            ServerKind::Sendmail => 2,
            ServerKind::Mc => 3,
            ServerKind::Mutt => 4,
        }
    }

    /// The interned compiled image: compiled at most once per process,
    /// then shared by every machine of this kind. Concurrent first
    /// callers race benignly — `OnceLock` publishes exactly one image,
    /// so all threads observe the same [`foc_compiler::ProgramId`].
    ///
    /// # Panics
    ///
    /// Panics when the server source fails to compile — the sources are
    /// fixed constants, so that is a bug in this crate, not input error.
    pub fn image(self) -> ProgramImage {
        IMAGES[self.index()]
            .get_or_init(|| self.fresh_image())
            .clone()
    }

    /// Compiles a fresh, uncached image from source (cold-boot path;
    /// tests and the `boot_cost` bench compare it against the cache).
    ///
    /// # Panics
    ///
    /// Panics when the server source fails to compile, as
    /// [`ServerKind::image`] does.
    pub fn fresh_image(self) -> ProgramImage {
        match foc_compiler::compile_image(self.source()) {
            Ok(image) => image,
            Err(e) => panic!("{} source failed to build: {e}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hands_out_one_shared_image_per_kind() {
        for kind in ServerKind::ALL {
            let a = kind.image();
            let b = kind.image();
            assert_eq!(a.id(), b.id(), "{}", kind.name());
            assert!(
                std::ptr::eq(a.program(), b.program()),
                "{}: cache must share one allocation",
                kind.name()
            );
        }
    }

    #[test]
    fn cached_and_fresh_images_have_equal_ids() {
        for kind in ServerKind::ALL {
            assert_eq!(
                kind.image().id(),
                kind.fresh_image().id(),
                "{}: cache must serve the same content as a cold compile",
                kind.name()
            );
        }
    }

    #[test]
    fn the_five_images_are_distinct_programs() {
        let ids: Vec<_> = ServerKind::ALL.iter().map(|k| k.image().id()).collect();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j], "two servers share a ProgramId");
            }
        }
    }

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (pos, kind) in ServerKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), pos);
        }
    }
}
