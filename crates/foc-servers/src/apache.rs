//! Apache 2.0.47 (§4.3): the mod_rewrite capture-offsets overflow.
//!
//! Apache's URL rewriting records each parenthesised capture's start/end
//! offsets in a stack buffer "with enough room for ten captures. If there
//! are more, Apache writes the corresponding pairs of offsets beyond the
//! end of the buffer." The real vulnerability needs a rewrite pattern
//! with many groups; we model the pattern's repeated capturing group with
//! a `%` glob that captures *every* URL segment it consumes, so a
//! remotely supplied URL with more than ten segments drives the overflow
//! (same buffer, same write pattern, attacker-controlled count).
//!
//! Per-mode behaviour (§4.3.2):
//!
//! * **Standard** — out-of-bounds writes corrupt the stack; the child
//!   process serving the connection dies of a stack smash.
//! * **Bounds Check** — the child terminates with a memory error.
//!   In both cases Apache's regenerating process pool respawns children,
//!   so the *server* keeps working — at the cost of process management
//!   overhead, which the throughput experiment quantifies.
//! * **Failure Oblivious** — the writes beyond ten pairs are discarded;
//!   the first ten pairs are copied into the rewrite info structure; the
//!   replacement only ever references `$0`–`$9`, so the rewritten URL is
//!   exactly right and the request is processed *correctly* (the errors
//!   occur in irrelevant data).

use foc_compiler::ProgramImage;
use foc_memory::{Mode, TableKind};
use foc_vm::VmFault;

use crate::image::{self, ServerKind};
use crate::{BootSpec, Measured, Outcome, Process, ProcessCheckpoint};

/// MiniC source of the Apache worker.
pub const APACHE_SOURCE: &str = r#"
/* ---- Document store --------------------------------------------------- */

struct wfile {
    int used;
    char path[64];
    long size;
};

struct wfile docs[16];
int ndocs = 0;

int apache_add_doc(char *path, long size) {
    if (ndocs >= 16) return -1;
    docs[ndocs].used = 1;
    strncpy(docs[ndocs].path, path, 63);
    docs[ndocs].path[63] = '\0';
    docs[ndocs].size = size;
    ndocs++;
    return ndocs - 1;
}

long doc_lookup(char *path) {
    int i;
    for (i = 0; i < ndocs; i++) {
        if (docs[i].used && strcmp(docs[i].path, path) == 0) return i;
    }
    return -1;
}

/* ---- mod_rewrite ------------------------------------------------------- */

char rw_pattern[32];
char rw_replacement[64];
int rw_enabled = 0;

int apache_set_rewrite(char *pattern, char *replacement) {
    strncpy(rw_pattern, pattern, 31);
    rw_pattern[31] = '\0';
    strncpy(rw_replacement, replacement, 63);
    rw_replacement[63] = '\0';
    rw_enabled = 1;
    return 0;
}

/* Applies the rewrite rule. Pattern language: literal characters match
   themselves; '%' matches a run of '/'-separated segments, capturing
   each one (the repeated capturing group). Capture offsets land in a
   stack buffer sized for ten pairs — writes beyond it are unchecked. */
int apply_rewrite(char *url, char *out, size_t outcap) {
    /* C89-style declarations: every scratch variable precedes the offsets
       buffer, so the buffer sits at the top of the frame — directly below
       the saved return state, as in the real Apache child. */
    int ncap;
    int u;
    int p;
    int i;
    int keep;
    int o;
    int r;
    int start;
    int g;
    int s;
    int e;
    char c;
    int info[20];
    int offsets[20];         /* ten (start, end) pairs — the §4.3 buffer */
    ncap = 0;
    u = 0;
    p = 0;
    while (rw_pattern[p]) {
        if (rw_pattern[p] == '%') {
            while (url[u] == '/') {
                start = u + 1;
                u++;
                while (url[u] && url[u] != '/') u++;
                offsets[ncap * 2] = start;      /* BUG: unchecked count */
                offsets[ncap * 2 + 1] = u;
                ncap++;
            }
            p++;
        } else {
            if (url[u] != rw_pattern[p]) return -1;
            u++;
            p++;
        }
    }
    if (url[u]) return -1;
    /* Copy the first ten pairs into the rewrite info structure. */
    keep = ncap > 10 ? 10 : ncap;
    for (i = 0; i < keep * 2; i++) info[i] = offsets[i];
    /* Substitute $0..$9 in the replacement. */
    o = 0;
    r = 0;
    while (rw_replacement[r]) {
        c = rw_replacement[r];
        if (c == '$' && rw_replacement[r + 1] >= '0' && rw_replacement[r + 1] <= '9') {
            g = rw_replacement[r + 1] - '0';
            if (g < keep) {
                s = info[g * 2];
                e = info[g * 2 + 1];
                while (s < e) {
                    if ((size_t) o + 1 < outcap) out[o] = url[s], o++;
                    s++;
                }
            }
            r += 2;
        } else {
            if ((size_t) o + 1 < outcap) out[o] = c, o++;
            r++;
        }
    }
    out[o] = '\0';
    return ncap;
}

/* ---- Request handling -------------------------------------------------- */

long requests_served = 0;

/* Serves one GET. Returns the HTTP status code. */
int handle_request(char *url) {
    char path[128];
    char rewritten[128];
    /* Parse the request path (strip a query string). */
    int i = 0;
    while (url[i] && url[i] != '?' && i < 127) {
        path[i] = url[i];
        i++;
    }
    path[i] = '\0';
    /* Rewrite when enabled and the rule prefix matches. */
    if (rw_enabled && strncmp(path, "/rw/", 4) == 0) {
        char *sub = path + 3;       /* keep the leading '/' of segment 1 */
        int rc = apply_rewrite(sub, rewritten, 128);
        if (rc < 0) return 400;
        strncpy(path, rewritten, 127);
        path[127] = '\0';
    }
    long d = doc_lookup(path);
    requests_served++;
    if (d < 0) {
        print_str("HTTP/1.1 404 Not Found\r\n\r\n");
        io_wait(64);
        return 404;
    }
    print_str("HTTP/1.1 200 OK\r\n");
    print_str("Content-Length: ");
    print_int(docs[d].size);
    print_str("\r\n\r\n");
    io_wait(docs[d].size);           /* sendfile(2): kernel-side copy */
    return 200;
}

long apache_requests_served() {
    return requests_served;
}
"#;

/// Default documents: the 5 KB home page and the 830 KB large file of
/// Figure 3.
pub const SMALL_PAGE: (&str, i64) = ("/index.html", 5 * 1024);
/// The large file of Figure 3.
pub const LARGE_FILE: (&str, i64) = ("/big.bin", 830 * 1024);

/// A URL matching the rewrite rule with `segments` capturable segments;
/// more than ten overflows the offsets buffer.
pub fn rewrite_url(segments: usize) -> Vec<u8> {
    let mut v = b"/rw".to_vec();
    for i in 0..segments {
        v.extend_from_slice(format!("/s{i}").as_bytes());
    }
    v
}

/// The attack URL used throughout the experiments: enough captures to
/// carry the offset writes across the loop scratch slot and into the
/// frame guard (the saved-return-address region).
pub fn attack_url() -> Vec<u8> {
    rewrite_url(20)
}

fn init_worker(proc: &mut Process) {
    let docs = [SMALL_PAGE, LARGE_FILE, ("/s0", 512)];
    for (path, size) in docs {
        let p = proc.guest_str(path.as_bytes());
        let r = proc.request("apache_add_doc", &[p.arg(), size]);
        assert!(r.outcome.survived(), "init add_doc");
        proc.free_guest_str(p);
    }
    let pat = proc.guest_str(b"%");
    let rep = proc.guest_str(b"/$0");
    let r = proc.request("apache_set_rewrite", &[pat.arg(), rep.arg()]);
    assert!(r.outcome.survived(), "init rewrite");
    proc.free_guest_str(pat);
    proc.free_guest_str(rep);
}

/// A single Apache child process.
pub struct ApacheWorker {
    proc: Process,
}

/// A frozen standard boot of one Apache worker (see
/// [`crate::image::boot_checkpoint`]).
pub struct ApacheCheckpoint {
    proc: ProcessCheckpoint,
}

impl ApacheWorker {
    /// Legacy convenience over [`ApacheWorker::boot_spec`] with a
    /// default spec for `mode`; prefer constructing a [`BootSpec`] at
    /// the call site.
    pub fn boot(mode: Mode) -> ApacheWorker {
        ApacheWorker::boot_spec(&BootSpec::new(ServerKind::Apache, mode))
    }

    /// Legacy convenience over [`ApacheWorker::boot_spec`] for the mode
    /// × table subset; prefer constructing a [`BootSpec`] at the call
    /// site.
    pub fn boot_table(mode: Mode, table: TableKind) -> ApacheWorker {
        ApacheWorker::boot_spec(&BootSpec::new(ServerKind::Apache, mode).with_table(table))
    }

    /// Legacy convenience over [`ApacheWorker::boot_image_spec`];
    /// prefer constructing a [`BootSpec`] at the call site.
    pub fn from_image(image: &ProgramImage, mode: Mode) -> ApacheWorker {
        ApacheWorker::boot_image_spec(image, &BootSpec::new(ServerKind::Apache, mode))
    }

    /// Legacy convenience over [`ApacheWorker::boot_image_spec`] for
    /// the mode × table subset; prefer constructing a [`BootSpec`] at
    /// the call site.
    pub fn from_image_table(image: &ProgramImage, mode: Mode, table: TableKind) -> ApacheWorker {
        ApacheWorker::boot_image_spec(
            image,
            &BootSpec::new(ServerKind::Apache, mode).with_table(table),
        )
    }

    /// Boots one worker from a full [`BootSpec`]: restored from the
    /// per-spec boot checkpoint, so farm boots, pool respawns, and
    /// supervised restarts cost a snapshot restore instead of the
    /// document/rewrite-rule replay.
    pub fn boot_spec(spec: &BootSpec) -> ApacheWorker {
        let ckpt = image::boot_checkpoint(ServerKind::Apache, spec);
        let image::ServerCheckpoint::Apache(worker) = ckpt.as_ref() else {
            unreachable!("Apache cache slot holds an Apache checkpoint");
        };
        ApacheWorker::restore(worker)
    }

    /// Boots one worker from an explicit image and a full [`BootSpec`],
    /// bypassing the checkpoint cache (the cache's own fill path, and
    /// the differential baseline of the equivalence tests). Named like
    /// every other driver's image-spec constructor; `from_image_spec`
    /// remains as its historical alias.
    pub fn boot_image_spec(image: &ProgramImage, spec: &BootSpec) -> ApacheWorker {
        let mut proc = Process::boot_spec(image, spec);
        init_worker(&mut proc);
        ApacheWorker { proc }
    }

    /// Historical alias of [`ApacheWorker::boot_image_spec`].
    pub fn from_image_spec(image: &ProgramImage, spec: &BootSpec) -> ApacheWorker {
        ApacheWorker::boot_image_spec(image, spec)
    }

    /// Freezes this worker's state.
    pub fn checkpoint(&self) -> ApacheCheckpoint {
        ApacheCheckpoint {
            proc: self.proc.checkpoint(),
        }
    }

    /// Materialises a worker in exactly the captured state.
    pub fn restore(ckpt: &ApacheCheckpoint) -> ApacheWorker {
        ApacheWorker {
            proc: Process::restore(&ckpt.proc),
        }
    }

    /// The underlying process.
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable process access.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }

    /// Whether this child has died.
    pub fn is_dead(&self) -> bool {
        self.proc.is_dead()
    }

    /// Serves one request.
    pub fn get(&mut self, url: &[u8]) -> Measured {
        if self.proc.is_dead() {
            return Measured {
                outcome: Outcome::Crashed(
                    self.proc
                        .machine()
                        .dead_reason()
                        .cloned()
                        .unwrap_or(VmFault::MachineDead),
                ),
                cycles: 0,
            };
        }
        let p = self.proc.guest_str(url);
        let r = self.proc.request("handle_request", &[p.arg()]);
        if r.outcome.survived() {
            self.proc.free_guest_str(p);
        }
        r
    }
}

/// Virtual cycles charged for forking and initialising a replacement
/// child (fork + exec + module init). This is the process-management
/// overhead that §4.3.2 blames for the Bounds Check version's throughput
/// loss under attack.
pub const RESTART_COST_CYCLES: u64 = 220_000;

/// The regenerating process pool (the paper's Apache architecture).
pub struct ApachePool {
    mode: Mode,
    table: TableKind,
    workers: Vec<ApacheWorker>,
    next: usize,
    /// Total virtual cycles spent, including restart overhead.
    pub total_cycles: u64,
    /// Requests that received a response.
    pub completed: u64,
    /// Child deaths observed.
    pub child_deaths: u64,
}

impl ApachePool {
    /// Creates a pool with `n` children sharing the interned image.
    pub fn new(mode: Mode, n: usize) -> ApachePool {
        ApachePool::new_table(mode, TableKind::default(), n)
    }

    /// Creates a pool whose children all run the given table backend.
    /// Children boot (and later respawn) from the interned boot
    /// checkpoint, so pool regeneration never replays worker init.
    pub fn new_table(mode: Mode, table: TableKind, n: usize) -> ApachePool {
        let spec = BootSpec::new(ServerKind::Apache, mode).with_table(table);
        let workers = (0..n).map(|_| ApacheWorker::boot_spec(&spec)).collect();
        ApachePool {
            mode,
            table,
            workers,
            next: 0,
            total_cycles: 0,
            completed: 0,
            child_deaths: 0,
        }
    }

    /// Dispatches one request to the pool, respawning the child if it
    /// dies. Returns the outcome the *client* observes (a dead child is a
    /// dropped connection).
    pub fn get(&mut self, url: &[u8]) -> Outcome {
        let idx = self.next;
        self.next = (self.next + 1) % self.workers.len();
        let r = self.workers[idx].get(url);
        self.total_cycles += r.cycles;
        match &r.outcome {
            Outcome::Done { .. } => {
                self.completed += 1;
            }
            Outcome::Crashed(_) => {
                self.child_deaths += 1;
                self.total_cycles += RESTART_COST_CYCLES;
                self.workers[idx] = ApacheWorker::boot_spec(
                    &BootSpec::new(ServerKind::Apache, self.mode).with_table(self.table),
                );
            }
        }
        r.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_pages_in_every_mode() {
        for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut w = ApacheWorker::boot(mode);
            let r = w.get(b"/index.html");
            assert_eq!(r.outcome.ret(), Some(200), "mode {mode:?}");
            let out = String::from_utf8_lossy(r.outcome.output()).to_string();
            assert!(out.contains("200 OK"), "{out}");
            assert!(out.contains("Content-Length: 5120"), "{out}");
            let r = w.get(b"/missing.html");
            assert_eq!(r.outcome.ret(), Some(404));
        }
    }

    #[test]
    fn rewrite_works_for_legitimate_urls() {
        for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut w = ApacheWorker::boot(mode);
            // "/rw/index.html" rewrites to "/index.html".
            let r = w.get(b"/rw/index.html");
            assert_eq!(r.outcome.ret(), Some(200), "mode {mode:?}");
        }
    }

    #[test]
    fn ten_captures_fit_eleven_do_not() {
        // Exactly ten segments: still in bounds everywhere.
        for mode in [Mode::Standard, Mode::BoundsCheck, Mode::FailureOblivious] {
            let mut w = ApacheWorker::boot(mode);
            let r = w.get(&rewrite_url(10));
            assert!(r.outcome.survived(), "10 segments must be safe in {mode:?}");
        }
        // Eleven segments: the Bounds Check child dies.
        let mut w = ApacheWorker::boot(Mode::BoundsCheck);
        let r = w.get(&rewrite_url(11));
        let Outcome::Crashed(f) = &r.outcome else {
            panic!("11 captures must overflow, got {:?}", r.outcome);
        };
        assert!(f.is_memory_error());
    }

    #[test]
    fn attack_kills_standard_child_with_stack_smash() {
        let mut w = ApacheWorker::boot(Mode::Standard);
        let r = w.get(&attack_url());
        let Outcome::Crashed(f) = &r.outcome else {
            panic!("Standard child must die, got {:?}", r.outcome);
        };
        assert!(f.is_segfault_like(), "got {f}");
    }

    #[test]
    fn fo_processes_attack_url_correctly() {
        let mut fo = ApacheWorker::boot(Mode::FailureOblivious);
        let r = fo.get(&attack_url());
        // The rewrite completes using the first ten pairs; "$0" = "s0",
        // so the URL rewrites to "/s0", which exists → 200.
        assert_eq!(r.outcome.ret(), Some(200), "got {:?}", r.outcome);
        assert!(fo.process().machine().space().error_log().total_writes() > 0);
        // Subsequent requests are unaffected.
        assert_eq!(fo.get(b"/index.html").outcome.ret(), Some(200));
    }

    #[test]
    fn fo_rewrite_output_identical_to_safe_case() {
        // The paper: "Failure Oblivious computing eliminates the memory
        // error without affecting the results of the computation at all."
        let mut fo = ApacheWorker::boot(Mode::FailureOblivious);
        let ok = fo.get(&rewrite_url(10));
        let attacked = fo.get(&attack_url());
        assert_eq!(ok.outcome.ret(), attacked.outcome.ret());
    }

    #[test]
    fn pool_restarts_dead_children() {
        let mut pool = ApachePool::new(Mode::BoundsCheck, 2);
        assert!(pool.get(b"/index.html").survived());
        assert!(!pool.get(&attack_url()).survived());
        assert_eq!(pool.child_deaths, 1);
        // The pool recovered: subsequent requests are served.
        assert!(pool.get(b"/index.html").survived());
        assert!(pool.get(b"/index.html").survived());
    }

    #[test]
    fn pool_under_attack_fo_beats_restarting_modes() {
        // §4.3.2 in miniature: mixed attack + legitimate traffic.
        let run = |mode: Mode| -> f64 {
            let mut pool = ApachePool::new(mode, 2);
            for i in 0..60 {
                if i % 2 == 0 {
                    pool.get(&attack_url());
                } else {
                    pool.get(b"/index.html");
                }
            }
            // Throughput: completed requests per virtual megacycle.
            pool.completed as f64 / (pool.total_cycles as f64 / 1e6)
        };
        let fo = run(Mode::FailureOblivious);
        let bc = run(Mode::BoundsCheck);
        let std = run(Mode::Standard);
        assert!(fo > bc * 2.0, "FO {fo} must far exceed Bounds Check {bc}");
        assert!(fo > std * 2.0, "FO {fo} must far exceed Standard {std}");
    }

    #[test]
    fn large_file_slowdown_is_tiny() {
        // Figure 3: the large transfer is I/O-bound; FO ≈ 1.0×.
        let mut std = ApacheWorker::boot(Mode::Standard);
        let mut fo = ApacheWorker::boot(Mode::FailureOblivious);
        let s = std.get(b"/big.bin").cycles as f64;
        let f = fo.get(b"/big.bin").cycles as f64;
        let slow = f / s;
        assert!(slow < 1.25, "large-file slowdown {slow}");
    }
}
