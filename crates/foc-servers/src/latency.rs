//! Log-bucket latency histograms for farm-scale tail accounting.
//!
//! The farm keeps every per-request latency during a run (exact
//! p50/p99/p99.9 in `FarmStats` come from those vectors), but the
//! *recorded* artifact — `BENCH_farm.json` at 4096 servers — cannot
//! carry tens of thousands of raw values per row, and the tail split
//! between service time and restart overhead (the §4.3.2
//! process-management cost) needs a shape, not a list. [`LatencyHist`]
//! is the standard HdrHistogram-style compromise for that boundary:
//! power-of-two buckets, O(1) recording, exact counts, quantiles
//! resolved to bucket upper bounds — compact enough to serialize per
//! row and to sanity-check the exact percentiles against. Everything is
//! integer arithmetic, so histograms participate in the farm's
//! determinism contract (`Eq`, thread- and slice-invariant).

/// Number of power-of-two buckets: bucket `b` covers `[2^(b-1), 2^b)`
/// virtual cycles (bucket 0 holds exact zeros), which spans the full
/// `u64` range.
pub const BUCKETS: usize = 65;

/// A log-bucket histogram of virtual-cycle values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; BUCKETS],
    count: u64,
    total: u64,
}

impl Default for LatencyHist {
    fn default() -> LatencyHist {
        LatencyHist {
            buckets: [0; BUCKETS],
            count: 0,
            total: 0,
        }
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    /// Bucket index of a value.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (the value a quantile resolves
    /// to).
    #[inline]
    fn bucket_top(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.total += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
    }

    /// The `num/den` quantile, resolved to its bucket's upper bound
    /// (e.g. `quantile(999, 1000)` for p99.9). Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile {num}/{den} out of range");
        if self.count == 0 {
            return 0;
        }
        // Rank of the quantile observation (1-based, ceiling), so
        // quantile(1, 1) is the max and quantile(1, 2) the median's
        // upper bucket.
        let rank = ((self.count * num).div_ceil(den)).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_top(b);
            }
        }
        Self::bucket_top(BUCKETS - 1)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs — the compact
    /// serialization the bench record stores.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (Self::bucket_top(b), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = LatencyHist::new();
        for v in [0, 1, 2, 3, 4, 1000, 1024, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.total(), 1 + 2 + 3 + 4 + 1000 + 1024 + (1u64 << 40));
        assert_eq!(h.nonzero_buckets().iter().map(|&(_, n)| n).sum::<u64>(), 8);
    }

    #[test]
    fn quantiles_resolve_to_bucket_tops() {
        let mut h = LatencyHist::new();
        // 99 fast requests (~100 cycles), one slow (~1M cycles).
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(1, 2), 127, "p50 in the [64,128) bucket");
        assert_eq!(h.quantile(99, 100), 127, "p99 rank 99 is still fast");
        assert_eq!(
            h.quantile(999, 1000),
            (1u64 << 20) - 1,
            "p99.9 is the outlier"
        );
        assert_eq!(h.quantile(1, 1), (1u64 << 20) - 1, "max");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHist::new();
        assert_eq!(h.quantile(1, 2), 0);
        assert_eq!(h.count(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut both = LatencyHist::new();
        for v in [5u64, 900, 33] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 12_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn zero_is_its_own_bucket() {
        let mut h = LatencyHist::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1)]);
    }
}
