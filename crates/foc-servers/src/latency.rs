//! Log-bucket latency histograms for farm-scale tail accounting.
//!
//! The farm keeps every per-request latency during a run (exact
//! p50/p99/p99.9 in `FarmStats` come from those vectors), but the
//! *recorded* artifact — `BENCH_farm.json` at 4096 servers — cannot
//! carry tens of thousands of raw values per row, and the tail split
//! between service time and restart overhead (the §4.3.2
//! process-management cost) needs a shape, not a list. [`LatencyHist`]
//! is the standard HdrHistogram-style compromise for that boundary:
//! power-of-two buckets, O(1) recording, exact counts, quantiles
//! resolved to bucket upper bounds — compact enough to serialize per
//! row and to sanity-check the exact percentiles against. Everything is
//! integer arithmetic, so histograms participate in the farm's
//! determinism contract (`Eq`, thread- and slice-invariant).

/// Number of power-of-two buckets: bucket `b` covers `[2^(b-1), 2^b)`
/// virtual cycles (bucket 0 holds exact zeros), which spans the full
/// `u64` range.
pub const BUCKETS: usize = 65;

/// A log-bucket histogram of virtual-cycle values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; BUCKETS],
    count: u64,
    total: u64,
}

impl Default for LatencyHist {
    fn default() -> LatencyHist {
        LatencyHist {
            buckets: [0; BUCKETS],
            count: 0,
            total: 0,
        }
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    /// Bucket index of a value.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (the value a quantile resolves
    /// to).
    #[inline]
    fn bucket_top(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values, saturating at `u64::MAX`. Virtual-cycle
    /// sums at connection scale (100k+ streams merged into one
    /// histogram) can exceed `u64`; a saturated total reads as "at
    /// least this much" instead of wrapping to a silently small number.
    /// Counts and bucket shapes are unaffected by saturation.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Folds another histogram into this one. The value sum saturates
    /// like [`LatencyHist::record`]'s (see [`LatencyHist::total`]).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
    }

    /// The `num/den` quantile, resolved to its bucket's upper bound
    /// (e.g. `quantile(999, 1000)` for p99.9). Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile {num}/{den} out of range");
        if self.count == 0 {
            return 0;
        }
        // Rank of the quantile observation (1-based, ceiling), so
        // quantile(1, 1) is the max and quantile(1, 2) the median's
        // upper bucket. The product is taken in u128: `count * num`
        // overflows u64 once count exceeds `u64::MAX / num` — at
        // connection-scale counts p99.9's num = 999 reaches that — and
        // the wrapped rank silently selects a far-too-low bucket in
        // release builds. The quotient is `<= count`, so it fits u64.
        let rank =
            ((u128::from(self.count) * u128::from(num)).div_ceil(u128::from(den)) as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_top(b);
            }
        }
        Self::bucket_top(BUCKETS - 1)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs — the compact
    /// serialization the bench record stores.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (Self::bucket_top(b), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = LatencyHist::new();
        for v in [0, 1, 2, 3, 4, 1000, 1024, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.total(), 1 + 2 + 3 + 4 + 1000 + 1024 + (1u64 << 40));
        assert_eq!(h.nonzero_buckets().iter().map(|&(_, n)| n).sum::<u64>(), 8);
    }

    #[test]
    fn quantiles_resolve_to_bucket_tops() {
        let mut h = LatencyHist::new();
        // 99 fast requests (~100 cycles), one slow (~1M cycles).
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(1, 2), 127, "p50 in the [64,128) bucket");
        assert_eq!(h.quantile(99, 100), 127, "p99 rank 99 is still fast");
        assert_eq!(
            h.quantile(999, 1000),
            (1u64 << 20) - 1,
            "p99.9 is the outlier"
        );
        assert_eq!(h.quantile(1, 1), (1u64 << 20) - 1, "max");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHist::new();
        assert_eq!(h.quantile(1, 2), 0);
        assert_eq!(h.count(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut both = LatencyHist::new();
        for v in [5u64, 900, 33] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 12_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn quantile_rank_survives_counts_past_the_u64_product_boundary() {
        // Regression: the rank used to be computed as `count * num` in
        // u64, overflowing once `count > u64::MAX / num` — for p99.9
        // (num = 999) that is ~1.8e16, reachable by merged
        // connection-scale histograms. Build such a count by repeated
        // self-merge doubling (60 doublings of one record = 2^60
        // observations, past the old boundary) and check the quantile
        // still resolves to the single populated bucket.
        let mut h = LatencyHist::new();
        h.record(100);
        for _ in 0..60 {
            let snapshot = h.clone();
            h.merge(&snapshot);
        }
        assert_eq!(h.count(), 1u64 << 60);
        assert!(h.count() > u64::MAX / 999, "count must cross the boundary");
        assert_eq!(h.quantile(999, 1000), 127, "p99.9 of an all-100 set");
        assert_eq!(h.quantile(1, 1), 127, "max is overflow-safe too");
        assert_eq!(h.quantile(1, 2), 127);
    }

    #[test]
    fn total_saturates_instead_of_wrapping() {
        // `record` saturation: two near-max values would wrap to a tiny
        // sum under unchecked +=.
        let mut h = LatencyHist::new();
        h.record(u64::MAX - 5);
        h.record(1000);
        assert_eq!(h.total(), u64::MAX, "record must saturate");
        assert_eq!(h.count(), 2, "saturation never loses observations");
        // `merge` saturation: folding two large-total histograms pins at
        // the ceiling instead of wrapping.
        let mut a = LatencyHist::new();
        a.record(u64::MAX - 1);
        let mut b = LatencyHist::new();
        b.record(u64::MAX - 2);
        a.merge(&b);
        assert_eq!(a.total(), u64::MAX, "merge must saturate");
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn zero_is_its_own_bucket() {
        let mut h = LatencyHist::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1)]);
    }
}
