//! The connection edge: serving the farm over simulated sockets.
//!
//! The farm's historical request path is a function call — the driver
//! generates a request and applies it to the guest process in the same
//! stack frame. This module puts a network edge in between: each farm
//! server owns a [`ConnSession`] holding its own deterministic
//! in-memory network stack ([`netshim`]), a listening socket, and a
//! pool of client connections. Requests are framed onto the wire,
//! carried through bounded kernel-style socket buffers under an
//! epoll-style readiness loop (partial writes, level-triggered events,
//! fair progress), decoded on the server side of the boundary, applied
//! to the guest, and answered with a framed response the client decodes
//! and verifies. Per-server stacks keep every session single-owner
//! (`&mut`, no locks, `Send`), so the work-stealing scheduler moves
//! socket-backed servers between threads exactly like in-process ones —
//! the SO_REUSEPORT sharding idiom, one event loop per server.
//!
//! **Byte-identity contract.** The edge is a *transport* axis, never a
//! content axis. The request generator draws the same rng stream in the
//! same order on both edges, the server applies the *decoded* frame
//! (wire-authoritative), and the workload is closed-loop — one logical
//! request in flight per server, the next generated only after this
//! one's outcome is observed — so connection interleaving, drip
//! schedules, and mid-frame disconnects can reorder *bytes* but never
//! *decisions*. `FarmReport`s across edges therefore compare equal, and
//! the transcript batteries in `tests/conn_equiv.rs` assert it.
//!
//! **Adversarial scenarios.** [`Scenario`] injects transport abuse the
//! framing layer must shrug off: slow-loris drips (a few bytes per
//! event-loop turn), mid-request disconnects with retransmission on a
//! fresh connection (the server discards the half-assembled frame at
//! EOF), and accept-queue floods (idle connections piling onto the
//! listener past its backlog, the excess refused).

use std::str::FromStr;
use std::sync::OnceLock;

use netshim::{ConnectError, Fd, Interest, NetStack, ReadOutcome, WriteOutcome};

use crate::farm::{Bytes, FarmProcess, Links, Request};
use crate::image::ServerKind;
use crate::latency::LatencyHist;
use crate::{Measured, Outcome};

/// Environment variable selecting the farm's request edge.
pub const EDGE_ENV: &str = "FOC_EDGE";

/// How requests reach a farm server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Edge {
    /// Generate and apply in the same stack frame (the historical fast
    /// path, and the default).
    #[default]
    InProcess,
    /// Frame every request over the simulated socket layer.
    Socket(SocketEdge),
}

impl Edge {
    /// Stable label for reports and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Edge::InProcess => "in-process",
            Edge::Socket(s) => match s.scenario {
                Scenario::Clean if s.flood > 0 => "socket-flood",
                Scenario::Clean => "socket",
                Scenario::SlowLoris { .. } => "socket-slow-loris",
                Scenario::Disconnect { .. } => "socket-disconnect",
            },
        }
    }

    /// The edge selected by the [`EDGE_ENV`] environment variable, or
    /// the default. Strict like `TableKind::from_env` and
    /// `LookupLayer::from_env`: an unknown value exits with a one-line
    /// diagnostic rather than silently measuring a different transport
    /// than the operator asked for. Read once per process; callers who
    /// want an error value parse through `FromStr` instead.
    pub fn from_env() -> Edge {
        static EDGE: OnceLock<Edge> = OnceLock::new();
        EDGE.get_or_init(|| match std::env::var(EDGE_ENV) {
            Ok(v) => v.parse().unwrap_or_else(|e| {
                eprintln!("{EDGE_ENV}: {e}");
                std::process::exit(2);
            }),
            Err(_) => Edge::InProcess,
        })
        .clone()
    }
}

impl FromStr for Edge {
    type Err = String;

    fn from_str(s: &str) -> Result<Edge, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "in-process" => Ok(Edge::InProcess),
            "socket" => Ok(Edge::Socket(SocketEdge::default())),
            "socket-slow-loris" => Ok(Edge::Socket(SocketEdge {
                scenario: Scenario::SlowLoris { chunk: 3 },
                ..SocketEdge::default()
            })),
            "socket-disconnect" => Ok(Edge::Socket(SocketEdge {
                scenario: Scenario::Disconnect { every: 3 },
                ..SocketEdge::default()
            })),
            "socket-flood" => Ok(Edge::Socket(SocketEdge {
                flood: 12,
                ..SocketEdge::default()
            })),
            other => Err(format!(
                "unknown edge {other:?} (valid: in-process, socket, \
                 socket-slow-loris, socket-disconnect, socket-flood)"
            )),
        }
    }
}

/// Shape of one server's socket session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketEdge {
    /// Client connections in the session pool; the request stream
    /// round-robins across them (clamped to ≥ 1).
    pub connections: usize,
    /// Listener accept-queue depth (clamped to ≥ 1).
    pub backlog: usize,
    /// Extra flood connections opened at session start: accepted ones
    /// sit idle on the event loop, the overflow past `backlog` is
    /// refused.
    pub flood: usize,
    /// Transport abuse to inject.
    pub scenario: Scenario,
}

impl Default for SocketEdge {
    fn default() -> SocketEdge {
        SocketEdge {
            connections: 4,
            backlog: 8,
            flood: 0,
            scenario: Scenario::Clean,
        }
    }
}

/// Transport-level adversarial behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Whole-frame writes, no abuse.
    Clean,
    /// Slow-loris: the client writes at most `chunk` bytes per
    /// event-loop turn, so every frame arrives as a long drip of
    /// partial reads.
    SlowLoris {
        /// Bytes per drip (clamped to ≥ 1).
        chunk: usize,
    },
    /// Every `every`-th request first disconnects mid-frame: half the
    /// frame is sent, the connection drops, the server discards the
    /// partial at EOF, and the full frame is retransmitted on a fresh
    /// connection.
    Disconnect {
        /// Disconnect period in requests (clamped to ≥ 1).
        every: u32,
    },
}

/// Transport counters for one session (unit-test and smoke-check
/// surface; the farm's measured data never includes them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Requests carried over the wire.
    pub requests: u64,
    /// Request frames the server side fully assembled and applied.
    pub frames: u64,
    /// Client→server bytes written.
    pub bytes_tx: u64,
    /// Server→client bytes the client read back.
    pub bytes_rx: u64,
    /// Connections established (pool + accepted flood + reconnects).
    pub connected: u64,
    /// Connections refused (flood overflow past the backlog, and every
    /// attempt against a torn-down listener).
    pub refused: u64,
    /// Mid-frame disconnects injected by [`Scenario::Disconnect`].
    pub disconnects: u64,
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

const REQ_MAGIC: u8 = 0xFC;
const RESP_MAGIC: u8 = 0xFD;
/// Request header: magic, kind, op, seq u32, body_len u32.
const REQ_HEADER: usize = 11;
/// Response header: magic, status, seq u32, ret i64, cycles u64,
/// payload_len u32.
const RESP_HEADER: usize = 26;
const STATUS_DONE: u8 = 0;
const STATUS_CRASHED: u8 = 1;

/// Per-socket kernel buffer, deliberately small so realistic frames
/// (Pine deliveries run past 300 bytes) need several readiness turns.
const BUFFER_BYTES: usize = 256;
/// Event-loop turns a single transaction may take without completing
/// before the session declares itself stalled (a framing bug, never
/// data-dependent: the drip floor is 1 byte per turn).
const STALL_TURNS: u32 = 1 << 20;
/// First free port of the per-kind listener range.
const PORT_BASE: u16 = 7000;
const LISTENER_TOKEN: u64 = u64::MAX;
/// Tokens at and above this belong to idle flood connections.
const FLOOD_TOKEN_BASE: u64 = 1 << 32;

fn push_field(body: &mut Vec<u8>, bytes: &[u8]) {
    body.extend_from_slice(&(u32::try_from(bytes.len()).expect("field fits u32")).to_le_bytes());
    body.extend_from_slice(bytes);
}

fn push_index(body: &mut Vec<u8>, index: i64) {
    push_field(body, &index.to_le_bytes());
}

fn op_and_body(request: &Request) -> (u8, Vec<u8>) {
    let mut body = Vec::new();
    let op = match request {
        Request::ApacheGet { path } => {
            push_field(&mut body, path);
            0
        }
        Request::SendmailReceive { from, to, body: b } => {
            push_field(&mut body, from);
            push_field(&mut body, to);
            push_field(&mut body, b);
            0
        }
        Request::SendmailSend { to, body: b } => {
            push_field(&mut body, to);
            push_field(&mut body, b);
            1
        }
        Request::SendmailWakeup => 2,
        Request::SendmailMailFrom { from } => {
            push_field(&mut body, from);
            3
        }
        Request::PineDeliver {
            from,
            subject,
            body: b,
        } => {
            push_field(&mut body, from);
            push_field(&mut body, subject);
            push_field(&mut body, b);
            0
        }
        Request::PineRead { index } => {
            push_index(&mut body, *index);
            1
        }
        Request::PineCompose => 2,
        Request::PineMove { index } => {
            push_index(&mut body, *index);
            3
        }
        Request::MuttOpenFolder { name } => {
            push_field(&mut body, name);
            0
        }
        Request::MuttRead { index } => {
            push_index(&mut body, *index);
            1
        }
        Request::McCopy { src, dst } => {
            push_field(&mut body, src);
            push_field(&mut body, dst);
            0
        }
        Request::McMkdir { path } => {
            push_field(&mut body, path);
            1
        }
        Request::McComponentEnd { name } => {
            push_field(&mut body, name);
            2
        }
        Request::McDelete { path } => {
            push_field(&mut body, path);
            3
        }
        Request::McOpenArchive { links } => {
            for link in links.iter() {
                push_field(&mut body, link);
            }
            4
        }
    };
    (op, body)
}

/// Frames one request for the wire.
fn encode_request(kind: ServerKind, seq: u32, request: &Request) -> Vec<u8> {
    let (op, body) = op_and_body(request);
    let mut frame = Vec::with_capacity(REQ_HEADER + body.len());
    frame.push(REQ_MAGIC);
    frame.push(kind.index() as u8);
    frame.push(op);
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&(u32::try_from(body.len()).expect("body fits u32")).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

/// Splits one length-prefixed field off the front of `body`.
fn take_field<'a>(body: &mut &'a [u8]) -> Option<&'a [u8]> {
    if body.len() < 4 {
        return None;
    }
    let len = read_u32(body, 0) as usize;
    if body.len() < 4 + len {
        return None;
    }
    let field = &body[4..4 + len];
    *body = &body[4 + len..];
    Some(field)
}

fn take_owned(body: &mut &[u8]) -> Option<Bytes> {
    take_field(body).map(|f| Bytes::Owned(f.to_vec()))
}

fn take_index(body: &mut &[u8]) -> Option<i64> {
    let field = take_field(body)?;
    Some(i64::from_le_bytes(field.try_into().ok()?))
}

/// Decodes one complete request frame off the front of `buf`, returning
/// the frame's sequence number, the request, and the bytes consumed —
/// or `None` while the frame is still partial.
///
/// # Panics
///
/// Panics on a corrupt frame (bad magic, kind mismatch, unknown opcode,
/// malformed body): the only writer is this module's own encoder, so
/// corruption is a transport bug, not input.
fn decode_request(kind: ServerKind, buf: &[u8]) -> Option<(u32, Request, usize)> {
    if buf.len() < REQ_HEADER {
        return None;
    }
    assert_eq!(buf[0], REQ_MAGIC, "request frame magic");
    assert_eq!(buf[1] as usize, kind.index(), "request frame kind");
    let op = buf[2];
    let seq = read_u32(buf, 3);
    let body_len = read_u32(buf, 7) as usize;
    if buf.len() < REQ_HEADER + body_len {
        return None;
    }
    let mut body = &buf[REQ_HEADER..REQ_HEADER + body_len];
    let fields = &mut body;
    let request = match (kind, op) {
        (ServerKind::Apache, 0) => Request::ApacheGet {
            path: take_owned(fields).expect("apache get path"),
        },
        (ServerKind::Sendmail, 0) => Request::SendmailReceive {
            from: take_owned(fields).expect("receive from"),
            to: take_owned(fields).expect("receive to"),
            body: take_owned(fields).expect("receive body"),
        },
        (ServerKind::Sendmail, 1) => Request::SendmailSend {
            to: take_owned(fields).expect("send to"),
            body: take_owned(fields).expect("send body"),
        },
        (ServerKind::Sendmail, 2) => Request::SendmailWakeup,
        (ServerKind::Sendmail, 3) => Request::SendmailMailFrom {
            from: take_owned(fields).expect("mail-from address"),
        },
        (ServerKind::Pine, 0) => Request::PineDeliver {
            from: take_owned(fields).expect("deliver from"),
            subject: take_owned(fields).expect("deliver subject"),
            body: take_owned(fields).expect("deliver body"),
        },
        (ServerKind::Pine, 1) => Request::PineRead {
            index: take_index(fields).expect("read index"),
        },
        (ServerKind::Pine, 2) => Request::PineCompose,
        (ServerKind::Pine, 3) => Request::PineMove {
            index: take_index(fields).expect("move index"),
        },
        (ServerKind::Mutt, 0) => Request::MuttOpenFolder {
            name: take_owned(fields).expect("folder name"),
        },
        (ServerKind::Mutt, 1) => Request::MuttRead {
            index: take_index(fields).expect("read index"),
        },
        (ServerKind::Mc, 0) => Request::McCopy {
            src: take_owned(fields).expect("copy src"),
            dst: take_owned(fields).expect("copy dst"),
        },
        (ServerKind::Mc, 1) => Request::McMkdir {
            path: take_owned(fields).expect("mkdir path"),
        },
        (ServerKind::Mc, 2) => Request::McComponentEnd {
            name: take_owned(fields).expect("component name"),
        },
        (ServerKind::Mc, 3) => Request::McDelete {
            path: take_owned(fields).expect("delete path"),
        },
        (ServerKind::Mc, 4) => {
            let mut links = Vec::new();
            while !fields.is_empty() {
                links.push(take_field(fields).expect("archive link").to_vec());
            }
            Request::McOpenArchive {
                links: Links::Owned(links),
            }
        }
        (kind, op) => panic!("unknown opcode {op} for {}", kind.name()),
    };
    assert!(fields.is_empty(), "request body has trailing bytes");
    Some((seq, request, REQ_HEADER + body_len))
}

/// Frames one measured outcome as the response to frame `seq`.
fn encode_response(seq: u32, measured: &Measured) -> Vec<u8> {
    // A crashed response carries the fault rendering, so the client
    // sees *why* the connection's request died without reconstructing
    // the fault type from the wire.
    let crash_text;
    let (status, ret, payload): (u8, i64, &[u8]) = match &measured.outcome {
        Outcome::Done { ret, output } => (STATUS_DONE, *ret, output),
        Outcome::Crashed(fault) => {
            crash_text = fault.to_string();
            (STATUS_CRASHED, 0, crash_text.as_bytes())
        }
    };
    let mut frame = Vec::with_capacity(RESP_HEADER + payload.len());
    frame.push(RESP_MAGIC);
    frame.push(status);
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&ret.to_le_bytes());
    frame.extend_from_slice(&measured.cycles.to_le_bytes());
    frame.extend_from_slice(
        &(u32::try_from(payload.len()).expect("payload fits u32")).to_le_bytes(),
    );
    frame.extend_from_slice(payload);
    frame
}

/// A decoded response frame.
struct Response {
    seq: u32,
    status: u8,
    ret: i64,
    cycles: u64,
    payload: Vec<u8>,
}

/// Decodes one complete response frame off the front of `buf`, or
/// `None` while partial.
fn decode_response(buf: &[u8]) -> Option<(Response, usize)> {
    if buf.len() < RESP_HEADER {
        return None;
    }
    assert_eq!(buf[0], RESP_MAGIC, "response frame magic");
    let payload_len = read_u32(buf, 22) as usize;
    if buf.len() < RESP_HEADER + payload_len {
        return None;
    }
    Some((
        Response {
            status: buf[1],
            seq: read_u32(buf, 2),
            ret: i64::from_le_bytes(buf[6..14].try_into().unwrap()),
            cycles: u64::from_le_bytes(buf[14..22].try_into().unwrap()),
            payload: buf[RESP_HEADER..RESP_HEADER + payload_len].to_vec(),
        },
        RESP_HEADER + payload_len,
    ))
}

/// Checks the client-decoded response against the server's
/// authoritative measurement — the wire must not have lied.
fn verify_response(resp: &Response, measured: &Measured) {
    assert_eq!(resp.cycles, measured.cycles, "response cycle count");
    match &measured.outcome {
        Outcome::Done { ret, output } => {
            assert_eq!(resp.status, STATUS_DONE, "response status");
            assert_eq!(resp.ret, *ret, "response return value");
            assert_eq!(resp.payload, *output, "response payload");
        }
        Outcome::Crashed(fault) => {
            assert_eq!(resp.status, STATUS_CRASHED, "response status");
            assert_eq!(resp.ret, 0, "crashed responses carry no return value");
            assert_eq!(
                resp.payload,
                fault.to_string().as_bytes(),
                "response fault rendering"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The session.
// ---------------------------------------------------------------------

/// One pooled connection: client and server halves plus the partial-
/// frame state each side of the boundary keeps.
struct Conn {
    client: Fd,
    server: Fd,
    /// Server-side request bytes not yet forming a complete frame.
    inbound: Vec<u8>,
    /// Server-side response bytes queued behind a full socket buffer.
    outbound: Vec<u8>,
    out_sent: usize,
    /// Whether the server half is registered for write readiness (only
    /// while `outbound` has unsent bytes — level-triggered writable
    /// events on idle sockets would dominate every wait otherwise).
    write_armed: bool,
    /// Client-side response bytes not yet forming a complete frame.
    reply: Vec<u8>,
}

impl Conn {
    fn new(client: Fd, server: Fd) -> Conn {
        Conn {
            client,
            server,
            inbound: Vec::new(),
            outbound: Vec::new(),
            out_sent: 0,
            write_armed: false,
            reply: Vec::new(),
        }
    }
}

/// One farm server's socket session: its private network stack, its
/// listener, its accepted connection pool, and the readiness loop that
/// moves frames across. Single-owner and lock-free — the work-stealing
/// scheduler moves whole sessions between threads.
pub(crate) struct ConnSession {
    kind: ServerKind,
    port: u16,
    scenario: Scenario,
    net: NetStack,
    /// `None` after [`ConnSession::refused`] tore the edge down.
    listener: Option<Fd>,
    epoll: Fd,
    conns: Vec<Conn>,
    /// Accepted flood connections (idle; registered so the ready-list
    /// has to skip past them fairly) and their held client halves.
    flood_fds: Vec<Fd>,
    /// Round-robin cursor over the pool.
    cursor: usize,
    seq: u32,
    stats: ConnStats,
    events: Vec<netshim::Event>,
}

impl ConnSession {
    /// Opens a session for one server of `kind`: listener, epoll set,
    /// `edge.connections` accepted pool connections, plus the flood
    /// extras (accepted up to the backlog, refused past it).
    pub(crate) fn new(kind: ServerKind, edge: &SocketEdge) -> ConnSession {
        let pool = edge.connections.max(1);
        let port = PORT_BASE + kind.index() as u16;
        let mut net = NetStack::new(BUFFER_BYTES);
        let listener = net.listen(port, edge.backlog.max(1));
        let epoll = net.epoll_create();
        net.epoll_add(epoll, listener, Interest::READABLE, LISTENER_TOKEN);
        let mut stats = ConnStats::default();
        let mut conns = Vec::with_capacity(pool);
        for i in 0..pool {
            let client = net
                .connect(port)
                .expect("listener accepts the session pool");
            let server = net.accept(listener).expect("pool connect was queued");
            net.epoll_add(epoll, server, Interest::READABLE, (i as u64) * 2);
            net.epoll_add(epoll, client, Interest::READABLE, (i as u64) * 2 + 1);
            stats.connected += 1;
            conns.push(Conn::new(client, server));
        }
        // Flood: pile connects onto the accept queue before draining it
        // once, so everything past the backlog is genuinely refused.
        let mut flood_fds = Vec::new();
        for _ in 0..edge.flood {
            match net.connect(port) {
                Ok(client) => {
                    stats.connected += 1;
                    flood_fds.push(client);
                }
                Err(ConnectError::Refused) => stats.refused += 1,
            }
        }
        let mut token = FLOOD_TOKEN_BASE;
        while let Some(server) = net.accept(listener) {
            net.epoll_add(epoll, server, Interest::READABLE, token);
            token += 1;
            flood_fds.push(server);
        }
        ConnSession {
            kind,
            port,
            scenario: edge.scenario,
            net,
            listener: Some(listener),
            epoll,
            conns,
            flood_fds,
            cursor: 0,
            seq: 0,
            stats,
            events: Vec::new(),
        }
    }

    /// Transport counters so far.
    #[cfg(test)]
    fn stats(&self) -> ConnStats {
        self.stats
    }

    /// Carries one request over the wire and returns the server's
    /// authoritative measurement (the client-decoded response is
    /// verified against it). Closed-loop: the call does not return
    /// until the response frame is fully read back.
    pub(crate) fn transact(&mut self, request: &Request, process: &mut FarmProcess) -> Measured {
        debug_assert_eq!(
            request.kind(),
            self.kind,
            "request kind matches the session"
        );
        assert!(
            self.listener.is_some(),
            "transact on a torn-down session (server was declared down)"
        );
        let slot = self.cursor;
        self.cursor = (self.cursor + 1) % self.conns.len();
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        self.stats.requests += 1;
        let frame = encode_request(self.kind, seq, request);

        if let Scenario::Disconnect { every } = self.scenario {
            if self.stats.requests.is_multiple_of(u64::from(every.max(1)))
                && frame.len() > REQ_HEADER
            {
                self.drop_mid_frame(slot, &frame[..frame.len() / 2]);
            }
        }

        let mut sent = 0usize;
        let mut measured: Option<Measured> = None;
        let mut turns = 0u32;
        loop {
            // Client side: push request bytes (dripped under slow-loris,
            // cut short by a full peer buffer — backpressure).
            if sent < frame.len() {
                let budget = match self.scenario {
                    Scenario::SlowLoris { chunk } => chunk.max(1),
                    _ => frame.len(),
                };
                let upto = frame.len().min(sent + budget);
                match self.net.write(self.conns[slot].client, &frame[sent..upto]) {
                    WriteOutcome::Wrote(n) => {
                        sent += n;
                        self.stats.bytes_tx += n as u64;
                    }
                    WriteOutcome::WouldBlock => {}
                    WriteOutcome::Broken => panic!("pool connection broke mid-request"),
                }
            }

            // One readiness turn: act only on what the event loop says
            // is ready. The pool's idle connections and the flood
            // extras never fire (no pending bytes), so the ready list
            // stays proportional to actual work.
            let mut events = std::mem::take(&mut self.events);
            self.net.epoll_wait(self.epoll, &mut events);
            for &ev in &events {
                let token = ev.token();
                if token == LISTENER_TOKEN || token >= FLOOD_TOKEN_BASE {
                    continue;
                }
                let ev_slot = (token / 2) as usize;
                debug_assert_eq!(ev_slot, slot, "only the active connection moves bytes");
                if token.is_multiple_of(2) {
                    if ev.is_readable() {
                        self.server_read(ev_slot, seq, request, process, &mut measured);
                    }
                    if ev.is_writable() {
                        self.server_flush(ev_slot);
                    }
                } else if ev.is_readable() {
                    self.client_read(ev_slot);
                }
            }
            events.clear();
            self.events = events;

            if let Some((resp, consumed)) = decode_response(&self.conns[slot].reply) {
                self.conns[slot].reply.drain(..consumed);
                debug_assert!(
                    self.conns[slot].reply.is_empty(),
                    "one response per request"
                );
                let measured = measured
                    .take()
                    .expect("response frame before the request was served");
                assert_eq!(resp.seq, seq, "closed-loop responses answer in order");
                verify_response(&resp, &measured);
                self.stats.frames += 1;
                return measured;
            }

            turns += 1;
            assert!(turns < STALL_TURNS, "connection edge stalled mid-request");
        }
    }

    /// Registers that the farm refused this server's connection (down,
    /// restart budget exhausted). The first refusal tears the edge
    /// down — pool closed, listener gone — and every later one proves
    /// the dead listener still refuses connects. Idempotent.
    pub(crate) fn refused(&mut self) {
        self.stats.refused += 1;
        if let Some(listener) = self.listener.take() {
            for slot in 0..self.conns.len() {
                let (client, server) = (self.conns[slot].client, self.conns[slot].server);
                self.net.epoll_del(self.epoll, client);
                self.net.epoll_del(self.epoll, server);
                self.net.close(client);
                self.net.close(server);
            }
            for &fd in &self.flood_fds {
                self.net.close(fd);
            }
            self.net.close_listener(listener);
        } else {
            let attempt = self.net.connect(self.port);
            assert!(
                matches!(attempt, Err(ConnectError::Refused)),
                "a torn-down listener must refuse connects"
            );
        }
    }

    /// Drains the server half of `slot` into its partial-frame buffer.
    /// Returns `true` when the peer has hung up.
    fn drain_server(&mut self, slot: usize) -> bool {
        let server = self.conns[slot].server;
        let mut buf = [0u8; BUFFER_BYTES];
        loop {
            match self.net.read(server, &mut buf) {
                ReadOutcome::Data(n) => self.conns[slot].inbound.extend_from_slice(&buf[..n]),
                ReadOutcome::WouldBlock => return false,
                ReadOutcome::Closed => return true,
            }
        }
    }

    /// Server-side readable: assemble frames, apply each decoded
    /// request to the guest, queue and start flushing the response.
    fn server_read(
        &mut self,
        slot: usize,
        seq: u32,
        expected: &Request,
        process: &mut FarmProcess,
        measured: &mut Option<Measured>,
    ) {
        self.drain_server(slot);
        while let Some((frame_seq, decoded, consumed)) =
            decode_request(self.kind, &self.conns[slot].inbound)
        {
            self.conns[slot].inbound.drain(..consumed);
            assert_eq!(frame_seq, seq, "closed-loop requests arrive in order");
            // Wire-authoritative: the server applies what the frame
            // says, and the frame must say what the generator meant.
            debug_assert_eq!(
                &decoded, expected,
                "decoded frame matches the generated request"
            );
            let m = decoded.apply(process);
            let response = encode_response(frame_seq, &m);
            let conn = &mut self.conns[slot];
            conn.outbound = response;
            conn.out_sent = 0;
            *measured = Some(m);
            self.server_flush(slot);
        }
    }

    /// Pushes queued response bytes; arms write readiness while the
    /// client's buffer is full and disarms once drained.
    fn server_flush(&mut self, slot: usize) {
        loop {
            let (server, pending_from) = {
                let conn = &self.conns[slot];
                if conn.out_sent >= conn.outbound.len() {
                    if conn.write_armed {
                        let token = (slot as u64) * 2;
                        self.net.epoll_del(self.epoll, conn.server);
                        self.net
                            .epoll_add(self.epoll, conn.server, Interest::READABLE, token);
                        self.conns[slot].write_armed = false;
                    }
                    self.conns[slot].outbound.clear();
                    self.conns[slot].out_sent = 0;
                    return;
                }
                (conn.server, conn.out_sent)
            };
            let outbound = std::mem::take(&mut self.conns[slot].outbound);
            let outcome = self.net.write(server, &outbound[pending_from..]);
            self.conns[slot].outbound = outbound;
            match outcome {
                WriteOutcome::Wrote(n) => self.conns[slot].out_sent += n,
                WriteOutcome::WouldBlock => {
                    if !self.conns[slot].write_armed {
                        let token = (slot as u64) * 2;
                        self.net.epoll_del(self.epoll, server);
                        self.net
                            .epoll_add(self.epoll, server, Interest::BOTH, token);
                        self.conns[slot].write_armed = true;
                    }
                    return;
                }
                WriteOutcome::Broken => panic!("client hung up mid-response"),
            }
        }
    }

    /// Client-side readable: accumulate response bytes.
    fn client_read(&mut self, slot: usize) {
        let client = self.conns[slot].client;
        let mut buf = [0u8; BUFFER_BYTES];
        loop {
            match self.net.read(client, &mut buf) {
                ReadOutcome::Data(n) => {
                    self.conns[slot].reply.extend_from_slice(&buf[..n]);
                    self.stats.bytes_rx += n as u64;
                }
                ReadOutcome::WouldBlock => return,
                ReadOutcome::Closed => panic!("server hung up mid-response"),
            }
        }
    }

    /// The mid-request disconnect: send `prefix` (a strict partial
    /// frame), drop the client, let the server observe EOF under the
    /// half-assembled frame and discard it, then reconnect the slot so
    /// the caller can retransmit in full.
    fn drop_mid_frame(&mut self, slot: usize, prefix: &[u8]) {
        debug_assert!(!prefix.is_empty());
        let client = self.conns[slot].client;
        let mut sent = 0usize;
        let mut turns = 0u32;
        while sent < prefix.len() {
            match self.net.write(client, &prefix[sent..]) {
                WriteOutcome::Wrote(n) => {
                    sent += n;
                    self.stats.bytes_tx += n as u64;
                }
                WriteOutcome::WouldBlock => {}
                WriteOutcome::Broken => panic!("pool connection broke while dripping"),
            }
            self.drain_server(slot);
            turns += 1;
            assert!(turns < STALL_TURNS, "mid-frame drip stalled");
        }
        self.net.close(client);
        let closed = self.drain_server(slot);
        debug_assert!(closed, "server must observe the disconnect EOF");
        debug_assert!(
            decode_request(self.kind, &self.conns[slot].inbound).is_none(),
            "a half frame must never decode"
        );
        self.reset_slot(slot);
        self.stats.disconnects += 1;
    }

    /// Tears down and reconnects one pool slot, discarding any partial
    /// frame state on either side.
    fn reset_slot(&mut self, slot: usize) {
        let (old_client, old_server) = (self.conns[slot].client, self.conns[slot].server);
        self.net.epoll_del(self.epoll, old_client);
        self.net.epoll_del(self.epoll, old_server);
        self.net.close(old_client);
        self.net.close(old_server);
        let listener = self.listener.expect("reconnect requires a live listener");
        let client = self
            .net
            .connect(self.port)
            .expect("listener accepts reconnects");
        let server = self.net.accept(listener).expect("reconnect was queued");
        self.net
            .epoll_add(self.epoll, server, Interest::READABLE, (slot as u64) * 2);
        self.net.epoll_add(
            self.epoll,
            client,
            Interest::READABLE,
            (slot as u64) * 2 + 1,
        );
        let conn = &mut self.conns[slot];
        conn.client = client;
        conn.server = server;
        conn.inbound.clear();
        conn.outbound.clear();
        conn.out_sent = 0;
        conn.write_armed = false;
        conn.reply.clear();
        self.stats.connected += 1;
    }
}

// ---------------------------------------------------------------------
// Connection-level SLO accounting.
// ---------------------------------------------------------------------

/// Basis points (1/100 of a percent, 0..=10000) of recorded latencies
/// within `k`× the histogram's median. Resolution follows the
/// histogram's: a value counts as "within" when its *bucket's* upper
/// bound is ≤ `k × median` — deterministic, integer-only, and monotone
/// in `k`. An empty histogram reports 10000 (the SLO is vacuously met;
/// deadness is gated separately by completion counts).
pub fn slo_within_basis_points(hist: &LatencyHist, k: u64) -> u64 {
    let count = hist.count();
    if count == 0 {
        return 10_000;
    }
    let threshold = hist.quantile(1, 2).saturating_mul(k);
    let within: u64 = hist
        .nonzero_buckets()
        .iter()
        .filter(|&&(top, _)| top <= threshold)
        .map(|&(_, n)| n)
        .sum();
    ((u128::from(within) * 10_000) / u128::from(count)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::ServerEnv;
    use crate::BootSpec;
    use foc_memory::Mode;

    fn spec(kind: ServerKind) -> BootSpec {
        BootSpec::new(kind, Mode::FailureOblivious)
    }

    fn library() -> Vec<(ServerKind, Request)> {
        vec![
            (
                ServerKind::Apache,
                Request::ApacheGet {
                    path: Bytes::Static(b"/index.html"),
                },
            ),
            (
                ServerKind::Sendmail,
                Request::SendmailReceive {
                    from: Bytes::Owned(b"a@x.test".to_vec()),
                    to: Bytes::Static(b"b@y.test"),
                    body: Bytes::Owned(b"hello".to_vec()),
                },
            ),
            (
                ServerKind::Sendmail,
                Request::SendmailSend {
                    to: Bytes::Owned(b"c@z.test".to_vec()),
                    body: Bytes::Static(b"outbound"),
                },
            ),
            (ServerKind::Sendmail, Request::SendmailWakeup),
            (
                ServerKind::Sendmail,
                Request::SendmailMailFrom {
                    from: Bytes::Owned(b"d@w.test".to_vec()),
                },
            ),
            (
                ServerKind::Pine,
                Request::PineDeliver {
                    from: Bytes::Owned(b"Eve <eve@test>".to_vec()),
                    subject: Bytes::Static(b"s"),
                    body: Bytes::Static(b"b"),
                },
            ),
            (ServerKind::Pine, Request::PineRead { index: 2 }),
            (ServerKind::Pine, Request::PineCompose),
            (ServerKind::Pine, Request::PineMove { index: -1 }),
            (
                ServerKind::Mutt,
                Request::MuttOpenFolder {
                    name: Bytes::Static(b"INBOX"),
                },
            ),
            (ServerKind::Mutt, Request::MuttRead { index: 0 }),
            (
                ServerKind::Mc,
                Request::McCopy {
                    src: Bytes::Static(b"/home/user/data.bin"),
                    dst: Bytes::Owned(b"/tmp/c1".to_vec()),
                },
            ),
            (
                ServerKind::Mc,
                Request::McMkdir {
                    path: Bytes::Static(b"/tmp/d"),
                },
            ),
            (
                ServerKind::Mc,
                Request::McComponentEnd {
                    name: Bytes::Static(b"usr/share/x"),
                },
            ),
            (
                ServerKind::Mc,
                Request::McDelete {
                    path: Bytes::Owned(b"/tmp/c1".to_vec()),
                },
            ),
            (
                ServerKind::Mc,
                Request::McOpenArchive {
                    links: Links::Owned(vec![b"one".to_vec(), b"two".to_vec(), Vec::new()]),
                },
            ),
        ]
    }

    #[test]
    fn request_frames_round_trip_for_every_shape() {
        for (i, (kind, request)) in library().into_iter().enumerate() {
            let seq = 40 + i as u32;
            let frame = encode_request(kind, seq, &request);
            let (got_seq, decoded, consumed) =
                decode_request(kind, &frame).expect("complete frame decodes");
            assert_eq!(consumed, frame.len());
            assert_eq!(got_seq, seq);
            assert_eq!(decoded, request, "content equality across the wire");
            // Every strict prefix is partial.
            for cut in 0..frame.len() {
                assert!(
                    decode_request(kind, &frame[..cut]).is_none(),
                    "prefix of {cut} bytes must not decode"
                );
            }
        }
    }

    #[test]
    fn response_frames_round_trip_and_verify() {
        let done = Measured {
            outcome: Outcome::Done {
                ret: -7,
                output: b"body bytes".to_vec(),
            },
            cycles: 123_456,
        };
        let frame = encode_response(9, &done);
        let (resp, consumed) = decode_response(&frame).unwrap();
        assert_eq!(consumed, frame.len());
        assert_eq!(resp.seq, 9);
        verify_response(&resp, &done);
        for cut in 0..frame.len() {
            assert!(decode_response(&frame[..cut]).is_none());
        }
    }

    #[test]
    fn edge_labels_parse_back() {
        for label in [
            "in-process",
            "socket",
            "socket-slow-loris",
            "socket-disconnect",
            "socket-flood",
        ] {
            let edge: Edge = label.parse().unwrap();
            assert_eq!(edge.label(), label, "label round-trips");
        }
        assert!("tcp".parse::<Edge>().is_err());
        assert_eq!("SOCKET".parse::<Edge>().unwrap().label(), "socket");
    }

    /// Shared harness: drive `requests` through a socket session and
    /// through a plain in-process twin, asserting measured equality.
    fn socket_matches_in_process(kind: ServerKind, edge: &SocketEdge, requests: &[Request]) {
        let spec = spec(kind);
        let env = ServerEnv::standard();
        let mut wired = FarmProcess::boot_env(kind, &spec, &env);
        let mut plain = FarmProcess::boot_env(kind, &spec, &env);
        let mut session = ConnSession::new(kind, edge);
        for request in requests {
            let over_wire = session.transact(request, &mut wired);
            let direct = request.apply(&mut plain);
            assert_eq!(over_wire, direct, "transport must not change outcomes");
        }
    }

    #[test]
    fn clean_socket_session_matches_direct_application() {
        socket_matches_in_process(
            ServerKind::Apache,
            &SocketEdge::default(),
            &[
                Request::ApacheGet {
                    path: Bytes::Static(b"/index.html"),
                },
                Request::ApacheGet {
                    path: Bytes::Static(b"/big.bin"),
                },
                Request::ApacheGet {
                    path: Bytes::Static(b"/nosuchpage.html"),
                },
            ],
        );
    }

    #[test]
    fn slow_loris_drip_assembles_frames_byte_by_byte() {
        let edge = SocketEdge {
            scenario: Scenario::SlowLoris { chunk: 1 },
            connections: 2,
            ..SocketEdge::default()
        };
        socket_matches_in_process(
            ServerKind::Pine,
            &edge,
            &[
                Request::PineRead { index: 0 },
                Request::PineDeliver {
                    from: Bytes::Static(b"Al <al@test>"),
                    subject: Bytes::Static(b"new mail"),
                    body: Bytes::Owned(vec![b'x'; 400]),
                },
                Request::PineRead { index: 3 },
            ],
        );
    }

    #[test]
    fn mid_request_disconnects_retransmit_without_observable_effect() {
        let edge = SocketEdge {
            scenario: Scenario::Disconnect { every: 2 },
            connections: 3,
            ..SocketEdge::default()
        };
        let requests: Vec<Request> = (0..6)
            .map(|i| Request::MuttOpenFolder {
                name: Bytes::Owned(if i % 2 == 0 {
                    b"INBOX".to_vec()
                } else {
                    b"work".to_vec()
                }),
            })
            .collect();
        socket_matches_in_process(ServerKind::Mutt, &edge, &requests);
    }

    #[test]
    fn disconnect_scenario_counts_its_drops() {
        let edge = SocketEdge {
            scenario: Scenario::Disconnect { every: 2 },
            ..SocketEdge::default()
        };
        let spec = spec(ServerKind::Apache);
        let env = ServerEnv::standard();
        let mut process = FarmProcess::boot_env(ServerKind::Apache, &spec, &env);
        let mut session = ConnSession::new(ServerKind::Apache, &edge);
        for _ in 0..4 {
            session.transact(
                &Request::ApacheGet {
                    path: Bytes::Static(b"/index.html"),
                },
                &mut process,
            );
        }
        let stats = session.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(
            stats.disconnects, 2,
            "every second request dropped mid-frame"
        );
        assert_eq!(stats.frames, 4, "every request still completed");
    }

    #[test]
    fn connection_flood_past_the_backlog_is_refused() {
        let edge = SocketEdge {
            backlog: 4,
            flood: 10,
            ..SocketEdge::default()
        };
        let session = ConnSession::new(ServerKind::Mc, &edge);
        let stats = session.stats();
        assert_eq!(stats.refused, 6, "flood past the backlog bounces");
        // Pool (4) + accepted flood (4).
        assert_eq!(stats.connected, 4 + 4);
    }

    #[test]
    fn flooded_session_still_serves() {
        let edge = SocketEdge {
            backlog: 4,
            flood: 10,
            ..SocketEdge::default()
        };
        socket_matches_in_process(
            ServerKind::Mc,
            &edge,
            &[
                Request::McMkdir {
                    path: Bytes::Static(b"/tmp/d1"),
                },
                Request::McDelete {
                    path: Bytes::Static(b"/tmp/d1"),
                },
            ],
        );
    }

    #[test]
    fn teardown_is_idempotent_and_keeps_refusing() {
        let mut session = ConnSession::new(ServerKind::Apache, &SocketEdge::default());
        session.refused();
        session.refused();
        session.refused();
        assert_eq!(session.stats().refused, 3);
    }

    #[test]
    fn slo_counts_bucket_tops_within_k_times_median() {
        let mut h = LatencyHist::new();
        // 9 requests in the [64,128) bucket, one far outlier.
        for _ in 0..9 {
            h.record(100);
        }
        h.record(1_000_000);
        // Median bucket top is 127; 4×127 = 508 covers only the fast 9.
        assert_eq!(slo_within_basis_points(&h, 4), 9_000);
        // A huge k covers everything.
        assert_eq!(slo_within_basis_points(&h, 1 << 20), 10_000);
        // Vacuous SLO on an empty histogram.
        assert_eq!(slo_within_basis_points(&LatencyHist::new(), 4), 10_000);
    }
}
