//! The mode search-space sweep: exhaustive exploration of the
//! failure-oblivious configuration grid.
//!
//! Durieux et al. 2017 ("Exhaustive Exploration of the Failure-oblivious
//! Computing Search Space") showed that the interesting behaviour of
//! failure-oblivious systems lives in the full policy × manufactured-value
//! grid, not in the handful of hand-picked points a paper evaluation can
//! visit; Rigger et al. 2018 showed outcome *classes* shift with the value
//! strategy chosen. This module drives that grid over our substrate:
//!
//! * **axes** — recovery [`Mode`] × [`ValueSequence`] (zero / constant /
//!   cycling at several wraps) × [`FuelBudget`] × [`TableKind`], each
//!   combination a [`CellSpec`];
//! * **subjects** — all five servers over a fixed library of benign and
//!   §4/§5.1 attack inputs ([`INPUT_LIBRARY`]), each input a short
//!   deterministic script against a freshly booted process;
//! * **classification** — every (server, input, cell) run lands in one
//!   class of the stable [`OutcomeClass`] taxonomy, keyed by a transcript
//!   hash so semantic drift in the substrate (different output, same
//!   survival) is distinguishable from mere continuation.
//!
//! Cells execute in parallel on the same work-stealing executor as the
//! farm ([`crate::steal`]); each run is a pure function of its
//! `(cell, server, input)` coordinates — a fresh process, no shared
//! state, no host randomness — so the whole matrix is reproducible
//! byte-for-byte regardless of thread count or scheduling grain, and a
//! partially-completed sweep can resume from whatever cells it already
//! has (the bench-side report keys cells by fingerprint).

use std::hash::Hasher as _;

// The workspace's one stable content hash (`foc_compiler::Fnv1a`:
// FNV-1a 64, platform-independent) — reused here so transcript hashes
// and cell fingerprints rest on the same primitive as `ProgramId`.
use foc_compiler::Fnv1a;
use foc_memory::{MemoryErrorRecord, Mode, SpaceStats, TableKind, ValueSequence};
use foc_vm::VmFault;

use crate::conn::{ConnSession, Edge};
use crate::farm::{Bytes, FarmProcess, Links, Request, ServerEnv};
use crate::steal::{run_stealing, Slice};
use crate::{apache, mc, mutt, pine, sendmail, supervisor, workload};
use crate::{BootSpec, Measured, Outcome, Process, ServerKind};

/// Version of the sweep's semantic contract: the input library, the
/// taxonomy, and the transcript-hash recipe. Part of every cell
/// fingerprint, so a resumed sweep can never mix cells produced under
/// different contracts.
pub const SWEEP_SCHEMA: u32 = 1;

// ---------------------------------------------------------------------
// Axes.
// ---------------------------------------------------------------------

/// The fuel axis: how many interpreted instructions one guest call may
/// spend before the run is classified as non-terminating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuelBudget {
    /// A budget every *terminating* path in the library fits with room
    /// (the costliest, MC's 3.2 MB file copy, measures ~9.1M guest
    /// instructions). Only genuine manufactured-value non-termination —
    /// the §3 `'/'`-scan under a sequence that can never produce `'/'` —
    /// exhausts it. Deliberately far below the drivers' interactive
    /// budgets: a manufactured loop executes only ~3M instructions per
    /// host second (every iteration pays the full violation path), so
    /// sweeping hundreds of hang cells at 80M+ fuel would take hours.
    Ample,
    /// A tight budget: boots and ordinary requests fit, but long
    /// requests (MC's big-file copy, deep archive walks) become prompt
    /// fuel-outs — the §1.2 infinite-loop damage class made cheap to
    /// observe, and a probe of how much slack each request class has.
    Tight,
}

/// The ample per-call budget (see [`FuelBudget::Ample`]).
pub const AMPLE_FUEL: u64 = 12_000_000;

/// The tight per-call budget (see [`FuelBudget::Tight`]).
pub const TIGHT_FUEL: u64 = 200_000;

impl FuelBudget {
    /// Both budgets, sweep order.
    pub const ALL: [FuelBudget; 2] = [FuelBudget::Ample, FuelBudget::Tight];

    /// Stable label for reports and parsing.
    pub fn label(self) -> &'static str {
        match self {
            FuelBudget::Ample => "ample",
            FuelBudget::Tight => "tight",
        }
    }

    /// The per-call instruction budget for `kind` under this policy.
    /// (Per-kind today the budgets are uniform; the `kind` parameter
    /// keeps the axis free to scale budgets per server later without
    /// touching callers.)
    pub fn limit(self, kind: ServerKind) -> u64 {
        let _ = kind;
        match self {
            FuelBudget::Ample => AMPLE_FUEL,
            FuelBudget::Tight => TIGHT_FUEL,
        }
    }
}

impl std::str::FromStr for FuelBudget {
    type Err = String;

    fn from_str(s: &str) -> Result<FuelBudget, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ample" => Ok(FuelBudget::Ample),
            "tight" => Ok(FuelBudget::Tight),
            other => Err(format!("unknown fuel budget {other:?}")),
        }
    }
}

/// Stable slug for a [`Mode`] (the display names contain spaces).
pub fn mode_slug(mode: Mode) -> &'static str {
    match mode {
        Mode::Standard => "standard",
        Mode::BoundsCheck => "bounds-check",
        Mode::FailureOblivious => "failure-oblivious",
        Mode::Boundless => "boundless",
        Mode::Redirect => "redirect",
    }
}

/// Parses a [`mode_slug`] back into its [`Mode`].
pub fn mode_from_slug(s: &str) -> Result<Mode, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "standard" => Ok(Mode::Standard),
        "bounds-check" => Ok(Mode::BoundsCheck),
        "failure-oblivious" => Ok(Mode::FailureOblivious),
        "boundless" => Ok(Mode::Boundless),
        "redirect" => Ok(Mode::Redirect),
        other => Err(format!("unknown mode slug {other:?}")),
    }
}

/// One grid cell: a complete configuration of the recovery substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Access policy.
    pub mode: Mode,
    /// Manufactured-value strategy.
    pub sequence: ValueSequence,
    /// Per-call fuel policy.
    pub fuel: FuelBudget,
    /// Object-table backend.
    pub table: TableKind,
}

impl CellSpec {
    /// Stable, parseable cell label: `mode|sequence|fuel|table`.
    pub fn label(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            mode_slug(self.mode),
            self.sequence.label(),
            self.fuel.label(),
            self.table.name()
        )
    }

    /// Parses a [`CellSpec::label`] back into a spec.
    pub fn parse(label: &str) -> Result<CellSpec, String> {
        let parts: Vec<&str> = label.split('|').collect();
        let [m, s, f, t] = parts.as_slice() else {
            return Err(format!("cell label {label:?} is not mode|seq|fuel|table"));
        };
        Ok(CellSpec {
            mode: mode_from_slug(m)?,
            sequence: s.parse()?,
            fuel: f.parse()?,
            table: t.parse()?,
        })
    }

    /// Fingerprint of this cell's *meaning*: the schema version, the
    /// cell coordinates, and the full input library the cell is judged
    /// over. Two sweeps agree on a fingerprint exactly when reusing one
    /// another's cell results is sound, which is what `--resume` keys on.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(SWEEP_SCHEMA));
        h.write(self.label().as_bytes());
        for input in INPUT_LIBRARY {
            h.write(input.kind.name().as_bytes());
            h.write(input.name.as_bytes());
        }
        h.write_u64(u64::from(supervisor::RESTART_BUDGET));
        h.finish()
    }

    /// The boot spec this cell implies for one server kind.
    pub fn boot_spec(&self, kind: ServerKind) -> BootSpec {
        BootSpec::new(kind, self.mode)
            .with_table(self.table)
            .with_sequence(self.sequence)
            .with_fuel(self.fuel.limit(kind))
    }
}

/// The swept axes: a grid is the cartesian product, cells ordered
/// mode-major then sequence, fuel, table — the canonical report order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    /// Recovery modes.
    pub modes: Vec<Mode>,
    /// Manufactured-value strategies.
    pub sequences: Vec<ValueSequence>,
    /// Fuel policies.
    pub fuels: Vec<FuelBudget>,
    /// Object-table backends.
    pub tables: Vec<TableKind>,
}

impl SweepGrid {
    /// The full recorded grid: every mode × {zero, constant 1, cycling
    /// at wraps 2/8/256} × both fuel budgets × every backend.
    pub fn full() -> SweepGrid {
        SweepGrid {
            modes: Mode::ALL.to_vec(),
            sequences: vec![
                ValueSequence::Zero,
                ValueSequence::Constant(1),
                ValueSequence::Cycling { wrap: 2 },
                ValueSequence::Cycling { wrap: 8 },
                ValueSequence::Cycling { wrap: 256 },
            ],
            fuels: FuelBudget::ALL.to_vec(),
            tables: TableKind::ALL.to_vec(),
        }
    }

    /// The pinned CI sub-grid: a strict subset of [`SweepGrid::full`]
    /// chosen to stay fast (tight fuel only, so manufactured-value
    /// non-termination costs [`TIGHT_FUEL`] instructions, not the whole
    /// ample budget) while still covering every mode, the two
    /// extreme sequences, and two backends.
    pub fn pinned() -> SweepGrid {
        SweepGrid {
            modes: Mode::ALL.to_vec(),
            sequences: vec![ValueSequence::Zero, ValueSequence::Cycling { wrap: 256 }],
            fuels: vec![FuelBudget::Tight],
            tables: vec![TableKind::Splay, TableKind::Flat],
        }
    }

    /// Extra pinned cells the CI gate runs beyond [`SweepGrid::pinned`]:
    /// the constant-1 failure-oblivious cell, whose MC `'/'`-scan is the
    /// §3 manufactured-value loop that runs to fuel-out — it drives the
    /// batched violation path (log append + manufacture per iteration)
    /// hundreds of thousands of times, so the gate proves the fast path
    /// is transcript-invisible under exactly the storm it accelerates.
    pub fn pinned_extra_cells() -> Vec<CellSpec> {
        vec![CellSpec {
            mode: Mode::FailureOblivious,
            sequence: ValueSequence::Constant(1),
            fuel: FuelBudget::Tight,
            table: TableKind::Splay,
        }]
    }

    /// All cells of the grid, in canonical order.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::new();
        for &mode in &self.modes {
            for &sequence in &self.sequences {
                for &fuel in &self.fuels {
                    for &table in &self.tables {
                        out.push(CellSpec {
                            mode,
                            sequence,
                            fuel,
                            table,
                        });
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Taxonomy.
// ---------------------------------------------------------------------

/// What one (server, input, cell) run turned out to be. The classes are
/// ordered roughly from "indistinguishable from correct" to "wrong".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeClass {
    /// Completed with no memory violations and the reference transcript
    /// — the run never needed the recovery machinery.
    Clean,
    /// Completed *through* intercepted violations (discarded writes,
    /// manufactured reads) and still produced the reference transcript —
    /// the paper's headline behaviour.
    ManufacturedContinue,
    /// The process died (segfault, memory-error exit, stack smash…) but
    /// a supervised restart brought the service back: the trigger was
    /// transient.
    PolicyKill,
    /// The process died and every restart died too — a persistent
    /// trigger (§4.7): the service is down.
    RestartExhausted,
    /// The per-call fuel budget ran out: the run is classified as
    /// non-terminating (the constant-sequence Midnight Commander hang).
    FuelOut,
    /// Completed — possibly through violations — but produced output
    /// different from the reference cell's: survival with divergent
    /// semantics, the class Rigger et al. showed the value strategy
    /// controls.
    DivergentTranscript,
}

impl OutcomeClass {
    /// Every class, presentation order.
    pub const ALL: [OutcomeClass; 6] = [
        OutcomeClass::Clean,
        OutcomeClass::ManufacturedContinue,
        OutcomeClass::PolicyKill,
        OutcomeClass::RestartExhausted,
        OutcomeClass::FuelOut,
        OutcomeClass::DivergentTranscript,
    ];

    /// Long name, report prose.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeClass::Clean => "clean",
            OutcomeClass::ManufacturedContinue => "manufactured-continue",
            OutcomeClass::PolicyKill => "policy-kill",
            OutcomeClass::RestartExhausted => "restart-exhausted",
            OutcomeClass::FuelOut => "fuel-out",
            OutcomeClass::DivergentTranscript => "divergent-transcript",
        }
    }

    /// One-letter code, matrix cells.
    pub fn code(self) -> &'static str {
        match self {
            OutcomeClass::Clean => "C",
            OutcomeClass::ManufacturedContinue => "M",
            OutcomeClass::PolicyKill => "K",
            OutcomeClass::RestartExhausted => "R",
            OutcomeClass::FuelOut => "F",
            OutcomeClass::DivergentTranscript => "D",
        }
    }
}

impl std::str::FromStr for OutcomeClass {
    type Err = String;

    /// Parses either the one-letter code or the long name.
    fn from_str(s: &str) -> Result<OutcomeClass, String> {
        for class in OutcomeClass::ALL {
            if s == class.code() || s == class.name() {
                return Ok(class);
            }
        }
        Err(format!("unknown outcome class {s:?}"))
    }
}

// ---------------------------------------------------------------------
// Input library.
// ---------------------------------------------------------------------

/// One library entry: a named, fixed request script against one server.
#[derive(Debug, Clone, Copy)]
pub struct SweepInput {
    /// Which server the script drives.
    pub kind: ServerKind,
    /// Stable input name (part of cell fingerprints).
    pub name: &'static str,
    /// Whether the script contains a §4/§5.1 attack (or hostile
    /// persistent environment), as opposed to purely benign traffic.
    pub attack: bool,
}

/// The benign + attack input library, kind-major in [`ServerKind::ALL`]
/// order. The scripts live in the `drive_*` functions below; names and
/// order are part of the sweep's semantic contract ([`SWEEP_SCHEMA`]).
pub const INPUT_LIBRARY: &[SweepInput] = &[
    // Pine (§4.2): the From-quoting overflow, transient and persistent.
    SweepInput {
        kind: ServerKind::Pine,
        name: "benign-session",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Pine,
        name: "deliver-read",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Pine,
        name: "attack-from",
        attack: true,
    },
    SweepInput {
        kind: ServerKind::Pine,
        name: "poisoned-mailbox",
        attack: true,
    },
    // Apache (§4.3): the mod_rewrite offsets overflow.
    SweepInput {
        kind: ServerKind::Apache,
        name: "benign-gets",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Apache,
        name: "rewrite-ten",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Apache,
        name: "attack-url",
        attack: true,
    },
    // Sendmail (§4.4): the prescan overflow; BC dead-at-init daemon.
    SweepInput {
        kind: ServerKind::Sendmail,
        name: "benign-mail",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Sendmail,
        name: "daemon-wakeup",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Sendmail,
        name: "attack-address",
        attack: true,
    },
    // MC (§4.5): the symlink-path overflow; §3's '/'-scan; the blank
    // configuration line persistent trigger.
    SweepInput {
        kind: ServerKind::Mc,
        name: "benign-fileops",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Mc,
        name: "component-scan",
        attack: true,
    },
    SweepInput {
        kind: ServerKind::Mc,
        name: "attack-symlinks",
        attack: true,
    },
    SweepInput {
        kind: ServerKind::Mc,
        name: "blank-config",
        attack: true,
    },
    // Mutt (§4.6 / Figure 1): the UTF-8→UTF-7 conversion overflow.
    SweepInput {
        kind: ServerKind::Mutt,
        name: "benign-folders",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Mutt,
        name: "malformed-utf8",
        attack: false,
    },
    SweepInput {
        kind: ServerKind::Mutt,
        name: "attack-folder",
        attack: true,
    },
];

// ---------------------------------------------------------------------
// Transcript hashing.
// ---------------------------------------------------------------------

/// Accumulates one run's client-visible transcript: every step's return
/// code and output bytes, or the terminating fault. The hash is the
/// run's identity in the matrix — two runs with equal hashes looked
/// identical to a client.
struct Trace {
    h: Fnv1a,
    fault: Option<VmFault>,
}

impl Trace {
    fn new() -> Trace {
        Trace {
            h: Fnv1a::new(),
            fault: None,
        }
    }

    /// Records one observed outcome; returns `true` while the process
    /// is still alive (scripts stop at the first crash).
    fn outcome(&mut self, o: &Outcome) -> bool {
        match o {
            Outcome::Done { ret, output } => {
                self.h.write_u64(1);
                self.h.write_u64(*ret as u64);
                self.h.write_u64(output.len() as u64);
                self.h.write(output);
                true
            }
            Outcome::Crashed(fault) => {
                self.h.write_u64(2);
                self.h.write(fault.to_string().as_bytes());
                self.fault = Some(fault.clone());
                false
            }
        }
    }

    /// Records one measured step (ignoring virtual time — cycle counts
    /// vary across modes by design and are not part of the transcript).
    fn step(&mut self, m: &Measured) -> bool {
        self.outcome(&m.outcome)
    }
}

/// The raw result of driving one input script under one boot spec,
/// before classification: every surface a client or operator can
/// observe. Differential harnesses (the tier-equivalence battery in
/// `tests/superinstr_equiv.rs`) assert two of these equal to prove a
/// substrate change is invisible end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Driven {
    /// Transcript hash (steps until the first crash, if any).
    pub transcript: u64,
    /// Intercepted violations the primary process accumulated.
    pub violations: u64,
    /// The crash that ended the script, when one did.
    pub fault: Option<VmFault>,
    /// Whether the service was usable after supervision — `true` when
    /// no crash happened, or when a restart within the shared budget
    /// brought a crashed service back.
    pub recovered: bool,
    /// The primary process's full space counters at script end (before
    /// any supervision restart).
    pub stats: SpaceStats,
    /// The primary process's full memory-error log at script end, in
    /// commit order.
    pub log: Vec<MemoryErrorRecord>,
}

/// Seals a finished script: reads the primary process's violation
/// counters, then — if the script ended in a crash — supervises the
/// subject with the shared restart budget to decide whether the trigger
/// was transient.
fn seal<T>(
    trace: Trace,
    mut subject: T,
    proc_of: impl Fn(&T) -> &Process,
    usable: impl Fn(&T) -> bool,
    restart: impl FnMut(&mut T),
) -> Driven {
    let space = proc_of(&subject).machine().space();
    let stats = *space.stats();
    let log = space.error_log().records().to_vec();
    let violations = stats.invalid_reads + stats.invalid_writes;
    let recovered = match trace.fault {
        None => true,
        // A fuel-out classifies on the fault alone; restarting a
        // non-terminating computation to see whether it terminates this
        // time would just burn the budget again (it is deterministic).
        Some(VmFault::FuelExhausted) => false,
        Some(_) => {
            supervisor::restart_until_usable(
                &mut subject,
                supervisor::RESTART_BUDGET,
                &usable,
                restart,
            );
            usable(&subject)
        }
    };
    Driven {
        transcript: trace.h.finish(),
        violations,
        fault: trace.fault,
        recovered,
        stats,
        log,
    }
}

// ---------------------------------------------------------------------
// The scripts.
// ---------------------------------------------------------------------

/// The persistent environment one library input boots its server into
/// (most inputs take the standard one; the poisoned-mailbox and
/// blank-config scripts seed their persistent trigger here, so every
/// supervision restart replays it).
fn script_env(kind: ServerKind, input: &str) -> ServerEnv {
    let mut env = ServerEnv::standard();
    match (kind, input) {
        (ServerKind::Pine, "benign-session" | "attack-from") => {
            env.pine_mailbox = pine::Pine::standard_mailbox(3);
        }
        (ServerKind::Pine, "deliver-read") => {
            env.pine_mailbox = pine::Pine::standard_mailbox(2);
        }
        (ServerKind::Pine, "poisoned-mailbox") => {
            let mut mb = pine::Pine::standard_mailbox(4);
            mb.insert(2, (pine::attack_from(40), b"pwn".to_vec(), b"x".to_vec()));
            env.pine_mailbox = mb;
        }
        (ServerKind::Mc, "blank-config") => env.mc_config = mc::config_with_blank_line(),
        (ServerKind::Mc, _) => env.mc_config = mc::clean_config(),
        _ => {}
    }
    env
}

/// The fixed request script of one library input, in order. Scripts are
/// plain [`Request`] values so one driver can apply them directly or
/// carry them over the connection edge.
fn script_requests(kind: ServerKind, input: &str) -> Vec<Request> {
    match (kind, input) {
        (ServerKind::Pine, "benign-session") => vec![
            Request::PineRead { index: 0 },
            Request::PineCompose,
            Request::PineMove { index: 1 },
            Request::PineRead { index: 2 },
        ],
        (ServerKind::Pine, "deliver-read") => vec![
            Request::PineDeliver {
                from: Bytes::Owned(workload::from_field(7)),
                subject: Bytes::Static(b"new mail"),
                body: Bytes::Static(b"hello there"),
            },
            Request::PineRead { index: 2 },
        ],
        // The poisoned message lands in the mail file; if the process
        // dies delivering it, every restart replays it.
        (ServerKind::Pine, "attack-from") => vec![
            Request::PineDeliver {
                from: Bytes::Owned(pine::attack_from(40)),
                subject: Bytes::Static(b"pwn"),
                body: Bytes::Static(b"payload"),
            },
            Request::PineRead { index: 3 },
        ],
        (ServerKind::Pine, "poisoned-mailbox") => vec![
            Request::PineRead { index: 2 },
            Request::PineRead { index: 0 },
        ],
        (ServerKind::Apache, "benign-gets") => vec![
            Request::ApacheGet {
                path: Bytes::Static(b"/index.html"),
            },
            Request::ApacheGet {
                path: Bytes::Static(b"/missing.html"),
            },
            Request::ApacheGet {
                path: Bytes::Static(b"/big.bin"),
            },
        ],
        (ServerKind::Apache, "rewrite-ten") => vec![
            Request::ApacheGet {
                path: Bytes::Owned(apache::rewrite_url(10)),
            },
            Request::ApacheGet {
                path: Bytes::Static(b"/index.html"),
            },
        ],
        (ServerKind::Apache, "attack-url") => vec![
            Request::ApacheGet {
                path: Bytes::Owned(apache::attack_url()),
            },
            Request::ApacheGet {
                path: Bytes::Static(b"/index.html"),
            },
        ],
        (ServerKind::Sendmail, "benign-mail") => vec![
            Request::SendmailReceive {
                from: Bytes::Owned(workload::sendmail_address(1)),
                to: Bytes::Owned(workload::sendmail_address(2)),
                body: Bytes::Static(b"first message body"),
            },
            Request::SendmailSend {
                to: Bytes::Owned(workload::sendmail_address(3)),
                body: Bytes::Static(b"outbound body"),
            },
        ],
        (ServerKind::Sendmail, "daemon-wakeup") => {
            vec![Request::SendmailWakeup, Request::SendmailWakeup]
        }
        (ServerKind::Sendmail, "attack-address") => vec![
            Request::SendmailMailFrom {
                from: Bytes::Owned(sendmail::attack_address(120)),
            },
            Request::SendmailReceive {
                from: Bytes::Owned(workload::sendmail_address(8)),
                to: Bytes::Owned(workload::sendmail_address(9)),
                body: Bytes::Static(b"after attack"),
            },
        ],
        (ServerKind::Mc, "benign-fileops") => vec![
            Request::McCopy {
                src: Bytes::Static(b"/home/user/data.bin"),
                dst: Bytes::Static(b"/tmp/c1"),
            },
            Request::McMkdir {
                path: Bytes::Static(b"/tmp/d"),
            },
            Request::McDelete {
                path: Bytes::Static(b"/tmp/c1"),
            },
        ],
        // The second name has no '/' and no room: the scan walks off
        // the end of its buffer — §3's loop-condition case, where the
        // value sequence decides termination.
        (ServerKind::Mc, "component-scan") => vec![
            Request::McComponentEnd {
                name: Bytes::Static(b"usr/share/component/lib"),
            },
            Request::McComponentEnd {
                name: Bytes::Static(b"noslashhere"),
            },
        ],
        (ServerKind::Mc, "attack-symlinks") => vec![
            Request::McOpenArchive {
                links: Links::Owned(mc::attack_links()),
            },
            Request::McCopy {
                src: Bytes::Static(b"/home/user/data.bin"),
                dst: Bytes::Static(b"/tmp/y"),
            },
        ],
        (ServerKind::Mc, "blank-config") => vec![Request::McCopy {
            src: Bytes::Static(b"/home/user/data.bin"),
            dst: Bytes::Static(b"/tmp/z"),
        }],
        (ServerKind::Mutt, "benign-folders") => vec![
            Request::MuttOpenFolder {
                name: Bytes::Static(b"INBOX"),
            },
            Request::MuttRead { index: 0 },
            Request::MuttOpenFolder {
                name: Bytes::Static(b"work"),
            },
        ],
        (ServerKind::Mutt, "malformed-utf8") => vec![
            Request::MuttOpenFolder {
                name: Bytes::Owned(vec![0xC0, 0x80]),
            },
            Request::MuttOpenFolder {
                name: Bytes::Static(b"INBOX"),
            },
        ],
        (ServerKind::Mutt, "attack-folder") => vec![
            Request::MuttOpenFolder {
                name: Bytes::Owned(mutt::attack_folder_name(40)),
            },
            Request::MuttOpenFolder {
                name: Bytes::Static(b"INBOX"),
            },
        ],
        (kind, other) => panic!("unknown {} input {other:?}", kind.name()),
    }
}

/// Drives one [`INPUT_LIBRARY`] entry under an explicit boot spec and
/// returns every observable surface of the run. This is the sweep's
/// differential entry point: callers that need an axis the grid does
/// not expose (the execution tier, an off-grid fuel budget) build the
/// [`BootSpec`] themselves instead of going through [`CellSpec`].
/// Requests travel over the edge the [`EDGE_ENV`][crate::conn::EDGE_ENV]
/// variable selects, like the farm's.
pub fn drive_input(input: &SweepInput, spec: &BootSpec) -> Driven {
    drive_input_via(input, spec, &Edge::from_env())
}

/// [`drive_input`] with an explicit transport edge: the edge-equivalence
/// battery (`tests/conn_equiv.rs`) calls this for both edges and asserts
/// the [`Driven`]s equal — transcripts, violation counts, error logs,
/// everything a client or operator can see.
pub fn drive_input_via(input: &SweepInput, spec: &BootSpec, edge: &Edge) -> Driven {
    drive_via(input.kind, input.name, spec, edge)
}

/// Drives one library input under one boot spec over one edge.
fn drive_via(kind: ServerKind, input: &str, spec: &BootSpec, edge: &Edge) -> Driven {
    let env = script_env(kind, input);
    let mut t = Trace::new();
    let mut process = FarmProcess::boot_env(kind, spec, &env);
    let mut session = match edge {
        Edge::InProcess => None,
        Edge::Socket(socket) => Some(ConnSession::new(kind, socket)),
    };
    // The daemons (Sendmail, Pine, MC) do observable work at boot; the
    // per-request workers (Apache, Mutt) do not. A daemon dead at init
    // never sees its script.
    let alive = match process.init_outcome() {
        Some(outcome) => t.outcome(&outcome),
        None => true,
    };
    if alive {
        for request in &script_requests(kind, input) {
            let measured = match &mut session {
                Some(session) => session.transact(request, &mut process),
                None => request.apply(&mut process),
            };
            if !t.step(&measured) {
                break;
            }
        }
    }
    seal(
        t,
        process,
        |p| p.process(),
        |p| p.usable(),
        |p| p.restart(kind, spec, &env),
    )
}

/// Drives one library input under one boot spec.
fn drive(kind: ServerKind, input: &str, spec: &BootSpec) -> Driven {
    drive_via(kind, input, spec, &Edge::from_env())
}

// ---------------------------------------------------------------------
// Classification and execution.
// ---------------------------------------------------------------------

/// One classified (server, input, cell) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRun {
    /// Outcome class.
    pub class: OutcomeClass,
    /// Transcript hash (the run's client-visible identity).
    pub transcript: u64,
}

/// One completed cell: a [`SweepRun`] per [`INPUT_LIBRARY`] entry, in
/// library order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// The cell's coordinates.
    pub cell: CellSpec,
    /// Library-ordered runs.
    pub runs: Vec<SweepRun>,
}

/// A whole sweep: the reference transcripts plus every cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepMatrix {
    /// The grid the matrix covers.
    pub grid: SweepGrid,
    /// Per-input reference transcript hashes ([`reference_cell`]).
    pub reference: Vec<u64>,
    /// Cell results in canonical grid order.
    pub cells: Vec<CellResult>,
}

/// The cell every transcript is compared against: the paper's own
/// configuration — failure-oblivious continuation, the cycling 0/1/k
/// sequence, ample fuel, the splay-tree table.
pub fn reference_cell() -> CellSpec {
    CellSpec {
        mode: Mode::FailureOblivious,
        sequence: ValueSequence::default(),
        fuel: FuelBudget::Ample,
        table: TableKind::Splay,
    }
}

/// Computes the per-input reference transcripts by driving the whole
/// library under [`reference_cell`].
pub fn reference_transcripts() -> Vec<u64> {
    let cell = reference_cell();
    INPUT_LIBRARY
        .iter()
        .map(|input| drive(input.kind, input.name, &cell.boot_spec(input.kind)).transcript)
        .collect()
}

fn classify(driven: &Driven, reference: u64) -> OutcomeClass {
    match &driven.fault {
        Some(VmFault::FuelExhausted) => OutcomeClass::FuelOut,
        Some(_) => {
            if driven.recovered {
                OutcomeClass::PolicyKill
            } else {
                OutcomeClass::RestartExhausted
            }
        }
        None => {
            if driven.transcript != reference {
                OutcomeClass::DivergentTranscript
            } else if driven.violations > 0 {
                OutcomeClass::ManufacturedContinue
            } else {
                OutcomeClass::Clean
            }
        }
    }
}

/// Runs one input of one cell.
pub fn run_cell_input(cell: &CellSpec, index: usize, reference: &[u64]) -> SweepRun {
    let input = &INPUT_LIBRARY[index];
    let driven = drive(input.kind, input.name, &cell.boot_spec(input.kind));
    SweepRun {
        class: classify(&driven, reference[index]),
        transcript: driven.transcript,
    }
}

/// Runs one whole cell sequentially.
pub fn run_cell(cell: &CellSpec, reference: &[u64]) -> CellResult {
    CellResult {
        cell: *cell,
        runs: (0..INPUT_LIBRARY.len())
            .map(|i| run_cell_input(cell, i, reference))
            .collect(),
    }
}

/// Executes `cells` in parallel on the work-stealing executor: one task
/// per cell, yielding between inputs every `slice_inputs` runs so a
/// slow cell (one deep in standard-fuel manufactured loops) cannot pin
/// its worker. Results come back in the order of `cells`; each run is a
/// pure function of its coordinates, so the output is identical for any
/// `threads`/`slice_inputs` (the sweep property tests assert this).
pub fn run_cells(
    cells: &[CellSpec],
    reference: &[u64],
    threads: usize,
    slice_inputs: usize,
) -> Vec<CellResult> {
    if cells.is_empty() {
        return Vec::new();
    }
    struct CellTask {
        slot: usize,
        cell: CellSpec,
        runs: Vec<SweepRun>,
    }
    let slice = slice_inputs.max(1);
    let tasks: Vec<CellTask> = cells
        .iter()
        .enumerate()
        .map(|(slot, cell)| CellTask {
            slot,
            cell: *cell,
            runs: Vec::with_capacity(INPUT_LIBRARY.len()),
        })
        .collect();
    run_stealing(threads, tasks, |mut task: CellTask| {
        for _ in 0..slice {
            if task.runs.len() == INPUT_LIBRARY.len() {
                break;
            }
            let index = task.runs.len();
            task.runs.push(run_cell_input(&task.cell, index, reference));
        }
        if task.runs.len() == INPUT_LIBRARY.len() {
            Slice::Done(
                task.slot,
                CellResult {
                    cell: task.cell,
                    runs: task.runs,
                },
            )
        } else {
            Slice::Yield(task)
        }
    })
}

/// Runs a whole grid: reference first, then every cell in parallel.
pub fn run_sweep(grid: &SweepGrid, threads: usize, slice_inputs: usize) -> SweepMatrix {
    let reference = reference_transcripts();
    let cells = run_cells(&grid.cells(), &reference, threads, slice_inputs);
    SweepMatrix {
        grid: grid.clone(),
        reference,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_labels_round_trip() {
        for cell in SweepGrid::full().cells() {
            let label = cell.label();
            assert_eq!(CellSpec::parse(&label).unwrap(), cell, "{label}");
        }
        assert!(CellSpec::parse("standard|zero|tight").is_err());
        assert!(CellSpec::parse("standard|zero|tight|avl").is_err());
    }

    #[test]
    fn pinned_grid_is_a_subset_of_full() {
        let full = SweepGrid::full().cells();
        for cell in SweepGrid::pinned().cells() {
            assert!(full.contains(&cell), "{} not in full grid", cell.label());
        }
        // The extra gate cells must also exist in the committed matrix
        // (i.e. the full grid) and not duplicate the pinned sub-grid.
        let pinned = SweepGrid::pinned().cells();
        for cell in SweepGrid::pinned_extra_cells() {
            assert!(full.contains(&cell), "{} not in full grid", cell.label());
            assert!(!pinned.contains(&cell), "{} already pinned", cell.label());
        }
    }

    #[test]
    fn fingerprints_separate_cells_but_are_stable() {
        let cells = SweepGrid::full().cells();
        for (i, a) in cells.iter().enumerate() {
            assert_eq!(a.fingerprint(), a.fingerprint());
            for b in &cells[i + 1..] {
                assert_ne!(
                    a.fingerprint(),
                    b.fingerprint(),
                    "{} vs {}",
                    a.label(),
                    b.label()
                );
            }
        }
    }

    #[test]
    fn outcome_class_codes_round_trip() {
        for class in OutcomeClass::ALL {
            assert_eq!(class.code().parse::<OutcomeClass>().unwrap(), class);
            assert_eq!(class.name().parse::<OutcomeClass>().unwrap(), class);
        }
        assert!("X".parse::<OutcomeClass>().is_err());
    }

    #[test]
    fn reference_cell_classifies_as_clean_or_manufactured() {
        // The reference cell compared against itself can only be clean
        // (benign, no violations) or manufactured-continue (violations
        // intercepted, transcript preserved) — never divergent, never a
        // crash class: failure-oblivious mode survives the whole library.
        let reference = reference_transcripts();
        let result = run_cell(&reference_cell(), &reference);
        for (input, run) in INPUT_LIBRARY.iter().zip(&result.runs) {
            assert!(
                matches!(
                    run.class,
                    OutcomeClass::Clean | OutcomeClass::ManufacturedContinue
                ),
                "{}/{}: {:?}",
                input.kind.name(),
                input.name,
                run.class
            );
        }
        // The attack inputs all exercised the recovery machinery.
        for (input, run) in INPUT_LIBRARY.iter().zip(&result.runs) {
            if input.attack && input.kind != ServerKind::Mutt {
                assert_eq!(
                    run.class,
                    OutcomeClass::ManufacturedContinue,
                    "{}/{} must continue through its attack",
                    input.kind.name(),
                    input.name
                );
            }
        }
    }

    #[test]
    fn bounds_check_sendmail_cells_are_down() {
        // §4.4.4 as a taxonomy statement: every Sendmail input under
        // Bounds Check is restart-exhausted (the daemon dies at init,
        // and so does every restart).
        let reference = reference_transcripts();
        let cell = CellSpec {
            mode: Mode::BoundsCheck,
            sequence: ValueSequence::default(),
            fuel: FuelBudget::Ample,
            table: TableKind::Splay,
        };
        let result = run_cell(&cell, &reference);
        for (input, run) in INPUT_LIBRARY.iter().zip(&result.runs) {
            if input.kind == ServerKind::Sendmail {
                assert_eq!(
                    run.class,
                    OutcomeClass::RestartExhausted,
                    "{}: BC sendmail must be down",
                    input.name
                );
            }
        }
    }

    #[test]
    fn cell_results_are_thread_and_slice_invariant() {
        let reference = reference_transcripts();
        let cells = vec![
            CellSpec {
                mode: Mode::FailureOblivious,
                sequence: ValueSequence::Zero,
                fuel: FuelBudget::Tight,
                table: TableKind::Flat,
            },
            CellSpec {
                mode: Mode::BoundsCheck,
                sequence: ValueSequence::default(),
                fuel: FuelBudget::Tight,
                table: TableKind::Splay,
            },
        ];
        let a = run_cells(&cells, &reference, 1, 1);
        let b = run_cells(&cells, &reference, 4, 5);
        let c = run_cells(&cells, &reference, 2, usize::MAX);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // And equal to the sequential path.
        let seq: Vec<CellResult> = cells.iter().map(|c| run_cell(c, &reference)).collect();
        assert_eq!(a, seq);
    }
}
